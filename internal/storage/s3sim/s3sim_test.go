package s3sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("Get = %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := New(Options{})
	if _, err := s.Get(context.Background(), "ghost"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
}

func TestPutEmptyKey(t *testing.T) {
	s := New(Options{})
	if err := s.Put(context.Background(), "", nil); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestExists(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	ok, err := s.Exists(ctx, "k")
	if err != nil || ok {
		t.Fatalf("Exists before Put = %v %v", ok, err)
	}
	_ = s.Put(ctx, "k", []byte("v"))
	ok, err = s.Exists(ctx, "k")
	if err != nil || !ok {
		t.Fatalf("Exists after Put = %v %v", ok, err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte("v"))
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatal("object survived delete")
	}
}

func TestListPrefixAndEventualConsistency(t *testing.T) {
	// A long list lag guarantees fresh keys are invisible immediately.
	s := New(Options{ListLag: 10 * time.Second, Profile: netsim.Zero()})
	ctx := context.Background()
	_ = s.Put(ctx, "results/1", []byte("a"))
	_ = s.Put(ctx, "results/2", []byte("b"))
	_ = s.Put(ctx, "other/3", []byte("c"))

	keys, err := s.List(ctx, "results/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("fresh keys visible in LIST: %v (eventual consistency broken)", keys)
	}
	// But GET is read-after-write.
	if _, err := s.Get(ctx, "results/1"); err != nil {
		t.Fatalf("read-after-write GET failed: %v", err)
	}
}

func TestListBecomesConsistent(t *testing.T) {
	s := New(Options{ListLag: 20 * time.Millisecond, Profile: netsim.Zero()})
	ctx := context.Background()
	_ = s.Put(ctx, "results/1", []byte("a"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys, err := s.List(ctx, "results/")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 1 && keys[0] == "results/1" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("key never became visible in LIST")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLatencyInjection(t *testing.T) {
	p := netsim.Zero()
	p.S3Get = netsim.Latency{Base: 30 * time.Millisecond}
	s := New(Options{Profile: p})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte("v"))
	start := time.Now()
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("GET took %v, want >= 30ms", d)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte{1, 2, 3})
	got, _ := s.Get(ctx, "k")
	got[0] = 99
	got2, _ := s.Get(ctx, "k")
	if got2[0] != 1 {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestStats(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	_ = s.Put(ctx, "k", nil)
	_, _ = s.Get(ctx, "k")
	_, _ = s.List(ctx, "")
	puts, gets, lists := s.Stats()
	if puts != 1 || gets != 1 || lists != 1 {
		t.Fatalf("stats = %d %d %d", puts, gets, lists)
	}
}

func TestContextCancellation(t *testing.T) {
	p := netsim.Zero()
	p.S3Put = netsim.Latency{Base: time.Hour}
	s := New(Options{Profile: p})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Put(ctx, "k", nil); err == nil {
		t.Fatal("Put with cancelled context succeeded")
	}
}
