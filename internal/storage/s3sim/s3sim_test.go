package s3sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Fatalf("Get = %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := New(Options{})
	if _, err := s.Get(context.Background(), "ghost"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("want ErrNoSuchKey, got %v", err)
	}
}

func TestPutEmptyKey(t *testing.T) {
	s := New(Options{})
	if err := s.Put(context.Background(), "", nil); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestExists(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	ok, err := s.Exists(ctx, "k")
	if err != nil || ok {
		t.Fatalf("Exists before Put = %v %v", ok, err)
	}
	_ = s.Put(ctx, "k", []byte("v"))
	ok, err = s.Exists(ctx, "k")
	if err != nil || !ok {
		t.Fatalf("Exists after Put = %v %v", ok, err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte("v"))
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatal("object survived delete")
	}
}

func TestListPrefixAndEventualConsistency(t *testing.T) {
	// A long list lag guarantees fresh keys are invisible immediately.
	s := New(Options{ListLag: 10 * time.Second, Profile: netsim.Zero()})
	ctx := context.Background()
	_ = s.Put(ctx, "results/1", []byte("a"))
	_ = s.Put(ctx, "results/2", []byte("b"))
	_ = s.Put(ctx, "other/3", []byte("c"))

	keys, err := s.List(ctx, "results/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("fresh keys visible in LIST: %v (eventual consistency broken)", keys)
	}
	// But GET is read-after-write.
	if _, err := s.Get(ctx, "results/1"); err != nil {
		t.Fatalf("read-after-write GET failed: %v", err)
	}
}

func TestListBecomesConsistent(t *testing.T) {
	s := New(Options{ListLag: 20 * time.Millisecond, Profile: netsim.Zero()})
	ctx := context.Background()
	_ = s.Put(ctx, "results/1", []byte("a"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys, err := s.List(ctx, "results/")
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 1 && keys[0] == "results/1" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("key never became visible in LIST")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLatencyInjection(t *testing.T) {
	p := netsim.Zero()
	p.S3Get = netsim.Latency{Base: 30 * time.Millisecond}
	s := New(Options{Profile: p})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte("v"))
	start := time.Now()
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("GET took %v, want >= 30ms", d)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte{1, 2, 3})
	got, _ := s.Get(ctx, "k")
	got[0] = 99
	got2, _ := s.Get(ctx, "k")
	if got2[0] != 1 {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestStats(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	_ = s.Put(ctx, "k", []byte("abc"))
	_, _ = s.Get(ctx, "k")
	_, _ = s.List(ctx, "")
	_ = s.Delete(ctx, "k")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Lists != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesPut != 3 || st.BytesGot != 3 {
		t.Fatalf("byte stats = %+v", st)
	}
}

func TestContextCancellation(t *testing.T) {
	p := netsim.Zero()
	p.S3Put = netsim.Latency{Base: time.Hour}
	s := New(Options{Profile: p})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Put(ctx, "k", nil); err == nil {
		t.Fatal("Put with cancelled context succeeded")
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	created, err := s.PutIfAbsent(ctx, "cas", []byte("first"))
	if err != nil || !created {
		t.Fatalf("first PutIfAbsent = (%v, %v), want (true, nil)", created, err)
	}
	created, err = s.PutIfAbsent(ctx, "cas", []byte("second"))
	if err != nil || created {
		t.Fatalf("second PutIfAbsent = (%v, %v), want (false, nil)", created, err)
	}
	got, err := s.Get(ctx, "cas")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("loser overwrote CAS winner: Get = %q", got)
	}
	// Both attempts are billable requests, but only the winner stored bytes.
	st := s.Stats()
	if st.Puts != 2 {
		t.Fatalf("Puts = %d, want 2", st.Puts)
	}
	if st.BytesPut != uint64(len("first")) {
		t.Fatalf("BytesPut = %d, want %d", st.BytesPut, len("first"))
	}
}

func TestFaultInjectionRates(t *testing.T) {
	s := New(Options{Seed: 7})
	ctx := context.Background()
	s.SetFaults(Faults{PutErrRate: 1.0})
	if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under PutErrRate=1 = %v, want ErrInjected", err)
	}
	if _, err := s.Get(ctx, "k"); errors.Is(err, ErrInjected) {
		t.Fatal("GetErrRate=0 must not inject on Get")
	}
	s.SetFaults(Faults{GetErrRate: 1.0, ListErrRate: 1.0, DeleteErrRate: 1.0})
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put with faults cleared on puts: %v", err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get under GetErrRate=1 = %v, want ErrInjected", err)
	}
	if _, err := s.List(ctx, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("List under ListErrRate=1 = %v, want ErrInjected", err)
	}
	if err := s.Delete(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Delete under DeleteErrRate=1 = %v, want ErrInjected", err)
	}
	s.SetFaults(Faults{})
	if _, err := s.Get(ctx, "k"); err != nil {
		t.Fatalf("Get after clearing faults: %v", err)
	}
}

func TestFaultExtraLatency(t *testing.T) {
	s := New(Options{})
	ctx := context.Background()
	s.SetFaults(Faults{ExtraLatency: 30 * time.Millisecond})
	start := time.Now()
	if err := s.Put(ctx, "k", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Put with ExtraLatency took %v, want >= 30ms", d)
	}
}
