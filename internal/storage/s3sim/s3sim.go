// Package s3sim simulates a disaggregated object store with the
// operational behaviour of Amazon S3 circa 2019 that the paper's baselines
// depend on (Table 2, Fig. 6): tens-of-milliseconds PUT/GET latency and
// eventually-consistent LIST-after-PUT, which makes polling-based
// synchronization slow and highly variable.
package s3sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"crucial/internal/netsim"
	"crucial/internal/telemetry"
)

// ErrNoSuchKey is returned by Get for absent objects.
var ErrNoSuchKey = errors.New("s3sim: no such key")

// ErrInjected is the transient failure surfaced by fault injection (see
// Faults): the store's analogue of an S3 5xx. Callers are expected to
// retry, exactly as AWS SDKs do.
var ErrInjected = errors.New("s3sim: injected fault")

type object struct {
	data []byte
	// visibleAt implements eventual LIST consistency: the object serves
	// GETs immediately (S3 read-after-write for new keys) but does not
	// appear in LIST results until this time.
	visibleAt time.Time
}

// Faults configures injectable per-operation failure rates and extra
// latency, so chaos schedules can degrade cold storage the way they
// degrade the network. Rates are probabilities in [0, 1] rolled per call
// with the store's seeded generator (deterministic under a fixed seed and
// call order); ExtraLatency is added to every operation on top of the
// profile's modeled latency. The zero value injects nothing.
type Faults struct {
	PutErrRate    float64
	GetErrRate    float64
	ListErrRate   float64
	DeleteErrRate float64
	ExtraLatency  time.Duration
}

// Stats is a snapshot of the store's operation counters — the raw
// material of S3 request-cost accounting (every put, get/head, list and
// delete is a billable request; bytes feed storage and transfer cost).
type Stats struct {
	Puts, Gets, Lists, Deletes uint64
	// BytesPut and BytesGot total the object payloads written and read.
	BytesPut, BytesGot uint64
}

// Store is one bucket-less S3 endpoint. Safe for concurrent use.
type Store struct {
	profile *netsim.Profile

	mu      sync.Mutex
	objects map[string]object
	rng     *rand.Rand
	// listLag bounds the extra delay before a new object appears in LIST.
	listLag time.Duration
	faults  Faults

	stats Stats

	// Mirrors of the stats counters in a telemetry registry (nil-safe
	// no-ops without one), exported as crucial_storage_*_total.
	cPuts, cGets, cLists, cDeletes *telemetry.Counter
	cBytesPut, cBytesGot           *telemetry.Counter
}

// Options configures the store.
type Options struct {
	// Profile supplies PUT/GET/LIST latencies; nil means none.
	Profile *netsim.Profile
	// ListLag is the maximum modeled visibility delay for LIST (default
	// 80ms, scaled by the profile). Zero keeps the default; negative
	// disables the lag.
	ListLag time.Duration
	// Seed makes the visibility jitter and fault rolls deterministic
	// (default 1).
	Seed int64
	// Metrics, when non-nil, mirrors the store's operation counters into
	// this registry under the storage.* names (telemetry.MetStoragePuts
	// et al.), which the Prometheus exporter serves as
	// crucial_storage_*_total.
	Metrics *telemetry.Registry
}

// New builds an empty store.
func New(opts Options) *Store {
	if opts.Profile == nil {
		opts.Profile = netsim.Zero()
	}
	if opts.ListLag == 0 {
		opts.ListLag = 80 * time.Millisecond
	}
	if opts.ListLag < 0 {
		opts.ListLag = 0
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Store{
		profile:   opts.Profile,
		objects:   make(map[string]object),
		rng:       rand.New(rand.NewSource(opts.Seed)),
		listLag:   opts.ListLag,
		cPuts:     opts.Metrics.Counter(telemetry.MetStoragePuts),
		cGets:     opts.Metrics.Counter(telemetry.MetStorageGets),
		cLists:    opts.Metrics.Counter(telemetry.MetStorageLists),
		cDeletes:  opts.Metrics.Counter(telemetry.MetStorageDeletes),
		cBytesPut: opts.Metrics.Counter(telemetry.MetStoragePutBytes),
		cBytesGot: opts.Metrics.Counter(telemetry.MetStorageGetBytes),
	}
}

// SetFaults installs (or, with the zero value, clears) the store's fault
// injection profile. Safe to call while the store is in use.
func (s *Store) SetFaults(f Faults) {
	s.mu.Lock()
	s.faults = f
	s.mu.Unlock()
}

// delay models one operation's latency: the profile's plus any injected
// extra.
func (s *Store) delay(ctx context.Context, l netsim.Latency) error {
	s.mu.Lock()
	extra := s.faults.ExtraLatency
	s.mu.Unlock()
	if err := s.profile.Delay(ctx, l); err != nil {
		return err
	}
	if extra > 0 {
		return netsim.Sleep(ctx, extra)
	}
	return nil
}

// roll decides one fault injection under the store lock (the caller holds
// it), keeping the rng stream deterministic.
func (s *Store) rollLocked(rate float64) bool {
	return rate > 0 && s.rng.Float64() < rate
}

// Put stores an object under key.
func (s *Store) Put(ctx context.Context, key string, data []byte) error {
	if key == "" {
		return errors.New("s3sim: empty key")
	}
	if err := s.delay(ctx, s.profile.S3Put); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	if s.rollLocked(s.faults.PutErrRate) {
		s.mu.Unlock()
		return fmt.Errorf("%w: put %q", ErrInjected, key)
	}
	lag := time.Duration(0)
	if s.listLag > 0 {
		lag = s.profile.Scaled(time.Duration(s.rng.Int63n(int64(s.listLag))))
	}
	s.objects[key] = object{data: cp, visibleAt: time.Now().Add(lag)}
	s.stats.Puts++
	s.stats.BytesPut += uint64(len(cp))
	s.mu.Unlock()
	s.cPuts.Inc()
	s.cBytesPut.Add(uint64(len(cp)))
	return nil
}

// PutIfAbsent atomically creates key when it does not exist yet and
// reports whether this call created it. It is the store's compare-and-set
// primitive: two recovering nodes racing to claim one checkpoint manifest
// key see exactly one winner, where plain Put would let the second
// silently overwrite the first. (Real S3 gained this in 2024 as
// conditional writes, `If-None-Match: *`.)
func (s *Store) PutIfAbsent(ctx context.Context, key string, data []byte) (bool, error) {
	if key == "" {
		return false, errors.New("s3sim: empty key")
	}
	if err := s.delay(ctx, s.profile.S3Put); err != nil {
		return false, err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	if s.rollLocked(s.faults.PutErrRate) {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: put-if-absent %q", ErrInjected, key)
	}
	if _, exists := s.objects[key]; exists {
		s.stats.Puts++
		s.mu.Unlock()
		s.cPuts.Inc()
		return false, nil
	}
	lag := time.Duration(0)
	if s.listLag > 0 {
		lag = s.profile.Scaled(time.Duration(s.rng.Int63n(int64(s.listLag))))
	}
	s.objects[key] = object{data: cp, visibleAt: time.Now().Add(lag)}
	s.stats.Puts++
	s.stats.BytesPut += uint64(len(cp))
	s.mu.Unlock()
	s.cPuts.Inc()
	s.cBytesPut.Add(uint64(len(cp)))
	return true, nil
}

// Get retrieves an object.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	if err := s.delay(ctx, s.profile.S3Get); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.rollLocked(s.faults.GetErrRate) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: get %q", ErrInjected, key)
	}
	obj, ok := s.objects[key]
	s.stats.Gets++
	if ok {
		s.stats.BytesGot += uint64(len(obj.data))
	}
	s.mu.Unlock()
	s.cGets.Inc()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	s.cBytesGot.Add(uint64(len(obj.data)))
	out := make([]byte, len(obj.data))
	copy(out, obj.data)
	return out, nil
}

// Exists reports key presence with GET-like latency (a HEAD request).
func (s *Store) Exists(ctx context.Context, key string) (bool, error) {
	if err := s.delay(ctx, s.profile.S3Get); err != nil {
		return false, err
	}
	s.mu.Lock()
	if s.rollLocked(s.faults.GetErrRate) {
		s.mu.Unlock()
		return false, fmt.Errorf("%w: head %q", ErrInjected, key)
	}
	_, ok := s.objects[key]
	s.stats.Gets++
	s.mu.Unlock()
	s.cGets.Inc()
	return ok, nil
}

// List returns the keys with the given prefix that are currently visible.
// Freshly written objects may be missing (eventual consistency), which is
// what makes S3 polling-based synchronization erratic (Fig. 6).
func (s *Store) List(ctx context.Context, prefix string) ([]string, error) {
	if err := s.delay(ctx, s.profile.S3List); err != nil {
		return nil, err
	}
	now := time.Now()
	s.mu.Lock()
	if s.rollLocked(s.faults.ListErrRate) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: list %q", ErrInjected, prefix)
	}
	keys := make([]string, 0, len(s.objects))
	for k, o := range s.objects {
		if strings.HasPrefix(k, prefix) && !o.visibleAt.After(now) {
			keys = append(keys, k)
		}
	}
	s.stats.Lists++
	s.mu.Unlock()
	s.cLists.Inc()
	sort.Strings(keys)
	return keys, nil
}

// Delete removes an object (idempotent, like S3).
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.delay(ctx, s.profile.S3Put); err != nil {
		return err
	}
	s.mu.Lock()
	if s.rollLocked(s.faults.DeleteErrRate) {
		s.mu.Unlock()
		return fmt.Errorf("%w: delete %q", ErrInjected, key)
	}
	delete(s.objects, key)
	s.stats.Deletes++
	s.mu.Unlock()
	s.cDeletes.Inc()
	return nil
}

// Stats reports the store's operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
