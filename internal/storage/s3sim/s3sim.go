// Package s3sim simulates a disaggregated object store with the
// operational behaviour of Amazon S3 circa 2019 that the paper's baselines
// depend on (Table 2, Fig. 6): tens-of-milliseconds PUT/GET latency and
// eventually-consistent LIST-after-PUT, which makes polling-based
// synchronization slow and highly variable.
package s3sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"crucial/internal/netsim"
)

// ErrNoSuchKey is returned by Get for absent objects.
var ErrNoSuchKey = errors.New("s3sim: no such key")

type object struct {
	data []byte
	// visibleAt implements eventual LIST consistency: the object serves
	// GETs immediately (S3 read-after-write for new keys) but does not
	// appear in LIST results until this time.
	visibleAt time.Time
}

// Store is one bucket-less S3 endpoint. Safe for concurrent use.
type Store struct {
	profile *netsim.Profile

	mu      sync.Mutex
	objects map[string]object
	rng     *rand.Rand
	// listLag bounds the extra delay before a new object appears in LIST.
	listLag time.Duration

	puts, gets, lists uint64
}

// Options configures the store.
type Options struct {
	// Profile supplies PUT/GET/LIST latencies; nil means none.
	Profile *netsim.Profile
	// ListLag is the maximum modeled visibility delay for LIST (default
	// 80ms, scaled by the profile). Zero keeps the default; negative
	// disables the lag.
	ListLag time.Duration
	// Seed makes the visibility jitter deterministic (default 1).
	Seed int64
}

// New builds an empty store.
func New(opts Options) *Store {
	if opts.Profile == nil {
		opts.Profile = netsim.Zero()
	}
	if opts.ListLag == 0 {
		opts.ListLag = 80 * time.Millisecond
	}
	if opts.ListLag < 0 {
		opts.ListLag = 0
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Store{
		profile: opts.Profile,
		objects: make(map[string]object),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		listLag: opts.ListLag,
	}
}

// Put stores an object under key.
func (s *Store) Put(ctx context.Context, key string, data []byte) error {
	if key == "" {
		return errors.New("s3sim: empty key")
	}
	if err := s.profile.Delay(ctx, s.profile.S3Put); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	lag := time.Duration(0)
	if s.listLag > 0 {
		lag = s.profile.Scaled(time.Duration(s.rng.Int63n(int64(s.listLag))))
	}
	s.objects[key] = object{data: cp, visibleAt: time.Now().Add(lag)}
	s.puts++
	s.mu.Unlock()
	return nil
}

// Get retrieves an object.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	if err := s.profile.Delay(ctx, s.profile.S3Get); err != nil {
		return nil, err
	}
	s.mu.Lock()
	obj, ok := s.objects[key]
	s.gets++
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchKey, key)
	}
	out := make([]byte, len(obj.data))
	copy(out, obj.data)
	return out, nil
}

// Exists reports key presence with GET-like latency (a HEAD request).
func (s *Store) Exists(ctx context.Context, key string) (bool, error) {
	if err := s.profile.Delay(ctx, s.profile.S3Get); err != nil {
		return false, err
	}
	s.mu.Lock()
	_, ok := s.objects[key]
	s.gets++
	s.mu.Unlock()
	return ok, nil
}

// List returns the keys with the given prefix that are currently visible.
// Freshly written objects may be missing (eventual consistency), which is
// what makes S3 polling-based synchronization erratic (Fig. 6).
func (s *Store) List(ctx context.Context, prefix string) ([]string, error) {
	if err := s.profile.Delay(ctx, s.profile.S3List); err != nil {
		return nil, err
	}
	now := time.Now()
	s.mu.Lock()
	keys := make([]string, 0, len(s.objects))
	for k, o := range s.objects {
		if strings.HasPrefix(k, prefix) && !o.visibleAt.After(now) {
			keys = append(keys, k)
		}
	}
	s.lists++
	s.mu.Unlock()
	sort.Strings(keys)
	return keys, nil
}

// Delete removes an object (idempotent, like S3).
func (s *Store) Delete(ctx context.Context, key string) error {
	if err := s.profile.Delay(ctx, s.profile.S3Put); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
	return nil
}

// Stats reports operation counts (puts, gets+heads, lists).
func (s *Store) Stats() (puts, gets, lists uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.gets, s.lists
}
