package redissim

import (
	"context"
	"sync"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func shardT(t *testing.T) *Shard {
	t.Helper()
	s := NewShard(netsim.Zero())
	t.Cleanup(s.Close)
	return s
}

func TestSetGet(t *testing.T) {
	s := shardT(t)
	ctx := context.Background()
	if err := s.Set(ctx, "k", "v"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(ctx, "k")
	if err != nil || !ok || v != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	_, ok, err = s.Get(ctx, "missing")
	if err != nil || ok {
		t.Fatalf("Get missing = %v %v", ok, err)
	}
}

func TestIncrBy(t *testing.T) {
	s := shardT(t)
	ctx := context.Background()
	n, err := s.IncrBy(ctx, "c", 5)
	if err != nil || n != 5 {
		t.Fatalf("IncrBy = %d %v", n, err)
	}
	n, err = s.IncrBy(ctx, "c", -2)
	if err != nil || n != 3 {
		t.Fatalf("IncrBy = %d %v", n, err)
	}
}

func TestIncrByNonInteger(t *testing.T) {
	s := shardT(t)
	ctx := context.Background()
	_ = s.Set(ctx, "c", "not-a-number")
	if _, err := s.IncrBy(ctx, "c", 1); err == nil {
		t.Fatal("IncrBy on non-integer accepted")
	}
}

func TestExistsDel(t *testing.T) {
	s := shardT(t)
	ctx := context.Background()
	_ = s.Set(ctx, "k", "v")
	ok, _ := s.Exists(ctx, "k")
	if !ok {
		t.Fatal("Exists missed key")
	}
	_ = s.Del(ctx, "k")
	ok, _ = s.Exists(ctx, "k")
	if ok {
		t.Fatal("key survived Del")
	}
}

func TestEvalScript(t *testing.T) {
	s := shardT(t)
	s.RegisterScript("mul", func(d *Data, keys []string, args []any) (any, error) {
		n, err := d.GetInt(keys[0])
		if err != nil {
			return nil, err
		}
		n *= args[0].(int64)
		d.SetInt(keys[0], n)
		return n, nil
	})
	ctx := context.Background()
	_ = s.Set(ctx, "x", "3")
	v, err := s.Eval(ctx, "mul", []string{"x"}, int64(4))
	if err != nil || v.(int64) != 12 {
		t.Fatalf("Eval = %v %v", v, err)
	}
}

func TestEvalUnknownScript(t *testing.T) {
	s := shardT(t)
	if _, err := s.Eval(context.Background(), "nope", []string{"k"}); err == nil {
		t.Fatal("unknown script accepted")
	}
}

// The defining property: scripts serialize on the shard's single thread.
func TestScriptsSerialize(t *testing.T) {
	s := shardT(t)
	s.RegisterScript("slow", func(d *Data, _ []string, _ []any) (any, error) {
		time.Sleep(20 * time.Millisecond)
		n, _ := d.GetInt("seq")
		d.SetInt("seq", n+1)
		return n, nil
	})
	ctx := context.Background()
	const n = 5
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Eval(ctx, "slow", []string{"seq"}); err != nil {
				t.Errorf("Eval: %v", err)
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d < n*20*time.Millisecond {
		t.Fatalf("5 concurrent slow scripts finished in %v; they must serialize (>= 100ms)", d)
	}
	v, _, _ := s.Get(ctx, "seq")
	if v != "5" {
		t.Fatalf("seq = %q, want 5", v)
	}
}

func TestConcurrentIncrementsAtomic(t *testing.T) {
	s := shardT(t)
	ctx := context.Background()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.IncrBy(ctx, "c", 1); err != nil {
					t.Errorf("IncrBy: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, err := s.IncrBy(ctx, "c", 0)
	if err != nil || n != workers*per {
		t.Fatalf("counter = %d %v", n, err)
	}
}

func TestShardClosed(t *testing.T) {
	s := NewShard(netsim.Zero())
	s.Close()
	if err := s.Set(context.Background(), "k", "v"); err == nil {
		t.Fatal("Set on closed shard accepted")
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	p := netsim.Zero()
	p.RedisNet = netsim.Latency{Base: 10 * time.Millisecond}
	s := NewShard(p)
	defer s.Close()
	start := time.Now()
	if err := s.Set(context.Background(), "k", "v"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Set took %v, want >= 20ms (two hops)", d)
	}
}

func TestClusterRouting(t *testing.T) {
	c := NewCluster(3, netsim.Zero())
	defer c.Close()
	ctx := context.Background()
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, k := range keys {
		if err := c.Set(ctx, k, k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, ok, err := c.Get(ctx, k)
		if err != nil || !ok || v != k {
			t.Fatalf("Get %q = %q %v %v", k, v, ok, err)
		}
	}
	// Same key must route to the same shard deterministically.
	if c.ShardFor("a") != c.ShardFor("a") {
		t.Fatal("routing not deterministic")
	}
}

func TestClusterScripts(t *testing.T) {
	c := NewCluster(2, netsim.Zero())
	defer c.Close()
	c.RegisterScript("incr", func(d *Data, keys []string, _ []any) (any, error) {
		n, _ := d.GetInt(keys[0])
		d.SetInt(keys[0], n+1)
		return n + 1, nil
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Eval(ctx, "incr", []string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.IncrBy(ctx, "x", 0)
	if err != nil || n != 3 {
		t.Fatalf("x = %d %v", n, err)
	}
	if _, err := c.Eval(ctx, "incr", nil); err == nil {
		t.Fatal("Eval without keys accepted")
	}
}

func TestFloatsCodec(t *testing.T) {
	in := []float64{1.5, -2.25, 0, 1e10}
	out := decodeFloats(encodeFloats(in))
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	if decodeFloats("") != nil {
		t.Fatal("empty decode not nil")
	}
}

func TestDataFloats(t *testing.T) {
	s := shardT(t)
	s.RegisterScript("putf", func(d *Data, keys []string, args []any) (any, error) {
		d.SetFloats(keys[0], args[0].([]float64))
		return nil, nil
	})
	s.RegisterScript("getf", func(d *Data, keys []string, _ []any) (any, error) {
		v, _ := d.GetFloats(keys[0])
		return v, nil
	})
	ctx := context.Background()
	if _, err := s.Eval(ctx, "putf", []string{"w"}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Eval(ctx, "getf", []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	if f := v.([]float64); len(f) != 2 || f[1] != 2 {
		t.Fatalf("floats = %v", f)
	}
}
