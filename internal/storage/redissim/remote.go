package redissim

import (
	"context"
	"fmt"
	"net"

	"crucial/internal/core"
	"crucial/internal/rpc"
)

// Store is the client-facing surface of a Redis-like deployment. Cluster
// implements it in process; RemoteCluster implements it across the RPC
// layer, paying the same serialization and transport costs as the DSO
// client — which is what makes throughput comparisons between the two
// systems fair (real Redis clients speak RESP over TCP, not function
// calls).
type Store interface {
	Get(ctx context.Context, key string) (string, bool, error)
	Set(ctx context.Context, key, value string) error
	IncrBy(ctx context.Context, key string, delta int64) (int64, error)
	Eval(ctx context.Context, name string, keys []string, args ...any) (any, error)
}

var (
	_ Store = (*Cluster)(nil)
	_ Store = (*RemoteCluster)(nil)
)

// request/response are the gob wire format of the RPC front.
type request struct {
	Op    string // "get" | "set" | "incrby" | "eval"
	Key   string
	Value string
	Delta int64
	Name  string
	Keys  []string
	Args  []any
}

type response struct {
	Str string
	OK  bool
	I   int64
	Any any
	Err string
}

// Serve exposes a cluster over the RPC layer at addr, returning the
// server for shutdown.
func Serve(c *Cluster, transport rpc.Transport, addr string) (*rpc.Server, error) {
	l, err := transport.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("redissim: listen %s: %w", addr, err)
	}
	srv := rpc.NewServer(func(ctx context.Context, _ uint8, payload []byte) ([]byte, error) {
		var req request
		if err := core.DecodeValue(payload, &req); err != nil {
			return nil, err
		}
		var resp response
		switch req.Op {
		case "get":
			v, ok, err := c.Get(ctx, req.Key)
			resp = response{Str: v, OK: ok, Err: errString(err)}
		case "set":
			err := c.Set(ctx, req.Key, req.Value)
			resp = response{Err: errString(err)}
		case "incrby":
			n, err := c.IncrBy(ctx, req.Key, req.Delta)
			resp = response{I: n, Err: errString(err)}
		case "eval":
			v, err := c.Eval(ctx, req.Name, req.Keys, req.Args...)
			resp = response{Any: v, Err: errString(err)}
		default:
			resp = response{Err: fmt.Sprintf("redissim: unknown op %q", req.Op)}
		}
		return core.EncodeValue(resp)
	})
	go func() { _ = srv.Serve(l) }()
	return srv, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// RemoteCluster is the RPC client of a served cluster.
type RemoteCluster struct {
	c *rpc.Client
}

// Dial connects to a served cluster.
func Dial(transport rpc.Transport, addr string) (*RemoteCluster, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("redissim: dial %s: %w", addr, err)
	}
	return &RemoteCluster{c: rpc.NewClient(conn)}, nil
}

// NewRemoteCluster wraps an existing connection.
func NewRemoteCluster(conn net.Conn) *RemoteCluster {
	return &RemoteCluster{c: rpc.NewClient(conn)}
}

// Close releases the connection.
func (r *RemoteCluster) Close() error { return r.c.Close() }

func (r *RemoteCluster) call(ctx context.Context, req request) (response, error) {
	payload, err := core.EncodeValue(req)
	if err != nil {
		return response{}, err
	}
	raw, err := r.c.Call(ctx, 0, payload)
	if err != nil {
		return response{}, err
	}
	var resp response
	if err := core.DecodeValue(raw, &resp); err != nil {
		return response{}, err
	}
	if resp.Err != "" {
		return response{}, fmt.Errorf("redissim: %s", resp.Err)
	}
	return resp, nil
}

// Get implements Store.
func (r *RemoteCluster) Get(ctx context.Context, key string) (string, bool, error) {
	resp, err := r.call(ctx, request{Op: "get", Key: key})
	if err != nil {
		return "", false, err
	}
	return resp.Str, resp.OK, nil
}

// Set implements Store.
func (r *RemoteCluster) Set(ctx context.Context, key, value string) error {
	_, err := r.call(ctx, request{Op: "set", Key: key, Value: value})
	return err
}

// IncrBy implements Store.
func (r *RemoteCluster) IncrBy(ctx context.Context, key string, delta int64) (int64, error) {
	resp, err := r.call(ctx, request{Op: "incrby", Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	return resp.I, nil
}

// Eval implements Store. The script must be registered on the served
// cluster.
func (r *RemoteCluster) Eval(ctx context.Context, name string, keys []string, args ...any) (any, error) {
	resp, err := r.call(ctx, request{Op: "eval", Name: name, Keys: keys, Args: args})
	if err != nil {
		return nil, err
	}
	return resp.Any, nil
}
