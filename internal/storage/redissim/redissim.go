// Package redissim simulates a Redis-like in-memory store: sub-millisecond
// key-value operations plus server-side scripts (the Lua analog), with the
// defining architectural property the paper's Fig. 2a and Fig. 5 hinge on —
// each shard is single-threaded, so scripts execute strictly sequentially
// and CPU-bound scripted operations do not enjoy any parallelism, unlike
// the DSO layer's disjoint-access parallelism.
package redissim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"

	"crucial/internal/netsim"
)

// ErrNotFound is returned for absent keys where a value is required.
var ErrNotFound = errors.New("redissim: key not found")

// ErrStopped is returned after Close.
var ErrStopped = errors.New("redissim: shard stopped")

// Data is the state view handed to scripts. Scripts run on the shard's
// single event-loop goroutine, so access needs no locking.
type Data struct {
	kv map[string]string
}

// Get returns the raw value at key.
func (d *Data) Get(key string) (string, bool) {
	v, ok := d.kv[key]
	return v, ok
}

// Set stores a raw value.
func (d *Data) Set(key, value string) { d.kv[key] = value }

// GetInt parses the value at key as int64 (0 when absent).
func (d *Data) GetInt(key string) (int64, error) {
	v, ok := d.kv[key]
	if !ok {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("redissim: value at %q is not an integer: %w", key, err)
	}
	return n, nil
}

// SetInt stores an int64.
func (d *Data) SetInt(key string, v int64) { d.kv[key] = strconv.FormatInt(v, 10) }

// GetFloats decodes a []float64 stored with SetFloats.
func (d *Data) GetFloats(key string) ([]float64, bool) {
	v, ok := d.kv[key]
	if !ok {
		return nil, false
	}
	return decodeFloats(v), true
}

// SetFloats stores a []float64.
func (d *Data) SetFloats(key string, v []float64) { d.kv[key] = encodeFloats(v) }

// Script is a registered server-side procedure (the Lua analog). It runs
// atomically on the shard's event loop.
type Script func(d *Data, keys []string, args []any) (any, error)

type command struct {
	run   func(d *Data) (any, error)
	reply chan result
}

type result struct {
	val any
	err error
}

// Shard is one single-threaded Redis instance.
type Shard struct {
	profile *netsim.Profile
	cmds    chan command

	scriptMu sync.RWMutex
	scripts  map[string]Script

	closeOnce sync.Once
	done      chan struct{}
}

// NewShard starts a shard's event loop.
func NewShard(profile *netsim.Profile) *Shard {
	if profile == nil {
		profile = netsim.Zero()
	}
	s := &Shard{
		profile: profile,
		cmds:    make(chan command),
		scripts: make(map[string]Script),
		done:    make(chan struct{}),
	}
	go s.loop()
	return s
}

// loop is the single thread of the shard: commands execute one at a time.
func (s *Shard) loop() {
	d := &Data{kv: make(map[string]string)}
	for {
		select {
		case cmd := <-s.cmds:
			v, err := cmd.run(d)
			cmd.reply <- result{val: v, err: err}
		case <-s.done:
			return
		}
	}
}

// Close stops the event loop.
func (s *Shard) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}

// RegisterScript installs a server-side script under name.
func (s *Shard) RegisterScript(name string, script Script) {
	s.scriptMu.Lock()
	s.scripts[name] = script
	s.scriptMu.Unlock()
}

// exec pays the network round trip and runs one command on the loop.
func (s *Shard) exec(ctx context.Context, run func(d *Data) (any, error)) (any, error) {
	if err := s.profile.Delay(ctx, s.profile.RedisNet); err != nil {
		return nil, err
	}
	cmd := command{run: run, reply: make(chan result, 1)}
	select {
	case s.cmds <- cmd:
	case <-s.done:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-cmd.reply:
		if err := s.profile.Delay(ctx, s.profile.RedisNet); err != nil {
			return nil, err
		}
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Get returns the value at key.
func (s *Shard) Get(ctx context.Context, key string) (string, bool, error) {
	v, err := s.exec(ctx, func(d *Data) (any, error) {
		val, ok := d.Get(key)
		if !ok {
			return nil, nil
		}
		return val, nil
	})
	if err != nil {
		return "", false, err
	}
	if v == nil {
		return "", false, nil
	}
	return v.(string), true, nil
}

// Set stores a value at key.
func (s *Shard) Set(ctx context.Context, key, value string) error {
	_, err := s.exec(ctx, func(d *Data) (any, error) {
		d.Set(key, value)
		return nil, nil
	})
	return err
}

// IncrBy adds delta to the integer at key, returning the new value.
func (s *Shard) IncrBy(ctx context.Context, key string, delta int64) (int64, error) {
	v, err := s.exec(ctx, func(d *Data) (any, error) {
		n, err := d.GetInt(key)
		if err != nil {
			return nil, err
		}
		n += delta
		d.SetInt(key, n)
		return n, nil
	})
	if err != nil {
		return 0, err
	}
	return v.(int64), nil
}

// Exists reports key presence.
func (s *Shard) Exists(ctx context.Context, key string) (bool, error) {
	v, err := s.exec(ctx, func(d *Data) (any, error) {
		_, ok := d.Get(key)
		return ok, nil
	})
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

// Del removes a key.
func (s *Shard) Del(ctx context.Context, key string) error {
	_, err := s.exec(ctx, func(d *Data) (any, error) {
		delete(d.kv, key)
		return nil, nil
	})
	return err
}

// Eval runs a registered script atomically on the event loop. This is
// where the single-threaded cost model bites: a CPU-heavy script blocks
// every other client of the shard for its whole duration.
func (s *Shard) Eval(ctx context.Context, name string, keys []string, args ...any) (any, error) {
	s.scriptMu.RLock()
	script, ok := s.scripts[name]
	s.scriptMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("redissim: unknown script %q", name)
	}
	return s.exec(ctx, func(d *Data) (any, error) {
		return script(d, keys, args)
	})
}

// Cluster is a client-side sharded deployment (Redis Cluster style): keys
// hash to shards, scripts must keep their keys on one shard.
type Cluster struct {
	shards []*Shard
}

// NewCluster starts n shards.
func NewCluster(n int, profile *netsim.Profile) *Cluster {
	if n <= 0 {
		n = 1
	}
	c := &Cluster{shards: make([]*Shard, n)}
	for i := range c.shards {
		c.shards[i] = NewShard(profile)
	}
	return c
}

// Close stops every shard.
func (c *Cluster) Close() {
	for _, s := range c.shards {
		s.Close()
	}
}

// ShardFor routes a key.
func (c *Cluster) ShardFor(key string) *Shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return c.shards[int(h.Sum32())%len(c.shards)]
}

// Shards exposes the shard list (script registration).
func (c *Cluster) Shards() []*Shard { return c.shards }

// RegisterScript installs a script on every shard.
func (c *Cluster) RegisterScript(name string, script Script) {
	for _, s := range c.shards {
		s.RegisterScript(name, script)
	}
}

// Get routes a Get by key.
func (c *Cluster) Get(ctx context.Context, key string) (string, bool, error) {
	return c.ShardFor(key).Get(ctx, key)
}

// Set routes a Set by key.
func (c *Cluster) Set(ctx context.Context, key, value string) error {
	return c.ShardFor(key).Set(ctx, key, value)
}

// IncrBy routes an IncrBy by key.
func (c *Cluster) IncrBy(ctx context.Context, key string, delta int64) (int64, error) {
	return c.ShardFor(key).IncrBy(ctx, key, delta)
}

// Eval routes a script by its first key.
func (c *Cluster) Eval(ctx context.Context, name string, keys []string, args ...any) (any, error) {
	if len(keys) == 0 {
		return nil, errors.New("redissim: Eval needs at least one key for routing")
	}
	return c.ShardFor(keys[0]).Eval(ctx, name, keys, args...)
}

// encodeFloats/decodeFloats pack []float64 as the string values Redis
// would hold.
func encodeFloats(v []float64) string {
	out := make([]byte, 0, len(v)*12)
	for i, f := range v {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendFloat(out, f, 'g', -1, 64)
	}
	return string(out)
}

func decodeFloats(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			f, err := strconv.ParseFloat(s[start:i], 64)
			if err == nil {
				out = append(out, f)
			}
			start = i + 1
		}
	}
	return out
}
