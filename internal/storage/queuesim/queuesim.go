// Package queuesim simulates the AWS queueing/notification services used
// by the paper's coordination baselines: an SQS-like polling queue and an
// SNS-like fan-out topic (Fig. 6 and Fig. 7a). Their defining costs are
// tens-of-milliseconds per operation and polling-based consumption.
package queuesim

import (
	"context"
	"errors"
	"sync"

	"crucial/internal/netsim"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("queuesim: closed")

// Queue is an SQS-like queue: Send enqueues, Receive polls. An empty poll
// still pays the receive latency — that is the whole point of the
// baseline.
type Queue struct {
	profile *netsim.Profile

	mu     sync.Mutex
	items  [][]byte
	closed bool

	sends, receives, emptyReceives uint64
}

// NewQueue builds a queue.
func NewQueue(profile *netsim.Profile) *Queue {
	if profile == nil {
		profile = netsim.Zero()
	}
	return &Queue{profile: profile}
}

// Send enqueues one message.
func (q *Queue) Send(ctx context.Context, msg []byte) error {
	if err := q.profile.Delay(ctx, q.profile.SQSSend); err != nil {
		return err
	}
	if !q.enqueue(msg) {
		return ErrClosed
	}
	return nil
}

// enqueue appends without latency (used by Send and by topic fan-out).
func (q *Queue) enqueue(msg []byte) bool {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, cp)
	q.sends++
	return true
}

// Receive polls once, returning up to max messages (possibly none).
func (q *Queue) Receive(ctx context.Context, max int) ([][]byte, error) {
	if max <= 0 {
		max = 1
	}
	if err := q.profile.Delay(ctx, q.profile.SQSReceive); err != nil {
		return nil, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	q.receives++
	if len(q.items) == 0 {
		q.emptyReceives++
		return nil, nil
	}
	n := max
	if n > len(q.items) {
		n = len(q.items)
	}
	out := q.items[:n]
	q.items = q.items[n:]
	return out, nil
}

// Len reports queued messages (tests).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Stats reports (sends, receives, empty receives).
func (q *Queue) Stats() (sends, receives, empty uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sends, q.receives, q.emptyReceives
}

// Close rejects further operations.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.mu.Unlock()
}

// Topic is an SNS-like topic: Publish fans a message out to every
// subscribed queue (the SNS+SQS barrier construction of Fig. 7a).
type Topic struct {
	profile *netsim.Profile

	mu   sync.Mutex
	subs []*Queue
}

// NewTopic builds a topic.
func NewTopic(profile *netsim.Profile) *Topic {
	if profile == nil {
		profile = netsim.Zero()
	}
	return &Topic{profile: profile}
}

// Subscribe attaches a queue to the topic.
func (t *Topic) Subscribe(q *Queue) {
	t.mu.Lock()
	t.subs = append(t.subs, q)
	t.mu.Unlock()
}

// Publish pays one publish latency, then delivers to every subscriber
// (SNS's server-side fan-out: the publisher pays one call, the service
// replicates internally). One background goroutine performs the fan-out
// after a single modeled internal-delivery delay; per-queue enqueue is
// in-memory, so publishing to hundreds of subscribers stays cheap.
func (t *Topic) Publish(ctx context.Context, msg []byte) error {
	if err := t.profile.Delay(ctx, t.profile.SNSPublish); err != nil {
		return err
	}
	t.mu.Lock()
	subs := make([]*Queue, len(t.subs))
	copy(subs, t.subs)
	t.mu.Unlock()
	go func() {
		// Internal delivery latency, paid once; undeliverable (closed)
		// queues are dropped like SNS drops them.
		if err := t.profile.Delay(context.Background(), t.profile.SQSSend); err != nil {
			return
		}
		for _, q := range subs {
			q.enqueue(msg)
		}
	}()
	return nil
}
