package queuesim

import (
	"context"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func TestSendReceive(t *testing.T) {
	q := NewQueue(netsim.Zero())
	ctx := context.Background()
	if err := q.Send(ctx, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := q.Send(ctx, []byte("m2")); err != nil {
		t.Fatal(err)
	}
	msgs, err := q.Receive(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || string(msgs[0]) != "m1" || string(msgs[1]) != "m2" {
		t.Fatalf("Receive = %v", msgs)
	}
}

func TestReceiveEmptyStillCosts(t *testing.T) {
	p := netsim.Zero()
	p.SQSReceive = netsim.Latency{Base: 15 * time.Millisecond}
	q := NewQueue(p)
	start := time.Now()
	msgs, err := q.Receive(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("empty queue returned %v", msgs)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("empty poll took %v, want >= 15ms", d)
	}
	_, _, empty := q.Stats()
	if empty != 1 {
		t.Fatalf("empty receives = %d", empty)
	}
}

func TestReceiveMaxBatch(t *testing.T) {
	q := NewQueue(netsim.Zero())
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		_ = q.Send(ctx, []byte{byte(i)})
	}
	msgs, _ := q.Receive(ctx, 2)
	if len(msgs) != 2 {
		t.Fatalf("batch = %d", len(msgs))
	}
	if q.Len() != 3 {
		t.Fatalf("remaining = %d", q.Len())
	}
}

func TestQueueClosed(t *testing.T) {
	q := NewQueue(netsim.Zero())
	q.Close()
	if err := q.Send(context.Background(), nil); err != ErrClosed {
		t.Fatalf("Send after close = %v", err)
	}
	if _, err := q.Receive(context.Background(), 1); err != ErrClosed {
		t.Fatalf("Receive after close = %v", err)
	}
}

func TestSendCopiesMessage(t *testing.T) {
	q := NewQueue(netsim.Zero())
	ctx := context.Background()
	buf := []byte{1}
	_ = q.Send(ctx, buf)
	buf[0] = 9
	msgs, _ := q.Receive(ctx, 1)
	if msgs[0][0] != 1 {
		t.Fatal("queue aliased caller buffer")
	}
}

func TestTopicFanOut(t *testing.T) {
	top := NewTopic(netsim.Zero())
	q1 := NewQueue(netsim.Zero())
	q2 := NewQueue(netsim.Zero())
	top.Subscribe(q1)
	top.Subscribe(q2)
	if err := top.Publish(context.Background(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q1.Len() == 0 || q2.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fan-out delivery never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	m1, _ := q1.Receive(context.Background(), 1)
	m2, _ := q2.Receive(context.Background(), 1)
	if string(m1[0]) != "hello" || string(m2[0]) != "hello" {
		t.Fatalf("deliveries = %q %q", m1[0], m2[0])
	}
}

func TestTopicNoSubscribers(t *testing.T) {
	top := NewTopic(netsim.Zero())
	if err := top.Publish(context.Background(), []byte("void")); err != nil {
		t.Fatal(err)
	}
}

func TestContextCancelledSend(t *testing.T) {
	p := netsim.Zero()
	p.SQSSend = netsim.Latency{Base: time.Hour}
	q := NewQueue(p)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := q.Send(ctx, nil); err == nil {
		t.Fatal("Send with cancelled context succeeded")
	}
}
