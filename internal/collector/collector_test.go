package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// startTestCluster boots a two-node cluster where, unlike cluster.StartLocal,
// every node records into its own telemetry bundle — the realistic multi-
// process shape the collector exists for.
func startTestCluster(t *testing.T) (rpc.Transport, *client.Client, *telemetry.Telemetry, []*server.Node) {
	t.Helper()
	transport := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	reg := objects.BuiltinRegistry()

	var nodes []*server.Node
	for _, id := range []string{"n1", "n2"} {
		n, err := server.Start(server.Config{
			ID:        ring.NodeID(id),
			Addr:      id,
			Transport: transport,
			Registry:  reg,
			Directory: dir,
			RF:        1,
			Telemetry: telemetry.New(),
		})
		if err != nil {
			t.Fatalf("start node %s: %v", id, err)
		}
		nodes = append(nodes, n)
		t.Cleanup(func() { _ = n.Crash() })
	}

	clientTel := telemetry.New()
	cl, err := client.New(client.Config{
		Transport: transport,
		Views:     dir,
		Telemetry: clientTel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return transport, cl, clientTel, nodes
}

// TestClusterTraceCollection is the end-to-end check of the observability
// plane: a two-node cluster with per-node telemetry, an instrumented
// client, collection over KindTraceDump, and a merged result in which the
// client and server spans of one trace share a trace ID and nest correctly
// after clock alignment.
func TestClusterTraceCollection(t *testing.T) {
	transport, cl, clientTel, nodes := startTestCluster(t)
	ctx := context.Background()

	// Spread calls over enough keys that both nodes serve traffic.
	for i := 0; i < 16; i++ {
		ref := core.Ref{Type: "AtomicLong", Key: fmt.Sprintf("collect/c%d", i)}
		if _, err := cl.Call(ctx, ref, "AddAndGet", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if n.Stats().Invocations == 0 {
			t.Fatalf("node %s served no invocations; key spread too narrow", n.ID())
		}
	}

	col := &Collector{}
	col.AddLocal("client", clientTel.Tracer().Spans())
	for _, n := range nodes {
		if err := col.FetchNode(ctx, transport, n.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(col.Nodes()); got != 3 {
		t.Fatalf("merged %d sources, want 3", got)
	}

	// Every trace must hold an enclosing client span and a server span from
	// a node source, sharing the trace ID.
	crossNode := 0
	for id, spans := range col.Traces() {
		var clientSpan, serverSpan *telemetry.NodeSpan
		for i := range spans {
			ns := &spans[i]
			switch ns.Span.Name {
			case telemetry.SpanClientInvoke:
				clientSpan = ns
			case telemetry.SpanServerInvoke:
				serverSpan = ns
			}
		}
		if clientSpan == nil || serverSpan == nil {
			continue
		}
		crossNode++
		if clientSpan.Node == serverSpan.Node {
			t.Fatalf("trace %x: client and server spans from one source %q", id, clientSpan.Node)
		}
		if serverSpan.Span.ParentID != clientSpan.Span.SpanID {
			t.Errorf("trace %x: server span parent %x, want client span %x",
				id, serverSpan.Span.ParentID, clientSpan.Span.SpanID)
		}
		cs, ce := clientSpan.Span.Start, clientSpan.Span.Start.Add(clientSpan.Span.Duration)
		ss, se := serverSpan.Span.Start, serverSpan.Span.Start.Add(serverSpan.Span.Duration)
		// Clock alignment is midpoint estimation with error bounded by
		// half the minimum probe RTT, so the aligned server span can
		// overhang the client span by sub-RTT amounts; only flag
		// misalignment beyond that bound.
		const slop = 100 * time.Microsecond
		if ss.Before(cs.Add(-slop)) || se.After(ce.Add(slop)) {
			t.Errorf("trace %x: server span [%v,%v] not nested in client span [%v,%v]",
				id, ss, se, cs, ce)
		}
	}
	if crossNode < 16 {
		t.Fatalf("found %d cross-node traces, want 16", crossNode)
	}
}

// TestTraceEventExport exports a merged collection and validates the
// trace-event JSON shape Perfetto expects.
func TestTraceEventExport(t *testing.T) {
	transport, cl, clientTel, nodes := startTestCluster(t)
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		ref := core.Ref{Type: "AtomicLong", Key: fmt.Sprintf("export/c%d", i)}
		if _, err := cl.Call(ctx, ref, "IncrementAndGet"); err != nil {
			t.Fatal(err)
		}
	}
	col := &Collector{}
	col.AddLocal("client", clientTel.Tracer().Spans())
	for _, n := range nodes {
		if err := col.FetchNode(ctx, transport, n.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := telemetry.WriteTraceEvents(&buf, col.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var complete, meta int
	procs := make(map[int]string)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			procs[ev.PID] = ev.Args["name"]
		case "X":
			complete++
			if ev.TS < 0 || ev.Dur < 0 {
				t.Fatalf("event %q has negative ts/dur", ev.Name)
			}
			if ev.Args["trace_id"] == "" {
				t.Fatalf("event %q missing trace_id arg", ev.Name)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete == 0 {
		t.Fatal("no complete (ph=X) events exported")
	}
	if meta != 3 {
		t.Fatalf("got %d process_name metadata events, want 3 (%v)", meta, procs)
	}
}

// TestAlignDumpCorrectsSkew feeds the collector a dump whose clock runs
// fast by a known offset and checks the spans come back on the collector's
// timeline, restoring client/server nesting.
func TestAlignDumpCorrectsSkew(t *testing.T) {
	const skew = 5 * time.Second
	base := time.Now()

	// Ground truth: server worked [base+2ms, base+8ms] inside a client call
	// [base, base+10ms], but the server's clock reads skew ahead.
	dump := telemetry.Dump{
		Node: "n1",
		Now:  base.Add(skew),
		Spans: []telemetry.SpanData{{
			TraceID:  1,
			SpanID:   2,
			ParentID: 1,
			Name:     telemetry.SpanServerInvoke,
			Start:    base.Add(skew).Add(2 * time.Millisecond),
			Duration: 6 * time.Millisecond,
		}},
	}
	// The collection RPC bracketed the remote clock sample tightly.
	aligned := telemetry.AlignDump(dump, base, base.Add(200*time.Microsecond))
	if len(aligned) != 1 {
		t.Fatalf("aligned %d spans, want 1", len(aligned))
	}
	got := aligned[0].Span.Start
	want := base.Add(2 * time.Millisecond)
	if diff := got.Sub(want); diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("aligned start off by %v (got %v, want %v)", diff, got, want)
	}

	clientStart, clientEnd := base, base.Add(10*time.Millisecond)
	ss, se := got, got.Add(aligned[0].Span.Duration)
	if ss.Before(clientStart) || se.After(clientEnd) {
		t.Fatalf("aligned server span [%v,%v] does not nest in client [%v,%v]",
			ss, se, clientStart, clientEnd)
	}
}

// TestClusterObjectStatsCollection exercises the per-object load plane
// over the real RPC: an instrumented cluster serves a skewed workload,
// the collector drains every node's KindObjectStats snapshot, and the
// merged result identifies the hot key with consistent counts.
func TestClusterObjectStatsCollection(t *testing.T) {
	transport, cl, clientTel, nodes := startTestCluster(t)
	ctx := context.Background()

	hot := core.Ref{Type: "AtomicLong", Key: "objstats/hot"}
	for i := 0; i < 50; i++ {
		if _, err := cl.Call(ctx, hot, "AddAndGet", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		ref := core.Ref{Type: "AtomicLong", Key: fmt.Sprintf("objstats/cold%d", i)}
		if _, err := cl.Call(ctx, ref, "Get"); err != nil {
			t.Fatal(err)
		}
	}

	col := &Collector{}
	for _, n := range nodes {
		snap, err := col.FetchNodeObjects(ctx, transport, n.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if snap.Node != string(n.ID()) {
			t.Fatalf("snapshot node %q, want %q", snap.Node, n.ID())
		}
	}
	// The client's own tracker merges in like another node's.
	clientSnap := clientTel.Objects().Snapshot()
	clientSnap.Node = "client"
	col.AddObjects(clientSnap)

	merged := col.Objects()
	if len(merged.Stats) == 0 {
		t.Fatal("no object stats collected")
	}
	top := merged.Stats[0]
	if top.Key != hot.Key {
		t.Fatalf("hottest object = %s[%s], want %s", top.Type, top.Key, hot.Key)
	}
	// 50 server invokes + 50 client calls for the hot key.
	if top.Invokes != 50 {
		t.Fatalf("hot invokes = %d, want 50", top.Invokes)
	}
	if top.Calls != 50 {
		t.Fatalf("hot calls = %d, want 50", top.Calls)
	}
	if top.Writes != 50 || top.Reads != 0 {
		t.Fatalf("hot read/write mix = %d/%d, want 0/50", top.Reads, top.Writes)
	}
	if top.Latency.Count != 50 || top.Latency.P99 <= 0 {
		t.Fatalf("hot latency: count=%d p99=%v", top.Latency.Count, top.Latency.P99)
	}
	if top.Latency.P999 < top.Latency.P50 {
		t.Fatalf("p999 %v below p50 %v", top.Latency.P999, top.Latency.P50)
	}
}
