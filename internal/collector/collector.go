// Package collector implements cluster-wide trace collection: it drains
// the span rings of every process in a deployment — DSO server nodes over
// the KindTraceDump RPC, plus in-process sources like the DSO client and
// the FaaS simulator — aligns each dump onto the collector's clock
// (NTP-style midpoint estimation, so spans recorded on machines with
// skewed clocks still nest correctly), and merges everything by trace ID.
// dso-cli trace exports the merged result as Chrome/Perfetto trace-event
// JSON; internal/telemetry/analysis consumes it for critical-path reports.
package collector

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// Collector accumulates aligned spans from any number of sources. The zero
// value is ready to use; methods are safe for concurrent fetches.
type Collector struct {
	mu      sync.Mutex
	spans   []telemetry.NodeSpan
	nodes   []string
	objects telemetry.ObjectsSnapshot
}

// AddLocal merges spans recorded in the collector's own process (its DSO
// client, the FaaS simulator): same clock, no alignment needed.
func (c *Collector) AddLocal(node string, spans []telemetry.SpanData) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes = append(c.nodes, node)
	for _, s := range spans {
		c.spans = append(c.spans, telemetry.NodeSpan{Node: node, Span: s})
	}
}

// AddDump merges a dump fetched out of band, aligning it with the given
// request bracket (collector-clock instants just before and after the dump
// was taken).
func (c *Collector) AddDump(d telemetry.Dump, reqStart, reqEnd time.Time) {
	aligned := telemetry.AlignDump(d, reqStart, reqEnd)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes = append(c.nodes, d.Node)
	c.spans = append(c.spans, aligned...)
}

// clockProbes is how many KindClock round trips estimate a node's offset;
// the probe with the smallest RTT wins (its midpoint assumption has the
// tightest error bound).
const clockProbes = 3

// clockOffset estimates the remote clock minus the local clock from a few
// symmetric (empty-payload) round trips, NTP-style: each probe assumes its
// remote sample sits at the midpoint of its bracket, and the minimum-RTT
// probe is trusted. Error is bounded by half that probe's RTT.
func clockOffset(ctx context.Context, rc *rpc.Client) (time.Duration, error) {
	var best time.Duration
	bestRTT := time.Duration(-1)
	for i := 0; i < clockProbes; i++ {
		reqStart := time.Now()
		raw, err := rc.Call(ctx, server.KindClock, nil)
		rtt := time.Since(reqStart)
		if err != nil {
			return 0, err
		}
		var remote time.Time
		if err := core.DecodeValue(raw, &remote); err != nil {
			return 0, err
		}
		if bestRTT < 0 || rtt < bestRTT {
			bestRTT = rtt
			best = remote.Sub(reqStart.Add(rtt / 2))
		}
	}
	return best, nil
}

// FetchNode dials one DSO node, estimates its clock offset with a few
// cheap probes, drains its span ring via KindTraceDump, and merges the
// aligned result. The dedicated probe keeps the offset estimate free of
// the dump's asymmetric payload (the response carries every span, the
// request nothing, so the dump's own round trip midpoint would be biased).
func (c *Collector) FetchNode(ctx context.Context, transport rpc.Transport, addr string) error {
	conn, err := transport.Dial(addr)
	if err != nil {
		return fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()

	offset, err := clockOffset(ctx, rc)
	if err != nil {
		return fmt.Errorf("collector: clock probe %s: %w", addr, err)
	}
	raw, err := rc.Call(ctx, server.KindTraceDump, nil)
	if err != nil {
		return fmt.Errorf("collector: trace dump from %s: %w", addr, err)
	}
	var dump telemetry.Dump
	if err := core.DecodeValue(raw, &dump); err != nil {
		return fmt.Errorf("collector: decode dump from %s: %w", addr, err)
	}
	aligned := telemetry.AlignSpans(dump.Node, dump.Spans, offset)
	c.mu.Lock()
	c.nodes = append(c.nodes, dump.Node)
	c.spans = append(c.spans, aligned...)
	c.mu.Unlock()
	return nil
}

// AddObjects merges one per-object load snapshot (from a node's
// KindObjectStats reply or an in-process tracker) into the cluster-wide
// accumulator. Object stats are interval counts, not timestamps, so no
// clock alignment is needed — merge semantics are those of
// telemetry.ObjectsSnapshot.Merge (counts add, histograms merge, error
// bounds add).
func (c *Collector) AddObjects(snap telemetry.ObjectsSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if snap.Node != "" {
		c.nodes = append(c.nodes, snap.Node)
	}
	c.objects = c.objects.Merge(snap)
}

// FetchNodeObjects dials one DSO node, drains its per-object heavy-hitter
// snapshot via KindObjectStats, and merges it. Returns the node's own
// snapshot so callers can also report per-node views.
func (c *Collector) FetchNodeObjects(ctx context.Context, transport rpc.Transport, addr string) (telemetry.ObjectsSnapshot, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return telemetry.ObjectsSnapshot{}, fmt.Errorf("collector: dial %s: %w", addr, err)
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()

	raw, err := rc.Call(ctx, server.KindObjectStats, nil)
	if err != nil {
		return telemetry.ObjectsSnapshot{}, fmt.Errorf("collector: object stats from %s: %w", addr, err)
	}
	var snap telemetry.ObjectsSnapshot
	if err := core.DecodeValue(raw, &snap); err != nil {
		return telemetry.ObjectsSnapshot{}, fmt.Errorf("collector: decode object stats from %s: %w", addr, err)
	}
	c.AddObjects(snap)
	return snap, nil
}

// Objects returns the cluster-wide merged per-object load snapshot.
func (c *Collector) Objects() telemetry.ObjectsSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.objects
}

// Nodes lists every source merged so far, in merge order.
func (c *Collector) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Spans returns every collected span, aligned and sorted by start time.
func (c *Collector) Spans() []telemetry.NodeSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]telemetry.NodeSpan, len(c.spans))
	copy(out, c.spans)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Span.Start.Before(out[j].Span.Start)
	})
	return out
}

// Traces groups the collected spans by trace ID (spans sorted by start
// within each trace).
func (c *Collector) Traces() map[uint64][]telemetry.NodeSpan {
	out := make(map[uint64][]telemetry.NodeSpan)
	for _, ns := range c.Spans() {
		out[ns.Span.TraceID] = append(out[ns.Span.TraceID], ns)
	}
	return out
}
