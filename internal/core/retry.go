package core

import (
	"math/rand"
	"time"
)

// RetryPolicy is the single retry vocabulary of the system (paper
// Section 4.4: the user controls how many retries are allowed and the time
// between them). The same policy type configures cloud-thread re-execution
// (crucial.Options.DefaultRetry), DSO client re-routing after topology
// changes (client.Config.Retry), and any other layer that retries.
//
// The delay before retry k (1-based) is
//
//	Backoff * Multiplier^(k-1), capped at MaxBackoff,
//
// then jittered uniformly down into [(1-Jitter)*d, d]. Jitter exists so a
// fleet of cloud threads re-routing after the same membership change does
// not retry in lockstep.
//
// The zero value disables retries. A policy with only MaxRetries and
// Backoff set behaves like the historical fixed-pause policy (Multiplier
// defaults to 1, no jitter), so existing literals keep their meaning.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// Backoff is the base pause before the first retry.
	Backoff time.Duration
	// MaxBackoff caps the grown delay; 0 means no cap.
	MaxBackoff time.Duration
	// Multiplier grows the delay per retry; values <= 1 (including the
	// zero value) keep it constant.
	Multiplier float64
	// Jitter in [0,1] randomizes each delay down by up to that fraction.
	Jitter float64
}

// DefaultClientRetry is the re-routing policy of the DSO client: quick
// first retry, exponential growth, a tight cap (topology churn settles in
// milliseconds) and heavy jitter to spread the re-route stampede.
func DefaultClientRetry() RetryPolicy {
	return RetryPolicy{
		MaxRetries: 8,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.5,
	}
}

// ExponentialRetry builds a policy with doubling backoff and the given cap
// plus moderate (20%) jitter — a sane default for cloud-thread retries.
func ExponentialRetry(maxRetries int, base, cap time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxRetries: maxRetries,
		Backoff:    base,
		MaxBackoff: cap,
		Multiplier: 2,
		Jitter:     0.2,
	}
}

// Enabled reports whether the policy allows any retry.
func (p RetryPolicy) Enabled() bool { return p.MaxRetries > 0 }

// Attempts is the total number of tries (first attempt + retries).
func (p RetryPolicy) Attempts() int {
	if p.MaxRetries < 0 {
		return 1
	}
	return p.MaxRetries + 1
}

// Delay returns the pause before retry number retry (1-based; 0 or
// negative yields 0). rnd supplies uniform randomness in [0,1) for the
// jitter; pass nil for the global math/rand source, or a deterministic
// function in tests.
func (p RetryPolicy) Delay(retry int, rnd func() float64) time.Duration {
	if retry <= 0 || p.Backoff <= 0 {
		return 0
	}
	d := float64(p.Backoff)
	if m := p.Multiplier; m > 1 {
		for i := 1; i < retry; i++ {
			d *= m
			if p.MaxBackoff > 0 && d >= float64(p.MaxBackoff) {
				break // already at/over the cap; stop before overflow
			}
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		if rnd == nil {
			rnd = rand.Float64
		}
		d -= d * j * rnd()
	}
	return time.Duration(d)
}
