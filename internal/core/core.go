// Package core defines the vocabulary shared by every layer of the DSO
// (distributed shared objects) system: object references, the invocation
// wire format, the server-side object contract, and the type registry used
// to instantiate objects on the nodes that own them.
//
// The package is dependency-free (stdlib only) so that clients, servers and
// the replication machinery can all build on it without cycles.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Ref uniquely identifies a shared object in the DSO layer. Following the
// paper (Section 4.1), a reference is the pair (type, key): the key is
// either derived from the field name of the encompassing object or supplied
// explicitly (the `@Shared(key=k)` analog).
type Ref struct {
	Type string
	Key  string
}

// String renders the reference as "Type[Key]". It is used in error messages
// and as the hashing input for object placement.
func (r Ref) String() string { return r.Type + "[" + r.Key + "]" }

// IsZero reports whether the reference is unset.
func (r Ref) IsZero() bool { return r.Type == "" && r.Key == "" }

// Invocation is one remote method call shipped to the node(s) owning an
// object. Args carry the method arguments; Init carries constructor
// arguments used only if the object does not exist yet, so that any replica
// can materialize the object deterministically on first access.
type Invocation struct {
	Ref    Ref
	Method string
	Args   []any
	Init   []any
	// Persist requests durability: the object is replicated with the
	// cluster's replication factor and survives node failures.
	Persist bool
	// Trace carries the caller's span identity so the serving node can
	// attach its server-side spans to the client's trace. The zero value
	// (no telemetry) is ignored; old payloads without the field decode to
	// the zero value, keeping the wire format backward compatible.
	Trace TraceContext
	// ClientID and Seq stamp the invocation for at-most-once execution
	// under client retries: servers keep a bounded per-client window of
	// (Seq -> response) per object and replay the cached response when a
	// retry re-delivers an already-applied invocation. ClientID zero marks
	// an unstamped invocation (old clients, control-plane tools); those
	// execute without dedup, preserving the original at-least-once retry
	// semantics.
	ClientID uint64
	Seq      uint64
	// ReadOnly marks the method as declared read-only (see
	// RegisterReadOnlyMethods). Read-only invocations may be served from a
	// leased client cache or by a follower replica, skip the at-most-once
	// dedup window (re-executing a read is harmless and must not evict
	// write records), and do not advance the object's apply version.
	// Servers re-validate the flag against their own registry before
	// trusting it. Old frames decode with the flag unset — every call is
	// conservatively a write.
	ReadOnly bool
}

// Stamped reports whether the invocation carries an at-most-once stamp.
func (inv Invocation) Stamped() bool { return inv.ClientID != 0 }

// TraceContext is the wire form of a telemetry span context. It lives in
// core (rather than internal/telemetry) so the dependency-free vocabulary
// package stays self-contained; the telemetry layer converts at the edges.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a live trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Response carries the results of an invocation back to the caller.
type Response struct {
	Results []any
	// Err is the error text, empty on success. Errors cross the wire as
	// strings; sentinel errors below are recognised by prefix matching so
	// clients can retry intelligently.
	Err string
}

// Sentinel errors of the DSO layer. They travel as message prefixes in
// Response.Err and are re-materialized client side by DecodeError.
var (
	// ErrWrongNode indicates the contacted node does not own the object in
	// the current view; the client should refresh its view and retry.
	ErrWrongNode = errors.New("dso: object not owned by this node")
	// ErrUnknownType indicates no factory is registered for Ref.Type.
	ErrUnknownType = errors.New("dso: unknown object type")
	// ErrUnknownMethod indicates the object does not implement the method.
	ErrUnknownMethod = errors.New("dso: unknown method")
	// ErrStopped indicates the node is shutting down.
	ErrStopped = errors.New("dso: node stopped")
	// ErrRebalancing indicates the object is being transferred between
	// nodes; the client should back off and retry.
	ErrRebalancing = errors.New("dso: object rebalancing in progress")
	// ErrNoSuchObject is returned by operations that require an existing
	// object (e.g. explicit deletion) when it is absent.
	ErrNoSuchObject = errors.New("dso: no such object")
)

// sentinels lists the retryable/recognisable errors for DecodeError.
// Layers above core extend it via RegisterErrorSentinel.
var (
	sentinelMu sync.RWMutex
	sentinels  = []error{
		ErrWrongNode, ErrUnknownType, ErrUnknownMethod,
		ErrStopped, ErrRebalancing, ErrNoSuchObject,
	}
)

// RegisterErrorSentinel adds err to the set DecodeError re-materializes,
// so layers above core can define errors that survive the wire and keep
// working with errors.Is on the client side. Like the built-in sentinels,
// err is recognised by message prefix, so it must travel unwrapped (or
// wrapped with appended context only). Idempotent; call at init time,
// before the error can cross the wire.
func RegisterErrorSentinel(err error) {
	if err == nil {
		return
	}
	sentinelMu.Lock()
	defer sentinelMu.Unlock()
	for _, sent := range sentinels {
		if sent.Error() == err.Error() {
			return
		}
	}
	sentinels = append(sentinels, err)
}

// EncodeError turns an error into its wire representation.
func EncodeError(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// DecodeError turns a wire error string back into an error, mapping known
// sentinel texts back onto the sentinel values (wrapped with the full text)
// so errors.Is works across the wire.
func DecodeError(s string) error {
	if s == "" {
		return nil
	}
	sentinelMu.RLock()
	defer sentinelMu.RUnlock()
	for _, sent := range sentinels {
		if matchSentinel(s, sent.Error()) {
			if s == sent.Error() {
				return sent
			}
			return fmt.Errorf("%w: %s", sent, s[len(sent.Error()):])
		}
	}
	return errors.New(s)
}

func matchSentinel(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// Ctl is handed to object method implementations and provides the
// monitor-style blocking primitives used by synchronization objects
// (Section 5 of the paper: Java wait()/notify() on the servers).
//
// Wait atomically releases the object's lock and suspends the invocation
// until cond() becomes true (re-checked after every Broadcast on the same
// object) or the invocation context is cancelled. Broadcast wakes all
// waiters of the object so they re-evaluate their conditions.
type Ctl interface {
	Wait(cond func() bool) error
	Broadcast()
	Context() context.Context
}

// Object is the server-side contract of a shared object. Implementations
// must confine all state mutation to Call: the owning node serializes calls
// per object (linearizability), so Call bodies need no extra locking except
// through ctl.Wait for blocking semantics.
type Object interface {
	Call(ctl Ctl, method string, args []any) ([]any, error)
}

// Snapshotter is implemented by objects that support state transfer, which
// is required for replication (rf > 1) and for rebalancing on membership
// changes. The library objects all implement it.
type Snapshotter interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
}

// Factory materializes a fresh object from constructor arguments. It is
// invoked on the owning node the first time a reference is used (and on
// every replica, deterministically, for persistent objects).
type Factory func(init []any) (Object, error)

// TypeInfo describes one registered shared-object type.
type TypeInfo struct {
	// Name is the wire name of the type (Ref.Type).
	Name string
	// New builds an instance from Init arguments.
	New Factory
	// Synchronization marks blocking coordination objects (barriers,
	// semaphores, futures). Per the paper they are never replicated.
	Synchronization bool
}

// Registry maps type names to factories. A Registry is immutable once
// shared: register everything before starting servers. The zero value is
// unusable; use NewRegistry.
type Registry struct {
	types map[string]TypeInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{types: make(map[string]TypeInfo)}
}

// Register adds a type. It returns an error if the name is empty, the
// factory is nil, or the name is already taken.
func (r *Registry) Register(info TypeInfo) error {
	if info.Name == "" {
		return errors.New("core: type name must not be empty")
	}
	if info.New == nil {
		return fmt.Errorf("core: type %q has nil factory", info.Name)
	}
	if _, dup := r.types[info.Name]; dup {
		return fmt.Errorf("core: type %q already registered", info.Name)
	}
	r.types[info.Name] = info
	return nil
}

// MustRegister is Register that panics on error; intended for wiring code
// where a failure is a programming bug.
func (r *Registry) MustRegister(info TypeInfo) {
	if err := r.Register(info); err != nil {
		panic(err)
	}
}

// Lookup returns the TypeInfo for name.
func (r *Registry) Lookup(name string) (TypeInfo, error) {
	info, ok := r.types[name]
	if !ok {
		return TypeInfo{}, fmt.Errorf("%w: %q", ErrUnknownType, name)
	}
	return info, nil
}

// Types returns the registered type names (order unspecified).
func (r *Registry) Types() []string {
	names := make([]string, 0, len(r.types))
	for n := range r.types {
		names = append(names, n)
	}
	return names
}

// Invoker is the client-side capability to call methods on remote objects.
// The DSO client implements it; proxies hold one after binding.
type Invoker interface {
	InvokeObject(ctx context.Context, inv Invocation) ([]any, error)
}

// Bindable is implemented by client-side proxies that must be attached to a
// live DSO connection before use. The crucial runtime walks the fields of a
// decoded Runnable and binds every Bindable it finds — the Go analog of the
// paper's AspectJ weaving of @Shared fields.
type Bindable interface {
	BindDSO(inv Invoker)
}
