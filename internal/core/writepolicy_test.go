package core

import (
	"testing"
	"time"
)

func TestWritePolicyZeroValueDisabled(t *testing.T) {
	var p WritePolicy
	if p.Batching() {
		t.Fatal("zero WritePolicy must not enable batching")
	}
	if p.DirectWrites() {
		t.Fatal("zero WritePolicy must keep rpc frame coalescing on")
	}
	if d := p.PipelineDepth(); d != 1 {
		t.Fatalf("zero WritePolicy pipeline depth = %d, want 1", d)
	}
}

func TestWritePolicyDefault(t *testing.T) {
	p := DefaultWritePolicy()
	if !p.Batching() {
		t.Fatal("DefaultWritePolicy must enable batching")
	}
	if p.DirectWrites() {
		t.Fatal("DefaultWritePolicy must keep rpc frame coalescing on")
	}
	if p.PipelineDepth() < 2 {
		t.Fatalf("DefaultWritePolicy pipeline depth = %d, want >= 2", p.PipelineDepth())
	}
}

func TestWritePolicyBounds(t *testing.T) {
	cases := []struct {
		p        WritePolicy
		batching bool
		direct   bool
		depth    int
	}{
		{WritePolicy{MaxBatch: 1}, false, false, 1},
		{WritePolicy{MaxBatch: 2}, true, false, 1},
		{WritePolicy{MaxBatch: -1}, false, true, 1},
		{WritePolicy{MaxBatch: 8, Pipeline: 3}, true, false, 3},
		{WritePolicy{MaxBatch: 8, Pipeline: -2}, true, false, 1},
		{WritePolicy{MaxBatch: 8, MaxDelay: time.Millisecond}, true, false, 1},
	}
	for i, c := range cases {
		if got := c.p.Batching(); got != c.batching {
			t.Errorf("case %d: Batching() = %v, want %v", i, got, c.batching)
		}
		if got := c.p.DirectWrites(); got != c.direct {
			t.Errorf("case %d: DirectWrites() = %v, want %v", i, got, c.direct)
		}
		if got := c.p.PipelineDepth(); got != c.depth {
			t.Errorf("case %d: PipelineDepth() = %d, want %d", i, got, c.depth)
		}
	}
}
