package core

import "testing"

// Allocation budgets on the RPC hot path, enforced by `make verify`
// (alloc-guard target). PR 3 brought the invocation round trip down to 8
// allocs/op; these tests turn that benchmark number into a regression
// gate so later instrumentation (like the per-object tracker) cannot
// quietly pay for itself with hot-path garbage. If a test fails, either
// remove the new allocations or consciously raise the budget here and in
// BENCH_rpc.json.
const (
	invocationRoundTripAllocBudget = 8
	responseRoundTripAllocBudget   = 6
)

// TestInvocationRoundTripAllocBudget pins the encode+decode cost of a
// representative hot-path invocation (see benchInvocation).
func TestInvocationRoundTripAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counting is meaningless under -race")
	}
	inv := benchInvocation()
	buf := make([]byte, 0, 512)
	got := testing.AllocsPerRun(200, func() {
		data, err := AppendInvocation(buf[:0], inv)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeInvocation(data); err != nil {
			t.Fatal(err)
		}
	})
	if got > invocationRoundTripAllocBudget {
		t.Fatalf("invocation round trip allocates %.1f/op, budget %d",
			got, invocationRoundTripAllocBudget)
	}
}

// TestResponseRoundTripAllocBudget pins the response side.
func TestResponseRoundTripAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counting is meaningless under -race")
	}
	resp := benchResponse()
	buf := make([]byte, 0, 512)
	got := testing.AllocsPerRun(200, func() {
		data, err := AppendResponse(buf[:0], resp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeResponse(data); err != nil {
			t.Fatal(err)
		}
	})
	if got > responseRoundTripAllocBudget {
		t.Fatalf("response round trip allocates %.1f/op, budget %d",
			got, responseRoundTripAllocBudget)
	}
}
