package core

import "time"

// RebalancePolicy configures the telemetry-driven rebalancer that runs on
// the coordinator node of a DSO cluster (DESIGN.md §5g): how often it
// scans the cluster-wide heavy-hitter snapshots, what per-object load
// counts as a sustained hot spot, and how aggressively it reacts. It is
// the single policy type threaded through crucial.Options.Rebalance,
// cluster.Options.Rebalance and server.Config.Rebalance, the placement
// sibling of WritePolicy. The zero value disables rebalancing entirely.
//
// The rebalancer needs telemetry (the per-object trackers are its only
// load signal); with telemetry disabled an enabled policy scans nothing
// and never migrates.
type RebalancePolicy struct {
	// Enabled turns the rebalancer loop on.
	Enabled bool
	// Interval is the scan period (default 2s). Each scan fetches and
	// merges every member's per-object windowed rates.
	Interval time.Duration
	// HotRate is the windowed invocation rate (ops/s) below which an
	// object is never considered hot (default 200).
	HotRate float64
	// HotFactor is how many times the mean tracked-object rate an object
	// must sustain to count as a heavy hitter (default 4). Both gates must
	// pass: absolute rate and skew relative to the rest of the population.
	HotFactor float64
	// Sustain is how many consecutive scans an object must stay hot
	// before it is migrated (default 2) — one noisy window never moves
	// state.
	Sustain int
	// Cooldown is the per-object quarantine after a migration (default
	// 30s): the object is not reconsidered until it elapses, so placement
	// cannot flap faster than load measurements stabilize.
	Cooldown time.Duration
	// MaxDirectives bounds the directive table (default 64): past it the
	// rebalancer stops pinning new keys until old pins are released.
	MaxDirectives int
}

// DefaultRebalancePolicy returns the tested rebalancer defaults with the
// loop enabled.
func DefaultRebalancePolicy() RebalancePolicy {
	return RebalancePolicy{
		Enabled:       true,
		Interval:      2 * time.Second,
		HotRate:       200,
		HotFactor:     4,
		Sustain:       2,
		Cooldown:      30 * time.Second,
		MaxDirectives: 64,
	}
}

// Normalized fills zero fields with the defaults, leaving Enabled as set.
func (p RebalancePolicy) Normalized() RebalancePolicy {
	d := DefaultRebalancePolicy()
	if p.Interval <= 0 {
		p.Interval = d.Interval
	}
	if p.HotRate <= 0 {
		p.HotRate = d.HotRate
	}
	if p.HotFactor <= 0 {
		p.HotFactor = d.HotFactor
	}
	if p.Sustain <= 0 {
		p.Sustain = d.Sustain
	}
	if p.Cooldown <= 0 {
		p.Cooldown = d.Cooldown
	}
	if p.MaxDirectives <= 0 {
		p.MaxDirectives = d.MaxDirectives
	}
	return p
}
