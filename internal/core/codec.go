package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// The invocation wire format is the fast tag codec of wire.go, with
// encoding/gob as the per-value fallback for user-registered types and as
// the whole-message fallback when decoding pre-codec frames. Because
// Invocation.Args is []any, every concrete argument type outside the
// built-in tag set must be registered with gob before it crosses the
// wire. RegisterValueTypes installs the common set; user-defined shared
// objects register their own argument types the same way they would make
// them Serializable in the paper's Java prototype.

var registerOnce sync.Once

// RegisterValueTypes registers the standard argument/result types used by
// the built-in object library. It is idempotent and safe for concurrent
// use; every package that encodes invocations calls it defensively.
func RegisterValueTypes() {
	registerOnce.Do(func() {
		gob.Register(int(0))
		gob.Register(int32(0))
		gob.Register(int64(0))
		gob.Register(uint64(0))
		gob.Register(float32(0))
		gob.Register(float64(0))
		gob.Register(false)
		gob.Register("")
		gob.Register([]byte(nil))
		gob.Register([]int(nil))
		gob.Register([]int64(nil))
		gob.Register([]float64(nil))
		gob.Register([][]float64(nil))
		gob.Register([]string(nil))
		gob.Register([]any(nil))
		gob.Register(map[string]any(nil))
		gob.Register(map[string]string(nil))
		gob.Register(map[string]float64(nil))
		gob.Register(map[string]int64(nil))
	})
}

// RegisterValue registers one additional concrete type for transport inside
// invocation arguments and results, mirroring gob.Register but routed
// through core so call sites do not import encoding/gob directly.
func RegisterValue(v any) {
	gob.Register(v)
}

// EncodeInvocation serializes an invocation in the fast tag format (see
// wire.go). Hot paths that reuse buffers call AppendInvocation directly.
func EncodeInvocation(inv Invocation) ([]byte, error) {
	RegisterValueTypes()
	return AppendInvocation(nil, inv)
}

// DecodeInvocation parses an invocation produced by EncodeInvocation. For
// wire compatibility it also accepts the pre-codec format: frames without
// the codec magic byte decode as whole-message gob (old peers).
func DecodeInvocation(data []byte) (Invocation, error) {
	RegisterValueTypes()
	var inv Invocation
	var err error
	if isWire(data) {
		inv, err = decodeWireInvocation(data)
	} else {
		inv, err = decodeInvocationGob(data)
	}
	if err == nil {
		// Both codecs land here so the stamped/unstamped split covers the
		// legacy gob path too (old peers always decode as unstamped).
		if inv.Stamped() {
			codecStats.stampedDecodes.Add(1)
		} else {
			codecStats.unstampedDecodes.Add(1)
		}
	}
	return inv, err
}

// decodeInvocationGob is the legacy whole-message decoder.
func decodeInvocationGob(data []byte) (Invocation, error) {
	var inv Invocation
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&inv); err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation: %w", err)
	}
	codecStats.legacyGobDecodes.Add(1)
	return inv, nil
}

// encodeInvocationGob produces the legacy gob framing; retained for
// wire-compatibility tests and as the baseline in codec benchmarks.
func encodeInvocationGob(inv Invocation) ([]byte, error) {
	RegisterValueTypes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(inv); err != nil {
		return nil, fmt.Errorf("core: encode invocation %s.%s: %w", inv.Ref, inv.Method, err)
	}
	return buf.Bytes(), nil
}

// EncodeResponse serializes a response in the fast tag format.
func EncodeResponse(resp Response) ([]byte, error) {
	RegisterValueTypes()
	return AppendResponse(nil, resp)
}

// DecodeResponse parses a response produced by EncodeResponse, falling
// back to whole-message gob for pre-codec frames.
func DecodeResponse(data []byte) (Response, error) {
	RegisterValueTypes()
	if isWire(data) {
		return decodeWireResponse(data)
	}
	return decodeResponseGob(data)
}

// decodeResponseGob is the legacy whole-message decoder.
func decodeResponseGob(data []byte) (Response, error) {
	var resp Response
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("core: decode response: %w", err)
	}
	codecStats.legacyGobDecodes.Add(1)
	return resp, nil
}

// encodeResponseGob produces the legacy gob framing (tests, benchmarks).
func encodeResponseGob(resp Response) ([]byte, error) {
	RegisterValueTypes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(resp); err != nil {
		return nil, fmt.Errorf("core: encode response: %w", err)
	}
	return buf.Bytes(), nil
}

// EncodeValue gob-encodes a single value; used by Snapshotter
// implementations in the object library.
func EncodeValue(v any) ([]byte, error) {
	RegisterValueTypes()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("core: encode value: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeValue gob-decodes into v, which must be a pointer.
func DecodeValue(data []byte, v any) error {
	RegisterValueTypes()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("core: decode value: %w", err)
	}
	return nil
}

// Arg extracts args[i] as type T, with a descriptive error when the index
// or dynamic type does not match. Object implementations use it to unpack
// their arguments uniformly.
func Arg[T any](args []any, i int) (T, error) {
	var zero T
	if i < 0 || i >= len(args) {
		return zero, fmt.Errorf("core: argument %d missing (have %d)", i, len(args))
	}
	v, ok := args[i].(T)
	if !ok {
		return zero, fmt.Errorf("core: argument %d has type %T, want %T", i, args[i], zero)
	}
	return v, nil
}

// OptArg extracts args[i] as T if present, otherwise returns def.
func OptArg[T any](args []any, i int, def T) (T, error) {
	if i < 0 || i >= len(args) || args[i] == nil {
		return def, nil
	}
	v, ok := args[i].(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("core: argument %d has type %T, want %T", i, args[i], zero)
	}
	return v, nil
}

// NumberAsInt64 coerces the numeric types that may arrive inside an any
// argument to int64. gob preserves concrete types, but user code may pass
// int where int64 is expected; the object library accepts both.
func NumberAsInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	case uint64:
		return int64(n), true
	case float64:
		return int64(n), true
	case float32:
		return int64(n), true
	default:
		return 0, false
	}
}

// Int64Arg extracts args[i] as an int64 accepting any integer-like type.
func Int64Arg(args []any, i int) (int64, error) {
	if i < 0 || i >= len(args) {
		return 0, fmt.Errorf("core: argument %d missing (have %d)", i, len(args))
	}
	n, ok := NumberAsInt64(args[i])
	if !ok {
		return 0, fmt.Errorf("core: argument %d has type %T, want integer", i, args[i])
	}
	return n, nil
}
