package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync/atomic"
)

// Fast wire codec for the invocation hot path.
//
// Every DSO method call serializes one Invocation and one Response. The
// original format was per-message encoding/gob, which re-transmits full
// type metadata on every message because the encoder stream never
// persists across frames. This file replaces it with a compact,
// self-describing tag format for the argument types the built-in object
// library uses (the RegisterValueTypes set); anything else falls back to
// gob transparently, value by value, so the RegisterValue contract is
// unchanged.
//
// Layout (all integers varint unless stated):
//
//	byte    wireMagic (0xC7)
//	byte    wireVersion (1)
//	byte    kind: 'I' invocation | 'R' response
//
//	invocation: Type, Key, Method (strings), Args values, Init values,
//	            flags byte (bit0 = Persist, bit1 = stamped, bit2 =
//	            read-only), TraceID, SpanID (uvarint), then — only when
//	            bit1 is set — ClientID, Seq (uvarint): the at-most-once
//	            stamp. The stamp is appended after every field an old
//	            decoder reads, and old decoders ignore trailing bytes, so
//	            stamped frames remain decodable by pre-stamp peers (which
//	            simply execute without dedup). Pre-lease decoders likewise
//	            ignore flag bit2 and treat every call as a write, which is
//	            always safe.
//	response:   Results values, Err (string)
//
// A value list is a uvarint count followed by tagged values; strings and
// byte slices are uvarint length + bytes; floats are fixed 8 (or 4) bytes
// big endian. The gob fallback tag carries a uvarint length + a complete
// single-value gob stream.
//
// Wire compatibility: a gob stream's first byte is either a small length
// (<= 0x7F) or a negative byte-count marker (>= 0xF8), so wireMagic 0xC7
// can never begin a legacy gob message. Decoders accept both formats:
// frames without the magic take the legacy gob path (counted in
// CodecStats.LegacyGobDecodes). A future layout change must bump
// wireVersion; decoders reject unknown versions loudly rather than
// misparse.
const (
	wireMagic   = 0xC7
	wireVersion = 1

	wireInvocation = 'I'
	wireResponse   = 'R'
)

// Value tags. The set mirrors RegisterValueTypes; tagGob is the escape
// hatch for user-registered types.
const (
	tagNil = iota
	tagFalse
	tagTrue
	tagInt     // zigzag varint, decodes as int
	tagInt32   // zigzag varint
	tagInt64   // zigzag varint
	tagUint64  // uvarint
	tagFloat32 // 4 bytes big endian
	tagFloat64 // 8 bytes big endian
	tagString
	tagBytes
	tagIntSlice     // count + zigzag varints
	tagInt64Slice   // count + zigzag varints
	tagFloat64Slice // count + 8 bytes each
	tagFloat64Mat   // row count + one tagFloat64Slice body per row
	tagStringSlice
	tagAnySlice // count + tagged values (recursive)
	tagMapStrAny
	tagMapStrStr
	tagMapStrF64
	tagMapStrI64
	tagGob // uvarint length + single-value gob stream of `any`
)

// maxValueDepth bounds recursion through nested []any / map[string]any
// values so a corrupt or hostile frame cannot overflow the stack.
const maxValueDepth = 64

// CodecStats are process-wide counters of the wire codec, readable at any
// time (ReadCodecStats) and exported on the /metrics endpoint.
type CodecStats struct {
	// FastEncodes and FastDecodes count whole messages through the tag
	// codec.
	FastEncodes uint64
	FastDecodes uint64
	// LegacyGobDecodes counts whole messages that arrived in the
	// pre-codec gob format (old peers).
	LegacyGobDecodes uint64
	// FallbackValues counts individual values inside fast messages that
	// needed the gob escape hatch (user-registered types).
	FallbackValues uint64
	// StampedDecodes and UnstampedDecodes split decoded invocations by
	// whether they carried an at-most-once (ClientID, Seq) stamp. A
	// persistently non-zero unstamped count means pre-stamp clients (or
	// control-plane tools) are still talking to this process; their
	// retries keep the legacy at-least-once semantics.
	StampedDecodes   uint64
	UnstampedDecodes uint64
}

var codecStats struct {
	fastEncodes      atomic.Uint64
	fastDecodes      atomic.Uint64
	legacyGobDecodes atomic.Uint64
	fallbackValues   atomic.Uint64
	stampedDecodes   atomic.Uint64
	unstampedDecodes atomic.Uint64
}

// ReadCodecStats returns a snapshot of the process-wide codec counters.
func ReadCodecStats() CodecStats {
	return CodecStats{
		FastEncodes:      codecStats.fastEncodes.Load(),
		FastDecodes:      codecStats.fastDecodes.Load(),
		LegacyGobDecodes: codecStats.legacyGobDecodes.Load(),
		FallbackValues:   codecStats.fallbackValues.Load(),
		StampedDecodes:   codecStats.stampedDecodes.Load(),
		UnstampedDecodes: codecStats.unstampedDecodes.Load(),
	}
}

// isWire reports whether data starts with the fast-codec preamble.
func isWire(data []byte) bool {
	return len(data) >= 3 && data[0] == wireMagic
}

// AppendInvocation appends the wire encoding of inv to dst and returns
// the extended slice. Callers on the hot path pass a pooled buffer to
// avoid a per-message allocation; EncodeInvocation wraps it with a fresh
// one.
func AppendInvocation(dst []byte, inv Invocation) ([]byte, error) {
	RegisterValueTypes() // a fallback value may need the gob registrations
	dst = append(dst, wireMagic, wireVersion, wireInvocation)
	dst = appendString(dst, inv.Ref.Type)
	dst = appendString(dst, inv.Ref.Key)
	dst = appendString(dst, inv.Method)
	var err error
	if dst, err = appendValues(dst, inv.Args); err != nil {
		return nil, fmt.Errorf("core: encode invocation %s.%s: %w", inv.Ref, inv.Method, err)
	}
	if dst, err = appendValues(dst, inv.Init); err != nil {
		return nil, fmt.Errorf("core: encode invocation %s.%s init: %w", inv.Ref, inv.Method, err)
	}
	var flags byte
	if inv.Persist {
		flags |= 1
	}
	if inv.Stamped() {
		flags |= 2
	}
	if inv.ReadOnly {
		flags |= 4
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, inv.Trace.TraceID)
	dst = binary.AppendUvarint(dst, inv.Trace.SpanID)
	if inv.Stamped() {
		// The stamp trails every pre-stamp field so old decoders (which
		// stop after SpanID and ignore trailing bytes) stay compatible.
		dst = binary.AppendUvarint(dst, inv.ClientID)
		dst = binary.AppendUvarint(dst, inv.Seq)
	}
	codecStats.fastEncodes.Add(1)
	return dst, nil
}

// AppendResponse appends the wire encoding of resp to dst.
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	RegisterValueTypes() // a fallback value may need the gob registrations
	dst = append(dst, wireMagic, wireVersion, wireResponse)
	var err error
	if dst, err = appendValues(dst, resp.Results); err != nil {
		return nil, fmt.Errorf("core: encode response: %w", err)
	}
	dst = appendString(dst, resp.Err)
	codecStats.fastEncodes.Add(1)
	return dst, nil
}

// decodeWireInvocation parses a fast-codec invocation (after isWire).
func decodeWireInvocation(data []byte) (Invocation, error) {
	r := wireReader{b: data}
	if err := r.preamble(wireInvocation); err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation: %w", err)
	}
	var inv Invocation
	var err error
	if inv.Ref.Type, err = r.str(); err == nil {
		if inv.Ref.Key, err = r.str(); err == nil {
			inv.Method, err = r.str()
		}
	}
	if err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation: %w", err)
	}
	if inv.Args, err = r.values(); err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation %s.%s args: %w", inv.Ref, inv.Method, err)
	}
	if inv.Init, err = r.values(); err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation %s.%s init: %w", inv.Ref, inv.Method, err)
	}
	flags, err := r.u8()
	if err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation: %w", err)
	}
	inv.Persist = flags&1 != 0
	inv.ReadOnly = flags&4 != 0
	if inv.Trace.TraceID, err = r.uvarint(); err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation: %w", err)
	}
	if inv.Trace.SpanID, err = r.uvarint(); err != nil {
		return Invocation{}, fmt.Errorf("core: decode invocation: %w", err)
	}
	if flags&2 != 0 {
		if inv.ClientID, err = r.uvarint(); err != nil {
			return Invocation{}, fmt.Errorf("core: decode invocation stamp: %w", err)
		}
		if inv.Seq, err = r.uvarint(); err != nil {
			return Invocation{}, fmt.Errorf("core: decode invocation stamp: %w", err)
		}
	}
	codecStats.fastDecodes.Add(1)
	return inv, nil
}

// decodeWireResponse parses a fast-codec response (after isWire).
func decodeWireResponse(data []byte) (Response, error) {
	r := wireReader{b: data}
	if err := r.preamble(wireResponse); err != nil {
		return Response{}, fmt.Errorf("core: decode response: %w", err)
	}
	var resp Response
	var err error
	if resp.Results, err = r.values(); err != nil {
		return Response{}, fmt.Errorf("core: decode response results: %w", err)
	}
	if resp.Err, err = r.str(); err != nil {
		return Response{}, fmt.Errorf("core: decode response: %w", err)
	}
	codecStats.fastDecodes.Add(1)
	return resp, nil
}

// appendString appends a uvarint length + bytes.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendValues appends a uvarint count + tagged values.
func appendValues(dst []byte, vs []any) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	var err error
	for _, v := range vs {
		if dst, err = appendValue(dst, v, 0); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// appendValue appends one tagged value. Types outside the built-in set
// take the gob fallback, preserving the RegisterValue contract.
func appendValue(dst []byte, v any, depth int) ([]byte, error) {
	if depth > maxValueDepth {
		return nil, fmt.Errorf("core: value nesting exceeds %d levels", maxValueDepth)
	}
	switch x := v.(type) {
	case nil:
		return append(dst, tagNil), nil
	case bool:
		if x {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case int:
		return binary.AppendVarint(append(dst, tagInt), int64(x)), nil
	case int32:
		return binary.AppendVarint(append(dst, tagInt32), int64(x)), nil
	case int64:
		return binary.AppendVarint(append(dst, tagInt64), x), nil
	case uint64:
		return binary.AppendUvarint(append(dst, tagUint64), x), nil
	case float32:
		return binary.BigEndian.AppendUint32(append(dst, tagFloat32), math.Float32bits(x)), nil
	case float64:
		return binary.BigEndian.AppendUint64(append(dst, tagFloat64), math.Float64bits(x)), nil
	case string:
		return appendString(append(dst, tagString), x), nil
	case []byte:
		dst = binary.AppendUvarint(append(dst, tagBytes), uint64(len(x)))
		return append(dst, x...), nil
	case []int:
		dst = binary.AppendUvarint(append(dst, tagIntSlice), uint64(len(x)))
		for _, n := range x {
			dst = binary.AppendVarint(dst, int64(n))
		}
		return dst, nil
	case []int64:
		dst = binary.AppendUvarint(append(dst, tagInt64Slice), uint64(len(x)))
		for _, n := range x {
			dst = binary.AppendVarint(dst, n)
		}
		return dst, nil
	case []float64:
		return appendFloat64Slice(append(dst, tagFloat64Slice), x), nil
	case [][]float64:
		dst = binary.AppendUvarint(append(dst, tagFloat64Mat), uint64(len(x)))
		for _, row := range x {
			dst = appendFloat64Slice(dst, row)
		}
		return dst, nil
	case []string:
		dst = binary.AppendUvarint(append(dst, tagStringSlice), uint64(len(x)))
		for _, s := range x {
			dst = appendString(dst, s)
		}
		return dst, nil
	case []any:
		dst = binary.AppendUvarint(append(dst, tagAnySlice), uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = appendValue(dst, e, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case map[string]any:
		dst = binary.AppendUvarint(append(dst, tagMapStrAny), uint64(len(x)))
		var err error
		for k, e := range x {
			dst = appendString(dst, k)
			if dst, err = appendValue(dst, e, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case map[string]string:
		dst = binary.AppendUvarint(append(dst, tagMapStrStr), uint64(len(x)))
		for k, e := range x {
			dst = appendString(dst, k)
			dst = appendString(dst, e)
		}
		return dst, nil
	case map[string]float64:
		dst = binary.AppendUvarint(append(dst, tagMapStrF64), uint64(len(x)))
		for k, e := range x {
			dst = appendString(dst, k)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(e))
		}
		return dst, nil
	case map[string]int64:
		dst = binary.AppendUvarint(append(dst, tagMapStrI64), uint64(len(x)))
		for k, e := range x {
			dst = appendString(dst, k)
			dst = binary.AppendVarint(dst, e)
		}
		return dst, nil
	default:
		return appendGobValue(dst, v)
	}
}

func appendFloat64Slice(dst []byte, x []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(x)))
	for _, f := range x {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// appendGobValue is the per-value escape hatch: a complete single-value
// gob stream of the dynamic value, so any type accepted by RegisterValue
// keeps working without the fast codec knowing about it.
func appendGobValue(dst []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("gob fallback for %T: %w", v, err)
	}
	codecStats.fallbackValues.Add(1)
	dst = binary.AppendUvarint(append(dst, tagGob), uint64(buf.Len()))
	return append(dst, buf.Bytes()...), nil
}

// wireReader decodes the tag format from a byte slice. Every length is
// validated against the remaining input before allocating, so corrupt
// frames fail with an error instead of a huge allocation or panic.
type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) preamble(kind byte) error {
	if r.remaining() < 3 {
		return fmt.Errorf("truncated preamble (%d bytes)", r.remaining())
	}
	magic, version, k := r.b[r.off], r.b[r.off+1], r.b[r.off+2]
	r.off += 3
	if magic != wireMagic {
		return fmt.Errorf("bad magic 0x%02x", magic)
	}
	if version != wireVersion {
		return fmt.Errorf("unsupported codec version %d (have %d)", version, wireVersion)
	}
	if k != kind {
		return fmt.Errorf("message kind %q, want %q", k, kind)
	}
	return nil
}

func (r *wireReader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("truncated at offset %d", r.off)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// count reads a uvarint element count and validates it against the
// remaining bytes, each element occupying at least minBytes. The division
// form avoids overflow on hostile counts.
func (r *wireReader) count(minBytes int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining())/uint64(minBytes) {
		return 0, fmt.Errorf("count %d exceeds remaining %d bytes", v, r.remaining())
	}
	return int(v), nil
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, r.remaining())
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// str reads a length-prefixed string. The conversion copies, so decoded
// messages never alias the (possibly pooled) input buffer.
func (r *wireReader) str() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *wireReader) f64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// values reads a value list. Zero-length lists decode as nil.
func (r *wireReader) values() ([]any, error) {
	n, err := r.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]any, n)
	for i := range out {
		if out[i], err = r.value(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// value reads one tagged value, reproducing the concrete types gob would
// have delivered so callers' type switches keep working unchanged.
func (r *wireReader) value(depth int) (any, error) {
	if depth > maxValueDepth {
		return nil, fmt.Errorf("value nesting exceeds %d levels", maxValueDepth)
	}
	tag, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNil:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt:
		v, err := r.varint()
		return int(v), err
	case tagInt32:
		v, err := r.varint()
		return int32(v), err
	case tagInt64:
		return r.varint()
	case tagUint64:
		return r.uvarint()
	case tagFloat32:
		b, err := r.take(4)
		if err != nil {
			return nil, err
		}
		return math.Float32frombits(binary.BigEndian.Uint32(b)), nil
	case tagFloat64:
		return r.f64()
	case tagString:
		return r.str()
	case tagBytes:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		// Copy so the decoded message outlives a recycled input buffer.
		return append([]byte(nil), b...), nil
	case tagIntSlice:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	case tagInt64Slice:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		for i := range out {
			if out[i], err = r.varint(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagFloat64Slice:
		return r.float64Slice()
	case tagFloat64Mat:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		out := make([][]float64, n)
		for i := range out {
			if out[i], err = r.float64Slice(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagStringSlice:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		out := make([]string, n)
		for i := range out {
			if out[i], err = r.str(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagAnySlice:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMapStrAny:
		n, err := r.count(2)
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMapStrStr:
		n, err := r.count(2)
		if err != nil {
			return nil, err
		}
		out := make(map[string]string, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = r.str(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMapStrF64:
		n, err := r.count(9)
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = r.f64(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMapStrI64:
		n, err := r.count(2)
		if err != nil {
			return nil, err
		}
		out := make(map[string]int64, n)
		for i := 0; i < n; i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			if out[k], err = r.varint(); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagGob:
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
			return nil, fmt.Errorf("gob fallback: %w", err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("unknown value tag %d at offset %d", tag, r.off-1)
	}
}

func (r *wireReader) float64Slice() ([]float64, error) {
	n, err := r.count(8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
