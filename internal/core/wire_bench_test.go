package core

import (
	"testing"
)

// benchInvocation is a representative hot-path message: a KVMap write
// with a short string key and a float payload, as issued by the paper's
// k-means and logistic-regression workloads.
func benchInvocation() Invocation {
	return Invocation{
		Ref:    Ref{Type: "KVMap", Key: "weights/worker-3"},
		Method: "Put",
		Args:   []any{"gradient", []float64{0.25, -1.5, 3.125, 0.0625, 42, -7.5, 1e-3, 2.25}},
		Trace:  TraceContext{TraceID: 0xABCDEF0123456789, SpanID: 7},
	}
}

func benchResponse() Response {
	return Response{Results: []any{[]float64{0.25, -1.5, 3.125, 0.0625, 42, -7.5, 1e-3, 2.25}}}
}

// BenchmarkEncodeInvocationFast / ...Gob quantify the tentpole win: the
// tag-based codec vs the previous whole-message gob encoder. Run with
// -benchmem; the allocs/op column is the contract (see ISSUE/BENCH_rpc).
func BenchmarkEncodeInvocationFast(b *testing.B) {
	inv := benchInvocation()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := AppendInvocation(buf[:0], inv)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkEncodeInvocationGob(b *testing.B) {
	inv := benchInvocation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeInvocationGob(inv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInvocationFast(b *testing.B) {
	data, err := EncodeInvocation(benchInvocation())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInvocation(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInvocationGob(b *testing.B) {
	data, err := encodeInvocationGob(benchInvocation())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInvocation(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvocationRoundTripFast / ...Gob measure the full encode+decode
// cycle a single RPC pays on each side of the wire.
func BenchmarkInvocationRoundTripFast(b *testing.B) {
	inv := benchInvocation()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := AppendInvocation(buf[:0], inv)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeInvocation(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvocationRoundTripGob(b *testing.B) {
	inv := benchInvocation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := encodeInvocationGob(inv)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeInvocation(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResponseRoundTripFast(b *testing.B) {
	resp := benchResponse()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := AppendResponse(buf[:0], resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeResponse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResponseRoundTripGob(b *testing.B) {
	resp := benchResponse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := encodeResponseGob(resp)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeResponse(data); err != nil {
			b.Fatal(err)
		}
	}
}
