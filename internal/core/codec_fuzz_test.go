package core

import (
	"reflect"
	"testing"
)

// FuzzInvocationRoundTrip builds invocations from fuzzer-chosen scalars
// plus structured args derived from the raw byte input, and asserts
// encode→decode is the identity.
func FuzzInvocationRoundTrip(f *testing.F) {
	f.Add("Counter", "c/1", "Add", int64(1), 3.14, true, []byte("xyz"))
	f.Add("", "", "", int64(-1<<62), -0.0, false, []byte{})
	f.Add("KVMap", "k", "Put", int64(0), 1e308, true, []byte{0xC7, 0x01, 'I'})
	f.Fuzz(func(t *testing.T, typ, key, method string, i int64, fv float64, b bool, raw []byte) {
		in := Invocation{
			Ref:    Ref{Type: typ, Key: key},
			Method: method,
			Args: []any{
				i, fv, b, string(raw),
				[]int64{i, -i}, []float64{fv},
				[]any{i, string(raw), []any{b}},
				map[string]any{key: i},
				map[string]int64{method: i},
			},
			Persist: b,
			Trace:   TraceContext{TraceID: uint64(i), SpanID: uint64(len(raw))},
		}
		if len(raw) > 0 {
			// Append a copy: decode must produce an equal, non-aliased slice.
			in.Args = append(in.Args, append([]byte(nil), raw...))
		}
		data, err := EncodeInvocation(in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := DecodeInvocation(data)
		if err != nil {
			t.Fatalf("decode of freshly encoded frame: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
		}
	})
}

// FuzzDecodeInvocation throws raw bytes at the decoder. Any outcome is
// acceptable except a panic or runaway allocation; valid frames must
// re-encode to something that decodes equal.
func FuzzDecodeInvocation(f *testing.F) {
	seed, _ := EncodeInvocation(Invocation{
		Ref: Ref{Type: "T", Key: "k"}, Method: "m",
		Args: []any{int64(1), "s", []float64{2}},
	})
	f.Add(seed)
	f.Add([]byte{wireMagic, wireVersion, wireInvocation})
	f.Add([]byte{wireMagic, wireVersion + 9, wireInvocation, 0, 0})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		inv, err := DecodeInvocation(data)
		if err != nil {
			return
		}
		re, err := EncodeInvocation(inv)
		if err != nil {
			// A decoded frame can hold values only the legacy gob path
			// produces for user-registered types; skip those.
			t.Skip()
		}
		again, err := DecodeInvocation(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame: %v", err)
		}
		if !reflect.DeepEqual(inv, again) {
			t.Fatalf("re-encode not stable:\n 1: %#v\n 2: %#v", inv, again)
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeInvocation for the response side.
func FuzzDecodeResponse(f *testing.F) {
	seed, _ := EncodeResponse(Response{Results: []any{int64(7), "r"}, Err: "e"})
	f.Add(seed)
	f.Add([]byte{wireMagic, wireVersion, wireResponse})
	f.Add([]byte{wireMagic, wireVersion, wireResponse, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re, err := EncodeResponse(resp)
		if err != nil {
			t.Skip()
		}
		again, err := DecodeResponse(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame: %v", err)
		}
		if !reflect.DeepEqual(resp, again) {
			t.Fatalf("re-encode not stable:\n 1: %#v\n 2: %#v", resp, again)
		}
	})
}
