package core

import (
	"reflect"
	"testing"
)

// TestStampRoundTrip pins the at-most-once stamp through the fast codec.
func TestStampRoundTrip(t *testing.T) {
	in := sampleInvocation()
	in.ClientID = 0xC0FFEE
	in.Seq = 917
	data, err := EncodeInvocation(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
	if !out.Stamped() {
		t.Fatal("decoded invocation lost its stamp")
	}
}

// TestUnstampedFrameDecodesZeroStamp pins backward compatibility: frames
// from pre-stamp encoders (flags bit1 clear, no trailing stamp bytes) must
// decode with a zero stamp, not an error.
func TestUnstampedFrameDecodesZeroStamp(t *testing.T) {
	in := sampleInvocation() // sampleInvocation carries no stamp
	data, err := EncodeInvocation(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stamped() || out.ClientID != 0 || out.Seq != 0 {
		t.Fatalf("unstamped frame decoded with stamp (%d, %d)", out.ClientID, out.Seq)
	}
}

// TestStampedFrameToleratesTrailingBytes pins the forward-compatibility
// property the stamp itself relies on: decoders ignore bytes after the
// last field they know, so yet-to-be-added trailing fields cannot break
// this decoder either.
func TestStampedFrameToleratesTrailingBytes(t *testing.T) {
	in := Invocation{Ref: Ref{Type: "T", Key: "k"}, Method: "m", ClientID: 7, Seq: 3}
	data, err := EncodeInvocation(in)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, 0xAA, 0xBB, 0xCC) // a future field this decoder predates
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.ClientID != 7 || out.Seq != 3 {
		t.Fatalf("stamp corrupted by trailing bytes: (%d, %d)", out.ClientID, out.Seq)
	}
}

// TestLegacyGobCarriesStamp checks the whole-message gob fallback: the
// stamp fields ride along like any struct field, and pre-stamp gob frames
// decode with a zero stamp.
func TestLegacyGobCarriesStamp(t *testing.T) {
	in := Invocation{Ref: Ref{Type: "T", Key: "k"}, Method: "m", ClientID: 11, Seq: 5}
	data, err := encodeInvocationGob(in)
	if err != nil {
		t.Fatal(err)
	}
	if isWire(data) {
		t.Fatal("gob frame unexpectedly carries the codec magic")
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.ClientID != 11 || out.Seq != 5 {
		t.Fatalf("gob stamp mismatch: (%d, %d)", out.ClientID, out.Seq)
	}
}

// TestStampDecodeCounters checks that DecodeInvocation splits the
// stamped/unstamped counters across both codec paths.
func TestStampDecodeCounters(t *testing.T) {
	stamped, _ := EncodeInvocation(Invocation{Ref: Ref{Type: "T", Key: "k"}, Method: "m", ClientID: 1, Seq: 1})
	plain, _ := EncodeInvocation(Invocation{Ref: Ref{Type: "T", Key: "k"}, Method: "m"})
	legacy, _ := encodeInvocationGob(Invocation{Ref: Ref{Type: "T", Key: "k"}, Method: "m"})

	before := ReadCodecStats()
	for _, frame := range [][]byte{stamped, plain, legacy} {
		if _, err := DecodeInvocation(frame); err != nil {
			t.Fatal(err)
		}
	}
	after := ReadCodecStats()
	if got := after.StampedDecodes - before.StampedDecodes; got != 1 {
		t.Fatalf("stamped decodes moved by %d, want 1", got)
	}
	if got := after.UnstampedDecodes - before.UnstampedDecodes; got != 2 {
		t.Fatalf("unstamped decodes moved by %d, want 2", got)
	}
}
