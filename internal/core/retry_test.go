package core

import (
	"testing"
	"time"
)

func TestRetryPolicyZeroValue(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero policy enabled")
	}
	if p.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1", p.Attempts())
	}
	if d := p.Delay(1, nil); d != 0 {
		t.Fatalf("zero policy delay = %v", d)
	}
}

func TestRetryPolicyFixedPauseCompat(t *testing.T) {
	// The historical shape {MaxRetries, Backoff} must keep meaning a
	// constant pause: Multiplier defaults to 1, no jitter.
	p := RetryPolicy{MaxRetries: 3, Backoff: 5 * time.Millisecond}
	for retry := 1; retry <= 3; retry++ {
		if d := p.Delay(retry, nil); d != 5*time.Millisecond {
			t.Fatalf("retry %d delay = %v, want 5ms", retry, d)
		}
	}
}

func TestRetryPolicyExponentialSequence(t *testing.T) {
	p := RetryPolicy{
		MaxRetries: 6,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Multiplier: 2,
	}
	want := []time.Duration{
		2 * time.Millisecond,  // retry 1
		4 * time.Millisecond,  // retry 2
		8 * time.Millisecond,  // retry 3
		16 * time.Millisecond, // retry 4
		20 * time.Millisecond, // retry 5, capped
		20 * time.Millisecond, // retry 6, capped
	}
	for i, w := range want {
		if d := p.Delay(i+1, nil); d != w {
			t.Fatalf("retry %d delay = %v, want %v", i+1, d, w)
		}
	}
	if d := p.Delay(0, nil); d != 0 {
		t.Fatalf("retry 0 delay = %v", d)
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	p := DefaultClientRetry() // jitter 0.5
	base := RetryPolicy{
		MaxRetries: p.MaxRetries,
		Backoff:    p.Backoff,
		MaxBackoff: p.MaxBackoff,
		Multiplier: p.Multiplier,
	}
	// rnd=0 keeps the full delay; rnd→1 removes up to Jitter of it.
	for retry := 1; retry <= p.MaxRetries; retry++ {
		full := base.Delay(retry, nil)
		if d := p.Delay(retry, func() float64 { return 0 }); d != full {
			t.Fatalf("retry %d with rnd=0: %v, want %v", retry, d, full)
		}
		lo := time.Duration(float64(full) * (1 - p.Jitter))
		if d := p.Delay(retry, func() float64 { return 0.999999 }); d < lo-time.Microsecond || d > full {
			t.Fatalf("retry %d with rnd~1: %v outside [%v,%v]", retry, d, lo, full)
		}
		// Default randomness stays inside the envelope too.
		for i := 0; i < 50; i++ {
			if d := p.Delay(retry, nil); d < lo-time.Microsecond || d > full {
				t.Fatalf("retry %d jittered delay %v outside [%v,%v]", retry, d, lo, full)
			}
		}
	}
}

func TestRetryPolicyOverflowSafe(t *testing.T) {
	p := RetryPolicy{
		MaxRetries: 500,
		Backoff:    time.Second,
		MaxBackoff: time.Minute,
		Multiplier: 10,
	}
	if d := p.Delay(500, nil); d != time.Minute {
		t.Fatalf("deep retry delay = %v, want cap", d)
	}
}

func TestTraceContextOnInvocationWire(t *testing.T) {
	inv := Invocation{
		Ref:    Ref{Type: "AtomicLong", Key: "k"},
		Method: "Get",
		Trace:  TraceContext{TraceID: 7, SpanID: 9},
	}
	data, err := EncodeInvocation(inv)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != inv.Trace {
		t.Fatalf("trace = %+v, want %+v", got.Trace, inv.Trace)
	}
	if !got.Trace.Valid() || (TraceContext{}).Valid() {
		t.Fatal("TraceContext validity wrong")
	}
}
