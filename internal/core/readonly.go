package core

import (
	"sort"
	"sync"
)

// Read/write method classification.
//
// The DSO layer ships every method call to the object's owner, which is
// correct but wasteful for reads: a read-only method cannot change object
// state, so — under a coherence protocol that keeps the copy fresh (the
// client lease cache, follower reads) — it may be answered from a cached
// or replica copy without an ownership round trip.
//
// Classification is declarative: the code that registers an object type
// also declares which of its methods are read-only, at the same place and
// time (RegisterValueTypes / bind time). The contract for a method declared
// read-only is strict:
//
//   - it must not mutate any object state (including memoization caches),
//   - it must not block (no Ctl.Wait) — cached execution has no monitor
//     to sleep on,
//   - it must be deterministic given the object state (no randomness).
//
// Servers re-validate the classification against their own registry before
// trusting the wire flag, so a stale or hostile client cannot smuggle a
// mutating call through a read-only code path.

var (
	readOnlyMu      sync.RWMutex
	readOnlyMethods = make(map[string]map[string]bool)
)

// RegisterReadOnlyMethods declares methods of the named object type as
// read-only (see the classification contract above). It is additive and
// idempotent: repeated registrations union their method sets. Like the
// value-type registrations it is meant to run during process wiring,
// before traffic, but it is safe for concurrent use.
func RegisterReadOnlyMethods(typeName string, methods ...string) {
	if typeName == "" || len(methods) == 0 {
		return
	}
	readOnlyMu.Lock()
	defer readOnlyMu.Unlock()
	set := readOnlyMethods[typeName]
	if set == nil {
		set = make(map[string]bool, len(methods))
		readOnlyMethods[typeName] = set
	}
	for _, m := range methods {
		if m != "" {
			set[m] = true
		}
	}
}

// IsReadOnlyMethod reports whether the method of the named type was
// declared read-only. Unknown types and unregistered methods report false:
// unclassified methods are conservatively treated as writes.
func IsReadOnlyMethod(typeName, method string) bool {
	readOnlyMu.RLock()
	defer readOnlyMu.RUnlock()
	return readOnlyMethods[typeName][method]
}

// ReadOnlyMethodsOf returns the sorted read-only method names declared for
// the type (introspection and tests); nil when none are registered.
func ReadOnlyMethodsOf(typeName string) []string {
	readOnlyMu.RLock()
	defer readOnlyMu.RUnlock()
	set := readOnlyMethods[typeName]
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
