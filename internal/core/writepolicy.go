package core

import "time"

// WritePolicy is the single write-path tuning vocabulary of the system,
// the mutation-side sibling of the read-path knobs (client.CacheConfig,
// client.Config.ReadReplicas). The same struct configures the runtime
// (crucial.Options.Write), a cluster (cluster.Options.Write), one server
// (server.Config.Write), a client's connections (client.Config.Write) and
// the dso-server -write-batch/-write-delay/-write-pipeline flags, so a
// policy chosen in one place round-trips unchanged to every layer.
//
// The policy governs group commit on the SMR write path (DESIGN.md §5e):
// concurrent mutations of one object are coalesced into a single
// total-order round whose payload carries up to MaxBatch stamped
// invocations, and up to Pipeline such rounds per object may be in flight
// at once, so a round's FINAL acks overlap the next round's proposes.
//
// The zero value disables batching entirely: every write takes one
// ordering round of its own, the behavior of all prior releases. A
// negative MaxBatch additionally turns off frame-level write coalescing
// on rpc connections the policy is applied to (the pre-coalescing
// one-syscall-per-frame debug path that Client.SetWriteCoalescing(false)
// used to select).
type WritePolicy struct {
	// MaxBatch caps how many stamped invocations one ordering round may
	// carry. Values <= 1 disable batching (every write is its own
	// round); negative values also disable rpc frame coalescing.
	MaxBatch int
	// MaxDelay is how long a forming batch may wait for more writes
	// before it is flushed. Zero flushes as soon as an ordering slot is
	// free — concurrency alone builds the batches — which favors
	// latency; a small positive delay trades first-write latency for
	// larger batches under light load.
	MaxDelay time.Duration
	// Pipeline is how many ordering rounds per object may be in flight
	// concurrently (values <= 1 mean one: the next batch's propose waits
	// for the previous batch's final round). Skeen's protocol orders
	// concurrent rounds from one coordinator consistently at every
	// member, so pipelining preserves linearizability; it overlaps the
	// FINAL ack latency of round k with the propose of round k+1.
	Pipeline int
}

// DefaultWritePolicy is the group-commit configuration the write bench
// and the -write-batch flag default to when batching is requested without
// explicit numbers: batches up to 64 ops, no artificial flush delay, two
// rounds in the pipe.
func DefaultWritePolicy() WritePolicy {
	return WritePolicy{MaxBatch: 64, MaxDelay: 0, Pipeline: 2}
}

// Batching reports whether the policy enables group commit.
func (p WritePolicy) Batching() bool { return p.MaxBatch > 1 }

// DirectWrites reports whether the policy asks rpc connections to skip
// frame-level write coalescing (the SetWriteCoalescing(false) behavior).
func (p WritePolicy) DirectWrites() bool { return p.MaxBatch < 0 }

// PipelineDepth returns the effective number of concurrently outstanding
// ordering rounds per object (at least 1).
func (p WritePolicy) PipelineDepth() int {
	if p.Pipeline <= 1 {
		return 1
	}
	return p.Pipeline
}
