package core

import "time"

// DurabilityPolicy is the single durability-tier vocabulary of the system,
// the cold-storage sibling of WritePolicy and RebalancePolicy. The same
// struct configures the runtime (crucial.Options.Durability), a cluster
// (cluster.Options.Durability), one server (server.Config.Durability) and
// the dso-server -wal-* flags, so a policy chosen in one place round-trips
// unchanged to every layer.
//
// The policy governs the write-ahead log and snapshot checkpointing built
// on the SMR delivery stream (DESIGN.md §5h): every committed delivery is
// appended to a per-node segmented WAL in cold storage, the coordinator
// blocks the client ack until its own record is durable (group fsync), and
// a background snapshotter periodically checkpoints per-object state plus
// the directive table and truncates sealed segments behind the checkpoint.
// On restart the node recovers from the latest valid checkpoint plus a
// replay of the surviving log — so acknowledged writes survive a full
// cluster loss, not just f node failures.
//
// The zero value disables durability entirely: nodes keep all state in
// memory, the behavior of all prior releases.
type DurabilityPolicy struct {
	// Enabled turns the durability tier on. Off, the remaining fields are
	// ignored and the write path is untouched.
	Enabled bool
	// SyncEvery caps how many WAL records one storage flush (the blob-store
	// analogue of an fsync) may cover. 1 syncs every record in its own
	// flush (strongest, slowest); larger values group-commit up to N
	// records per flush — a record's ack still waits for the flush that
	// covers it, so grouping trades latency under light load for
	// throughput under contention. Zero means the default (64). Negative
	// disables the WAL entirely, leaving snapshot-only durability: acks
	// never wait on cold storage and a crash loses everything after the
	// last checkpoint.
	SyncEvery int
	// SnapshotInterval is how often the background snapshotter checkpoints
	// per-object state and truncates the log behind it. Zero means the
	// default (2s); negative disables checkpointing (the log grows
	// unboundedly — tests only).
	SnapshotInterval time.Duration
	// SegmentBytes is the WAL segment roll threshold: once the open
	// segment reaches this size it is sealed and a new one started. Each
	// flush rewrites the open segment blob (object stores cannot append),
	// so the threshold also bounds per-flush write amplification. Zero
	// means the default (64 KiB).
	SegmentBytes int
}

// DefaultDurabilityPolicy is the configuration -wal defaults to when
// durability is requested without explicit numbers: group fsync of up to
// 64 records, 2s checkpoints, 64 KiB segments.
func DefaultDurabilityPolicy() DurabilityPolicy {
	return DurabilityPolicy{Enabled: true, SyncEvery: 64,
		SnapshotInterval: 2 * time.Second, SegmentBytes: 64 << 10}
}

// Normalized resolves the policy's defaulted fields (see the field docs);
// the layers below only ever see resolved values.
func (p DurabilityPolicy) Normalized() DurabilityPolicy {
	if !p.Enabled {
		return DurabilityPolicy{}
	}
	if p.SyncEvery == 0 {
		p.SyncEvery = 64
	}
	if p.SnapshotInterval == 0 {
		p.SnapshotInterval = 2 * time.Second
	}
	if p.SegmentBytes <= 0 {
		p.SegmentBytes = 64 << 10
	}
	return p
}

// WALEnabled reports whether committed deliveries are logged (false for
// snapshot-only durability, SyncEvery < 0).
func (p DurabilityPolicy) WALEnabled() bool { return p.Enabled && p.SyncEvery >= 0 }

// Snapshotting reports whether the background checkpointer runs.
func (p DurabilityPolicy) Snapshotting() bool { return p.Enabled && p.SnapshotInterval >= 0 }
