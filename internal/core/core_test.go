package core

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
)

func TestRefString(t *testing.T) {
	r := Ref{Type: "AtomicLong", Key: "counter"}
	if got, want := r.String(), "AtomicLong[counter]"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestRefIsZero(t *testing.T) {
	if !(Ref{}).IsZero() {
		t.Fatal("zero ref not reported as zero")
	}
	if (Ref{Type: "T"}).IsZero() {
		t.Fatal("non-zero ref reported as zero")
	}
}

func TestEncodeDecodeErrorRoundTrip(t *testing.T) {
	tests := []error{
		ErrWrongNode, ErrUnknownType, ErrUnknownMethod,
		ErrStopped, ErrRebalancing, ErrNoSuchObject,
	}
	for _, want := range tests {
		got := DecodeError(EncodeError(want))
		if !errors.Is(got, want) {
			t.Errorf("round trip of %v lost identity: got %v", want, got)
		}
	}
}

func TestDecodeErrorWrappedSentinel(t *testing.T) {
	wire := EncodeError(errors.Join()) // nil-ish
	if wire != "" {
		t.Fatalf("EncodeError(nil-join) = %q", wire)
	}
	err := DecodeError(ErrWrongNode.Error() + ": node 3 view 7")
	if !errors.Is(err, ErrWrongNode) {
		t.Fatalf("wrapped sentinel not recognised: %v", err)
	}
}

func TestDecodeErrorEmpty(t *testing.T) {
	if err := DecodeError(""); err != nil {
		t.Fatalf("DecodeError(\"\") = %v, want nil", err)
	}
}

func TestRegisterErrorSentinel(t *testing.T) {
	errCustom := errors.New("layer: custom failure")
	RegisterErrorSentinel(errCustom)
	RegisterErrorSentinel(errCustom) // idempotent
	if got := DecodeError(EncodeError(errCustom)); !errors.Is(got, errCustom) {
		t.Fatalf("registered sentinel lost identity: %v", got)
	}
	if got := DecodeError(errCustom.Error() + ": with context"); !errors.Is(got, errCustom) {
		t.Fatalf("wrapped registered sentinel not recognised: %v", got)
	}
}

func TestDecodeErrorUnknown(t *testing.T) {
	err := DecodeError("something else broke")
	if err == nil || err.Error() != "something else broke" {
		t.Fatalf("unknown error mangled: %v", err)
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	info := TypeInfo{Name: "X", New: func([]any) (Object, error) { return nil, nil }}
	if err := r.Register(info); err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup("X")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "X" {
		t.Fatalf("Lookup returned %q", got.Name)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	info := TypeInfo{Name: "X", New: func([]any) (Object, error) { return nil, nil }}
	if err := r.Register(info); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(info); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegistryRejectsInvalid(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(TypeInfo{Name: "", New: func([]any) (Object, error) { return nil, nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register(TypeInfo{Name: "Y"}); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestRegistryLookupUnknown(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}

func TestRegistryTypes(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"A", "B", "C"} {
		r.MustRegister(TypeInfo{Name: n, New: func([]any) (Object, error) { return nil, nil }})
	}
	if got := len(r.Types()); got != 3 {
		t.Fatalf("Types() has %d entries, want 3", got)
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on invalid info")
		}
	}()
	NewRegistry().MustRegister(TypeInfo{})
}

func TestInvocationCodecRoundTrip(t *testing.T) {
	inv := Invocation{
		Ref:     Ref{Type: "AtomicLong", Key: "k"},
		Method:  "AddAndGet",
		Args:    []any{int64(5), "tag", []float64{1, 2, 3}},
		Init:    []any{int64(0)},
		Persist: true,
	}
	data, err := EncodeInvocation(inv)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != inv.Ref || got.Method != inv.Method || !got.Persist {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Args[0].(int64) != 5 || got.Args[1].(string) != "tag" {
		t.Fatalf("args mismatch: %+v", got.Args)
	}
	if f := got.Args[2].([]float64); len(f) != 3 || f[2] != 3 {
		t.Fatalf("slice arg mismatch: %+v", f)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	resp := Response{Results: []any{int64(42), true}, Err: ""}
	data, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results[0].(int64) != 42 || got.Results[1].(bool) != true {
		t.Fatalf("results mismatch: %+v", got.Results)
	}
}

func TestDecodeInvocationGarbage(t *testing.T) {
	if _, err := DecodeInvocation([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded without error")
	}
	if _, err := DecodeResponse([]byte{0x01, 0x02}); err == nil {
		t.Fatal("garbage response decoded without error")
	}
}

func TestValueCodec(t *testing.T) {
	type payload struct {
		A int
		B []string
	}
	in := payload{A: 7, B: []string{"x", "y"}}
	data, err := EncodeValue(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeValue(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.A != 7 || len(out.B) != 2 || out.B[1] != "y" {
		t.Fatalf("value round trip mismatch: %+v", out)
	}
}

func TestArgHelpers(t *testing.T) {
	args := []any{int64(3), "s"}
	n, err := Arg[int64](args, 0)
	if err != nil || n != 3 {
		t.Fatalf("Arg[int64] = %v, %v", n, err)
	}
	s, err := Arg[string](args, 1)
	if err != nil || s != "s" {
		t.Fatalf("Arg[string] = %v, %v", s, err)
	}
	if _, err := Arg[int64](args, 5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := Arg[bool](args, 0); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestOptArg(t *testing.T) {
	v, err := OptArg[int64](nil, 0, 9)
	if err != nil || v != 9 {
		t.Fatalf("OptArg default = %v, %v", v, err)
	}
	v, err = OptArg[int64]([]any{int64(4)}, 0, 9)
	if err != nil || v != 4 {
		t.Fatalf("OptArg present = %v, %v", v, err)
	}
	if _, err := OptArg[int64]([]any{"no"}, 0, 9); err == nil {
		t.Fatal("OptArg type mismatch accepted")
	}
}

func TestNumberAsInt64(t *testing.T) {
	cases := []any{int(1), int32(1), int64(1), uint64(1), float32(1), float64(1)}
	for _, c := range cases {
		n, ok := NumberAsInt64(c)
		if !ok || n != 1 {
			t.Fatalf("NumberAsInt64(%T) = %v, %v", c, n, ok)
		}
	}
	if _, ok := NumberAsInt64("1"); ok {
		t.Fatal("string coerced to int64")
	}
}

func TestInt64Arg(t *testing.T) {
	if n, err := Int64Arg([]any{int(7)}, 0); err != nil || n != 7 {
		t.Fatalf("Int64Arg = %v, %v", n, err)
	}
	if _, err := Int64Arg([]any{}, 0); err == nil {
		t.Fatal("missing arg accepted")
	}
	if _, err := Int64Arg([]any{"x"}, 0); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestInvocationCodecProperty(t *testing.T) {
	f := func(typ, key, method string, a int64, b string, persist bool) bool {
		inv := Invocation{
			Ref:     Ref{Type: typ, Key: key},
			Method:  method,
			Args:    []any{a, b},
			Persist: persist,
		}
		data, err := EncodeInvocation(inv)
		if err != nil {
			return false
		}
		got, err := DecodeInvocation(data)
		if err != nil {
			return false
		}
		return got.Ref == inv.Ref && got.Method == method &&
			got.Persist == persist &&
			got.Args[0].(int64) == a && got.Args[1].(string) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ctlStub lets tests assert interface shape without a server.
type ctlStub struct{ ctx context.Context }

func (c ctlStub) Wait(func() bool) error   { return nil }
func (c ctlStub) Broadcast()               {}
func (c ctlStub) Context() context.Context { return c.ctx }

var _ Ctl = ctlStub{}
