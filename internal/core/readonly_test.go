package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestReadOnlyMethodRegistry(t *testing.T) {
	RegisterReadOnlyMethods("ROTestType", "Get", "Size")
	RegisterReadOnlyMethods("ROTestType", "Get", "Contains") // idempotent union
	if !IsReadOnlyMethod("ROTestType", "Get") {
		t.Fatal("Get should be read-only")
	}
	if !IsReadOnlyMethod("ROTestType", "Contains") {
		t.Fatal("Contains should be read-only after second registration")
	}
	if IsReadOnlyMethod("ROTestType", "Set") {
		t.Fatal("unregistered method must be conservatively a write")
	}
	if IsReadOnlyMethod("NoSuchType", "Get") {
		t.Fatal("unknown type must be conservatively a write")
	}
	got := ReadOnlyMethodsOf("ROTestType")
	want := []string{"Contains", "Get", "Size"}
	if len(got) != len(want) {
		t.Fatalf("ReadOnlyMethodsOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadOnlyMethodsOf = %v, want %v", got, want)
		}
	}
	// Empty registrations are no-ops, not panics.
	RegisterReadOnlyMethods("", "Get")
	RegisterReadOnlyMethods("ROTestType")
	RegisterReadOnlyMethods("ROTestType", "")
	if IsReadOnlyMethod("ROTestType", "") {
		t.Fatal("empty method name must not register")
	}
}

func TestReadOnlyFlagRoundTrip(t *testing.T) {
	for _, stamped := range []bool{false, true} {
		inv := Invocation{
			Ref:      Ref{Type: "AtomicLong", Key: "k"},
			Method:   "Get",
			Persist:  true,
			ReadOnly: true,
		}
		if stamped {
			inv.ClientID, inv.Seq = 7, 42
		}
		data, err := EncodeInvocation(inv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeInvocation(data)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ReadOnly {
			t.Fatalf("stamped=%v: ReadOnly flag lost in round trip", stamped)
		}
		if !got.Persist || got.ClientID != inv.ClientID || got.Seq != inv.Seq {
			t.Fatalf("stamped=%v: neighbor fields corrupted: %+v", stamped, got)
		}
	}
}

func TestReadOnlyLegacyGobFrameDecodes(t *testing.T) {
	// A legacy whole-gob frame has no flags byte at all; it must decode
	// with ReadOnly unset (conservatively a write).
	RegisterValueTypes()
	var buf bytes.Buffer
	inv := Invocation{Ref: Ref{Type: "AtomicLong", Key: "k"}, Method: "Get"}
	if err := gob.NewEncoder(&buf).Encode(inv); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInvocation(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.ReadOnly {
		t.Fatal("legacy frame must decode with ReadOnly unset")
	}
	if got.Method != "Get" || got.Ref.Type != "AtomicLong" {
		t.Fatalf("legacy decode corrupted: %+v", got)
	}
}
