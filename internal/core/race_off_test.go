//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-budget tests skip themselves under -race: the detector's
// shadow-memory bookkeeping allocates, so AllocsPerRun is meaningless.
const raceEnabled = false
