package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sampleInvocation exercises every built-in tag type in one message.
func sampleInvocation() Invocation {
	return Invocation{
		Ref:    Ref{Type: "KVMap", Key: "table/7"},
		Method: "MultiPut",
		Args: []any{
			nil, true, false,
			int(-42), int32(7), int64(-1 << 40), uint64(1 << 60),
			float32(1.5), float64(math.Pi),
			"hello, wire", []byte{0, 1, 2, 255},
			[]int{3, -1, 4}, []int64{-1, 1 << 50}, []float64{1.25, -2.5},
			[][]float64{{1, 2}, {3}},
			[]string{"a", "bb"},
			[]any{int64(1), "nested", []any{false}},
			map[string]any{"k": int64(9), "s": "v"},
			map[string]string{"a": "b"},
			map[string]float64{"pi": math.Pi},
			map[string]int64{"n": -7},
		},
		Init:    []any{int64(3), "init"},
		Persist: true,
		Trace:   TraceContext{TraceID: 0xDEADBEEF, SpanID: 42},
	}
}

func TestWireInvocationRoundTrip(t *testing.T) {
	in := sampleInvocation()
	data, err := EncodeInvocation(in)
	if err != nil {
		t.Fatal(err)
	}
	if !isWire(data) {
		t.Fatal("EncodeInvocation did not produce fast-codec framing")
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

func TestWireResponseRoundTrip(t *testing.T) {
	in := Response{
		Results: []any{int64(99), "ok", []float64{1, 2, 3}, map[string]any{"x": true}},
		Err:     "dso: object rebalancing in progress",
	}
	data, err := EncodeResponse(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

// TestWireConcreteTypesPreserved pins the contract that decode reproduces
// the exact concrete types gob used to deliver, so object implementations'
// type switches keep working.
func TestWireConcreteTypesPreserved(t *testing.T) {
	args := sampleInvocation().Args
	data, err := EncodeInvocation(Invocation{Ref: Ref{Type: "T", Key: "k"}, Method: "m", Args: args})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range args {
		if want == nil {
			if out.Args[i] != nil {
				t.Errorf("arg %d: want nil, got %T", i, out.Args[i])
			}
			continue
		}
		if got, want := reflect.TypeOf(out.Args[i]), reflect.TypeOf(want); got != want {
			t.Errorf("arg %d: concrete type %v, want %v", i, got, want)
		}
	}
}

// customPoint is a user type outside the built-in tag set; it must travel
// through the per-value gob fallback under the RegisterValue contract.
type customPoint struct{ X, Y int64 }

func TestWireGobFallbackForRegisteredValue(t *testing.T) {
	RegisterValue(customPoint{})
	before := ReadCodecStats()
	in := Invocation{
		Ref:    Ref{Type: "T", Key: "k"},
		Method: "m",
		Args:   []any{customPoint{X: 3, Y: -9}, int64(5)},
	}
	data, err := EncodeInvocation(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("fallback round trip mismatch: %#v vs %#v", in, out)
	}
	after := ReadCodecStats()
	if after.FallbackValues <= before.FallbackValues {
		t.Error("fallback counter did not advance")
	}
	if after.FastEncodes <= before.FastEncodes || after.FastDecodes <= before.FastDecodes {
		t.Error("fast-codec counters did not advance")
	}
}

func TestWireUnregisteredTypeFails(t *testing.T) {
	type unregistered struct{ Z chan int } // gob cannot encode channels
	_, err := EncodeInvocation(Invocation{
		Ref: Ref{Type: "T", Key: "k"}, Method: "m",
		Args: []any{unregistered{}},
	})
	if err == nil {
		t.Fatal("unencodable argument accepted")
	}
}

// TestLegacyGobFramesStillDecode is the cross-version wire-compatibility
// test: frames produced by the pre-codec (whole-message gob) format must
// keep decoding, because a rolling upgrade has old clients talking to new
// servers and vice versa.
func TestLegacyGobFramesStillDecode(t *testing.T) {
	in := sampleInvocation()
	legacy, err := encodeInvocationGob(in)
	if err != nil {
		t.Fatal(err)
	}
	if isWire(legacy) {
		t.Fatal("legacy gob frame unexpectedly carries the codec magic")
	}
	before := ReadCodecStats()
	out, err := DecodeInvocation(legacy)
	if err != nil {
		t.Fatalf("legacy invocation frame rejected: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("legacy round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
	if ReadCodecStats().LegacyGobDecodes <= before.LegacyGobDecodes {
		t.Error("legacy decode counter did not advance")
	}

	resp := Response{Results: []any{int64(1)}, Err: "boom"}
	legacyResp, err := encodeResponseGob(resp)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, err := DecodeResponse(legacyResp)
	if err != nil {
		t.Fatalf("legacy response frame rejected: %v", err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("legacy response mismatch: %#v vs %#v", resp, gotResp)
	}
}

// TestGobFirstByteNeverMagic documents why the magic sniff is sound: a
// gob stream begins with a message length whose first byte is either a
// small direct value (<= 0x7F) or a byte-count marker (>= 0xF8), never
// 0xC7. If this ever fails, the codec needs real framing.
func TestGobFirstByteNeverMagic(t *testing.T) {
	for _, v := range []any{
		sampleInvocation(),
		Response{Err: strings.Repeat("x", 500)},
		Response{Results: []any{make([]byte, 1<<16)}},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		first := buf.Bytes()[0]
		if first == wireMagic {
			t.Fatalf("gob stream begins with codec magic 0x%02x", first)
		}
		if first > 0x7F && first < 0xF8 {
			t.Fatalf("gob first byte 0x%02x outside documented ranges", first)
		}
	}
}

func TestWireRejectsUnknownVersion(t *testing.T) {
	data, err := EncodeInvocation(sampleInvocation())
	if err != nil {
		t.Fatal(err)
	}
	data[1] = wireVersion + 1
	if _, err := DecodeInvocation(data); err == nil {
		t.Fatal("unknown codec version accepted")
	}
}

func TestWireRejectsCrossedKinds(t *testing.T) {
	inv, err := EncodeInvocation(sampleInvocation())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(inv); err == nil {
		t.Fatal("invocation frame decoded as response")
	}
}

// TestWireTruncationNeverPanics walks every prefix of a valid message
// through the decoder: all must fail cleanly (or, for the full message,
// succeed), never panic or over-allocate.
func TestWireTruncationNeverPanics(t *testing.T) {
	data, err := EncodeInvocation(sampleInvocation())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i++ {
		if _, err := DecodeInvocation(data[:i]); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) decoded successfully", i, len(data))
		}
	}
	if _, err := DecodeInvocation(data); err != nil {
		t.Fatal(err)
	}
}

// TestWireHostileCountRejected feeds a frame whose value count claims far
// more elements than the payload could hold; the decoder must reject it
// without attempting the allocation.
func TestWireHostileCountRejected(t *testing.T) {
	data := []byte{wireMagic, wireVersion, wireInvocation,
		1, 'T', 1, 'k', 1, 'm',
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, // huge arg count
	}
	if _, err := DecodeInvocation(data); err == nil {
		t.Fatal("hostile count accepted")
	}
}

func TestAppendInvocationReusesBuffer(t *testing.T) {
	inv := sampleInvocation()
	buf := make([]byte, 0, 4096)
	out, err := AppendInvocation(buf, inv)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Error("AppendInvocation reallocated despite sufficient capacity")
	}
	got, err := DecodeInvocation(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inv, got) {
		t.Fatal("round trip through reused buffer mismatch")
	}
}

// TestWireDecodeDoesNotAliasInput pins the pooled-buffer contract: after
// decoding, mutating the input frame must not affect the decoded message.
func TestWireDecodeDoesNotAliasInput(t *testing.T) {
	in := Invocation{
		Ref: Ref{Type: "T", Key: "k"}, Method: "m",
		Args: []any{[]byte{1, 2, 3}, "str"},
	}
	data, err := EncodeInvocation(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeInvocation(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xAA
	}
	if !reflect.DeepEqual(out.Args[0], []byte{1, 2, 3}) {
		t.Error("decoded []byte aliases the input frame")
	}
	if out.Args[1] != "str" {
		t.Error("decoded string corrupted after input reuse")
	}
}
