// Package loc computes the "lines changed" metric of the paper's Table 4:
// how many lines differ between the plain multi-threaded version of an
// application and its Crucial port. The pairs of program variants live in
// testdata/ and mirror this repository's real applications; the diff is a
// standard LCS line diff.
package loc

import (
	"embed"
	"fmt"
	"strings"
)

//go:embed testdata
var variants embed.FS

// Apps lists the application pairs shipped with the repository, in the
// paper's Table 4 order.
func Apps() []string {
	return []string{"montecarlo", "logreg", "kmeans", "santa"}
}

// Stats is one Table 4 row.
type Stats struct {
	App string
	// TotalLines is the line count of the Crucial variant; ChangedLines
	// the lines in it that are not part of the longest common
	// subsequence with the local variant (i.e. added or modified).
	TotalLines   int
	ChangedLines int
}

// Percent is the changed fraction in percent.
func (s Stats) Percent() float64 {
	if s.TotalLines == 0 {
		return 0
	}
	return 100 * float64(s.ChangedLines) / float64(s.TotalLines)
}

// Diff counts lines of b that are not in the LCS of a and b.
func Diff(a, b string) Stats {
	al := splitLines(a)
	bl := splitLines(b)
	lcs := lcsLength(al, bl)
	return Stats{TotalLines: len(bl), ChangedLines: len(bl) - lcs}
}

func splitLines(s string) []string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// lcsLength is the classic dynamic program over lines.
func lcsLength(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// AppStats diffs one shipped application pair.
func AppStats(app string) (Stats, error) {
	local, err := variants.ReadFile(fmt.Sprintf("testdata/%s/local.go.txt", app))
	if err != nil {
		return Stats{}, fmt.Errorf("loc: unknown app %q: %w", app, err)
	}
	ported, err := variants.ReadFile(fmt.Sprintf("testdata/%s/crucial.go.txt", app))
	if err != nil {
		return Stats{}, fmt.Errorf("loc: missing crucial variant for %q: %w", app, err)
	}
	st := Diff(string(local), string(ported))
	st.App = app
	return st, nil
}

// AllStats returns every shipped pair's stats in table order.
func AllStats() ([]Stats, error) {
	apps := Apps()
	out := make([]Stats, 0, len(apps))
	for _, app := range apps {
		st, err := AppStats(app)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}
