package loc

import "testing"

func TestDiffIdentical(t *testing.T) {
	st := Diff("a\nb\nc\n", "a\nb\nc\n")
	if st.ChangedLines != 0 || st.TotalLines != 3 {
		t.Fatalf("identical diff = %+v", st)
	}
}

func TestDiffAllChanged(t *testing.T) {
	st := Diff("a\nb\n", "x\ny\n")
	if st.ChangedLines != 2 {
		t.Fatalf("changed = %d", st.ChangedLines)
	}
}

func TestDiffInsertion(t *testing.T) {
	st := Diff("a\nc\n", "a\nb\nc\n")
	if st.ChangedLines != 1 || st.TotalLines != 3 {
		t.Fatalf("insertion diff = %+v", st)
	}
}

func TestDiffModification(t *testing.T) {
	st := Diff("a\nb\nc\n", "a\nB\nc\n")
	if st.ChangedLines != 1 {
		t.Fatalf("modification diff = %+v", st)
	}
}

func TestDiffEmpty(t *testing.T) {
	st := Diff("", "")
	if st.ChangedLines != 0 || st.TotalLines != 0 {
		t.Fatalf("empty diff = %+v", st)
	}
	st = Diff("", "a\n")
	if st.ChangedLines != 1 {
		t.Fatalf("from-empty diff = %+v", st)
	}
}

func TestDiffCRLF(t *testing.T) {
	st := Diff("a\r\nb\r\n", "a\nb\n")
	if st.ChangedLines != 0 {
		t.Fatalf("CRLF-normalized diff = %+v", st)
	}
}

func TestPercent(t *testing.T) {
	st := Stats{TotalLines: 200, ChangedLines: 10}
	if st.Percent() != 5 {
		t.Fatalf("percent = %v", st.Percent())
	}
	if (Stats{}).Percent() != 0 {
		t.Fatal("zero stats percent != 0")
	}
}

func TestAppStatsAllApps(t *testing.T) {
	for _, app := range Apps() {
		st, err := AppStats(app)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if st.TotalLines < 20 {
			t.Fatalf("%s: only %d lines; variant pair too small to be meaningful", app, st.TotalLines)
		}
		if st.ChangedLines == 0 {
			t.Fatalf("%s: no changed lines; the port must differ somewhere", app)
		}
		// The paper's headline: porting to Crucial changes only a small
		// fraction of the code (<3% in Java, where annotations and
		// AspectJ leave call sites untouched). Go has no annotations, so
		// every shared-object call site gains a context argument and the
		// fraction is higher; structurally the programs stay identical.
		if st.Percent() > 50 {
			t.Fatalf("%s: %.1f%% changed; the port should be mostly unchanged code", app, st.Percent())
		}
	}
}

func TestAppStatsUnknown(t *testing.T) {
	if _, err := AppStats("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAllStatsOrder(t *testing.T) {
	stats, err := AllStats()
	if err != nil {
		t.Fatal(err)
	}
	apps := Apps()
	if len(stats) != len(apps) {
		t.Fatalf("stats len = %d", len(stats))
	}
	for i := range apps {
		if stats[i].App != apps[i] {
			t.Fatalf("stats[%d] = %s, want %s", i, stats[i].App, apps[i])
		}
	}
}
