// Package linearizability implements a Wing & Gill style checker for
// concurrent operation histories, used by the test suite to verify the DSO
// layer's central guarantee (paper Section 3.1: shared objects are
// linearizable — "concurrent method invocations behave as if they were
// executed by a single thread").
//
// A history is a set of operations with real-time invocation/response
// intervals. The checker searches for a legal sequential witness: a total
// order of all operations that (1) respects real time — if op A responded
// before op B was invoked, A precedes B — and (2) is legal for a given
// sequential specification. The search is exponential in the worst case
// but fast for the small, heavily-concurrent histories the tests record.
package linearizability

import (
	"fmt"
	"sort"
	"time"
)

// Operation is one invocation in a history.
type Operation struct {
	// ClientID identifies the issuing client (diagnostics only).
	ClientID int
	// Input describes the call; Output the observed result. Their
	// interpretation belongs to the Model.
	Input  any
	Output any
	// Call and Return are the real-time bounds of the operation.
	Call   time.Time
	Return time.Time
}

// Model is a sequential specification: an initial state and a step
// function that, given a state and an operation, reports whether the
// operation's observed output is legal and what the next state is.
type Model struct {
	// Init produces the initial state.
	Init func() any
	// Step applies op to state. ok reports whether op's Output is legal
	// from this state; next is the resulting state (ignored when !ok).
	Step func(state any, op Operation) (next any, ok bool)
	// Equal compares states for memoization. Nil disables memoization.
	Equal func(a, b any) bool
}

// Check reports whether history is linearizable with respect to the model.
// It returns a witness order (indices into history) when it is.
func Check(model Model, history []Operation) (witness []int, ok bool) {
	n := len(history)
	if n == 0 {
		return nil, true
	}
	if n > 20 {
		// The exhaustive search is for small histories; refuse rather
		// than burn unbounded CPU (tests keep histories small).
		panic(fmt.Sprintf("linearizability: history of %d ops too large for exhaustive check", n))
	}

	// Precompute the strict real-time precedence relation:
	// mustPrecede[i] is the set of ops that must come before i.
	mustPrecede := make([][]bool, n)
	for i := range mustPrecede {
		mustPrecede[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i != j && history[j].Return.Before(history[i].Call) {
				mustPrecede[i][j] = true
			}
		}
	}

	type frame struct {
		state any
		used  uint32
		order []int
	}
	// Depth-first search over permutations consistent with real time.
	var dfs func(f frame) ([]int, bool)
	dfs = func(f frame) ([]int, bool) {
		if len(f.order) == n {
			out := make([]int, n)
			copy(out, f.order)
			return out, true
		}
		for i := 0; i < n; i++ {
			if f.used&(1<<uint(i)) != 0 {
				continue
			}
			// Every operation that must precede i must already be placed.
			eligible := true
			for j := 0; j < n; j++ {
				if mustPrecede[i][j] && f.used&(1<<uint(j)) == 0 {
					eligible = false
					break
				}
			}
			if !eligible {
				continue
			}
			next, legal := model.Step(f.state, history[i])
			if !legal {
				continue
			}
			if w, ok := dfs(frame{state: next, used: f.used | 1<<uint(i), order: append(f.order, i)}); ok {
				return w, true
			}
			f.order = f.order[:len(f.order):len(f.order)] // defensive re-slice
		}
		return nil, false
	}
	return dfs(frame{state: model.Init()})
}

// --- ready-made models for the object library ---

// CounterOp is an operation on an AtomicLong-like counter.
type CounterOp struct {
	// Kind is "add" (AddAndGet) or "get".
	Kind  string
	Delta int64
}

// CounterModel specifies the AtomicLong used by the tests: AddAndGet
// returns the post-increment value; Get returns the current value.
func CounterModel() Model {
	return Model{
		Init: func() any { return int64(0) },
		Step: func(state any, op Operation) (any, bool) {
			v := state.(int64)
			in := op.Input.(CounterOp)
			switch in.Kind {
			case "add":
				v += in.Delta
				return v, op.Output.(int64) == v
			case "get":
				return v, op.Output.(int64) == v
			default:
				return v, false
			}
		},
		Equal: func(a, b any) bool { return a.(int64) == b.(int64) },
	}
}

// RegisterOp is an operation on a read/write register.
type RegisterOp struct {
	// Kind is "write" or "read".
	Kind  string
	Value int64
}

// RegisterModel specifies an atomic register: reads return the most
// recently written value (0 initially).
func RegisterModel() Model {
	return Model{
		Init: func() any { return int64(0) },
		Step: func(state any, op Operation) (any, bool) {
			v := state.(int64)
			in := op.Input.(RegisterOp)
			switch in.Kind {
			case "write":
				return in.Value, true
			case "read":
				return v, op.Output.(int64) == v
			default:
				return v, false
			}
		},
		Equal: func(a, b any) bool { return a.(int64) == b.(int64) },
	}
}

// MapOp is an operation on a Map-like object (objects.Map semantics).
type MapOp struct {
	// Kind is "put", "get" or "remove".
	Kind  string
	Key   string
	Value int64
}

// MapOut is the observed result of a MapOp: Put and Remove return the
// previous mapping, Get the current one. OK mirrors the object's "had a
// mapping" boolean; Value is meaningful only when OK.
type MapOut struct {
	Value int64
	OK    bool
}

// MapModel specifies the Map object: Put returns (old, had), Get returns
// (value, ok), Remove returns (old, had).
func MapModel() Model {
	type state = map[string]int64
	clone := func(s state) state {
		next := make(state, len(s))
		for k, v := range s {
			next[k] = v
		}
		return next
	}
	lookup := func(s state, k string) MapOut {
		v, ok := s[k]
		return MapOut{Value: v, OK: ok}
	}
	return Model{
		Init: func() any { return state{} },
		Step: func(st any, op Operation) (any, bool) {
			s := st.(state)
			in := op.Input.(MapOp)
			out := op.Output.(MapOut)
			switch in.Kind {
			case "put":
				if lookup(s, in.Key) != out {
					return s, false
				}
				next := clone(s)
				next[in.Key] = in.Value
				return next, true
			case "get":
				return s, lookup(s, in.Key) == out
			case "remove":
				if lookup(s, in.Key) != out {
					return s, false
				}
				next := clone(s)
				delete(next, in.Key)
				return next, true
			default:
				return s, false
			}
		},
		Equal: func(a, b any) bool {
			ma, mb := a.(state), b.(state)
			if len(ma) != len(mb) {
				return false
			}
			for k, v := range ma {
				if w, ok := mb[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	}
}

// ListOp is an operation on a List-like object (objects.List semantics).
type ListOp struct {
	// Kind is "add", "get" or "size".
	Kind  string
	Value int64 // the element for "add"
	Index int64 // the position for "get"
}

// ListModel specifies the List object: Add appends and returns the new
// element's index, Get returns the element at an index, Size the length.
// Histories must only Get indices that were already added (the object
// errors on out-of-range access; the model treats it as illegal).
func ListModel() Model {
	type state = []int64
	return Model{
		Init: func() any { return state{} },
		Step: func(st any, op Operation) (any, bool) {
			s := st.(state)
			in := op.Input.(ListOp)
			switch in.Kind {
			case "add":
				if op.Output.(int64) != int64(len(s)) {
					return s, false
				}
				next := make(state, len(s)+1)
				copy(next, s)
				next[len(s)] = in.Value
				return next, true
			case "get":
				if in.Index < 0 || in.Index >= int64(len(s)) {
					return s, false
				}
				return s, s[in.Index] == op.Output.(int64)
			case "size":
				return s, op.Output.(int64) == int64(len(s))
			default:
				return s, false
			}
		},
		Equal: func(a, b any) bool {
			sa, sb := a.(state), b.(state)
			if len(sa) != len(sb) {
				return false
			}
			for i := range sa {
				if sa[i] != sb[i] {
					return false
				}
			}
			return true
		},
	}
}

// SortByCall orders a history by invocation time (diagnostics and
// deterministic iteration).
func SortByCall(history []Operation) {
	sort.Slice(history, func(i, j int) bool {
		return history[i].Call.Before(history[j].Call)
	})
}
