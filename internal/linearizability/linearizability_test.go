package linearizability

import (
	"testing"
	"time"
)

// op builds an operation with integer timestamps for readability.
func op(client int, in, out any, call, ret int64) Operation {
	base := time.Unix(0, 0)
	return Operation{
		ClientID: client,
		Input:    in,
		Output:   out,
		Call:     base.Add(time.Duration(call) * time.Millisecond),
		Return:   base.Add(time.Duration(ret) * time.Millisecond),
	}
}

func TestEmptyHistory(t *testing.T) {
	if _, ok := Check(CounterModel(), nil); !ok {
		t.Fatal("empty history not linearizable")
	}
}

func TestSequentialCounterLegal(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "add", Delta: 1}, int64(1), 0, 10),
		op(1, CounterOp{Kind: "add", Delta: 1}, int64(2), 20, 30),
		op(1, CounterOp{Kind: "get"}, int64(2), 40, 50),
	}
	if _, ok := Check(CounterModel(), h); !ok {
		t.Fatal("legal sequential history rejected")
	}
}

func TestSequentialCounterIllegal(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "add", Delta: 1}, int64(1), 0, 10),
		op(1, CounterOp{Kind: "get"}, int64(0), 20, 30), // stale read
	}
	if _, ok := Check(CounterModel(), h); ok {
		t.Fatal("stale sequential read accepted")
	}
}

// Concurrent operations may linearize in either order.
func TestConcurrentAddsEitherOrder(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "add", Delta: 1}, int64(2), 0, 100),
		op(2, CounterOp{Kind: "add", Delta: 1}, int64(1), 0, 100),
	}
	w, ok := Check(CounterModel(), h)
	if !ok {
		t.Fatal("valid concurrent history rejected")
	}
	// Witness must place client 2's op (returning 1) first.
	if len(w) != 2 || w[0] != 1 {
		t.Fatalf("witness %v, want [1 0]", w)
	}
}

// Real-time order must be respected: a later op cannot linearize before an
// op that already completed.
func TestRealTimeViolation(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "add", Delta: 1}, int64(1), 0, 10),
		// This op starts after the first returned, yet observes the
		// counter as if it ran first.
		op(2, CounterOp{Kind: "get"}, int64(0), 20, 30),
	}
	if _, ok := Check(CounterModel(), h); ok {
		t.Fatal("real-time violation accepted")
	}
}

func TestRegisterLegalConcurrentOverlap(t *testing.T) {
	// Write(5) overlaps a read that still sees 0: legal (read linearizes
	// before the write).
	h := []Operation{
		op(1, RegisterOp{Kind: "write", Value: 5}, nil, 0, 100),
		op(2, RegisterOp{Kind: "read"}, int64(0), 10, 20),
	}
	if _, ok := Check(RegisterModel(), h); !ok {
		t.Fatal("legal overlapping read rejected")
	}
}

func TestRegisterLostUpdate(t *testing.T) {
	// Two sequential writes then a read of the first value: illegal.
	h := []Operation{
		op(1, RegisterOp{Kind: "write", Value: 5}, nil, 0, 10),
		op(1, RegisterOp{Kind: "write", Value: 7}, nil, 20, 30),
		op(2, RegisterOp{Kind: "read"}, int64(5), 40, 50),
	}
	if _, ok := Check(RegisterModel(), h); ok {
		t.Fatal("lost update accepted")
	}
}

func TestRegisterReadBetweenWrites(t *testing.T) {
	h := []Operation{
		op(1, RegisterOp{Kind: "write", Value: 5}, nil, 0, 10),
		op(2, RegisterOp{Kind: "read"}, int64(5), 15, 25),
		op(1, RegisterOp{Kind: "write", Value: 7}, nil, 30, 40),
		op(2, RegisterOp{Kind: "read"}, int64(7), 45, 55),
	}
	if _, ok := Check(RegisterModel(), h); !ok {
		t.Fatal("legal interleaving rejected")
	}
}

// The classic non-linearizable pattern: two concurrent adds both claim the
// same post-value.
func TestDuplicatePostValueRejected(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "add", Delta: 1}, int64(1), 0, 100),
		op(2, CounterOp{Kind: "add", Delta: 1}, int64(1), 0, 100),
	}
	if _, ok := Check(CounterModel(), h); ok {
		t.Fatal("duplicate AddAndGet result accepted (not linearizable)")
	}
}

func TestWitnessIsLegalOrder(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "add", Delta: 2}, int64(2), 0, 50),
		op(2, CounterOp{Kind: "add", Delta: 3}, int64(5), 10, 60),
		op(3, CounterOp{Kind: "get"}, int64(5), 70, 80),
	}
	w, ok := Check(CounterModel(), h)
	if !ok {
		t.Fatal("valid history rejected")
	}
	// Replay the witness to double-check legality.
	model := CounterModel()
	state := model.Init()
	for _, idx := range w {
		var legal bool
		state, legal = model.Step(state, h[idx])
		if !legal {
			t.Fatalf("witness replay illegal at index %d", idx)
		}
	}
}

func TestSortByCall(t *testing.T) {
	h := []Operation{
		op(1, CounterOp{Kind: "get"}, int64(0), 30, 40),
		op(2, CounterOp{Kind: "get"}, int64(0), 10, 20),
	}
	SortByCall(h)
	if h[0].ClientID != 2 {
		t.Fatal("SortByCall did not order by invocation time")
	}
}

func TestTooLargeHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized history did not panic")
		}
	}()
	h := make([]Operation, 21)
	for i := range h {
		h[i] = op(i, CounterOp{Kind: "get"}, int64(0), int64(i*10), int64(i*10+5))
	}
	_, _ = Check(CounterModel(), h)
}
