package linearizability

import (
	"testing"
	"time"
)

// seqHistory builds a strictly sequential history (op i returns before op
// i+1 is called), so only the listed order itself can be the witness.
func seqHistory(ops []Operation) []Operation {
	base := time.Now()
	for i := range ops {
		ops[i].Call = base.Add(time.Duration(2*i) * time.Millisecond)
		ops[i].Return = base.Add(time.Duration(2*i+1) * time.Millisecond)
	}
	return ops
}

func TestMapModelAcceptsLegalHistory(t *testing.T) {
	h := seqHistory([]Operation{
		{Input: MapOp{Kind: "put", Key: "a", Value: 1}, Output: MapOut{}},
		{Input: MapOp{Kind: "get", Key: "a"}, Output: MapOut{Value: 1, OK: true}},
		{Input: MapOp{Kind: "put", Key: "a", Value: 2}, Output: MapOut{Value: 1, OK: true}},
		{Input: MapOp{Kind: "remove", Key: "a"}, Output: MapOut{Value: 2, OK: true}},
		{Input: MapOp{Kind: "get", Key: "a"}, Output: MapOut{}},
	})
	if _, ok := Check(MapModel(), h); !ok {
		t.Fatal("legal map history rejected")
	}
}

func TestMapModelRejectsLostUpdate(t *testing.T) {
	// The second put claims there was no previous mapping — as if the
	// first put was lost (the signature of a duplicated/misapplied op).
	h := seqHistory([]Operation{
		{Input: MapOp{Kind: "put", Key: "a", Value: 1}, Output: MapOut{}},
		{Input: MapOp{Kind: "put", Key: "a", Value: 2}, Output: MapOut{}},
	})
	if _, ok := Check(MapModel(), h); ok {
		t.Fatal("map history with a lost update accepted")
	}
}

func TestMapModelAllowsConcurrentReorder(t *testing.T) {
	// Two overlapping puts on one key: either order is a legal witness, so
	// a get observing either previous value must be accepted.
	base := time.Now()
	h := []Operation{
		{Input: MapOp{Kind: "put", Key: "k", Value: 1}, Output: MapOut{},
			Call: base, Return: base.Add(10 * time.Millisecond)},
		{Input: MapOp{Kind: "put", Key: "k", Value: 2}, Output: MapOut{Value: 1, OK: true},
			Call: base.Add(1 * time.Millisecond), Return: base.Add(9 * time.Millisecond)},
		{Input: MapOp{Kind: "get", Key: "k"}, Output: MapOut{Value: 2, OK: true},
			Call: base.Add(11 * time.Millisecond), Return: base.Add(12 * time.Millisecond)},
	}
	if _, ok := Check(MapModel(), h); !ok {
		t.Fatal("legal concurrent map history rejected")
	}
}

func TestListModelAcceptsLegalHistory(t *testing.T) {
	h := seqHistory([]Operation{
		{Input: ListOp{Kind: "add", Value: 10}, Output: int64(0)},
		{Input: ListOp{Kind: "add", Value: 20}, Output: int64(1)},
		{Input: ListOp{Kind: "get", Index: 0}, Output: int64(10)},
		{Input: ListOp{Kind: "size"}, Output: int64(2)},
	})
	if _, ok := Check(ListModel(), h); !ok {
		t.Fatal("legal list history rejected")
	}
}

func TestListModelRejectsDuplicatedAppend(t *testing.T) {
	// Two adds reporting the same index: the double-apply signature when a
	// retried append executed twice.
	h := seqHistory([]Operation{
		{Input: ListOp{Kind: "add", Value: 10}, Output: int64(0)},
		{Input: ListOp{Kind: "add", Value: 20}, Output: int64(0)},
	})
	if _, ok := Check(ListModel(), h); ok {
		t.Fatal("list history with duplicated append accepted")
	}
}

func TestListModelRejectsWrongElement(t *testing.T) {
	h := seqHistory([]Operation{
		{Input: ListOp{Kind: "add", Value: 10}, Output: int64(0)},
		{Input: ListOp{Kind: "get", Index: 0}, Output: int64(99)},
	})
	if _, ok := Check(ListModel(), h); ok {
		t.Fatal("list history with wrong element accepted")
	}
}
