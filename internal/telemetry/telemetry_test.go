package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every hook must be a no-op on nil receivers: this is the disabled
	// telemetry path threaded through faas/client/server.
	var tel *Telemetry
	if tel.Tracer() != nil || tel.Metrics() != nil {
		t.Fatal("nil telemetry handed out non-nil components")
	}
	if !tel.Snapshot().Empty() {
		t.Fatal("nil telemetry snapshot not empty")
	}

	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "x")
	if span != nil {
		t.Fatal("nil tracer returned a span")
	}
	span.SetAttr("k", "v")
	span.AddTiming("k", time.Second)
	span.End()
	if span.Context().Valid() {
		t.Fatal("nil span has valid context")
	}
	if tr.Spans() != nil || tr.Recorded() != 0 {
		t.Fatal("nil tracer retained spans")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span installed in context")
	}

	var reg *Registry
	reg.Counter("c").Inc()
	reg.Gauge("g").Add(1)
	reg.Float("f").Add(1.5)
	reg.Histogram("h").Observe(time.Second)
	if reg.Counter("c").Value() != 0 || reg.Histogram("h").Count() != 0 {
		t.Fatal("nil registry recorded values")
	}
	if !reg.Snapshot().Empty() {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCountersGaugesFloats(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	r.Gauge("g").Add(5)
	r.Gauge("g").Add(-2)
	r.Float("f").Add(1.25)
	r.Float("f").Add(2.5)

	s := r.Snapshot()
	if s.Counters["a"] != 4 {
		t.Fatalf("counter = %d, want 4", s.Counters["a"])
	}
	if s.Gauges["g"] != 3 {
		t.Fatalf("gauge = %d, want 3", s.Gauges["g"])
	}
	if s.Floats["f"] != 3.75 {
		t.Fatalf("float = %v, want 3.75", s.Floats["f"])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 100 samples spread 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Exponential buckets estimate within a factor of ~2.
	if s.P50 < 20*time.Millisecond || s.P50 > 100*time.Millisecond {
		t.Fatalf("p50 = %v, want around 50ms", s.P50)
	}
	if s.P99 < s.P50 {
		t.Fatalf("p99 %v < p50 %v", s.P99, s.P50)
	}
	if s.Mean() < 40*time.Millisecond || s.Mean() > 60*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", s.Mean())
	}
}

func TestHistogramMergeAndFormat(t *testing.T) {
	a, b := newHistogram(), newHistogram()
	a.Observe(time.Millisecond)
	b.Observe(100 * time.Millisecond)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 2 || m.Min != time.Millisecond || m.Max != 100*time.Millisecond {
		t.Fatalf("merge = %+v", m)
	}

	r := NewRegistry()
	r.Counter("faas.invocations").Add(7)
	r.Histogram("server.exec").Observe(2 * time.Millisecond)
	out := r.Snapshot().String()
	if !strings.Contains(out, "faas.invocations") || !strings.Contains(out, "p99=") {
		t.Fatalf("format output missing fields:\n%s", out)
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("c").Add(1)
	r2.Counter("c").Add(2)
	r2.Counter("only2").Inc()
	r1.Histogram("h").Observe(time.Millisecond)
	r2.Histogram("h").Observe(3 * time.Millisecond)
	m := r1.Snapshot().Merge(r2.Snapshot())
	if m.Counters["c"] != 3 || m.Counters["only2"] != 1 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if m.Histograms["h"].Count != 2 {
		t.Fatalf("histogram count = %d", m.Histograms["h"].Count)
	}
}

func TestSpanParentChildPropagation(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "child")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child not in parent's trace")
	}
	child.SetAttr("k", "v")
	child.AddTiming("wait", 2*time.Millisecond)
	child.AddTiming("wait", 3*time.Millisecond)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// Ring records in End order: child first.
	c, r := spans[0], spans[1]
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent %d, root span %d", c.ParentID, r.SpanID)
	}
	if c.Attrs["k"] != "v" {
		t.Fatalf("attrs = %v", c.Attrs)
	}
	if c.Timings["wait"] != 5*time.Millisecond {
		t.Fatalf("timings = %v", c.Timings)
	}
	got := tr.TraceSpans(r.TraceID)
	if len(got) != 2 {
		t.Fatalf("TraceSpans = %d spans", len(got))
	}
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	client, server := NewTracer(8), NewTracer(8)
	_, s := client.Start(context.Background(), "client.invoke")
	wire := s.Context() // what travels inside core.Invocation
	_, remote := server.StartRemote(context.Background(), "server.invoke", wire)
	if remote.Context().TraceID != wire.TraceID {
		t.Fatal("remote span lost the trace")
	}
	remote.End()
	s.End()
	if got := server.Spans(); len(got) != 1 || got[0].ParentID != wire.SpanID {
		t.Fatalf("server spans = %+v", got)
	}
}

func TestRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "s")
		s.End()
	}
	if got := len(tr.Spans()); got != 4 {
		t.Fatalf("ring kept %d spans, want 4", got)
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", tr.Recorded())
	}
}

func TestConcurrentUse(t *testing.T) {
	tel := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ctx, s := tel.Tracer().Start(context.Background(), "op")
				_, c := tel.Tracer().Start(ctx, "child")
				c.End()
				s.End()
				tel.Metrics().Counter("ops").Inc()
				tel.Metrics().Histogram("lat").Observe(time.Duration(j) * time.Microsecond)
				tel.Metrics().Gauge("depth").Add(1)
				tel.Metrics().Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	s := tel.Snapshot()
	if s.Counters["ops"] != 1600 {
		t.Fatalf("ops = %d", s.Counters["ops"])
	}
	if s.Histograms["lat"].Count != 1600 {
		t.Fatalf("lat count = %d", s.Histograms["lat"].Count)
	}
	if s.Gauges["depth"] != 0 {
		t.Fatalf("depth = %d", s.Gauges["depth"])
	}
	if tel.Tracer().Recorded() != 3200 {
		t.Fatalf("recorded = %d", tel.Tracer().Recorded())
	}
}
