package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
)

// Go runtime health exported next to DSO health on /metrics, so an
// operator dashboard can correlate tail latency with GC pauses or a
// goroutine leak without attaching pprof. Backed by the runtime/metrics
// package (sampled per scrape, negligible cost).

// runtimeSamples is the fixed sample set WritePrometheusRuntime reads.
// Names are the runtime/metrics identifiers; each maps to one exported
// crucial_runtime_* family.
var runtimeSamples = []struct {
	id   string
	name string
	kind string // "gauge", "counter" or "histogram"
}{
	{"/sched/goroutines:goroutines", "crucial_runtime_goroutines", "gauge"},
	{"/memory/classes/heap/objects:bytes", "crucial_runtime_heap_objects_bytes", "gauge"},
	{"/memory/classes/total:bytes", "crucial_runtime_memory_total_bytes", "gauge"},
	{"/gc/cycles/total:gc-cycles", "crucial_runtime_gc_cycles_total", "counter"},
	{"/gc/pauses:seconds", "crucial_runtime_gc_pause_seconds", "histogram"},
}

// WritePrometheusRuntime samples the Go runtime and renders process
// health metrics (goroutine count, heap bytes, GC cycle count and the GC
// pause histogram) in Prometheus text format.
func WritePrometheusRuntime(w io.Writer) error {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, rs := range runtimeSamples {
		samples[i].Name = rs.id
	}
	metrics.Read(samples)
	for i, rs := range runtimeSamples {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n",
				rs.name, rs.kind, rs.name, samples[i].Value.Uint64()); err != nil {
				return err
			}
		case metrics.KindFloat64:
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
				rs.name, rs.kind, rs.name, promFloat(samples[i].Value.Float64())); err != nil {
				return err
			}
		case metrics.KindFloat64Histogram:
			if err := writeRuntimeHistogram(w, rs.name, samples[i].Value.Float64Histogram()); err != nil {
				return err
			}
		default:
			// KindBad: the metric does not exist in this Go version; skip.
		}
	}
	return nil
}

// writeRuntimeHistogram converts a runtime/metrics Float64Histogram into
// a cumulative Prometheus histogram family. Only buckets that carry
// samples get their own `le` series (runtime histograms have hundreds of
// mostly-empty buckets); the cumulative counts are exact.
func writeRuntimeHistogram(w io.Writer, name string, h *metrics.Float64Histogram) error {
	if h == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		// Bucket i spans [Buckets[i], Buckets[i+1]); use the upper bound
		// as `le` and approximate the sum from bucket midpoints.
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if !math.IsInf(hi, 1) {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
				name, promFloat(hi), cum); err != nil {
				return err
			}
		}
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		sum += float64(c) * (lo + hi) / 2
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, promFloat(sum), name, cum)
	return err
}
