package telemetry

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the wire-propagatable identity of a span: enough for a
// remote layer (the DSO server, reached over RPC) to attach its own spans
// to the caller's trace. The zero value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context belongs to a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// SpanData is the immutable record of one finished span, as stored in the
// tracer's ring and returned by Spans.
type SpanData struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	// Attrs are string annotations set during the span (cold/warm,
	// function name, object type...).
	Attrs map[string]string
	// Timings attribute portions of the span's duration to named stages
	// (e.g. monitor_wait accumulated across Ctl.Wait calls).
	Timings map[string]time.Duration
}

// Span is one in-flight operation. It is created by Tracer.Start and
// recorded into the tracer's ring by End. A nil *Span is a valid no-op
// receiver for every method, which is how the disabled-telemetry path
// stays free of branches at call sites.
type Span struct {
	tracer *Tracer
	start  time.Time

	mu   sync.Mutex
	data SpanData
}

// Context returns the span's propagatable identity.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// AddTiming attributes d to the named stage, accumulating across calls
// (a monitor can be waited on several times within one invocation).
func (s *Span) AddTiming(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.data.Timings == nil {
		s.data.Timings = make(map[string]time.Duration, 2)
	}
	s.data.Timings[key] += d
	s.mu.Unlock()
}

// End finishes the span and records it into the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Duration = time.Since(s.start)
	data := s.data
	// Copy the maps so later mutation (there should be none) cannot race
	// with readers of the ring.
	if data.Attrs != nil {
		attrs := make(map[string]string, len(data.Attrs))
		for k, v := range data.Attrs {
			attrs[k] = v
		}
		data.Attrs = attrs
	}
	if data.Timings != nil {
		timings := make(map[string]time.Duration, len(data.Timings))
		for k, v := range data.Timings {
			timings[k] = v
		}
		data.Timings = timings
	}
	s.mu.Unlock()
	s.tracer.record(data)
}

// DefaultSpanCapacity is the ring size used by NewTracer(0).
const DefaultSpanCapacity = 4096

// Tracer records finished spans into a bounded in-memory ring: the newest
// DefaultSpanCapacity (or the configured capacity) spans are retained,
// older ones are overwritten. All methods are safe for concurrent use and
// nil-safe.
type Tracer struct {
	ids atomic.Uint64

	mu    sync.Mutex
	ring  []SpanData
	next  int
	total uint64
}

// NewTracer returns a tracer retaining the last capacity spans
// (DefaultSpanCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	t := &Tracer{ring: make([]SpanData, 0, capacity)}
	// Seed the ID space so two tracers in one process (e.g. separate
	// client and server deployments) are unlikely to collide.
	t.ids.Store(rand.Uint64() >> 16) //nolint:gosec // not security-sensitive
	return t
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span, or nil (a valid no-op span).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// ContextOf returns the SpanContext of the active span in ctx.
func ContextOf(ctx context.Context) SpanContext {
	return SpanFromContext(ctx).Context()
}

// Start begins a span as a child of the active span in ctx (or a new root
// trace), returning ctx with the new span installed. On a nil tracer it
// returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startSpan(ctx, name, SpanFromContext(ctx).Context())
}

// StartRemote begins a span whose parent arrived over the wire (the DSO
// server continuing a client trace). An invalid parent starts a new root.
func (t *Tracer) StartRemote(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startSpan(ctx, name, parent)
}

func (t *Tracer) startSpan(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		start:  time.Now(),
	}
	s.data = SpanData{
		SpanID: t.ids.Add(1),
		Name:   name,
		Start:  s.start,
	}
	if parent.Valid() {
		s.data.TraceID = parent.TraceID
		s.data.ParentID = parent.SpanID
	} else {
		s.data.TraceID = t.ids.Add(1)
	}
	return ContextWithSpan(ctx, s), s
}

// record appends one finished span to the ring.
func (t *Tracer) record(data SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, data)
	} else {
		t.ring[t.next] = data
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first. Nil tracers return nil.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
	} else {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	}
	return out
}

// TraceSpans returns the retained spans of one trace, oldest first.
func (t *Tracer) TraceSpans(traceID uint64) []SpanData {
	var out []SpanData
	for _, s := range t.Spans() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Recorded returns the total number of spans ever recorded (including
// those already overwritten in the ring).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
