// Package telemetry is the stdlib-only observability layer of the
// reproduction: a Tracer records spans of the invocation path (cloud-thread
// spawn, FaaS invoke, DSO round trip, server-side monitor acquire/execute)
// into a bounded in-memory ring, and a Registry holds named counters,
// gauges and latency histograms for every subsystem.
//
// Every entry point is nil-safe: methods on a nil *Tracer, *Registry,
// *Counter, *Gauge, *FloatCounter, *Histogram or *Span are no-ops, so the
// instrumentation hooks threaded through faas, client, server and cluster
// cost nothing when telemetry is disabled (the default). Hot paths cache
// the metric handles they use instead of re-resolving names per operation.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic uint64 counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value (e.g. queue depth, in-flight
// invocations).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatCounter accumulates float64 contributions (billing totals).
type FloatCounter struct{ bits atomic.Uint64 }

// Add contributes v.
func (f *FloatCounter) Add(v float64) {
	if f == nil {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (f *FloatCounter) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

// histBuckets is the bucket count of every Histogram. Bucket i covers
// durations whose microsecond value has bit length i (i.e. [2^(i-1), 2^i)
// µs), so the range spans sub-microsecond to ~39 hours.
const histBuckets = 48

// Histogram is a lock-free latency histogram with exponential
// (power-of-two microsecond) buckets. Quantiles are estimated from the
// bucket midpoints, which is within a factor of sqrt(2) of the true value —
// plenty for attributing where invocation time goes.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	min     atomic.Int64 // ns; math.MaxInt64 when empty
	max     atomic.Int64 // ns
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the exclusive upper bound of bucket i in
// microseconds.
func bucketUpper(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
	for {
		old := h.min.Load()
		if int64(d) >= old || h.min.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// ObserveValue records one unitless sample (a size or count rather than a
// latency) by mapping value v onto the microsecond bucket scale: bucket
// bounds become plain powers of two of the value. Histograms fed this way
// should be named with a ".size" suffix — the Prometheus exporter renders
// those without the _seconds unit and with raw-value bucket bounds, and
// human-readable dumps print their stats as values, not durations.
func (h *Histogram) ObserveValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.Observe(time.Duration(v) * time.Microsecond)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sumNs.Load()),
		Buckets: make([]uint64, histBuckets),
	}
	if s.Count > 0 {
		s.Min = time.Duration(h.min.Load())
		s.Max = time.Duration(h.max.Load())
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	return s
}

// HistogramSnapshot is the immutable, serializable state of a Histogram.
// P50/P95/P99/P999 are precomputed so JSON consumers (bench result files)
// can track tail latency without re-deriving quantiles from the buckets.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Min     time.Duration `json:"min_ns"`
	Max     time.Duration `json:"max_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	P999    time.Duration `json:"p999_ns"`
	Buckets []uint64      `json:"buckets,omitempty"`
}

// Mean returns the average sample.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the p-quantile (0..1) from the buckets, clamped to
// the observed min/max.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(s.Count-1))
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			// Midpoint of the bucket, clamped to observed extremes.
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketUpper(i - 1)
			}
			est := (lo + bucketUpper(i)) / 2
			if est < s.Min {
				est = s.Min
			}
			if s.Max > 0 && est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}

// Merge accumulates other into s (for aggregating per-node snapshots).
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return other
	}
	if other.Count == 0 {
		return s
	}
	out := HistogramSnapshot{
		Count:   s.Count + other.Count,
		Sum:     s.Sum + other.Sum,
		Min:     s.Min,
		Max:     s.Max,
		Buckets: make([]uint64, histBuckets),
	}
	if other.Min < out.Min {
		out.Min = other.Min
	}
	if other.Max > out.Max {
		out.Max = other.Max
	}
	for i := range out.Buckets {
		if i < len(s.Buckets) {
			out.Buckets[i] += s.Buckets[i]
		}
		if i < len(other.Buckets) {
			out.Buckets[i] += other.Buckets[i]
		}
	}
	out.P50, out.P95, out.P99 = out.Quantile(0.50), out.Quantile(0.95), out.Quantile(0.99)
	out.P999 = out.Quantile(0.999)
	return out
}

// Registry is a concurrency-safe collection of named metrics, created
// lazily on first use. A nil *Registry hands out nil metric handles, whose
// methods are no-ops, so callers never need to branch on "telemetry
// enabled".
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatCounter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatCounter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Float returns (creating if needed) the named float accumulator.
func (r *Registry) Float(name string) *FloatCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.floats[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.floats[name]; f == nil {
		f = &FloatCounter{}
		r.floats[name] = f
	}
	return f
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a Registry, serializable with gob
// and JSON (the shape emitted into bench result files and over the
// KindStats RPC).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Floats     map[string]float64           `json:"floats,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. A nil registry yields an empty (but
// usable) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Floats:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, f := range r.floats {
		s.Floats[name] = f.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge combines two snapshots (counters/floats add, gauges add,
// histograms merge), used to aggregate per-node stats cluster-wide.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Floats:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Floats {
		out.Floats[k] = v
	}
	for k, v := range other.Floats {
		out.Floats[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range other.Histograms {
		out.Histograms[k] = out.Histograms[k].Merge(v)
	}
	return out
}

// Empty reports whether the snapshot carries no metrics.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 &&
		len(s.Floats) == 0 && len(s.Histograms) == 0
}

// Format renders the snapshot as a human-readable report: counters and
// gauges first, then one line per histogram with count, mean and
// p50/p95/p99.
func (s Snapshot) Format(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %d (gauge)\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Floats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %.6f\n", n, s.Floats[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "%-32s n=%-8d mean=%-10v p50=%-10v p95=%-10v p99=%-10v p999=%-10v max=%v\n",
			n, h.Count, h.Mean().Round(time.Microsecond),
			h.P50.Round(time.Microsecond), h.P95.Round(time.Microsecond),
			h.P99.Round(time.Microsecond), h.P999.Round(time.Microsecond),
			h.Max.Round(time.Microsecond))
	}
}

// String renders the snapshot via Format.
func (s Snapshot) String() string {
	var b strings.Builder
	s.Format(&b)
	return b.String()
}
