package telemetry

import "time"

// Dump is the payload of a trace-collection RPC (server.KindTraceDump): one
// process's retained spans plus the wall-clock instant the dump was taken,
// which lets a collector estimate the clock offset between itself and the
// dumped process (NTP-style: offset = remote Now - midpoint of the request
// round trip) and shift the spans onto its own timeline before merging.
type Dump struct {
	// Node identifies the dumped process (server node ID, "client",
	// "faas", ...). It becomes the process lane in exported trace files.
	Node string
	// Now is the dumping process's wall clock at capture time.
	Now time.Time
	// Spans are the retained spans, oldest first.
	Spans []SpanData
}

// TakeDump captures the telemetry bundle's spans under a node name. A nil
// bundle yields an empty (but timestamped) dump.
func (t *Telemetry) TakeDump(node string) Dump {
	return Dump{Node: node, Now: time.Now(), Spans: t.Tracer().Spans()}
}

// NodeSpan is one span tagged with the process it came from, the unit a
// cluster-wide collector merges and the exporters consume.
type NodeSpan struct {
	// Node is the originating process (Dump.Node).
	Node string
	// Span is the span, with Start already aligned to the collector's
	// clock when it arrived through a Dump.
	Span SpanData
}

// AlignSpans tags spans with their source and shifts their start times by
// -offset, where offset is the source clock minus the collector clock (see
// AlignDump and collector.Collector for how it is estimated). The residual
// error is bounded by half the round trip of the probe that measured the
// offset, which is what makes cross-node span nesting come out right.
func AlignSpans(node string, spans []SpanData, offset time.Duration) []NodeSpan {
	out := make([]NodeSpan, 0, len(spans))
	for _, s := range spans {
		s.Start = s.Start.Add(-offset)
		out = append(out, NodeSpan{Node: node, Span: s})
	}
	return out
}

// AlignDump shifts a dump's spans onto the collector's timeline using the
// midpoint estimate: reqStart and reqEnd bracket the collection RPC on the
// collector's clock, the remote clock is assumed sampled at the round
// trip's midpoint, so offset = Now - midpoint. Collectors that can afford
// an extra round trip should prefer a dedicated clock probe (symmetric
// payloads, min-RTT of several tries) and AlignSpans; this single-RPC form
// serves in-process dumps (zero offset by construction) and HTTP handlers.
func AlignDump(d Dump, reqStart, reqEnd time.Time) []NodeSpan {
	var offset time.Duration
	if !d.Now.IsZero() && !reqStart.IsZero() && !reqEnd.IsZero() {
		mid := reqStart.Add(reqEnd.Sub(reqStart) / 2)
		offset = d.Now.Sub(mid)
	}
	return AlignSpans(d.Node, d.Spans, offset)
}
