package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome/Perfetto trace-event export: the merged cluster trace serialized
// in the Trace Event Format (the JSON that chrome://tracing and
// https://ui.perfetto.dev open directly). Each originating process (server
// node, client, FaaS simulator) becomes one "process" lane, each trace one
// "thread" row inside it, so a DSO call renders as a flame: the client RPC
// span enclosing the server execution span.

// traceEvent is one entry of the traceEvents array. Timestamps and
// durations are microseconds (float), per the format.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders spans as a trace-event JSON document. Spans must
// already be clock-aligned (see AlignDump); timestamps are emitted relative
// to the earliest span so the viewer opens at t=0.
func WriteTraceEvents(w io.Writer, spans []NodeSpan) error {
	// Stable lane assignment: processes sorted by name, traces by first
	// appearance in time order.
	sorted := make([]NodeSpan, len(spans))
	copy(sorted, spans)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Span.Start.Before(sorted[j].Span.Start)
	})

	nodeNames := make([]string, 0, 4)
	seenNode := make(map[string]bool)
	for _, ns := range sorted {
		if !seenNode[ns.Node] {
			seenNode[ns.Node] = true
			nodeNames = append(nodeNames, ns.Node)
		}
	}
	sort.Strings(nodeNames)
	pids := make(map[string]int, len(nodeNames))
	for i, n := range nodeNames {
		pids[n] = i + 1
	}

	var base time.Time
	if len(sorted) > 0 {
		base = sorted[0].Span.Start
	}
	tids := make(map[uint64]int)

	events := make([]traceEvent, 0, len(sorted)+len(nodeNames))
	for _, n := range nodeNames {
		events = append(events, traceEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  pids[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, ns := range sorted {
		s := ns.Span
		tid, ok := tids[s.TraceID]
		if !ok {
			tid = len(tids) + 1
			tids[s.TraceID] = tid
		}
		args := make(map[string]string, len(s.Attrs)+len(s.Timings)+3)
		args["trace_id"] = fmt.Sprintf("%016x", s.TraceID)
		args["span_id"] = fmt.Sprintf("%016x", s.SpanID)
		if s.ParentID != 0 {
			args["parent_id"] = fmt.Sprintf("%016x", s.ParentID)
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		for k, d := range s.Timings {
			args["timing."+k] = d.String()
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Cat:  ns.Node,
			Ph:   "X",
			TS:   float64(s.Start.Sub(base)) / float64(time.Microsecond),
			Dur:  float64(s.Duration) / float64(time.Microsecond),
			PID:  pids[ns.Node],
			TID:  tid,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
