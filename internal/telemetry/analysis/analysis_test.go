package analysis

import (
	"strings"
	"testing"
	"time"

	"crucial/internal/telemetry"
)

// span builds one synthetic SpanData for tree tests.
func span(trace, id, parent uint64, name string, start, dur time.Duration, timings map[string]time.Duration) telemetry.SpanData {
	base := time.Unix(1700000000, 0)
	return telemetry.SpanData{
		TraceID:  trace,
		SpanID:   id,
		ParentID: parent,
		Name:     name,
		Start:    base.Add(start),
		Duration: dur,
		Timings:  timings,
	}
}

func TestAttributionSyntheticTrace(t *testing.T) {
	// thread [0,100ms] -> faas.invoke [5,95] (cold 20ms) ->
	// client.invoke [40,80] -> server.invoke [45,75] (monitor 10ms).
	spans := []telemetry.SpanData{
		span(1, 1, 0, telemetry.SpanThread, 0, 100*time.Millisecond, nil),
		span(1, 2, 1, telemetry.SpanFaaSInvoke, 5*time.Millisecond, 90*time.Millisecond,
			map[string]time.Duration{telemetry.TimingColdStart: 20 * time.Millisecond}),
		span(1, 3, 2, telemetry.SpanClientInvoke, 40*time.Millisecond, 40*time.Millisecond, nil),
		span(1, 4, 3, telemetry.SpanServerInvoke, 45*time.Millisecond, 30*time.Millisecond,
			map[string]time.Duration{telemetry.TimingMonitor: 10 * time.Millisecond}),
	}
	rep := Analyze(spans)
	if rep.Traces != 1 || rep.Spans != 4 {
		t.Fatalf("traces/spans = %d/%d", rep.Traces, rep.Spans)
	}
	if rep.Total != 100*time.Millisecond {
		t.Fatalf("total = %v, want root duration 100ms", rep.Total)
	}
	want := map[string]time.Duration{
		CatOther:       10 * time.Millisecond, // thread self: 100-90
		CatColdStart:   20 * time.Millisecond,
		CatFnCompute:   30 * time.Millisecond, // faas self 50 - cold 20
		CatRPC:         10 * time.Millisecond, // client 40 - server 30
		CatMonitorWait: 10 * time.Millisecond,
		CatExec:        20 * time.Millisecond, // server 30 - monitor 10
	}
	for cat, d := range want {
		if rep.Categories[cat] != d {
			t.Errorf("category %s = %v, want %v (all: %v)",
				cat, rep.Categories[cat], d, rep.Categories)
		}
	}
	if rep.CategorySum() != rep.Total {
		t.Fatalf("category sum %v != total %v", rep.CategorySum(), rep.Total)
	}

	// Critical path must walk the full chain.
	if rep.Slowest == nil || len(rep.Slowest.Path) != 4 {
		t.Fatalf("critical path = %+v", rep.Slowest)
	}
	names := make([]string, len(rep.Slowest.Path))
	for i, s := range rep.Slowest.Path {
		names[i] = s.Name
	}
	if got := strings.Join(names, ">"); got != "thread>faas.invoke>client.invoke>server.invoke" {
		t.Fatalf("path = %s", got)
	}
}

func TestOrphanSpansBecomeRoots(t *testing.T) {
	// A server span whose client parent was evicted (or never collected)
	// must still be analyzed as its own root, not dropped.
	spans := []telemetry.SpanData{
		span(7, 10, 99, telemetry.SpanServerInvoke, 0, 5*time.Millisecond, nil),
	}
	rep := Analyze(spans)
	if rep.Traces != 1 || rep.Total != 5*time.Millisecond {
		t.Fatalf("orphan dropped: %+v", rep)
	}
	if rep.Categories[CatExec] != 5*time.Millisecond {
		t.Fatalf("orphan exec = %v", rep.Categories[CatExec])
	}
}

func TestCriticalPathPicksLatestFinisher(t *testing.T) {
	// Two children: a long-running early one and a short one that finishes
	// later. The path must follow the one that gated completion.
	spans := []telemetry.SpanData{
		span(3, 1, 0, telemetry.SpanThread, 0, 100*time.Millisecond, nil),
		span(3, 2, 1, "early.long", 0, 60*time.Millisecond, nil),
		span(3, 3, 1, "late.short", 90*time.Millisecond, 10*time.Millisecond, nil),
	}
	rep := Analyze(spans)
	if len(rep.Slowest.Path) != 2 || rep.Slowest.Path[1].Name != "late.short" {
		t.Fatalf("path = %+v", rep.Slowest.Path)
	}
}

func TestEmptyReport(t *testing.T) {
	rep := Analyze(nil)
	if rep.Traces != 0 || rep.Total != 0 || rep.Slowest != nil {
		t.Fatalf("empty analysis = %+v", rep)
	}
	if s := rep.String(); !strings.Contains(s, "0 traces") {
		t.Fatalf("empty format = %q", s)
	}
}
