// Package analysis turns raw spans into the paper's latency attribution:
// per-trace span trees, critical paths, and an aggregate breakdown of where
// invocation wall time goes — cold start, invoke queueing, RPC round trip,
// monitor blocking, method execution, SMR ordering (the categories of the
// Fig. 2 discussion and Section 6's elasticity analysis). crucial-bench
// -report prints the Report; later performance PRs justify their numbers
// against it.
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"crucial/internal/telemetry"
)

// Categories of the breakdown. Every nanosecond of every root span lands in
// exactly one category (self time of each span in the tree is attributed by
// span kind and stage timings; unattributed remainder is CatOther), so the
// category sum equals total trace wall time up to clamping of clock noise.
const (
	// CatColdStart is container provisioning (faas.invoke cold_start).
	CatColdStart = "cold_start"
	// CatQueueWait is FaaS admission queueing at the concurrency cap.
	CatQueueWait = "invoke_queue"
	// CatRPC is the client-observed DSO round trip minus server-side time:
	// wire transfer, framing, simulated network and re-route backoff.
	CatRPC = "rpc"
	// CatMonitorWait is time blocked in Ctl.Wait on an object monitor
	// (barriers, futures).
	CatMonitorWait = "monitor_wait"
	// CatExec is server-side method execution outside monitor waits and
	// SMR ordering.
	CatExec = "exec"
	// CatSMR is total-order multicast latency for replicated objects.
	CatSMR = "smr_order"
	// CatFnCompute is user code running inside the function between DSO
	// calls.
	CatFnCompute = "function_compute"
	// CatDurability is cold-storage durability work: WAL segment flushes
	// (wal.append) and crash-recovery replay (recovery.replay).
	CatDurability = "durability"
	// CatOther is everything unattributed: thread dispatch, retry backoff,
	// encode/decode outside any finer-grained span.
	CatOther = "other"
)

// Categories lists every category in presentation order.
func Categories() []string {
	return []string{
		CatColdStart, CatQueueWait, CatRPC, CatMonitorWait,
		CatExec, CatSMR, CatFnCompute, CatDurability, CatOther,
	}
}

// Node is one span in a trace tree.
type Node struct {
	Span     telemetry.SpanData
	Source   string // originating process, when known (collector merges)
	Children []*Node
}

// end returns the span's finish instant.
func (n *Node) end() time.Time { return n.Span.Start.Add(n.Span.Duration) }

// PathStep is one hop of a critical path.
type PathStep struct {
	Name     string
	Source   string
	Duration time.Duration
	// Self is the step's duration not covered by its own critical child.
	Self time.Duration
}

// TraceBreakdown is the analysis of one trace.
type TraceBreakdown struct {
	TraceID uint64
	// Total is the summed duration of the trace's root spans.
	Total time.Duration
	// Categories attribute Total (per-root self times summed).
	Categories map[string]time.Duration
	// Path is the critical path from the slowest root: at every level the
	// child that finishes last, i.e. the chain that determined the trace's
	// end-to-end latency.
	Path []PathStep
}

// Report aggregates every trace of a run.
type Report struct {
	Traces int
	Spans  int
	// Total is the summed wall time of all root spans.
	Total time.Duration
	// Categories attribute Total across all traces.
	Categories map[string]time.Duration
	// Slowest is the breakdown of the longest trace (nil when empty).
	Slowest *TraceBreakdown
}

// Analyze builds trees, computes per-trace breakdowns and aggregates them.
// It accepts plain span slices; use AnalyzeNodeSpans when spans carry
// source labels from a cluster-wide collection.
func Analyze(spans []telemetry.SpanData) *Report {
	tagged := make([]telemetry.NodeSpan, len(spans))
	for i, s := range spans {
		tagged[i] = telemetry.NodeSpan{Span: s}
	}
	return AnalyzeNodeSpans(tagged)
}

// AnalyzeNodeSpans is Analyze over source-labelled spans.
func AnalyzeNodeSpans(spans []telemetry.NodeSpan) *Report {
	rep := &Report{
		Spans:      len(spans),
		Categories: make(map[string]time.Duration),
	}
	byTrace := make(map[uint64][]*Node)
	for _, ns := range spans {
		byTrace[ns.Span.TraceID] = append(byTrace[ns.Span.TraceID],
			&Node{Span: ns.Span, Source: ns.Node})
	}
	rep.Traces = len(byTrace)

	traceIDs := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		traceIDs = append(traceIDs, id)
	}
	sort.Slice(traceIDs, func(i, j int) bool { return traceIDs[i] < traceIDs[j] })

	for _, id := range traceIDs {
		bd := analyzeTrace(id, byTrace[id])
		rep.Total += bd.Total
		for c, d := range bd.Categories {
			rep.Categories[c] += d
		}
		if rep.Slowest == nil || bd.Total > rep.Slowest.Total {
			rep.Slowest = bd
		}
	}
	return rep
}

// buildTrees links parent pointers within one trace. Spans whose parent is
// absent (evicted from a ring, or recorded by an uncollected process)
// become roots of their own subtree.
func buildTrees(nodes []*Node) []*Node {
	byID := make(map[uint64]*Node, len(nodes))
	for _, n := range nodes {
		byID[n.Span.SpanID] = n
	}
	var roots []*Node
	for _, n := range nodes {
		if p, ok := byID[n.Span.ParentID]; ok && n.Span.ParentID != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Span.Start.Before(n.Children[j].Span.Start)
		})
	}
	sort.SliceStable(roots, func(i, j int) bool {
		return roots[i].Span.Start.Before(roots[j].Span.Start)
	})
	return roots
}

func analyzeTrace(id uint64, nodes []*Node) *TraceBreakdown {
	bd := &TraceBreakdown{
		TraceID:    id,
		Categories: make(map[string]time.Duration),
	}
	roots := buildTrees(nodes)
	var slowestRoot *Node
	for _, r := range roots {
		bd.Total += r.Span.Duration
		attribute(r, bd.Categories)
		if slowestRoot == nil || r.Span.Duration > slowestRoot.Span.Duration {
			slowestRoot = r
		}
	}
	if slowestRoot != nil {
		bd.Path = criticalPath(slowestRoot)
	}
	return bd
}

// attribute walks a tree assigning each span's self time (duration minus
// the time covered by its children) to a category. Stage timings recorded
// on the span (cold_start, queue_wait, monitor_wait, smr_order) are split
// out of the self time first; the remainder goes to the span kind's
// residual category.
func attribute(n *Node, cats map[string]time.Duration) {
	var childSum time.Duration
	for _, c := range n.Children {
		childSum += c.Span.Duration
		attribute(c, cats)
	}
	self := n.Span.Duration - childSum
	if self < 0 {
		self = 0
	}
	take := func(cat string, d time.Duration) {
		if d <= 0 {
			return
		}
		if d > self {
			d = self
		}
		cats[cat] += d
		self -= d
	}
	switch n.Span.Name {
	case telemetry.SpanFaaSInvoke:
		take(CatColdStart, n.Span.Timings[telemetry.TimingColdStart])
		take(CatQueueWait, n.Span.Timings[telemetry.TimingQueueWait])
		cats[CatFnCompute] += self
	case telemetry.SpanClientInvoke:
		cats[CatRPC] += self
	case telemetry.SpanServerInvoke:
		take(CatMonitorWait, n.Span.Timings[telemetry.TimingMonitor])
		take(CatSMR, n.Span.Timings[telemetry.TimingSMR])
		cats[CatExec] += self
	case telemetry.SpanSMRBatch:
		// A group-commit round is ordering work end to end — fence,
		// multicast, in-order delivery of the whole batch — so its self
		// time lands in smr_order rather than other. Per-sub-operation
		// server.invoke spans still carry their own smr_order timing for
		// the time each caller waited on the round.
		cats[CatSMR] += self
	case telemetry.SpanWALAppend, telemetry.SpanRecoveryReplay:
		cats[CatDurability] += self
	default:
		cats[CatOther] += self
	}
}

// criticalPath follows, from the root, the child that finishes last — the
// chain of spans that gated the trace's completion.
func criticalPath(root *Node) []PathStep {
	var path []PathStep
	for n := root; n != nil; {
		var next *Node
		for _, c := range n.Children {
			if next == nil || c.end().After(next.end()) {
				next = c
			}
		}
		self := n.Span.Duration
		if next != nil {
			self -= next.Span.Duration
			if self < 0 {
				self = 0
			}
		}
		path = append(path, PathStep{
			Name:     n.Span.Name,
			Source:   n.Source,
			Duration: n.Span.Duration,
			Self:     self,
		})
		n = next
	}
	return path
}

// CategorySum totals the attributed categories (equal to Total up to clock
// clamping).
func (r *Report) CategorySum() time.Duration {
	var sum time.Duration
	for _, d := range r.Categories {
		sum += d
	}
	return sum
}

// Format renders the report: the aggregate category table (share of total
// wall time) followed by the slowest trace's critical path.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "critical-path report: %d traces, %d spans, total %v\n",
		r.Traces, r.Spans, r.Total.Round(time.Microsecond))
	if r.Total <= 0 {
		return
	}
	for _, cat := range Categories() {
		d := r.Categories[cat]
		if d == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-18s %12v  %5.1f%%\n",
			cat, d.Round(time.Microsecond), 100*float64(d)/float64(r.Total))
	}
	fmt.Fprintf(w, "  category sum %v of %v total (%.1f%%)\n",
		r.CategorySum().Round(time.Microsecond), r.Total.Round(time.Microsecond),
		100*float64(r.CategorySum())/float64(r.Total))
	if r.Slowest != nil && len(r.Slowest.Path) > 0 {
		fmt.Fprintf(w, "slowest trace %016x (%v):\n",
			r.Slowest.TraceID, r.Slowest.Total.Round(time.Microsecond))
		indent := "  "
		for _, step := range r.Slowest.Path {
			src := ""
			if step.Source != "" {
				src = " @" + step.Source
			}
			fmt.Fprintf(w, "%s%s%s %v (self %v)\n", indent, step.Name, src,
				step.Duration.Round(time.Microsecond), step.Self.Round(time.Microsecond))
			indent += "  "
		}
	}
}

// String renders the report via Format.
func (r *Report) String() string {
	var b strings.Builder
	r.Format(&b)
	return b.String()
}
