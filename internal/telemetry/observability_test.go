package telemetry

import (
	"context"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- Snapshot / HistogramSnapshot merge edge cases ---

func TestSnapshotMergeEmptyBoth(t *testing.T) {
	m := (Snapshot{}).Merge(Snapshot{})
	if !m.Empty() {
		t.Fatalf("empty ∪ empty not empty: %+v", m)
	}
	// Merging a populated snapshot into an empty one (and vice versa) must
	// preserve it untouched.
	r := NewRegistry()
	r.Counter("c").Add(5)
	r.Histogram("h").Observe(time.Millisecond)
	s := r.Snapshot()
	for _, m := range []Snapshot{(Snapshot{}).Merge(s), s.Merge(Snapshot{})} {
		if m.Counters["c"] != 5 || m.Histograms["h"].Count != 1 {
			t.Fatalf("merge with empty lost data: %+v", m)
		}
	}
}

func TestSnapshotMergeDisjointNames(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("only1").Add(1)
	r1.Gauge("g1").Add(7)
	r1.Float("f1").Add(0.5)
	r1.Histogram("h1").Observe(time.Millisecond)
	r2.Counter("only2").Add(2)
	r2.Gauge("g2").Add(-3)
	r2.Float("f2").Add(1.5)
	r2.Histogram("h2").Observe(2 * time.Millisecond)

	m := r1.Snapshot().Merge(r2.Snapshot())
	if m.Counters["only1"] != 1 || m.Counters["only2"] != 2 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if m.Gauges["g1"] != 7 || m.Gauges["g2"] != -3 {
		t.Fatalf("gauges = %v", m.Gauges)
	}
	if m.Floats["f1"] != 0.5 || m.Floats["f2"] != 1.5 {
		t.Fatalf("floats = %v", m.Floats)
	}
	if m.Histograms["h1"].Count != 1 || m.Histograms["h2"].Count != 1 {
		t.Fatalf("histograms = %v", m.Histograms)
	}
	// Disjoint-name merge must not cross-contaminate: h1 keeps its own
	// min/max.
	if m.Histograms["h1"].Max != time.Millisecond {
		t.Fatalf("h1 max = %v, want 1ms", m.Histograms["h1"].Max)
	}
}

func TestHistogramMergeQuantiles(t *testing.T) {
	// Two nodes observing disjoint latency bands: quantiles of the merge
	// must reflect the union, not either side.
	fast, slow := newHistogram(), newHistogram()
	for i := 0; i < 90; i++ {
		fast.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		slow.Observe(512 * time.Millisecond)
	}
	m := fast.Snapshot().Merge(slow.Snapshot())
	if m.Count != 100 {
		t.Fatalf("count = %d", m.Count)
	}
	if m.Min != time.Millisecond || m.Max != 512*time.Millisecond {
		t.Fatalf("min/max = %v/%v", m.Min, m.Max)
	}
	// P50 lands in the fast band, P99 in the slow band (exponential buckets
	// are within a factor of ~2).
	if m.P50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", m.P50)
	}
	if m.P99 < 256*time.Millisecond {
		t.Fatalf("p99 = %v, want ~512ms", m.P99)
	}
	// Quantile must be monotone in p and clamped to [Min, Max].
	prev := time.Duration(0)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		q := m.Quantile(p)
		if q < prev {
			t.Fatalf("quantile(%v) = %v < quantile(prev) = %v", p, q, prev)
		}
		if q < m.Min || q > m.Max {
			t.Fatalf("quantile(%v) = %v outside [%v, %v]", p, q, m.Min, m.Max)
		}
		prev = q
	}
	// Merge order must not matter.
	rev := slow.Snapshot().Merge(fast.Snapshot())
	if rev.Count != m.Count || rev.P50 != m.P50 || rev.P99 != m.P99 {
		t.Fatalf("merge not commutative: %+v vs %+v", rev, m)
	}
}

// --- Tracer stress (run with -race) ---

func TestTracerRecordStress(t *testing.T) {
	// A deliberately tiny ring so concurrent record calls constantly wrap
	// while Spans() snapshots under way: the race detector checks the
	// locking, the assertions check nothing is lost or duplicated.
	const (
		capacity   = 8
		goroutines = 16
		perG       = 500
	)
	tr := NewTracer(capacity)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader while the ring churns
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range tr.Spans() {
				if s.Name == "" {
					t.Error("snapshot contains zero-value span")
					return
				}
			}
		}
	}()

	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				ctx, root := tr.Start(context.Background(), "stress")
				_, child := tr.Start(ctx, "stress.child")
				child.AddTiming("wait", time.Microsecond)
				child.End()
				root.SetAttr("k", "v")
				root.End()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	want := uint64(goroutines * perG * 2)
	if got := tr.Recorded(); got != want {
		t.Fatalf("recorded %d spans, want %d", got, want)
	}
	if got := len(tr.Spans()); got != capacity {
		t.Fatalf("ring holds %d spans, want capacity %d", got, capacity)
	}
}

// --- Prometheus exposition ---

// parsePromFamilies is a minimal parser for the Prometheus text format
// (0.0.4): it checks line shapes and returns samples keyed by full series
// (name plus raw label string).
func parsePromFamilies(t *testing.T, text string) (types map[string]string, samples map[string]float64, order []string) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) != 4 || f[1] != "TYPE" {
				t.Fatalf("bad comment line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set in %q", line)
			}
			base = name[:i]
		}
		for _, c := range base {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("invalid metric name char %q in %q", c, base)
			}
		}
		samples[name] = v
		order = append(order, name)
	}
	return types, samples, order
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("faas.invocations").Add(42)
	r.Gauge("server.inflight").Add(3)
	r.Float("faas.billed_gb_seconds").Add(1.5)
	h := r.Histogram("client.rpc")
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples, _ := parsePromFamilies(t, b.String())

	if types["crucial_faas_invocations_total"] != "counter" {
		t.Fatalf("types = %v", types)
	}
	if samples["crucial_faas_invocations_total"] != 42 {
		t.Fatalf("counter sample = %v", samples["crucial_faas_invocations_total"])
	}
	if types["crucial_server_inflight"] != "gauge" || samples["crucial_server_inflight"] != 3 {
		t.Fatalf("gauge: type=%q value=%v",
			types["crucial_server_inflight"], samples["crucial_server_inflight"])
	}
	if samples["crucial_faas_billed_gb_seconds_total"] != 1.5 {
		t.Fatalf("float sample = %v", samples["crucial_faas_billed_gb_seconds_total"])
	}

	// Histogram invariants: cumulative buckets non-decreasing, +Inf bucket
	// equals _count, _sum in seconds.
	if types["crucial_client_rpc_seconds"] != "histogram" {
		t.Fatalf("histogram type = %q", types["crucial_client_rpc_seconds"])
	}
	var sawInf bool
	for name, v := range samples {
		if !strings.HasPrefix(name, "crucial_client_rpc_seconds_bucket{") {
			continue
		}
		if strings.Contains(name, `le="+Inf"`) {
			sawInf = true
			if v != samples["crucial_client_rpc_seconds_count"] {
				t.Fatalf("+Inf bucket %v != count %v",
					v, samples["crucial_client_rpc_seconds_count"])
			}
		}
		if v > samples["crucial_client_rpc_seconds_count"] {
			t.Fatalf("bucket %q = %v exceeds count", name, v)
		}
	}
	if !sawInf {
		t.Fatal("histogram missing +Inf bucket")
	}
	if samples["crucial_client_rpc_seconds_count"] != 3 {
		t.Fatalf("count = %v", samples["crucial_client_rpc_seconds_count"])
	}
	wantSum := (100*time.Microsecond + 6*time.Millisecond).Seconds()
	if got := samples["crucial_client_rpc_seconds_sum"]; got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("sum = %v, want ~%v", got, wantSum)
	}

	// Cumulative ordering: walk the le buckets in emission order.
	var lastCum float64 = -1
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "crucial_client_rpc_seconds_bucket{") {
			continue
		}
		_, rest, _ := strings.Cut(line, "} ")
		v, _ := strconv.ParseFloat(rest, 64)
		if v < lastCum {
			t.Fatalf("cumulative bucket decreased: %q after %v", line, lastCum)
		}
		lastCum = v
	}
}

func TestPromNameSanitization(t *testing.T) {
	got := promName("client.call.AtomicLong-v2")
	want := "crucial_client_call_AtomicLong_v2"
	if got != want {
		t.Fatalf("promName = %q, want %q", got, want)
	}
}

// --- HTTP endpoint ---

func TestHTTPEndpoints(t *testing.T) {
	tel := New()
	tel.Metrics().Counter("server.invocations").Add(9)
	_, s := tel.Tracer().Start(context.Background(), "server.invoke")
	s.End()

	srv := httptest.NewServer(HTTPHandler("n1", tel))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	_ = res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	_, samples, _ := parsePromFamilies(t, string(body))
	if samples["crucial_server_invocations_total"] != 9 {
		t.Fatalf("scraped counter = %v", samples["crucial_server_invocations_total"])
	}
	// The wire-codec counters (process-wide atomics in internal/core) must
	// ride along on every scrape, even when their values are zero.
	for _, name := range []string{
		"crucial_codec_fast_encodes_total",
		"crucial_codec_fast_decodes_total",
		"crucial_codec_legacy_gob_total",
		"crucial_codec_fallback_values_total",
	} {
		if !strings.Contains(string(body), "# TYPE "+name+" counter") {
			t.Fatalf("/metrics missing codec counter %s", name)
		}
	}

	tr, err := srv.Client().Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	tbody, err := io.ReadAll(tr.Body)
	_ = tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := tr.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("traces content type = %q", ct)
	}
	if !strings.Contains(string(tbody), "server.invoke") {
		t.Fatalf("traces endpoint missing span: %s", tbody)
	}
}
