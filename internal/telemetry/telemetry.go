package telemetry

// Telemetry bundles the tracer and metrics registry that one deployment
// (runtime, cluster, platform) shares. A nil *Telemetry is the disabled
// state: its accessors return nil, and every hook downstream degrades to a
// no-op.
type Telemetry struct {
	tracer  *Tracer
	metrics *Registry
	objects *ObjectTracker
}

// New returns an enabled telemetry bundle with a DefaultSpanCapacity span
// ring, an empty metrics registry and a DefaultObjectTopK object tracker.
func New() *Telemetry {
	return NewWithCapacity(0)
}

// NewWithCapacity sizes the span ring explicitly.
func NewWithCapacity(spanCapacity int) *Telemetry {
	return &Telemetry{
		tracer:  NewTracer(spanCapacity),
		metrics: NewRegistry(),
		objects: NewObjectTracker(0),
	}
}

// Tracer returns the span recorder (nil when disabled).
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Metrics returns the metrics registry (nil when disabled).
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// Objects returns the per-object heavy-hitter tracker (nil when
// disabled).
func (t *Telemetry) Objects() *ObjectTracker {
	if t == nil {
		return nil
	}
	return t.objects
}

// Snapshot captures the current metrics (empty when disabled).
func (t *Telemetry) Snapshot() Snapshot {
	return t.Metrics().Snapshot()
}

// Canonical metric names. Layers record under these so reports, bench JSON
// and dso-cli stats agree on vocabulary; per-object-type call latencies
// append the type name to MetClientCallPrefix.
const (
	// FaaS platform.
	MetFaaSInvocations = "faas.invocations"
	MetFaaSColdStarts  = "faas.cold_starts"
	MetFaaSFailures    = "faas.failures"
	MetFaaSTimeouts    = "faas.timeouts"
	MetFaaSThrottled   = "faas.throttled"
	MetFaaSBilledGBs   = "faas.billed_gb_seconds"
	MetFaaSInflight    = "faas.inflight"
	HistFaaSInvoke     = "faas.invoke"
	HistFaaSColdStart  = "faas.cold_start"
	HistFaaSQueueWait  = "faas.queue_wait"

	// Cloud-thread layer.
	MetThreadSpawns    = "thread.spawns"
	MetThreadRetries   = "thread.retries"
	HistThreadLifetime = "thread.lifetime"

	// DSO client.
	MetClientCalls      = "client.calls"
	MetClientReroutes   = "client.reroutes"
	HistClientRPC       = "client.rpc"
	MetClientCallPrefix = "client.call."

	// DSO server.
	MetServerInvocations  = "server.invocations"
	MetServerSMRRounds    = "server.smr_rounds"
	MetServerTransfers    = "server.transfers"
	MetServerInflight     = "server.inflight"
	HistServerExec        = "server.exec"
	HistServerMonitorWait = "server.monitor_wait"
	// At-most-once dedup (server side): replayed responses and window
	// evictions.
	MetServerDedupHits      = "server.dedup_hits"
	MetServerDedupEvictions = "server.dedup_evictions"
	// State-transfer safety: snapshots refused because the local copy had
	// already applied more operations, and base copies adopted from peers
	// (pull-on-miss) instead of being created fresh.
	MetServerTransfersStale = "server.transfers_stale"
	MetServerPulls          = "server.object_pulls"

	// Per-function FaaS fault accounting: the function name is appended,
	// e.g. "faas.failures.by_fn.trainer".
	MetFaaSFailurePrefix = "faas.failures.by_fn."
	MetFaaSTimeoutPrefix = "faas.timeouts.by_fn."

	// Client lease cache (read path). Exported on /metrics as
	// crucial_cache_{hits,misses,invalidations,lease_expiries}_total.
	// A hit is a read-only call answered from a locally leased copy; a
	// miss fell through to a remote invoke (no lease, refused grant, or
	// uncacheable method); an invalidation is a server-pushed revoke
	// (a write committed, or the view changed); an expiry is a read that
	// found its lease past due and had to re-acquire.
	MetCacheHits          = "cache.hits"
	MetCacheMisses        = "cache.misses"
	MetCacheInvalidations = "cache.invalidations"
	MetCacheLeaseExpiries = "cache.lease_expiries"

	// Server-side lease table: grants handed out (client + replica),
	// grants refused, synchronous revocations on the write path, writes
	// that had to sit out an unreachable holder's expiry or a post-view
	// fence, and read-only calls served without an SMR round (locally at
	// the primary or by a follower holding a replica lease).
	MetServerLeaseGrants    = "server.lease_grants"
	MetServerLeaseRefusals  = "server.lease_refusals"
	MetServerLeaseRevokes   = "server.lease_revokes"
	MetServerLeaseExpiryWts = "server.lease_expiry_waits"
	MetServerFollowerReads  = "server.follower_reads"
	MetServerLocalReads     = "server.local_reads"

	// Group-commit write path (DESIGN.md §5e). Batches is ordering rounds
	// that carried a coalesced batch (crucial_server_batches_total);
	// batch_size is a unitless size histogram — the *.size suffix selects
	// value semantics, see Histogram.ObserveValue — of sub-operations per
	// round (crucial_server_batch_size); write_flushes counts completed
	// frame flushes on a DSO client's connections
	// (crucial_client_write_flushes_total), the transport-level half of
	// the same amortization story.
	MetServerBatches      = "server.batches"
	HistServerBatchSize   = "server.batch_size"
	MetClientWriteFlushes = "client.write_flushes"

	// Elastic resharding (DESIGN.md §5g). Migrations counts live
	// hot-object migrations this node coordinated to completion (the
	// directive flip landed); failed migrations aborted before the flip
	// and left placement untouched; scans counts rebalancer passes over
	// the merged cluster-wide heavy-hitter snapshots.
	MetServerMigrations       = "server.migrations"
	MetServerMigrationsFailed = "server.migrations_failed"
	MetServerRebalanceScans   = "server.rebalance_scans"

	// Durability tier (DESIGN.md §5h). WAL appends counts records written
	// to the open segment; fsyncs counts storage flushes (each a segment
	// PUT covering one group-commit of records); wal.bytes totals segment
	// bytes shipped to cold storage; replays counts records re-applied
	// during recovery; torn_tails counts segments whose tail was
	// unreadable (partial final record or CRC mismatch) and was discarded
	// at the first damage. server.snapshots counts completed checkpoint
	// passes (snapshot set + manifest landed). Exported on /metrics as
	// crucial_wal_*_total / crucial_server_snapshots_total.
	MetWALAppends      = "wal.appends"
	MetWALFsyncs       = "wal.fsyncs"
	MetWALBytes        = "wal.bytes"
	MetWALReplays      = "wal.replays"
	MetWALTornTails    = "wal.torn_tails"
	MetServerSnapshots = "server.snapshots"
	// Checkpoint component of the storage bill (FaaSKeeper-style cost
	// accounting): snapshot-blob and manifest PUTs plus their bytes,
	// separable from the wal.* counters that price the log component.
	MetSnapshotPuts  = "snapshot.puts"
	MetSnapshotBytes = "snapshot.bytes"

	// Cold object store (s3sim) request counters, the raw material of the
	// storage cost model: every put, get/head, list and delete is a
	// billable S3 request. Exported as crucial_storage_*_total.
	MetStoragePuts     = "storage.puts"
	MetStorageGets     = "storage.gets"
	MetStorageLists    = "storage.lists"
	MetStorageDeletes  = "storage.deletes"
	MetStoragePutBytes = "storage.put_bytes"
	MetStorageGetBytes = "storage.get_bytes"

	// Chaos engine (fault injection). Exported on /metrics as
	// crucial_chaos_*_total.
	MetChaosFramesDropped    = "chaos.frames_dropped"
	MetChaosFramesDelayed    = "chaos.frames_delayed"
	MetChaosFramesDuplicated = "chaos.frames_duplicated"
	MetChaosPartitionDrops   = "chaos.partition_drops"
	MetChaosDialsRefused     = "chaos.dials_refused"
	MetChaosFaaSFaults       = "chaos.faas_faults"
	MetChaosFaaSDelays       = "chaos.faas_delays"
	MetChaosCrashes          = "chaos.crashes"
	MetChaosRestarts         = "chaos.restarts"

	// Stateful functions layer (DESIGN.md §5i). messages counts handler
	// commits that applied (each message counted exactly once across the
	// cluster's engines); sends counts outbox envelopes delivered;
	// replies counts reply futures completed; dups counts envelopes the
	// per-sender dedup window rejected (redeliveries doing their job);
	// mailbox_full counts pushes bounced by backpressure;
	// handler_failures counts handler errors/panics (each implies a
	// redelivery); redeliveries counts handler re-runs whose commit found
	// the message already applied; instances_gc counts idle instances
	// retired from the dispatch directory. Exported on /metrics as
	// crucial_statefun_*_total; statefun.dispatch is the per-message
	// dispatch latency histogram (fetch → commit → outbox drained).
	MetStatefunMessages        = "statefun.messages"
	MetStatefunSends           = "statefun.sends"
	MetStatefunReplies         = "statefun.replies"
	MetStatefunDups            = "statefun.dups"
	MetStatefunMailboxFull     = "statefun.mailbox_full"
	MetStatefunHandlerFailures = "statefun.handler_failures"
	MetStatefunRedeliveries    = "statefun.redeliveries"
	MetStatefunInstancesGC     = "statefun.instances_gc"
	HistStatefunDispatch       = "statefun.dispatch"
)

// Span names and attributes used along the invocation path.
const (
	SpanThread       = "thread"
	SpanFaaSInvoke   = "faas.invoke"
	SpanClientInvoke = "client.invoke"
	SpanServerInvoke = "server.invoke"
	// SpanSMRBatch wraps one group-commit ordering round on the
	// coordinator: the lease fence, the multicast and the wait for the
	// batch's in-order delivery. It is recorded once per batch (not per
	// sub-operation) with AttrBatchSize, and the stages report attributes
	// its self time to the smr_order category.
	SpanSMRBatch = "server.smr_batch"
	// SpanChaosFault is the marker span the chaos engine records per
	// injected fault, so trace dumps show what the workload survived.
	SpanChaosFault = "chaos.fault"
	// SpanCacheRead wraps a read-only invocation answered from the client
	// lease cache (attributes: object_type, method, cache = "hit").
	SpanCacheRead = "cache.read"
	// SpanWALAppend wraps one WAL flush on the durability tier: encoding
	// the pending records and the segment PUT to cold storage. Recorded
	// once per fsync (not per record), so span counts mirror wal.fsyncs.
	SpanWALAppend = "wal.append"
	// SpanRecoveryReplay wraps one node's restart recovery: loading the
	// checkpoint, installing objects, and replaying the surviving WAL.
	SpanRecoveryReplay = "recovery.replay"

	AttrCold       = "cold"
	AttrFunction   = "function"
	AttrThreadID   = "thread_id"
	AttrAttempt    = "attempt"
	AttrObjectType = "object_type"
	AttrObjectKey  = "object_key"
	AttrMethod     = "method"
	AttrPath       = "path" // "local" or "smr"
	// AttrBatchSize tags a server.smr_batch span with the number of
	// sub-operations its round carried.
	AttrBatchSize = "batch_size"
	AttrError     = "error"
	// AttrChaos tags a span touched by fault injection: "replayed" on a
	// server.invoke answered from the dedup window, the fault kind on
	// chaos.fault markers and faas.invoke spans that hit an injector.
	AttrChaos     = "chaos"
	AttrChaosLink = "chaos_link"
	// AttrCache tags cache.read spans with the lookup outcome ("hit").
	AttrCache       = "cache"
	TimingMonitor   = "monitor_wait"
	TimingAcquire   = "monitor_acquire"
	TimingColdStart = "cold_start"
	TimingQueueWait = "queue_wait"
	TimingSMR       = "smr_order"
)
