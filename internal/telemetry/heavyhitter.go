package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Per-object load accounting (DESIGN.md §5f). The ObjectTracker is a
// bounded heavy-hitter sketch over object references: a Space-Saving
// (stream-summary) top-K structure that keeps exact per-object stats for
// the K most frequently touched objects and an overestimation bound for
// everything that had to share a slot. Memory is fixed at capacity K
// regardless of how many distinct objects the workload touches, which is
// what lets the tracker stay always-on under FaaS-scale fan-in.
//
// Three observation points feed it:
//
//   - ObserveCall: the DSO client, once per InvokeObject (including cache
//     hits, so client-side pressure is visible even when the server never
//     sees the read).
//   - ObserveInvoke: the server invoke path, once per handled invocation,
//     with the read/write classification, end-to-end handler latency and
//     request payload size.
//   - ObserveApply: the SMR delivery path on every member, once per
//     applied sub-operation, so replicated write amplification shows up
//     on follower nodes that never see the client-facing invoke.
//
// The Space-Saving weight (Count) sums all three kinds, making it a
// generic "touches" pressure signal; the per-kind counters stay separate
// so consumers can derive rates that do not double-count (rate uses
// Invokes on servers, Calls on clients).

// DefaultObjectTopK is the tracker capacity used by New.
const DefaultObjectTopK = 128

// DefaultRateEpoch is the windowed-rate rotation period. The tracker keeps
// two epochs of per-slot activity (current plus previous) and rotates them
// on this cadence, so a windowed rate always covers between one and two
// epochs of recent history — cumulative counters can say an object *was*
// hot, only the window can say it still is.
const DefaultRateEpoch = 5 * time.Second

// ObjectKey identifies a DSO instance (mirrors core.Ref without importing
// it — telemetry stays dependency-free). It is comparable, so warm-path
// map lookups allocate nothing.
type ObjectKey struct {
	Type string
	Key  string
}

// objSlot is one stream-summary slot. All fields are guarded by the
// tracker mutex; plain (non-atomic) words keep the warm path to a single
// uncontended lock plus a handful of stores.
type objSlot struct {
	key     ObjectKey
	count   uint64 // Space-Saving weight: calls + invokes + applies
	errs    uint64 // overestimation bound inherited on slot takeover
	calls   uint64
	invokes uint64
	applies uint64
	reads   uint64
	writes  uint64
	bytes   uint64

	// Two-epoch windowed activity (calls + invokes, not applies — the
	// window is the hot-*primary* signal, and counting every member's
	// apply would multiply a replicated write by its group size). winCur
	// accumulates the running epoch; winPrev holds the last completed one.
	winCur  uint64
	winPrev uint64

	// Inline latency histogram over server invoke durations, same
	// power-of-two-microsecond buckets as Histogram.
	hcount  uint64
	sumNs   int64
	minNs   int64
	maxNs   int64
	buckets [histBuckets]uint64
}

// ObjectTracker is the bounded per-object load accountant. A nil tracker
// is the disabled state: every Observe* is a no-op and Snapshot returns a
// zero ObjectsSnapshot.
type ObjectTracker struct {
	mu        sync.Mutex
	slots     map[ObjectKey]*objSlot
	capacity  int
	total     uint64 // observations of any kind, including evicted keys
	evictions uint64 // slot takeovers (distinct keys beyond capacity)
	start     time.Time

	// Windowed-rate epoch state (see DefaultRateEpoch): epochStart is when
	// the running epoch began, prevDur the length of the completed epoch
	// held in the slots' winPrev (zero before the first rotation).
	rateEpoch  time.Duration
	epochStart time.Time
	prevDur    time.Duration
}

// NewObjectTracker returns a tracker bounded at capacity slots
// (DefaultObjectTopK when capacity <= 0).
func NewObjectTracker(capacity int) *ObjectTracker {
	if capacity <= 0 {
		capacity = DefaultObjectTopK
	}
	now := time.Now()
	return &ObjectTracker{
		slots:      make(map[ObjectKey]*objSlot, capacity),
		capacity:   capacity,
		start:      now,
		rateEpoch:  DefaultRateEpoch,
		epochStart: now,
	}
}

// maybeRotateLocked advances the two-epoch window when the running epoch
// has run its course: current activity becomes the previous epoch and a
// fresh one starts. After an idle gap of two epochs or more both windows
// are stale and are cleared. O(capacity) once per epoch; caller holds mu.
func (t *ObjectTracker) maybeRotateLocked(now time.Time) {
	elapsed := now.Sub(t.epochStart)
	if elapsed < t.rateEpoch {
		return
	}
	stale := elapsed >= 2*t.rateEpoch
	for _, s := range t.slots {
		if stale {
			s.winPrev = 0
		} else {
			s.winPrev = s.winCur
		}
		s.winCur = 0
	}
	if stale {
		t.prevDur = 0
	} else {
		t.prevDur = elapsed
	}
	t.epochStart = now
}

// slotFor returns the slot for k, admitting it via Space-Saving takeover
// of the minimum-count slot when the tracker is full. Caller holds mu.
func (t *ObjectTracker) slotFor(k ObjectKey) *objSlot {
	if s := t.slots[k]; s != nil {
		return s
	}
	if len(t.slots) < t.capacity {
		s := &objSlot{key: k, minNs: -1}
		t.slots[k] = s
		return s
	}
	// Take over the slot with the minimum weight: the newcomer inherits
	// count=min+1 worth of weight credit (added by the caller's +1) and
	// err=min, the classic Space-Saving guarantee that true counts lie in
	// [count-err, count]. Auxiliary stats reset — they describe only the
	// current occupant's observed window.
	var victim *objSlot
	for _, s := range t.slots {
		if victim == nil || s.count < victim.count {
			victim = s
		}
	}
	delete(t.slots, victim.key)
	min := victim.count
	*victim = objSlot{key: k, count: min, errs: min, minNs: -1}
	t.slots[k] = victim
	t.evictions++
	return victim
}

// ObserveCall records one client-side call to the object.
func (t *ObjectTracker) ObserveCall(k ObjectKey) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.maybeRotateLocked(time.Now())
	s := t.slotFor(k)
	s.count++
	s.calls++
	s.winCur++
	t.total++
	t.mu.Unlock()
}

// ObserveInvoke records one server-side handled invocation: its
// read/write classification, handler latency and request payload size.
func (t *ObjectTracker) ObserveInvoke(k ObjectKey, readOnly bool, d time.Duration, payloadBytes int) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.maybeRotateLocked(time.Now())
	s := t.slotFor(k)
	s.count++
	s.invokes++
	s.winCur++
	if readOnly {
		s.reads++
	} else {
		s.writes++
	}
	if payloadBytes > 0 {
		s.bytes += uint64(payloadBytes)
	}
	s.hcount++
	s.sumNs += int64(d)
	if s.minNs < 0 || int64(d) < s.minNs {
		s.minNs = int64(d)
	}
	if int64(d) > s.maxNs {
		s.maxNs = int64(d)
	}
	s.buckets[bucketIndex(d)]++
	t.total++
	t.mu.Unlock()
}

// ObserveApply records n SMR sub-operations applied to the object on this
// member (n > 1 for group-commit batches).
func (t *ObjectTracker) ObserveApply(k ObjectKey, n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	s := t.slotFor(k)
	s.count += uint64(n)
	s.applies += uint64(n)
	t.total += uint64(n)
	t.mu.Unlock()
}

// ObjectStat is the serializable per-object line of an ObjectsSnapshot.
// Count is the Space-Saving weight (all observation kinds summed);
// CountErr bounds its overestimation — the true weight lies in
// [Count-CountErr, Count].
type ObjectStat struct {
	Type     string `json:"type"`
	Key      string `json:"key"`
	Count    uint64 `json:"count"`
	CountErr uint64 `json:"count_err,omitempty"`
	Calls    uint64 `json:"calls,omitempty"`
	Invokes  uint64 `json:"invokes,omitempty"`
	Applies  uint64 `json:"applies,omitempty"`
	Reads    uint64 `json:"reads,omitempty"`
	Writes   uint64 `json:"writes,omitempty"`
	Bytes    uint64 `json:"bytes,omitempty"`
	// WindowCount is the object's activity (calls + invokes) inside the
	// snapshot's two-epoch rate window (ObjectsSnapshot.RateWindow); it is
	// what current-load rates divide, where Count/Window only yields the
	// lifetime average.
	WindowCount uint64            `json:"window_count,omitempty"`
	Latency     HistogramSnapshot `json:"latency"`
}

// ObjectsSnapshot is a point-in-time copy of an ObjectTracker,
// serializable with gob and JSON (the payload of the KindObjectStats
// RPC). Stats are sorted by Count descending.
type ObjectsSnapshot struct {
	Node      string        `json:"node,omitempty"`
	Capacity  int           `json:"capacity"`
	Window    time.Duration `json:"window_ns"`
	Total     uint64        `json:"total"`
	Evictions uint64        `json:"evictions,omitempty"`
	// RateWindow is the span the stats' WindowCount fields cover (the
	// completed epoch plus the running one, between one and two
	// DefaultRateEpochs in the steady state). Zero when the tracker
	// predates windowed rates.
	RateWindow time.Duration `json:"rate_window_ns,omitempty"`
	Stats      []ObjectStat  `json:"stats,omitempty"`
}

// Snapshot captures the tracker's current state. Safe on nil.
func (t *ObjectTracker) Snapshot() ObjectsSnapshot {
	if t == nil {
		return ObjectsSnapshot{}
	}
	now := time.Now()
	t.mu.Lock()
	t.maybeRotateLocked(now)
	out := ObjectsSnapshot{
		Capacity:   t.capacity,
		Window:     now.Sub(t.start),
		Total:      t.total,
		Evictions:  t.evictions,
		RateWindow: t.prevDur + now.Sub(t.epochStart),
		Stats:      make([]ObjectStat, 0, len(t.slots)),
	}
	for _, s := range t.slots {
		st := ObjectStat{
			Type:        s.key.Type,
			Key:         s.key.Key,
			Count:       s.count,
			CountErr:    s.errs,
			Calls:       s.calls,
			Invokes:     s.invokes,
			Applies:     s.applies,
			Reads:       s.reads,
			Writes:      s.writes,
			Bytes:       s.bytes,
			WindowCount: s.winPrev + s.winCur,
		}
		if s.hcount > 0 {
			h := HistogramSnapshot{
				Count:   s.hcount,
				Sum:     time.Duration(s.sumNs),
				Min:     time.Duration(s.minNs),
				Max:     time.Duration(s.maxNs),
				Buckets: make([]uint64, histBuckets),
			}
			copy(h.Buckets, s.buckets[:])
			h.P50 = h.Quantile(0.50)
			h.P95 = h.Quantile(0.95)
			h.P99 = h.Quantile(0.99)
			h.P999 = h.Quantile(0.999)
			st.Latency = h
		}
		out.Stats = append(out.Stats, st)
	}
	t.mu.Unlock()
	sortObjectStats(out.Stats)
	return out
}

// Reset clears all slots and restarts the rate window.
func (t *ObjectTracker) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slots = make(map[ObjectKey]*objSlot, t.capacity)
	t.total = 0
	t.evictions = 0
	t.start = time.Now()
	t.epochStart = t.start
	t.prevDur = 0
	t.mu.Unlock()
}

// sortObjectStats orders by Count descending, breaking ties by (Type,
// Key) so output is deterministic.
func sortObjectStats(stats []ObjectStat) {
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Count != stats[j].Count {
			return stats[i].Count > stats[j].Count
		}
		if stats[i].Type != stats[j].Type {
			return stats[i].Type < stats[j].Type
		}
		return stats[i].Key < stats[j].Key
	})
}

// Rate returns the object's server-side invocation rate per second over
// the snapshot window (Calls-based when the snapshot came from a
// client-only tracker).
func (s ObjectStat) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	n := s.Invokes
	if n == 0 {
		n = s.Calls
	}
	return float64(n) / window.Seconds()
}

// minRateWindow floors the windowed-rate denominator: dividing a handful
// of observations by a near-zero window (a tracker mid-first-epoch) would
// fabricate a huge rate out of noise.
const minRateWindow = 250 * time.Millisecond

// WindowRate returns the object's current activity rate per second over
// the snapshot's two-epoch rate window. Zero when the window is too short
// to be meaningful or absent (a pre-windowing snapshot) — callers that
// want a number anyway fall back to the lifetime Rate, which is what
// ObjectsSnapshot.RateOf does.
func (s ObjectStat) WindowRate(rateWindow time.Duration) float64 {
	if rateWindow < minRateWindow {
		return 0
	}
	return float64(s.WindowCount) / rateWindow.Seconds()
}

// RateOf returns the best available rate for one of the snapshot's stats:
// the windowed (current-load) rate when the snapshot carries a rate
// window, the lifetime average otherwise.
func (s ObjectsSnapshot) RateOf(st ObjectStat) float64 {
	if s.RateWindow >= minRateWindow {
		return st.WindowRate(s.RateWindow)
	}
	return st.Rate(s.Window)
}

// Merge combines two snapshots keywise: counts add, latency histograms
// merge, capacity and window take the max (nodes share a wall-clock
// window; the widest one bounds the rate denominator), and the result is
// re-sorted and truncated to the merged capacity. Error bounds add, which
// keeps the [Count-CountErr, Count] invariant conservative across nodes.
func (s ObjectsSnapshot) Merge(other ObjectsSnapshot) ObjectsSnapshot {
	out := ObjectsSnapshot{
		Capacity:  s.Capacity,
		Window:    s.Window,
		Total:     s.Total + other.Total,
		Evictions: s.Evictions + other.Evictions,
	}
	if other.Capacity > out.Capacity {
		out.Capacity = other.Capacity
	}
	if other.Window > out.Window {
		out.Window = other.Window
	}
	out.RateWindow = s.RateWindow
	if other.RateWindow > out.RateWindow {
		out.RateWindow = other.RateWindow
	}
	merged := make(map[ObjectKey]*ObjectStat, len(s.Stats)+len(other.Stats))
	add := func(st ObjectStat) {
		k := ObjectKey{Type: st.Type, Key: st.Key}
		if m := merged[k]; m != nil {
			m.Count += st.Count
			m.CountErr += st.CountErr
			m.Calls += st.Calls
			m.Invokes += st.Invokes
			m.Applies += st.Applies
			m.Reads += st.Reads
			m.Writes += st.Writes
			m.Bytes += st.Bytes
			m.WindowCount += st.WindowCount
			m.Latency = m.Latency.Merge(st.Latency)
			return
		}
		cp := st
		merged[k] = &cp
	}
	for _, st := range s.Stats {
		add(st)
	}
	for _, st := range other.Stats {
		add(st)
	}
	out.Stats = make([]ObjectStat, 0, len(merged))
	for _, m := range merged {
		out.Stats = append(out.Stats, *m)
	}
	sortObjectStats(out.Stats)
	if out.Capacity > 0 && len(out.Stats) > out.Capacity {
		out.Stats = out.Stats[:out.Capacity]
	}
	return out
}
