//go:build race

package telemetry

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
