package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text-format exposition (version 0.0.4), the format every
// Prometheus-compatible scraper ingests. Served by the optional HTTP
// endpoint of dso-server under /metrics.
//
// Mapping: counters and float accumulators become `counter`, gauges become
// `gauge`, and latency histograms become native `histogram` families in
// seconds, with the tracer's power-of-two-microsecond bucket bounds
// converted to cumulative `le` buckets. Metric names are prefixed with
// "crucial_" and sanitized (dots and dashes to underscores).

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	out := make([]byte, 0, len(name)+8)
	out = append(out, "crucial_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders a metrics snapshot in Prometheus text format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Floats) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", n, n, promFloat(s.Floats[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if sizeHistogram(name) {
			if err := writePromSizeHistogram(w, promName(name), s.Histograms[name]); err != nil {
				return err
			}
			continue
		}
		if err := writePromHistogram(w, promName(name)+"_seconds", s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// sizeHistogram reports whether a registry histogram holds unitless values
// (fed via Histogram.ObserveValue) rather than latencies. The convention
// is the name suffix: *.size histograms (e.g. server.batch_size) are
// exported without the _seconds unit and with raw-value bucket bounds.
func sizeHistogram(name string) bool {
	return strings.HasSuffix(name, ".size") || strings.HasSuffix(name, "_size")
}

// writePromHistogram emits one histogram family. Trailing all-zero buckets
// are collapsed into +Inf so the exposition stays readable; the cumulative
// counts are preserved exactly.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	last := -1
	for i, c := range h.Buckets {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		le := promFloat(bucketUpper(i).Seconds())
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, promFloat(h.Sum.Seconds()), name, h.Count)
	return err
}

// writePromSizeHistogram emits a unitless histogram family: bucket bounds
// and the sum are raw values (ObserveValue maps value v to the v-microsecond
// bucket, so dividing the duration scale back by a microsecond recovers
// them exactly).
func writePromSizeHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	last := -1
	for i, c := range h.Buckets {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		le := promFloat(float64(bucketUpper(i) / time.Microsecond))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, promFloat(float64(h.Sum/time.Microsecond)), name, h.Count)
	return err
}
