package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text-format exposition (version 0.0.4), the format every
// Prometheus-compatible scraper ingests. Served by the optional HTTP
// endpoint of dso-server under /metrics.
//
// Mapping: counters and float accumulators become `counter`, gauges become
// `gauge`, and latency histograms become native `histogram` families in
// seconds, with the tracer's power-of-two-microsecond bucket bounds
// converted to cumulative `le` buckets. Metric names are prefixed with
// "crucial_" and sanitized (dots and dashes to underscores).

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	out := make([]byte, 0, len(name)+8)
	out = append(out, "crucial_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders a metrics snapshot in Prometheus text format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Floats) {
		n := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", n, n, promFloat(s.Floats[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if sizeHistogram(name) {
			if err := writePromSizeHistogram(w, promName(name), s.Histograms[name]); err != nil {
				return err
			}
			if err := writePromQuantiles(w, promName(name), s.Histograms[name], false); err != nil {
				return err
			}
			continue
		}
		if err := writePromHistogram(w, promName(name)+"_seconds", s.Histograms[name]); err != nil {
			return err
		}
		if err := writePromQuantiles(w, promName(name), s.Histograms[name], true); err != nil {
			return err
		}
	}
	return nil
}

// writePromQuantiles emits per-histogram quantile gauges as sibling
// families (<name>_p50_seconds etc. for latencies, <name>_p50 for size
// histograms). They duplicate what PromQL's histogram_quantile derives
// from the _bucket family, but give dashboards and curl users the tail
// directly — and unlike the bucket estimate they are clamped to the
// observed min/max.
func writePromQuantiles(w io.Writer, name string, h HistogramSnapshot, seconds bool) error {
	for _, q := range []struct {
		suffix string
		v      time.Duration
	}{
		{"p50", h.P50}, {"p99", h.P99}, {"p999", h.P999},
	} {
		n := name + "_" + q.suffix
		val := float64(q.v) / float64(time.Microsecond)
		if seconds {
			n += "_seconds"
			val = q.v.Seconds()
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(val)); err != nil {
			return err
		}
	}
	return nil
}

// promLabelEscape escapes a label value per the exposition format
// (backslash, double quote and newline).
func promLabelEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WritePrometheusObjects renders a per-object load snapshot as
// crucial_object_* families, one series per tracked object labeled with
// {type, key}. Cardinality is bounded by the tracker capacity (top-K),
// so this is safe to scrape continuously. Count-style stats export as
// counters; per-object latency exports as a summary family with
// quantile labels (0.5, 0.99, 0.999) plus _sum/_count.
func WritePrometheusObjects(w io.Writer, snap ObjectsSnapshot) error {
	if len(snap.Stats) == 0 {
		return nil
	}
	for _, fam := range []struct {
		name  string
		value func(ObjectStat) uint64
	}{
		{"crucial_object_touches_total", func(s ObjectStat) uint64 { return s.Count }},
		{"crucial_object_calls_total", func(s ObjectStat) uint64 { return s.Calls }},
		{"crucial_object_invocations_total", func(s ObjectStat) uint64 { return s.Invokes }},
		{"crucial_object_applies_total", func(s ObjectStat) uint64 { return s.Applies }},
		{"crucial_object_reads_total", func(s ObjectStat) uint64 { return s.Reads }},
		{"crucial_object_writes_total", func(s ObjectStat) uint64 { return s.Writes }},
		{"crucial_object_payload_bytes_total", func(s ObjectStat) uint64 { return s.Bytes }},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam.name); err != nil {
			return err
		}
		for _, st := range snap.Stats {
			if _, err := fmt.Fprintf(w, "%s{type=\"%s\",key=\"%s\"} %d\n",
				fam.name, promLabelEscape(st.Type), promLabelEscape(st.Key),
				fam.value(st)); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE crucial_object_latency_seconds summary\n"); err != nil {
		return err
	}
	for _, st := range snap.Stats {
		if st.Latency.Count == 0 {
			continue
		}
		t, k := promLabelEscape(st.Type), promLabelEscape(st.Key)
		for _, q := range []struct {
			label string
			v     time.Duration
		}{
			{"0.5", st.Latency.P50}, {"0.99", st.Latency.P99}, {"0.999", st.Latency.P999},
		} {
			if _, err := fmt.Fprintf(w, "crucial_object_latency_seconds{type=\"%s\",key=\"%s\",quantile=\"%s\"} %s\n",
				t, k, q.label, promFloat(q.v.Seconds())); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "crucial_object_latency_seconds_sum{type=\"%s\",key=\"%s\"} %s\ncrucial_object_latency_seconds_count{type=\"%s\",key=\"%s\"} %d\n",
			t, k, promFloat(st.Latency.Sum.Seconds()), t, k, st.Latency.Count); err != nil {
			return err
		}
	}
	return nil
}

// sizeHistogram reports whether a registry histogram holds unitless values
// (fed via Histogram.ObserveValue) rather than latencies. The convention
// is the name suffix: *.size histograms (e.g. server.batch_size) are
// exported without the _seconds unit and with raw-value bucket bounds.
func sizeHistogram(name string) bool {
	return strings.HasSuffix(name, ".size") || strings.HasSuffix(name, "_size")
}

// writePromHistogram emits one histogram family. Trailing all-zero buckets
// are collapsed into +Inf so the exposition stays readable; the cumulative
// counts are preserved exactly.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	last := -1
	for i, c := range h.Buckets {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		le := promFloat(bucketUpper(i).Seconds())
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, promFloat(h.Sum.Seconds()), name, h.Count)
	return err
}

// writePromSizeHistogram emits a unitless histogram family: bucket bounds
// and the sum are raw values (ObserveValue maps value v to the v-microsecond
// bucket, so dividing the duration scale back by a microsecond recovers
// them exactly).
func writePromSizeHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	last := -1
	for i, c := range h.Buckets {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		le := promFloat(float64(bucketUpper(i) / time.Microsecond))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, promFloat(float64(h.Sum/time.Microsecond)), name, h.Count)
	return err
}
