package telemetry

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

func okey(i int) ObjectKey {
	return ObjectKey{Type: "AtomicLong", Key: fmt.Sprintf("k%d", i)}
}

// TestTrackerExactBelowCapacity: with fewer distinct keys than slots the
// tracker is an exact counter — no evictions, no error bounds.
func TestTrackerExactBelowCapacity(t *testing.T) {
	tr := NewObjectTracker(16)
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			tr.ObserveInvoke(okey(i), j%2 == 0, time.Duration(j)*time.Millisecond, 10)
		}
	}
	snap := tr.Snapshot()
	if snap.Evictions != 0 {
		t.Fatalf("evictions = %d below capacity", snap.Evictions)
	}
	if len(snap.Stats) != 8 {
		t.Fatalf("tracked %d keys, want 8", len(snap.Stats))
	}
	// Sorted hottest-first: k7 (8 observations) leads.
	if snap.Stats[0].Key != "k7" || snap.Stats[0].Count != 8 {
		t.Fatalf("top = %s/%d, want k7/8", snap.Stats[0].Key, snap.Stats[0].Count)
	}
	for _, st := range snap.Stats {
		if st.CountErr != 0 {
			t.Fatalf("key %s has error bound %d below capacity", st.Key, st.CountErr)
		}
		if st.Reads+st.Writes != st.Invokes {
			t.Fatalf("key %s: reads %d + writes %d != invokes %d",
				st.Key, st.Reads, st.Writes, st.Invokes)
		}
		if st.Latency.Count != st.Invokes {
			t.Fatalf("key %s: latency count %d != invokes %d", st.Key, st.Latency.Count, st.Invokes)
		}
		if st.Bytes != 10*st.Invokes {
			t.Fatalf("key %s: bytes %d, want %d", st.Key, st.Bytes, 10*st.Invokes)
		}
	}
}

// TestTrackerEvictionAdversarial churns one-hit keys through a small
// tracker while a few hot keys keep receiving traffic, and checks the
// Space-Saving invariants: bounded memory, hot keys retained, and every
// reported count within its error bound of the true count.
func TestTrackerEvictionAdversarial(t *testing.T) {
	const capacity = 8
	tr := NewObjectTracker(capacity)
	truth := make(map[ObjectKey]uint64)
	hot := []ObjectKey{okey(0), okey(1), okey(2)}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		var k ObjectKey
		if rng.Intn(2) == 0 {
			k = hot[rng.Intn(len(hot))]
		} else {
			// Adversarial churn: a fresh key every time, each seen once.
			k = ObjectKey{Type: "Map", Key: fmt.Sprintf("churn%d", i)}
		}
		tr.ObserveCall(k)
		truth[k]++
	}
	snap := tr.Snapshot()
	if len(snap.Stats) > capacity {
		t.Fatalf("tracked %d keys, capacity %d", len(snap.Stats), capacity)
	}
	if snap.Evictions == 0 {
		t.Fatal("adversarial churn produced no evictions")
	}
	var total uint64
	for _, st := range snap.Stats {
		k := ObjectKey{Type: st.Type, Key: st.Key}
		exact := truth[k]
		if exact > st.Count {
			t.Fatalf("key %v: count %d underestimates true %d (Space-Saving never undercounts)",
				k, st.Count, exact)
		}
		if st.Count-st.CountErr > exact {
			t.Fatalf("key %v: count %d - err %d exceeds true %d",
				k, st.Count, st.CountErr, exact)
		}
		total += st.Count
	}
	// The three hot keys (~10000 observations among them vs ≤1 for any
	// churn key) must all survive.
	for _, k := range hot {
		found := false
		for _, st := range snap.Stats {
			if st.Type == k.Type && st.Key == k.Key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("hot key %v evicted by one-hit churn", k)
		}
	}
	if snap.Total != 20000 {
		t.Fatalf("total = %d, want 20000", snap.Total)
	}
}

// TestTrackerConcurrent hammers all three observation kinds from many
// goroutines; run under -race this doubles as the data-race check. The
// single-mutex design makes the invariant exact: total equals the number
// of observations made.
func TestTrackerConcurrent(t *testing.T) {
	tr := NewObjectTracker(32)
	workers := runtime.GOMAXPROCS(0) * 2
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)))
			for i := 0; i < perWorker; i++ {
				k := okey(rng.Intn(64))
				switch i % 3 {
				case 0:
					tr.ObserveCall(k)
				case 1:
					tr.ObserveInvoke(k, i%2 == 0, time.Duration(i)*time.Microsecond, i)
				default:
					tr.ObserveApply(k, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if want := uint64(workers * perWorker); snap.Total != want {
		t.Fatalf("total = %d, want %d", snap.Total, want)
	}
	if len(snap.Stats) > 32 {
		t.Fatalf("tracked %d keys, capacity 32", len(snap.Stats))
	}
}

// TestTrackerMerge is the collector path: two per-node snapshots with
// overlapping keys merge keywise, histograms included.
func TestTrackerMerge(t *testing.T) {
	a, b := NewObjectTracker(16), NewObjectTracker(16)
	shared := okey(0)
	a.ObserveInvoke(shared, true, time.Millisecond, 100)
	a.ObserveInvoke(shared, true, time.Millisecond, 100)
	b.ObserveInvoke(shared, false, 4*time.Millisecond, 50)
	b.ObserveApply(shared, 3)
	a.ObserveCall(okey(1))
	b.ObserveCall(okey(2))

	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Node, sb.Node = "n1", "n2"
	m := sa.Merge(sb)
	if m.Total != sa.Total+sb.Total {
		t.Fatalf("merged total %d, want %d", m.Total, sa.Total+sb.Total)
	}
	if len(m.Stats) != 3 {
		t.Fatalf("merged %d keys, want 3", len(m.Stats))
	}
	top := m.Stats[0]
	if top.Key != shared.Key {
		t.Fatalf("merged top = %s, want %s", top.Key, shared.Key)
	}
	if top.Invokes != 3 || top.Applies != 3 || top.Reads != 2 || top.Writes != 1 {
		t.Fatalf("merged shared stats = %+v", top)
	}
	if top.Bytes != 250 {
		t.Fatalf("merged bytes = %d, want 250", top.Bytes)
	}
	if top.Latency.Count != 3 {
		t.Fatalf("merged latency count = %d, want 3", top.Latency.Count)
	}
	if top.Latency.Max < 4*time.Millisecond {
		t.Fatalf("merged latency max = %v, want >= 4ms", top.Latency.Max)
	}
	if m.Window != maxDur(sa.Window, sb.Window) {
		t.Fatalf("merged window = %v, want max(%v, %v)", m.Window, sa.Window, sb.Window)
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// TestTrackerZipfianRecall drives a zipfian workload over far more keys
// than slots and requires the tracker's top 10 to recover at least 9 of
// the true top 10 — the accuracy bar for dso-cli top being trustworthy.
func TestTrackerZipfianRecall(t *testing.T) {
	tr := NewObjectTracker(DefaultObjectTopK)
	truth := make(map[ObjectKey]uint64)
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.2, 1, 9999) // 10k distinct keys
	for i := 0; i < 200000; i++ {
		k := okey(int(zipf.Uint64()))
		tr.ObserveCall(k)
		truth[k]++
	}

	exact := make([]trackerKV, 0, len(truth))
	for k, n := range truth {
		exact = append(exact, trackerKV{k, n})
	}
	sortKVDesc(exact)

	snap := tr.Snapshot()
	got := make(map[ObjectKey]bool)
	for i := 0; i < 10 && i < len(snap.Stats); i++ {
		got[ObjectKey{Type: snap.Stats[i].Type, Key: snap.Stats[i].Key}] = true
	}
	recall := 0
	for i := 0; i < 10 && i < len(exact); i++ {
		if got[exact[i].k] {
			recall++
		}
	}
	if recall < 9 {
		t.Fatalf("top-10 recall %d/10, want >= 9 (tracked %d keys of %d distinct)",
			recall, len(snap.Stats), len(truth))
	}
}

type trackerKV struct {
	k ObjectKey
	n uint64
}

func sortKVDesc(s []trackerKV) {
	sort.Slice(s, func(i, j int) bool { return s[i].n > s[j].n })
}

// TestObjectsSnapshotGob checks the KindObjectStats payload survives a
// gob round trip intact (the RPC uses core.EncodeValue, which is gob for
// control-plane types).
func TestObjectsSnapshotGob(t *testing.T) {
	tr := NewObjectTracker(8)
	tr.ObserveInvoke(okey(1), true, time.Millisecond, 64)
	tr.ObserveApply(okey(1), 2)
	in := tr.Snapshot()
	in.Node = "n1"

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out ObjectsSnapshot
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Node != "n1" || out.Total != in.Total || len(out.Stats) != len(in.Stats) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if out.Stats[0].Latency.P99 != in.Stats[0].Latency.P99 {
		t.Fatalf("latency percentiles lost in transit")
	}
}

// TestNilTrackerIsNoop: the disabled state must be safe everywhere the
// instrumentation hooks call it.
func TestNilTrackerIsNoop(t *testing.T) {
	var tr *ObjectTracker
	tr.ObserveCall(okey(0))
	tr.ObserveInvoke(okey(0), true, time.Second, 1)
	tr.ObserveApply(okey(0), 5)
	tr.Reset()
	if snap := tr.Snapshot(); len(snap.Stats) != 0 || snap.Total != 0 {
		t.Fatalf("nil tracker snapshot = %+v", snap)
	}
	var tel *Telemetry
	if tel.Objects() != nil {
		t.Fatal("nil telemetry returned a tracker")
	}
}

// TestTrackerObserveAllocs pins the warm-path cost: observing an
// already-tracked key must not allocate, the property that keeps the
// accounting always-on on the RPC hot path. Skipped under -race (the
// detector's instrumentation allocates).
func TestTrackerObserveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counting is meaningless under -race")
	}
	tr := NewObjectTracker(64)
	k := okey(3)
	tr.ObserveInvoke(k, true, time.Millisecond, 32)
	if n := testing.AllocsPerRun(200, func() {
		tr.ObserveInvoke(k, false, 2*time.Millisecond, 64)
	}); n != 0 {
		t.Fatalf("ObserveInvoke on a warm key allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		tr.ObserveCall(k)
		tr.ObserveApply(k, 1)
	}); n != 0 {
		t.Fatalf("ObserveCall+ObserveApply on a warm key allocate %.1f/op, want 0", n)
	}
}

// BenchmarkTrackerObserve measures the per-invocation accounting cost on
// the server hot path (warm key). Recorded in BENCH_rpc.json next to the
// codec round-trip numbers it must not regress.
func BenchmarkTrackerObserve(b *testing.B) {
	tr := NewObjectTracker(DefaultObjectTopK)
	k := okey(1)
	tr.ObserveInvoke(k, true, time.Millisecond, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveInvoke(k, i%4 == 0, time.Microsecond, 128)
	}
}

// BenchmarkTrackerObserveEvicting measures the worst case: every
// observation is a new key forcing a min-scan takeover.
func BenchmarkTrackerObserveEvicting(b *testing.B) {
	tr := NewObjectTracker(DefaultObjectTopK)
	keys := make([]ObjectKey, DefaultObjectTopK*4)
	for i := range keys {
		keys[i] = okey(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ObserveCall(keys[i%len(keys)])
	}
}
