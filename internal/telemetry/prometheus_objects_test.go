package telemetry

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestPrometheusQuantileGauges: every histogram family gains sibling
// p50/p99/p999 gauges, in seconds for latencies and raw values for size
// histograms.
func TestPrometheusQuantileGauges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("client.rpc")
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(100 * time.Millisecond)
	r.Histogram("server.batch_size").ObserveValue(8)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	types, samples, _ := parsePromFamilies(t, b.String())

	for _, name := range []string{
		"crucial_client_rpc_p50_seconds",
		"crucial_client_rpc_p99_seconds",
		"crucial_client_rpc_p999_seconds",
		"crucial_server_batch_size_p50",
		"crucial_server_batch_size_p999",
	} {
		if types[name] != "gauge" {
			t.Fatalf("%s: type %q, want gauge", name, types[name])
		}
	}
	snap := h.Snapshot()
	if got, want := samples["crucial_client_rpc_p99_seconds"], snap.P99.Seconds(); got != want {
		t.Fatalf("p99 gauge = %v, want %v", got, want)
	}
	if samples["crucial_client_rpc_p999_seconds"] < samples["crucial_client_rpc_p50_seconds"] {
		t.Fatal("p999 below p50")
	}
	// The size histogram's quantiles are raw values (ObserveValue(8) maps
	// to the 8-microsecond bucket; recovery divides back).
	if v := samples["crucial_server_batch_size_p50"]; v < 1 || v > 16 {
		t.Fatalf("size p50 = %v, want a raw value near 8", v)
	}
}

// TestPrometheusObjectSeries renders a tracker snapshot and checks the
// per-object families, label escaping and the latency summary.
func TestPrometheusObjectSeries(t *testing.T) {
	tr := NewObjectTracker(8)
	hot := ObjectKey{Type: "AtomicLong", Key: `weird"key\n1`}
	tr.ObserveCall(hot)
	tr.ObserveInvoke(hot, true, time.Millisecond, 100)
	tr.ObserveInvoke(hot, false, 2*time.Millisecond, 50)
	tr.ObserveApply(hot, 2)
	tr.ObserveCall(ObjectKey{Type: "Map", Key: "cold"})

	var b strings.Builder
	if err := WritePrometheusObjects(&b, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	types, samples, _ := parsePromFamilies(t, text)

	for _, fam := range []string{
		"crucial_object_touches_total", "crucial_object_calls_total",
		"crucial_object_invocations_total", "crucial_object_applies_total",
		"crucial_object_reads_total", "crucial_object_writes_total",
		"crucial_object_payload_bytes_total",
	} {
		if types[fam] != "counter" {
			t.Fatalf("%s: type %q, want counter", fam, types[fam])
		}
	}
	if types["crucial_object_latency_seconds"] != "summary" {
		t.Fatalf("latency family type %q, want summary", types["crucial_object_latency_seconds"])
	}
	// The quote and backslash in the key must be escaped on the wire.
	esc := `weird\"key\\n1`
	series := `crucial_object_touches_total{type="AtomicLong",key="` + esc + `"}`
	if v, ok := samples[series]; !ok || v != 5 {
		t.Fatalf("hot series %q = %v (present %v)\n%s", series, v, ok, text)
	}
	if v := samples[`crucial_object_payload_bytes_total{type="AtomicLong",key="`+esc+`"}`]; v != 150 {
		t.Fatalf("payload bytes = %v, want 150", v)
	}
	if v := samples[`crucial_object_latency_seconds_count{type="AtomicLong",key="`+esc+`"}`]; v != 2 {
		t.Fatalf("latency count = %v, want 2", v)
	}
	q99 := `crucial_object_latency_seconds{type="AtomicLong",key="` + esc + `",quantile="0.99"}`
	if v, ok := samples[q99]; !ok || v <= 0 {
		t.Fatalf("missing/zero p99 summary sample %q = %v", q99, v)
	}
	// An empty snapshot writes nothing (no dangling TYPE lines).
	var empty strings.Builder
	if err := WritePrometheusObjects(&empty, ObjectsSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty snapshot produced output: %q", empty.String())
	}
}

// TestPrometheusRuntimeMetrics samples the live runtime and checks the
// crucial_runtime_* families parse and carry sane values.
func TestPrometheusRuntimeMetrics(t *testing.T) {
	runtime.GC() // guarantee at least one GC cycle and pause sample

	var b strings.Builder
	if err := WritePrometheusRuntime(&b); err != nil {
		t.Fatal(err)
	}
	types, samples, _ := parsePromFamilies(t, b.String())

	if types["crucial_runtime_goroutines"] != "gauge" || samples["crucial_runtime_goroutines"] < 1 {
		t.Fatalf("goroutines: type=%q value=%v",
			types["crucial_runtime_goroutines"], samples["crucial_runtime_goroutines"])
	}
	if samples["crucial_runtime_heap_objects_bytes"] <= 0 {
		t.Fatalf("heap bytes = %v", samples["crucial_runtime_heap_objects_bytes"])
	}
	if types["crucial_runtime_gc_cycles_total"] != "counter" || samples["crucial_runtime_gc_cycles_total"] < 1 {
		t.Fatalf("gc cycles: type=%q value=%v",
			types["crucial_runtime_gc_cycles_total"], samples["crucial_runtime_gc_cycles_total"])
	}
	if types["crucial_runtime_gc_pause_seconds"] != "histogram" {
		t.Fatalf("gc pause family type %q", types["crucial_runtime_gc_pause_seconds"])
	}
	count := samples["crucial_runtime_gc_pause_seconds_count"]
	if count < 1 {
		t.Fatalf("gc pause count = %v after forced GC", count)
	}
	if inf := samples[`crucial_runtime_gc_pause_seconds_bucket{le="+Inf"}`]; inf != count {
		t.Fatalf("+Inf bucket %v != count %v", inf, count)
	}
}
