package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// Structured logging for the whole system, built on log/slog: every
// subsystem gets a named component logger with its own dynamically
// adjustable level, and records emitted under a context that carries an
// active span are automatically stamped with trace_id/span_id so logs and
// traces cross-reference.
//
// Levels default to Warn (quiet enough for tests and benchmarks) and are
// configurable per component via SetLogLevel/ConfigureLogging or the
// CRUCIAL_LOG environment variable, e.g.:
//
//	CRUCIAL_LOG=info                  # everything at info
//	CRUCIAL_LOG=server=debug,faas=warn

// Component names used across the codebase.
const (
	CompFaaS    = "faas"
	CompClient  = "client"
	CompServer  = "server"
	CompCluster = "cluster"
)

// switchWriter lets SetLogOutput retarget every live logger atomically.
type switchWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *switchWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

var logState = struct {
	mu      sync.Mutex
	out     *switchWriter
	levels  map[string]*slog.LevelVar
	loggers map[string]*slog.Logger
}{
	out:     &switchWriter{w: os.Stderr},
	levels:  make(map[string]*slog.LevelVar),
	loggers: make(map[string]*slog.Logger),
}

// spanHandler decorates records with the ambient span identity.
type spanHandler struct{ inner slog.Handler }

func (h spanHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h spanHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc := ContextOf(ctx); sc.Valid() {
		r.AddAttrs(
			slog.String("trace_id", fmt.Sprintf("%016x", sc.TraceID)),
			slog.String("span_id", fmt.Sprintf("%016x", sc.SpanID)),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h spanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return spanHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h spanHandler) WithGroup(name string) slog.Handler {
	return spanHandler{inner: h.inner.WithGroup(name)}
}

// levelVar returns (creating at Warn) the component's level knob.
// logState.mu must be held.
func levelVarLocked(component string) *slog.LevelVar {
	lv, ok := logState.levels[component]
	if !ok {
		lv = &slog.LevelVar{}
		lv.Set(slog.LevelWarn)
		logState.levels[component] = lv
	}
	return lv
}

// Logger returns the shared structured logger for a component
// (CompFaaS/CompClient/CompServer/CompCluster or any other name). Loggers
// are cached; the returned value is safe for concurrent use.
func Logger(component string) *slog.Logger {
	logState.mu.Lock()
	defer logState.mu.Unlock()
	if l, ok := logState.loggers[component]; ok {
		return l
	}
	h := slog.NewTextHandler(logState.out, &slog.HandlerOptions{
		Level: levelVarLocked(component),
	})
	l := slog.New(spanHandler{inner: h}).With(slog.String("component", component))
	logState.loggers[component] = l
	return l
}

// SetLogLevel adjusts one component's level ("" or "all" adjusts every
// component, including ones not created yet).
func SetLogLevel(component string, level slog.Level) {
	logState.mu.Lock()
	defer logState.mu.Unlock()
	if component == "" || component == "all" {
		for _, comp := range []string{CompFaaS, CompClient, CompServer, CompCluster} {
			levelVarLocked(comp).Set(level)
		}
		for _, lv := range logState.levels {
			lv.Set(level)
		}
		return
	}
	levelVarLocked(component).Set(level)
}

// SetLogOutput redirects every component logger (tests; defaults to
// stderr).
func SetLogOutput(w io.Writer) {
	logState.out.mu.Lock()
	logState.out.w = w
	logState.out.mu.Unlock()
}

// ConfigureLogging applies a level spec: either one level name applied to
// all components ("debug", "info", "warn", "error") or a comma-separated
// list of component=level pairs ("server=debug,faas=warn").
func ConfigureLogging(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		comp, levelName, ok := strings.Cut(part, "=")
		if !ok {
			levelName, comp = comp, ""
		}
		var level slog.Level
		if err := level.UnmarshalText([]byte(levelName)); err != nil {
			return fmt.Errorf("telemetry: bad log level %q in %q", levelName, spec)
		}
		SetLogLevel(strings.TrimSpace(comp), level)
	}
	return nil
}

func init() {
	if spec := os.Getenv("CRUCIAL_LOG"); spec != "" {
		// A bad spec must not take the process down at init; fall back to
		// defaults and say why.
		if err := ConfigureLogging(spec); err != nil {
			fmt.Fprintln(os.Stderr, "crucial:", err)
		}
	}
}
