package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"crucial/internal/core"
)

// HTTPHandler builds the observability endpoint served by dso-server's
// optional -http listener:
//
//	/metrics          Prometheus text-format exposition: the registry,
//	                  per-object heavy-hitter series (crucial_object_*),
//	                  Go runtime health (crucial_runtime_*) and the wire
//	                  codec counters
//	/traces           retained spans as Chrome/Perfetto trace-event JSON
//	/debug/pprof/*    the standard net/http/pprof profiles
//
// node labels the process lane in exported traces (the server's node ID).
// A nil *Telemetry serves empty documents, so the endpoint can always be
// enabled regardless of whether instrumentation is on.
func HTTPHandler(node string, t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, t.Snapshot())
		_ = WritePrometheusObjects(w, t.Objects().Snapshot())
		_ = WritePrometheusRuntime(w)
		writeCodecStats(w)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		dump := t.TakeDump(node)
		_ = WriteTraceEvents(w, AlignDump(dump, dump.Now, dump.Now))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeCodecStats appends the wire-codec counters to a Prometheus
// exposition. They live as process-wide atomics in internal/core (the
// codec cannot depend on telemetry), so they are exported here rather
// than through the registry. Interpretation:
//
//	crucial_codec_fast_encodes_total    messages written in the tag-based format
//	crucial_codec_fast_decodes_total    messages parsed from the tag-based format
//	crucial_codec_legacy_gob_total      inbound frames still in the pre-codec gob
//	                                    format (non-zero during a rolling upgrade;
//	                                    persistently non-zero means an old peer)
//	crucial_codec_fallback_values_total argument/result values outside the
//	                                    built-in type set, embedded via per-value
//	                                    gob (non-zero means RegisterValue types
//	                                    are on the hot path — worth a look if
//	                                    codec throughput matters)
//	crucial_codec_stamped_decodes_total invocations carrying an at-most-once
//	                                    (clientID, seq) stamp
//	crucial_codec_unstamped_decodes_total invocations without a stamp (old
//	                                    clients or control-plane tools; their
//	                                    retries stay at-least-once)
func writeCodecStats(w io.Writer) {
	s := core.ReadCodecStats()
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"crucial_codec_fast_encodes_total", s.FastEncodes},
		{"crucial_codec_fast_decodes_total", s.FastDecodes},
		{"crucial_codec_legacy_gob_total", s.LegacyGobDecodes},
		{"crucial_codec_fallback_values_total", s.FallbackValues},
		{"crucial_codec_stamped_decodes_total", s.StampedDecodes},
		{"crucial_codec_unstamped_decodes_total", s.UnstampedDecodes},
	} {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v)
	}
}
