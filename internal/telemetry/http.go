package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// HTTPHandler builds the observability endpoint served by dso-server's
// optional -http listener:
//
//	/metrics          Prometheus text-format exposition of the registry
//	/traces           retained spans as Chrome/Perfetto trace-event JSON
//	/debug/pprof/*    the standard net/http/pprof profiles
//
// node labels the process lane in exported traces (the server's node ID).
// A nil *Telemetry serves empty documents, so the endpoint can always be
// enabled regardless of whether instrumentation is on.
func HTTPHandler(node string, t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, t.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		dump := t.TakeDump(node)
		_ = WriteTraceEvents(w, AlignDump(dump, dump.Now, dump.Now))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
