// Package ml implements the machine-learning workloads of the paper's
// evaluation: k-means clustering (Lloyd's algorithm) and logistic
// regression with gradient descent, plus a deterministic synthetic dataset
// generator standing in for the 100 GB spark-perf input (see DESIGN.md for
// the substitution). The same per-partition kernels run under Crucial
// cloud threads, the Spark-like engine, and the single-machine baselines,
// so every system computes identical math.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// GeneratePoints produces n dims-dimensional points drawn from `clusters`
// Gaussian blobs (unit variance, random centers), deterministically from
// seed. It mirrors spark-perf's k-means input generator.
func GeneratePoints(n, dims, clusters int, seed int64) [][]float64 {
	return GeneratePointsPartition(n, dims, clusters, seed, seed+1)
}

// GeneratePointsPartition draws one partition of a distributed dataset:
// the blob centers derive from centerSeed only (shared by every
// partition), while the sampling noise derives from partSeed, so workers
// can generate disjoint partitions of one coherent dataset independently.
func GeneratePointsPartition(n, dims, clusters int, centerSeed, partSeed int64) [][]float64 {
	crng := rand.New(rand.NewSource(centerSeed))
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for d := range centers[c] {
			centers[c][d] = crng.NormFloat64() * 10
		}
	}
	rng := rand.New(rand.NewSource(partSeed))
	points := make([][]float64, n)
	for i := range points {
		c := centers[rng.Intn(clusters)]
		p := make([]float64, dims)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		points[i] = p
	}
	return points
}

// GenerateLabeled produces a binary-labeled dataset from a random ground-
// truth logistic model with label noise, mirroring spark-perf's logistic
// regression generator (100 numeric features in the paper).
func GenerateLabeled(n, dims int, seed int64) (points [][]float64, labels []float64) {
	return GenerateLabeledPartition(n, dims, seed, seed+1)
}

// GenerateLabeledPartition draws one partition of a distributed labeled
// dataset: the ground-truth model derives from truthSeed only, the
// sampling noise from partSeed, so all workers label against the same
// underlying model.
func GenerateLabeledPartition(n, dims int, truthSeed, partSeed int64) (points [][]float64, labels []float64) {
	trng := rand.New(rand.NewSource(truthSeed))
	truth := make([]float64, dims)
	for d := range truth {
		truth[d] = trng.NormFloat64()
	}
	rng := rand.New(rand.NewSource(partSeed))
	points = make([][]float64, n)
	labels = make([]float64, n)
	for i := range points {
		p := make([]float64, dims)
		var dot float64
		for d := range p {
			p[d] = rng.NormFloat64()
			dot += p[d] * truth[d]
		}
		points[i] = p
		if Sigmoid(dot) > rng.Float64() {
			labels[i] = 1
		}
	}
	return points, labels
}

// Split partitions items into parts nearly-equal contiguous chunks (the
// dataset "has been split into 80 equal-size partitions").
func Split[T any](items []T, parts int) [][]T {
	if parts <= 0 {
		parts = 1
	}
	out := make([][]T, parts)
	base := len(items) / parts
	rem := len(items) % parts
	idx := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		out[p] = items[idx : idx+size]
		idx += size
	}
	return out
}

// --- k-means (Lloyd's algorithm) ---

// NearestCentroid returns the index of and squared distance to the closest
// centroid.
func NearestCentroid(p []float64, centroids [][]float64) (int, float64) {
	best, bestDist := -1, math.MaxFloat64
	for c, cent := range centroids {
		var d2 float64
		for i := range p {
			diff := p[i] - cent[i]
			d2 += diff * diff
		}
		if d2 < bestDist {
			best, bestDist = c, d2
		}
	}
	return best, bestDist
}

// PartitionStats is one partition's contribution to a k-means iteration:
// per-cluster coordinate sums and counts, plus the within-cluster squared
// distance (the iteration's cost contribution).
type PartitionStats struct {
	Sums   [][]float64
	Counts []int64
	Cost   float64
}

// AssignPartition runs one assignment pass over a partition against the
// current centroids.
func AssignPartition(points [][]float64, centroids [][]float64) PartitionStats {
	k := len(centroids)
	dims := 0
	if k > 0 {
		dims = len(centroids[0])
	}
	st := PartitionStats{
		Sums:   make([][]float64, k),
		Counts: make([]int64, k),
	}
	for c := range st.Sums {
		st.Sums[c] = make([]float64, dims)
	}
	for _, p := range points {
		c, d2 := NearestCentroid(p, centroids)
		if c < 0 {
			continue
		}
		st.Counts[c]++
		st.Cost += d2
		sum := st.Sums[c]
		for i := range p {
			sum[i] += p[i]
		}
	}
	return st
}

// MergeStats folds b into a (the reduce step).
func MergeStats(a, b PartitionStats) PartitionStats {
	for c := range a.Sums {
		a.Counts[c] += b.Counts[c]
		for i := range a.Sums[c] {
			a.Sums[c][i] += b.Sums[c][i]
		}
	}
	a.Cost += b.Cost
	return a
}

// RecomputeCentroids derives the next centroids; empty clusters keep their
// previous position. It returns the new centroids and the maximum centroid
// shift (the convergence delta of Listing 2).
func RecomputeCentroids(stats PartitionStats, prev [][]float64) (next [][]float64, delta float64) {
	next = make([][]float64, len(prev))
	for c := range prev {
		next[c] = make([]float64, len(prev[c]))
		if stats.Counts[c] == 0 {
			copy(next[c], prev[c])
			continue
		}
		var shift float64
		for i := range next[c] {
			next[c][i] = stats.Sums[c][i] / float64(stats.Counts[c])
			d := next[c][i] - prev[c][i]
			shift += d * d
		}
		if s := math.Sqrt(shift); s > delta {
			delta = s
		}
	}
	return next, delta
}

// InitCentroids picks k points as starting centroids, deterministically
// from seed ("centroids are initially at random positions").
func InitCentroids(points [][]float64, k int, seed int64) ([][]float64, error) {
	if k <= 0 || k > len(points) {
		return nil, fmt.Errorf("ml: k=%d outside [1,%d]", k, len(points))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(points))
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		src := points[perm[i]]
		out[i] = make([]float64, len(src))
		copy(out[i], src)
	}
	return out, nil
}

// KMeansLocal is the reference single-process implementation: it returns
// the final centroids and the per-iteration costs.
func KMeansLocal(points [][]float64, k, iterations int, seed int64) ([][]float64, []float64, error) {
	centroids, err := InitCentroids(points, k, seed)
	if err != nil {
		return nil, nil, err
	}
	costs := make([]float64, 0, iterations)
	for it := 0; it < iterations; it++ {
		st := AssignPartition(points, centroids)
		costs = append(costs, st.Cost)
		centroids, _ = RecomputeCentroids(st, centroids)
	}
	return centroids, costs, nil
}

// --- logistic regression (batch gradient descent, MLlib's
// LogisticRegressionWithSGD shape) ---

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 {
	return 1.0 / (1.0 + math.Exp(-x))
}

// Dot computes an inner product.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SubGradient computes a partition's gradient contribution for weights w:
// sum over points of (sigmoid(w.x) - y) * x.
func SubGradient(points [][]float64, labels []float64, w []float64) []float64 {
	g := make([]float64, len(w))
	for i, p := range points {
		err := Sigmoid(Dot(w, p)) - labels[i]
		for d := range g {
			g[d] += err * p[d]
		}
	}
	return g
}

// LogisticLoss computes a partition's total log-loss for weights w.
func LogisticLoss(points [][]float64, labels []float64, w []float64) float64 {
	var loss float64
	const eps = 1e-12
	for i, p := range points {
		h := Sigmoid(Dot(w, p))
		if labels[i] > 0.5 {
			loss += -math.Log(h + eps)
		} else {
			loss += -math.Log(1 - h + eps)
		}
	}
	return loss
}

// ApplyGradient takes one descent step: w -= lr/n * grad.
func ApplyGradient(w, grad []float64, lr float64, n int) []float64 {
	out := make([]float64, len(w))
	scale := lr / float64(n)
	for d := range w {
		out[d] = w[d] - scale*grad[d]
	}
	return out
}

// LogRegLocal is the reference single-process trainer returning final
// weights and the per-iteration loss curve.
func LogRegLocal(points [][]float64, labels []float64, iterations int, lr float64) ([]float64, []float64, error) {
	if len(points) == 0 {
		return nil, nil, errors.New("ml: empty dataset")
	}
	w := make([]float64, len(points[0]))
	losses := make([]float64, 0, iterations)
	for it := 0; it < iterations; it++ {
		g := SubGradient(points, labels, w)
		w = ApplyGradient(w, g, lr, len(points))
		losses = append(losses, LogisticLoss(points, labels, w)/float64(len(points)))
	}
	return w, losses, nil
}

// Accuracy reports the fraction of correct binary predictions.
func Accuracy(points [][]float64, labels []float64, w []float64) float64 {
	if len(points) == 0 {
		return 0
	}
	var correct int
	for i, p := range points {
		pred := 0.0
		if Sigmoid(Dot(w, p)) >= 0.5 {
			pred = 1.0
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(points))
}

// Predict classifies one point against a k-means model (Fig. 8's
// inference workload: read all centroids, compute distances).
func Predict(p []float64, centroids [][]float64) int {
	c, _ := NearestCentroid(p, centroids)
	return c
}
