package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeneratePointsShapeAndDeterminism(t *testing.T) {
	a := GeneratePoints(100, 5, 3, 42)
	b := GeneratePoints(100, 5, 3, 42)
	if len(a) != 100 || len(a[0]) != 5 {
		t.Fatalf("shape = %dx%d", len(a), len(a[0]))
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("generator not deterministic")
			}
		}
	}
	c := GeneratePoints(100, 5, 3, 43)
	same := true
	for i := range a {
		for d := range a[i] {
			if a[i][d] != c[i][d] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateLabeledBalancedEnough(t *testing.T) {
	_, labels := GenerateLabeled(2000, 10, 7)
	var ones int
	for _, l := range labels {
		if l == 1 {
			ones++
		}
	}
	if ones < 400 || ones > 1600 {
		t.Fatalf("labels heavily skewed: %d/2000 ones", ones)
	}
}

func TestSplitSizes(t *testing.T) {
	items := make([]int, 103)
	parts := Split(items, 10)
	if len(parts) != 10 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		if len(p) < 10 || len(p) > 11 {
			t.Fatalf("uneven partition size %d", len(p))
		}
		total += len(p)
	}
	if total != 103 {
		t.Fatalf("total = %d", total)
	}
}

func TestSplitDegenerate(t *testing.T) {
	parts := Split([]int{1, 2}, 0)
	if len(parts) != 1 || len(parts[0]) != 2 {
		t.Fatalf("Split with parts=0 = %v", parts)
	}
	parts = Split([]int{1}, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
}

func TestNearestCentroid(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 10}}
	c, d2 := NearestCentroid([]float64{1, 1}, cents)
	if c != 0 || d2 != 2 {
		t.Fatalf("nearest = %d, %v", c, d2)
	}
	c, _ = NearestCentroid([]float64{9, 9}, cents)
	if c != 1 {
		t.Fatalf("nearest = %d", c)
	}
}

func TestKMeansConvergesOnBlobs(t *testing.T) {
	points := GeneratePoints(600, 4, 3, 11)
	// Random init can merge blobs for an unlucky seed; like any practical
	// k-means run, take the best of a few restarts.
	best := math.MaxFloat64
	var first float64
	for seed := int64(1); seed <= 5; seed++ {
		_, costs, err := KMeansLocal(points, 3, 10, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(costs) != 10 {
			t.Fatalf("costs len = %d", len(costs))
		}
		if costs[len(costs)-1] > costs[0] {
			t.Fatalf("cost increased: %v -> %v", costs[0], costs[len(costs)-1])
		}
		if first == 0 || costs[0] > first {
			first = costs[0]
		}
		if c := costs[len(costs)-1]; c < best {
			best = c
		}
	}
	if best > first*0.2 {
		t.Fatalf("best restart only reached %v from initial %v", best, first)
	}
}

func TestKMeansInvalidK(t *testing.T) {
	points := GeneratePoints(10, 2, 2, 1)
	if _, _, err := KMeansLocal(points, 0, 1, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := KMeansLocal(points, 11, 1, 1); err == nil {
		t.Fatal("k>n accepted")
	}
}

// The distributed decomposition must match the single-pass computation:
// merging per-partition stats equals assigning over the full dataset.
func TestPartitionMergeEqualsSinglePass(t *testing.T) {
	points := GeneratePoints(500, 3, 4, 21)
	cents, err := InitCentroids(points, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	whole := AssignPartition(points, cents)

	parts := Split(points, 7)
	merged := AssignPartition(parts[0], cents)
	for _, p := range parts[1:] {
		merged = MergeStats(merged, AssignPartition(p, cents))
	}
	if math.Abs(whole.Cost-merged.Cost) > 1e-6*math.Abs(whole.Cost) {
		t.Fatalf("cost: whole %v, merged %v", whole.Cost, merged.Cost)
	}
	for c := range whole.Counts {
		if whole.Counts[c] != merged.Counts[c] {
			t.Fatalf("counts[%d]: %d vs %d", c, whole.Counts[c], merged.Counts[c])
		}
		for d := range whole.Sums[c] {
			if math.Abs(whole.Sums[c][d]-merged.Sums[c][d]) > 1e-6 {
				t.Fatalf("sums[%d][%d]: %v vs %v", c, d, whole.Sums[c][d], merged.Sums[c][d])
			}
		}
	}
}

func TestRecomputeCentroidsEmptyCluster(t *testing.T) {
	prev := [][]float64{{1, 1}, {5, 5}}
	stats := PartitionStats{
		Sums:   [][]float64{{4, 4}, {0, 0}},
		Counts: []int64{2, 0},
	}
	next, delta := RecomputeCentroids(stats, prev)
	if next[0][0] != 2 || next[0][1] != 2 {
		t.Fatalf("next[0] = %v", next[0])
	}
	if next[1][0] != 5 || next[1][1] != 5 {
		t.Fatalf("empty cluster moved: %v", next[1])
	}
	if delta <= 0 {
		t.Fatalf("delta = %v", delta)
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got < 0.999 {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got > 0.001 {
		t.Fatalf("Sigmoid(-100) = %v", got)
	}
}

func TestSigmoidRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogRegLossDecreasesAndLearns(t *testing.T) {
	points, labels := GenerateLabeled(1500, 8, 13)
	w, losses, err := LogRegLocal(points, labels, 40, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if acc := Accuracy(points, labels, w); acc < 0.7 {
		t.Fatalf("training accuracy %v too low", acc)
	}
}

func TestLogRegEmptyDataset(t *testing.T) {
	if _, _, err := LogRegLocal(nil, nil, 1, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

// Distributed gradient: sum of per-partition sub-gradients equals the
// whole-dataset gradient.
func TestSubGradientDecomposition(t *testing.T) {
	points, labels := GenerateLabeled(400, 5, 3)
	w := []float64{0.1, -0.2, 0.3, 0, 0.5}
	whole := SubGradient(points, labels, w)

	pParts := Split(points, 5)
	lParts := Split(labels, 5)
	sum := make([]float64, len(w))
	for i := range pParts {
		g := SubGradient(pParts[i], lParts[i], w)
		for d := range sum {
			sum[d] += g[d]
		}
	}
	for d := range whole {
		if math.Abs(whole[d]-sum[d]) > 1e-8 {
			t.Fatalf("gradient[%d]: %v vs %v", d, whole[d], sum[d])
		}
	}
}

func TestApplyGradient(t *testing.T) {
	w := ApplyGradient([]float64{1, 1}, []float64{10, -10}, 0.1, 10)
	if w[0] != 0.9 || w[1] != 1.1 {
		t.Fatalf("step = %v", w)
	}
}

func TestPredict(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 10}}
	if Predict([]float64{9, 8}, cents) != 1 {
		t.Fatal("prediction wrong")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(nil, nil, nil) != 0 {
		t.Fatal("accuracy of empty set not 0")
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot product wrong")
	}
}
