package sparksim

import (
	"context"
	"errors"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func clusterT(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Profile == nil {
		cfg.Profile = netsim.Zero()
	}
	if cfg.TaskOverheadMs == 0 {
		cfg.TaskOverheadMs = 0.001 // effectively none for logic tests
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigDefaults(t *testing.T) {
	c, err := NewCluster(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalCores() != 80 {
		t.Fatalf("default cores = %d, want 80 (10x8 EMR)", c.TotalCores())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCluster(Config{TaskOverheadMs: -1}); err == nil {
		t.Fatal("negative overhead accepted")
	}
}

func TestRunStageExecutesAllTasks(t *testing.T) {
	c := clusterT(t, Config{Workers: 2, CoresPerWorker: 2})
	tasks := make([]Task[int], 10)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Fn: func() (int, error) { return i * i, nil }}
	}
	out, err := RunStage(context.Background(), c, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("task %d = %d", i, v)
		}
	}
}

func TestRunStageErrorPropagates(t *testing.T) {
	c := clusterT(t, Config{Workers: 1, CoresPerWorker: 1})
	boom := errors.New("task failed")
	tasks := []Task[int]{
		{Fn: func() (int, error) { return 0, nil }},
		{Fn: func() (int, error) { return 0, boom }},
	}
	if _, err := RunStage(context.Background(), c, tasks); !errors.Is(err, boom) {
		t.Fatalf("want task error, got %v", err)
	}
}

// A stage is a barrier: with more tasks than cores, elapsed time must be
// at least ceil(tasks/cores) waves of compute.
func TestStageCoresLimitThroughput(t *testing.T) {
	c := clusterT(t, Config{Workers: 1, CoresPerWorker: 2})
	tasks := make([]Task[int], 6)
	for i := range tasks {
		tasks[i] = Task[int]{Compute: 20 * time.Millisecond}
	}
	start := time.Now()
	if _, err := RunStage(context.Background(), c, tasks); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("6x20ms on 2 cores finished in %v, want >= 60ms", d)
	}
}

func TestTaskOverheadApplied(t *testing.T) {
	c := clusterT(t, Config{Workers: 4, CoresPerWorker: 4, TaskOverheadMs: 25})
	start := time.Now()
	if _, err := RunStage(context.Background(), c, []Task[int]{{}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stage with 25ms overhead finished in %v", d)
	}
}

func TestBroadcastCost(t *testing.T) {
	c := clusterT(t, Config{NetworkMBps: 10}) // 10 MB/s
	start := time.Now()
	// 1 MB at 10MB/s, two rounds = 200ms.
	if err := c.Broadcast(context.Background(), 1_000_000); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 180*time.Millisecond {
		t.Fatalf("broadcast took %v, want ~200ms", d)
	}
}

func TestReduceCollectCombines(t *testing.T) {
	c := clusterT(t, Config{})
	sum, err := ReduceCollect(context.Background(), c, []int{1, 2, 3, 4}, 8,
		func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("reduce = %d", sum)
	}
}

func TestReduceCollectEmpty(t *testing.T) {
	c := clusterT(t, Config{})
	if _, err := ReduceCollect(context.Background(), c, nil, 8, func(a, b int) int { return a + b }); err == nil {
		t.Fatal("empty reduce accepted")
	}
}

func TestReduceCollectTransferCost(t *testing.T) {
	c := clusterT(t, Config{NetworkMBps: 10})
	partials := make([]int, 10)
	start := time.Now()
	// 10 partials x 100KB = 1MB at 10MB/s = 100ms.
	if _, err := ReduceCollect(context.Background(), c, partials, 100_000,
		func(a, b int) int { return a + b }); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("reduce transfer took %v, want ~100ms", d)
	}
}

// End-to-end iterative job: broadcast + stage + reduce, MLlib style.
func TestIterativeJobStructure(t *testing.T) {
	c := clusterT(t, Config{Workers: 2, CoresPerWorker: 4})
	ctx := context.Background()
	model := 0
	for iter := 0; iter < 3; iter++ {
		if err := c.Broadcast(ctx, 800); err != nil {
			t.Fatal(err)
		}
		tasks := make([]Task[int], 8)
		for i := range tasks {
			i := i
			tasks[i] = Task[int]{Fn: func() (int, error) { return i + model, nil }}
		}
		partials, err := RunStage(ctx, c, tasks)
		if err != nil {
			t.Fatal(err)
		}
		model, err = ReduceCollect(ctx, c, partials, 8, func(a, b int) int { return a + b })
		if err != nil {
			t.Fatal(err)
		}
	}
	if model == 0 {
		t.Fatal("iterative job produced no model")
	}
}
