// Package sparksim is a Spark-like bulk-synchronous-parallel engine: a
// driver schedules per-partition tasks onto a cluster of worker machines,
// stages end with a barrier, and iterative ML jobs follow MLlib's
// broadcast -> map -> reduce structure. It is the baseline Crucial is
// compared against in Figs. 4 and 5 and Table 3.
//
// Tasks execute their closures for real (the ML math runs); the costs that
// give Spark its performance profile — per-task scheduling overhead,
// stage barriers, broadcast of the model, and the reduce/collect phase
// funnelling partial results through the driver — are modeled explicitly
// from sizes and the cluster's network bandwidth.
package sparksim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crucial/internal/netsim"
	"crucial/internal/vmsim"
)

// Config sizes the cluster like an EMR deployment.
type Config struct {
	// Workers is the worker (core-node) count; CoresPerWorker the
	// executor cores on each (paper: 10 m5.2xlarge = 10 x 8).
	Workers        int
	CoresPerWorker int
	// Profile supplies the time scale.
	Profile *netsim.Profile
	// TaskOverheadMs is the modeled per-task scheduling cost in
	// milliseconds (Spark's task serialization/dispatch, ~5-15ms).
	TaskOverheadMs float64
	// NetworkMBps is the modeled per-link bandwidth used for broadcast
	// and reduce transfers.
	NetworkMBps float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Workers <= 0 {
		c.Workers = 10
	}
	if c.CoresPerWorker <= 0 {
		c.CoresPerWorker = 8
	}
	if c.Profile == nil {
		c.Profile = netsim.Zero()
	}
	if c.TaskOverheadMs < 0 {
		return c, errors.New("sparksim: negative task overhead")
	}
	if c.TaskOverheadMs == 0 {
		c.TaskOverheadMs = 8
	}
	if c.NetworkMBps <= 0 {
		c.NetworkMBps = 500
	}
	return c, nil
}

// Cluster is a running Spark-like deployment.
type Cluster struct {
	cfg      Config
	machines []*vmsim.Machine
}

// NewCluster provisions the workers.
func NewCluster(cfg Config) (*Cluster, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Cluster{cfg: full}
	c.machines = make([]*vmsim.Machine, full.Workers)
	for i := range c.machines {
		m, err := vmsim.NewMachine(fmt.Sprintf("worker-%02d", i), full.CoresPerWorker, full.Profile)
		if err != nil {
			return nil, err
		}
		c.machines[i] = m
	}
	return c, nil
}

// TotalCores reports the executor core count.
func (c *Cluster) TotalCores() int {
	return c.cfg.Workers * c.cfg.CoresPerWorker
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Task is one partition's work: it returns a partial result and the size
// in bytes that result contributes to the reduce transfer.
type Task[O any] struct {
	// Compute is the modeled duration of the partition's computation.
	Compute time.Duration
	// Fn is the real work (may be nil).
	Fn func() (O, error)
}

// RunStage schedules one task per entry across the cluster's cores and
// barriers until all complete (a Spark stage). Task i runs on machine
// i%workers, mirroring even partition placement.
func RunStage[O any](ctx context.Context, c *Cluster, tasks []Task[O]) ([]O, error) {
	out := make([]O, len(tasks))
	errs := make([]error, len(tasks))
	overhead := time.Duration(c.cfg.TaskOverheadMs * float64(time.Millisecond))

	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := c.machines[i%len(c.machines)]
			// Scheduling overhead precedes the core acquisition, like the
			// driver dispatching the task.
			if err := netsim.Sleep(ctx, c.cfg.Profile.Scaled(overhead)); err != nil {
				errs[i] = err
				return
			}
			errs[i] = m.Run(ctx, tasks[i].Compute, func() error {
				if tasks[i].Fn == nil {
					return nil
				}
				v, err := tasks[i].Fn()
				if err != nil {
					return err
				}
				out[i] = v
				return nil
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Broadcast models shipping sizeBytes of read-only state (e.g. the model
// weights) to every worker before a stage. Spark's torrent broadcast is
// roughly two link-serial rounds, so the modeled cost is two transfers.
func (c *Cluster) Broadcast(ctx context.Context, sizeBytes int) error {
	d := 2 * vmsim.TransferTime(sizeBytes, c.cfg.NetworkMBps)
	return netsim.Sleep(ctx, c.cfg.Profile.Scaled(d))
}

// ReduceCollect models the shuffle/aggregate that ends an MLlib iteration:
// every task's partial (bytesEach) funnels to the driver, then combine
// runs for real over the partials. The transfer is what Crucial's
// server-side aggregation avoids (paper Section 4.2).
func ReduceCollect[O any](ctx context.Context, c *Cluster, partials []O, bytesEach int, combine func(a, b O) O) (O, error) {
	var zero O
	if len(partials) == 0 {
		return zero, errors.New("sparksim: reduce over no partials")
	}
	total := bytesEach * len(partials)
	d := vmsim.TransferTime(total, c.cfg.NetworkMBps)
	if err := netsim.Sleep(ctx, c.cfg.Profile.Scaled(d)); err != nil {
		return zero, err
	}
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = combine(acc, p)
	}
	return acc, nil
}
