// Package netsim models network and service latencies for the simulated
// cloud substrates in this repository.
//
// Every artificial wait in the code base flows through a Profile so that
// experiments can run with paper-like latencies (AWS us-east-1, 2019) while
// unit tests use a heavily compressed profile. A Profile is immutable after
// construction; concurrent use is safe.
package netsim

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Latency describes one service interaction as a base delay plus uniform
// jitter in [-Jitter, +Jitter]. The zero value means "no delay".
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
}

// Profile groups the latencies of every simulated cloud service, together
// with a global time Scale. A Scale of 1.0 reproduces paper-like waits; 0.1
// compresses every wait tenfold. Scale never affects the *relative* cost of
// operations, only wall-clock duration.
type Profile struct {
	// Scale multiplies every delay produced by this profile. Must be > 0.
	Scale float64

	// DSONet is the one-way network hop between a client and a DSO node
	// (half of the ~230 microsecond in-memory round trip of Table 2).
	DSONet Latency
	// DSOReplica is the extra one-way hop between DSO replicas used by the
	// total-order multicast (rf > 1 roughly doubles the client latency).
	DSOReplica Latency

	// RedisNet is the one-way hop to the Redis-like store.
	RedisNet Latency

	// S3Put and S3Get are full request latencies of the S3-like blob store.
	S3Put Latency
	S3Get Latency
	// S3List is the latency of a LIST call; list results are additionally
	// subject to eventual consistency (see s3sim).
	S3List Latency

	// SQSSend, SQSReceive and SNSPublish model the queueing services.
	// SQSReceive is the cost of one (possibly empty) poll.
	SQSSend    Latency
	SQSReceive Latency
	SNSPublish Latency

	// ColdStart is the container provisioning delay of the FaaS platform,
	// and InvokeOverhead the per-invocation dispatch cost of a warm one.
	ColdStart      Latency
	InvokeOverhead Latency
}

// AWS2019 returns a profile calibrated from the paper's measurements
// (Table 2 and Section 6): ~230 microsecond in-memory round trips,
// 23/35 ms S3 GET/PUT, tens of milliseconds for SQS polling, and a 1 s
// FaaS cold start. The scale argument compresses all waits.
func AWS2019(scale float64) *Profile {
	return &Profile{
		Scale:      scale,
		DSONet:     Latency{Base: 110 * time.Microsecond, Jitter: 20 * time.Microsecond},
		DSOReplica: Latency{Base: 130 * time.Microsecond, Jitter: 25 * time.Microsecond},
		RedisNet:   Latency{Base: 112 * time.Microsecond, Jitter: 20 * time.Microsecond},
		S3Put:      Latency{Base: 34800 * time.Microsecond, Jitter: 9000 * time.Microsecond},
		S3Get:      Latency{Base: 23000 * time.Microsecond, Jitter: 6000 * time.Microsecond},
		S3List:     Latency{Base: 25000 * time.Microsecond, Jitter: 8000 * time.Microsecond},
		// Queueing services add "significant latency, sometimes hundreds
		// of milliseconds" (paper Section 1, citing Garfinkel's SQS
		// measurements).
		SQSSend:        Latency{Base: 25 * time.Millisecond, Jitter: 10 * time.Millisecond},
		SQSReceive:     Latency{Base: 60 * time.Millisecond, Jitter: 25 * time.Millisecond},
		SNSPublish:     Latency{Base: 30 * time.Millisecond, Jitter: 12 * time.Millisecond},
		ColdStart:      Latency{Base: 1200 * time.Millisecond, Jitter: 400 * time.Millisecond},
		InvokeOverhead: Latency{Base: 15 * time.Millisecond, Jitter: 8 * time.Millisecond},
	}
}

// FastTest returns a profile for unit tests: the same relative ordering of
// services as AWS2019 but three orders of magnitude faster, so full-stack
// tests complete in milliseconds.
func FastTest() *Profile {
	p := AWS2019(1.0 / 1000.0)
	return p
}

// Zero returns a profile that injects no delays at all. Useful for tests
// that assert pure logic.
func Zero() *Profile {
	return &Profile{Scale: 1}
}

// rng is a lock-protected source of jitter. Profiles share one source; the
// contention is irrelevant next to the sleeps it feeds.
var rng = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(42))}

// Sample returns one concrete delay drawn from l, scaled by scale.
// It never returns a negative duration.
func (l Latency) Sample(scale float64) time.Duration {
	if l.Base == 0 && l.Jitter == 0 {
		return 0
	}
	d := l.Base
	if l.Jitter > 0 {
		rng.Lock()
		j := time.Duration(rng.r.Int63n(int64(2*l.Jitter))) - l.Jitter
		rng.Unlock()
		d += j
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(float64(d) * scale)
}

// Delay blocks for one sample of l (scaled by the profile) or until the
// context is cancelled, returning the context error in that case.
func (p *Profile) Delay(ctx context.Context, l Latency) error {
	return Sleep(ctx, l.Sample(p.Scale))
}

// spinThreshold selects the waiting strategy: below it, timers are
// useless — this host's timer granularity is ~1ms, which would inflate
// every microsecond-scale simulated latency by two orders of magnitude —
// so short waits busy-spin, yielding the processor each round so
// concurrent spinners interleave.
const spinThreshold = 2 * time.Millisecond

// Sleep blocks for d or until ctx is done. A non-positive d returns
// immediately. It reports ctx.Err() when interrupted.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		// Still honour an already-cancelled context.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	if d < spinThreshold {
		deadline := time.Now().Add(d)
		done := ctx.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			if done != nil && i%64 == 63 {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			runtime.Gosched()
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Scaled returns d multiplied by the profile scale. It is used by compute
// models (vmsim) that piggyback on the same global compression factor.
func (p *Profile) Scaled(d time.Duration) time.Duration {
	return time.Duration(float64(d) * p.Scale)
}
