package netsim

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencySampleZero(t *testing.T) {
	var l Latency
	if got := l.Sample(1.0); got != 0 {
		t.Fatalf("zero latency sampled %v, want 0", got)
	}
}

func TestLatencySampleNoJitter(t *testing.T) {
	l := Latency{Base: 10 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if got := l.Sample(1.0); got != 10*time.Millisecond {
			t.Fatalf("sample %v, want exactly 10ms without jitter", got)
		}
	}
}

func TestLatencySampleScale(t *testing.T) {
	l := Latency{Base: 10 * time.Millisecond}
	if got := l.Sample(0.1); got != time.Millisecond {
		t.Fatalf("scaled sample %v, want 1ms", got)
	}
}

func TestLatencySampleJitterBounds(t *testing.T) {
	l := Latency{Base: 10 * time.Millisecond, Jitter: 2 * time.Millisecond}
	for i := 0; i < 200; i++ {
		got := l.Sample(1.0)
		if got < 8*time.Millisecond || got > 12*time.Millisecond {
			t.Fatalf("sample %v outside [8ms,12ms]", got)
		}
	}
}

func TestLatencySampleNeverNegative(t *testing.T) {
	f := func(base, jitter uint16) bool {
		l := Latency{
			Base:   time.Duration(base) * time.Microsecond,
			Jitter: time.Duration(jitter) * time.Microsecond,
		}
		return l.Sample(1.0) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := Sleep(ctx, time.Hour)
	if err == nil {
		t.Fatal("want context error, got nil")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep did not return promptly on cancelled context")
	}
}

func TestSleepZeroOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, 0); err == nil {
		t.Fatal("want context error for cancelled context even with zero delay")
	}
}

func TestSleepCompletes(t *testing.T) {
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("Sleep returned %v", err)
	}
}

func TestProfileDelayZeroProfile(t *testing.T) {
	p := Zero()
	start := time.Now()
	if err := p.Delay(context.Background(), Latency{}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("zero profile delayed noticeably")
	}
}

func TestAWS2019Ordering(t *testing.T) {
	p := AWS2019(1.0)
	if p.S3Get.Base <= p.DSONet.Base {
		t.Fatal("S3 must be slower than the DSO network hop")
	}
	if p.SQSReceive.Base <= p.DSONet.Base {
		t.Fatal("SQS polling must be slower than the DSO network hop")
	}
	if p.ColdStart.Base <= p.InvokeOverhead.Base {
		t.Fatal("cold start must dominate warm invocation overhead")
	}
}

func TestFastTestIsCompressed(t *testing.T) {
	p := FastTest()
	if p.Scale >= 0.01 {
		t.Fatalf("FastTest scale %v is not compressed enough for tests", p.Scale)
	}
	if got := p.S3Get.Sample(p.Scale); got > time.Millisecond {
		t.Fatalf("FastTest S3 get %v too slow for unit tests", got)
	}
}

func TestScaled(t *testing.T) {
	p := AWS2019(0.5)
	if got := p.Scaled(10 * time.Second); got != 5*time.Second {
		t.Fatalf("Scaled = %v, want 5s", got)
	}
}
