package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/netsim"
	"crucial/internal/objects"
	"crucial/internal/storage/s3sim"
)

// The durability-overhead microbenchmarks behind BENCH_wal.json (`make
// bench-wal`): the same contended hot-counter workload as bench-write
// (3 nodes, RF=2, group commit on, 8 client connections, parallel
// writers) with the durability tier off, snapshot-only, group-fsynced,
// and fsynced per operation. Group commit already coalesces concurrent
// increments into shared ordering rounds, so one WAL flush covers many
// acks — the group-fsync column is the tier's advertised operating point
// and should stay within ~2x of durability-off.

func benchWAL(b *testing.B, dur core.DurabilityPolicy) {
	b.Helper()
	opts := Options{Nodes: 3, RF: 2, Write: core.DefaultWritePolicy(), Durability: dur}
	if dur.Enabled {
		// Long snapshot interval: the benchmark measures the WAL on the
		// ack path, not checkpoint interference.
		opts.Durability.SnapshotInterval = time.Minute
		opts.ColdStore = s3sim.New(s3sim.Options{Profile: netsim.Zero(), ListLag: -1})
	}
	c, cl := benchCluster(b, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "bench/hot"}
	set := core.Invocation{Ref: ref, Method: "Set", Args: []any{int64(0)}, Persist: true}
	inc := core.Invocation{Ref: ref, Method: "IncrementAndGet", Persist: true}
	if _, err := cl.InvokeObject(ctx, set); err != nil {
		b.Fatal(err)
	}
	clients := []*client.Client{cl}
	for i := 1; i < 8; i++ {
		extra, err := c.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = extra.Close() })
		clients = append(clients, extra)
	}
	var next atomic.Uint64
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl := clients[next.Add(1)%uint64(len(clients))]
		for pb.Next() {
			if _, err := cl.InvokeObject(ctx, inc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALOff is the baseline: the identical workload with the
// durability tier disabled (equals BenchmarkWriteBatched).
func BenchmarkWALOff(b *testing.B) {
	benchWAL(b, core.DurabilityPolicy{})
}

// BenchmarkWALSnapshotOnly disables the log (SyncEvery < 0): acks never
// wait on cold storage, so this isolates the tier's bookkeeping cost.
func BenchmarkWALSnapshotOnly(b *testing.B) {
	benchWAL(b, core.DurabilityPolicy{Enabled: true, SyncEvery: -1})
}

// BenchmarkWALGroupFsync is the advertised operating point: acks wait on
// a flush that covers up to 64 records.
func BenchmarkWALGroupFsync(b *testing.B) {
	benchWAL(b, core.DurabilityPolicy{Enabled: true, SyncEvery: 64})
}

// BenchmarkWALSyncEveryOp is the worst case: one flush per record, every
// ack pays a full storage round trip of its own.
func BenchmarkWALSyncEveryOp(b *testing.B) {
	benchWAL(b, core.DurabilityPolicy{Enabled: true, SyncEvery: 1})
}
