package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"crucial/internal/core"
	"crucial/internal/linearizability"
	"crucial/internal/objects"
)

// recordHistory drives concurrent clients against one object and records
// the real-time operation history.
func recordHistory(t *testing.T, c *Cluster, ref core.Ref, persist bool,
	clients int, opsPerClient int,
	makeOp func(client, i int) (method string, args []any, input any),
	output func(res []any) any,
) []linearizability.Operation {
	t.Helper()
	var mu sync.Mutex
	history := make([]linearizability.Operation, 0, clients*opsPerClient)

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			conn := newClient(t, c)
			for i := 0; i < opsPerClient; i++ {
				method, args, input := makeOp(clientID, i)
				call := time.Now()
				res, err := conn.InvokeObject(context.Background(), core.Invocation{
					Ref: ref, Method: method, Args: args, Persist: persist,
				})
				ret := time.Now()
				if err != nil {
					t.Errorf("client %d op %d: %v", clientID, i, err)
					return
				}
				mu.Lock()
				history = append(history, linearizability.Operation{
					ClientID: clientID,
					Input:    input,
					Output:   output(res),
					Call:     call,
					Return:   ret,
				})
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	return history
}

// The DSO layer's headline guarantee: concurrent counter histories are
// linearizable (paper Section 3.1).
func TestCounterHistoryLinearizable(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "lin-counter"}

	for trial := 0; trial < 3; trial++ {
		refT := core.Ref{Type: ref.Type, Key: fmt.Sprintf("%s-%d", ref.Key, trial)}
		history := recordHistory(t, c, refT, false, 4, 3,
			func(client, i int) (string, []any, any) {
				if (client+i)%3 == 0 {
					return "Get", nil, linearizability.CounterOp{Kind: "get"}
				}
				return "AddAndGet", []any{int64(1)}, linearizability.CounterOp{Kind: "add", Delta: 1}
			},
			func(res []any) any { return res[0].(int64) },
		)
		if _, ok := linearizability.Check(linearizability.CounterModel(), history); !ok {
			linearizability.SortByCall(history)
			t.Fatalf("trial %d: history not linearizable:\n%+v", trial, history)
		}
	}
}

// Replicated (rf=2, SMR) objects must be linearizable too — the total
// order multicast is what guarantees it.
func TestReplicatedCounterHistoryLinearizable(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2})
	for trial := 0; trial < 2; trial++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("lin-repl-%d", trial)}
		history := recordHistory(t, c, ref, true, 3, 3,
			func(client, i int) (string, []any, any) {
				if i == 2 {
					return "Get", nil, linearizability.CounterOp{Kind: "get"}
				}
				return "AddAndGet", []any{int64(1)}, linearizability.CounterOp{Kind: "add", Delta: 1}
			},
			func(res []any) any { return res[0].(int64) },
		)
		if _, ok := linearizability.Check(linearizability.CounterModel(), history); !ok {
			linearizability.SortByCall(history)
			t.Fatalf("trial %d: replicated history not linearizable:\n%+v", trial, history)
		}
	}
}

// Register (read/write) histories across concurrent writers and readers.
func TestRegisterHistoryLinearizable(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	for trial := 0; trial < 3; trial++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("lin-reg-%d", trial)}
		val := int64(trial*100 + 1)
		history := recordHistory(t, c, ref, false, 4, 3,
			func(client, i int) (string, []any, any) {
				if client%2 == 0 {
					v := val + int64(client*10+i)
					return "Set", []any{v}, linearizability.RegisterOp{Kind: "write", Value: v}
				}
				return "Get", nil, linearizability.RegisterOp{Kind: "read"}
			},
			func(res []any) any {
				if len(res) == 0 {
					return nil // Set has no results
				}
				return res[0].(int64)
			},
		)
		// Writes carry no output; normalize for the model.
		if _, ok := linearizability.Check(linearizability.RegisterModel(), history); !ok {
			linearizability.SortByCall(history)
			t.Fatalf("trial %d: register history not linearizable:\n%+v", trial, history)
		}
	}
}
