package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// placement returns ref's current replica set under the installed view
// (directive-aware, like every router in the system).
func placement(c *Cluster, ref core.Ref, rf int) []ring.NodeID {
	return c.Dir.View().Place(ref.String(), rf)
}

// primaryNode resolves ref's current primary node handle.
func primaryNode(t *testing.T, c *Cluster, ref core.Ref) *server.Node {
	t.Helper()
	set := placement(c, ref, c.RF())
	if len(set) == 0 {
		t.Fatalf("no placement for %s", ref)
	}
	n, ok := c.Node(set[0])
	if !ok {
		t.Fatalf("primary %s not running", set[0])
	}
	return n
}

// otherNodes lists cluster members excluding ref's current primary,
// deterministically ordered.
func otherNodes(c *Cluster, ref core.Ref) []ring.NodeID {
	set := placement(c, ref, c.RF())
	var out []ring.NodeID
	for _, id := range c.NodeIDs() {
		if len(set) > 0 && id == set[0] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Live migration end to end: pin a counter onto an explicit replica set,
// verify the value survived, the directive routes new traffic to the new
// primary, and writes keep working there.
func TestMigrateObjectEndToEnd(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2, Telemetry: telemetry.New()})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "viral"}

	if _, err := cl.Call(ctx, ref, "Set", int64(41)); err != nil {
		t.Fatal(err)
	}
	src := primaryNode(t, c, ref)
	targets := otherNodes(c, ref)
	if len(targets) < 2 {
		t.Fatalf("need 2 targets, have %v", targets)
	}
	targets = targets[:2]

	if err := src.MigrateObject(ctx, ref, targets, false); err != nil {
		t.Fatal(err)
	}

	v := c.Dir.View()
	if v.Directives.Len() != 1 {
		t.Fatalf("directive table has %d entries after migration, want 1", v.Directives.Len())
	}
	set := placement(c, ref, 2)
	if set[0] != targets[0] {
		t.Fatalf("post-flip primary %s, want %s", set[0], targets[0])
	}
	// Value preserved and writable on the new primary.
	res, err := cl.Call(ctx, ref, "AddAndGet", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 42 {
		t.Fatalf("post-migration AddAndGet = %v, want 42", res[0])
	}
	// The copy actually lives on the new primary now.
	newPrimary, _ := c.Node(targets[0])
	if !newPrimary.DebugHasObject(ref) {
		t.Fatal("new primary has no resident copy after migration")
	}
}

// Un-pin: migrating back with unpin restores hash placement and the value.
func TestMigrateObjectUnpin(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2, Telemetry: telemetry.New()})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "boomerang"}

	if _, err := cl.Call(ctx, ref, "Set", int64(7)); err != nil {
		t.Fatal(err)
	}
	hashSet := placement(c, ref, 2)
	src := primaryNode(t, c, ref)
	targets := otherNodes(c, ref)[:2]
	if err := src.MigrateObject(ctx, ref, targets, false); err != nil {
		t.Fatal(err)
	}

	// The new primary un-pins it. Right after the flip its freshly-pushed
	// copy may still carry the conservative stale mark (cleared by the
	// self-heal poll moments later), so retry through ErrRebalancing the
	// way any caller would.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := primaryNode(t, c, ref).MigrateObject(ctx, ref, nil, true)
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrRebalancing) || time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := placement(c, ref, 2); got[0] != hashSet[0] {
		t.Fatalf("un-pinned primary %s, want hash primary %s", got[0], hashSet[0])
	}
	if c.Dir.View().Directives.Len() != 0 {
		t.Fatal("directive table not empty after un-pin")
	}
	res, err := cl.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 7 {
		t.Fatalf("value after round trip = %v, want 7", res[0])
	}
}

// Only the current primary may migrate: anyone else answers ErrWrongNode,
// so callers re-route exactly like an invocation.
func TestMigrateObjectWrongNode(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, Telemetry: telemetry.New()})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "somewhere"}
	if _, err := cl.Call(ctx, ref, "Set", int64(1)); err != nil {
		t.Fatal(err)
	}
	others := otherNodes(c, ref)
	n, _ := c.Node(others[0])
	err := n.MigrateObject(ctx, ref, []ring.NodeID{others[0]}, false)
	if !errors.Is(err, core.ErrWrongNode) {
		t.Fatalf("non-primary migration returned %v, want ErrWrongNode", err)
	}
}

// Clients racing a migration never observe a failure (the fence bounces
// with ErrRebalancing, which they retry through) and never lose a write:
// the final counter equals the number of successful increments.
func TestInvokeDuringMigrationLosesNothing(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2, Telemetry: telemetry.New()})
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "contested"}

	cl := newClient(t, c)
	if _, err := cl.Call(ctx, ref, "Set", int64(0)); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	var applied atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wcl := newClient(t, c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := wcl.Call(ctx, ref, "AddAndGet", int64(1)); err != nil {
					t.Errorf("write failed across migration: %v", err)
					return
				}
				applied.Add(1)
			}
		}()
	}

	// Bounce the object across every node while the writers hammer it.
	time.Sleep(20 * time.Millisecond)
	for hop := 0; hop < 3; hop++ {
		src := primaryNode(t, c, ref)
		targets := otherNodes(c, ref)[:2]
		if err := src.MigrateObject(ctx, ref, targets, false); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	res, err := cl.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != applied.Load() {
		t.Fatalf("counter = %d after %d successful increments", got, applied.Load())
	}
}

// The rebalancer closes the loop on its own: sustained load on one key
// installs a directive moving it off its hash primary, with no manual
// migration call.
func TestRebalancerPinsSustainedHotObject(t *testing.T) {
	hot := core.Ref{Type: objects.TypeAtomicLong, Key: "celebrity"}
	c := startCluster(t, Options{
		Nodes:     3,
		RF:        2,
		Telemetry: telemetry.New(),
		Rebalance: core.RebalancePolicy{
			Enabled:  true,
			Interval: 50 * time.Millisecond,
			HotRate:  50,
			// The skew gate compares against the mean over rated objects;
			// 2x is plenty with the cold population below.
			HotFactor: 2,
			Sustain:   2,
			Cooldown:  time.Second,
		},
	})
	cl := newClient(t, c)
	ctx := ctxT(t)

	hashPrimary := placement(c, hot, 2)[0]

	// A cold population co-resident with the hot key: its node serves both
	// the celebrity and ordinary tenants, which is exactly the imbalance
	// the rebalancer exists to correct (evacuating the hot key leaves the
	// tenants their node). Cold keys also keep the cluster-wide mean rate
	// low so the skew gate can fire.
	var cold []core.Ref
	for i := 0; len(cold) < 4 && i < 64; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("cold-%d", i)}
		if placement(c, ref, 2)[0] == hashPrimary {
			cold = append(cold, ref)
		}
	}
	if len(cold) == 0 {
		t.Fatal("no cold key hashes to the hot primary; widen the candidate range")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := cl.Call(ctx, hot, "AddAndGet", int64(1)); err != nil {
				t.Errorf("hot write failed: %v", err)
				return
			}
			if i%10 == 0 {
				if _, err := cl.Call(ctx, cold[(i/10)%len(cold)], "Get"); err != nil {
					t.Errorf("cold read failed: %v", err)
					return
				}
			}
			i++
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	var pinned bool
	for time.Now().Before(deadline) {
		v := c.Dir.View()
		if set, ok := v.Directives.Lookup(hot.String()); ok && len(set) > 0 && set[0] != hashPrimary {
			pinned = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !pinned {
		t.Fatal("rebalancer never pinned the sustained hot object off its hash primary")
	}
}

// A client outside the cluster process seeds from a static member list
// (no directive table, view ID 0). After the rebalancer pins a key
// elsewhere, routing from that seed alone would bounce on the old hash
// primary forever — RemoteViews must learn the flip from the cluster
// over KindView and route by the directive table.
func TestRemoteViewsFollowDirectiveFlip(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2, Telemetry: telemetry.New()})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "viral"}

	if _, err := cl.Call(ctx, ref, "Set", int64(9)); err != nil {
		t.Fatal(err)
	}
	src := primaryNode(t, c, ref)
	targets := otherNodes(c, ref)[:2]
	if err := src.MigrateObject(ctx, ref, targets, false); err != nil {
		t.Fatal(err)
	}

	// The static seed an external client starts from: members and
	// addresses only — the directive the migration just installed is
	// deliberately absent, and ID 0 means "older than anything live".
	live := c.Dir.View()
	seed := membership.View{Members: live.Members, Addrs: live.Addrs}
	rv := client.NewRemoteViews(c.Transport, seed)
	ext, err := client.New(client.Config{Transport: c.Transport, Views: rv})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ext.Close() })

	res, err := ext.Call(ctx, ref, "AddAndGet", int64(1))
	if err != nil {
		t.Fatalf("external client lost the pinned key: %v", err)
	}
	if res[0].(int64) != 10 {
		t.Fatalf("AddAndGet = %v, want 10", res[0])
	}
	if v := rv.View(); v.Directives.Len() != 1 {
		t.Fatalf("RemoteViews never learned the directive table: %+v", v.Directives)
	}
}
