package cluster

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/objects"
)

// The write-path microbenchmarks behind BENCH_write.json (`make
// bench-write`): parallel increments of one hot counter on a 3-node RF=2
// cluster, with group commit off (one Skeen ordering round per increment)
// and on (concurrent increments coalesce into shared rounds, DESIGN.md
// §5e). The batch-size and linger ablations show where the amortization
// saturates. Parallelism is the point — group commit only has something
// to coalesce when writes are concurrent — so every benchmark drives the
// counter from many goroutines via RunParallel.

func benchWrite(b *testing.B, write core.WritePolicy) {
	b.Helper()
	c, cl := benchCluster(b, Options{Nodes: 3, RF: 2, Write: write})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// Persist matters: only replicated objects take the SMR ordering round
	// that group commit amortizes. An ephemeral ref would measure the
	// single-copy direct path and show no batching effect at all.
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "bench/hot"}
	set := core.Invocation{Ref: ref, Method: "Set", Args: []any{int64(0)}, Persist: true}
	inc := core.Invocation{Ref: ref, Method: "IncrementAndGet", Persist: true}
	// Create the object up front so genesis placement is out of the loop.
	if _, err := cl.InvokeObject(ctx, set); err != nil {
		b.Fatal(err)
	}
	// Several client connections, so a single connection's frame stream is
	// not the measured bottleneck — the contended write path is.
	clients := []*client.Client{cl}
	for i := 1; i < 8; i++ {
		extra, err := c.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = extra.Close() })
		clients = append(clients, extra)
	}
	var next atomic.Uint64
	b.SetParallelism(32) // 32 writers per GOMAXPROCS unit contend on one object
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl := clients[next.Add(1)%uint64(len(clients))]
		for pb.Next() {
			if _, err := cl.InvokeObject(ctx, inc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWriteUnbatched(b *testing.B) {
	benchWrite(b, core.WritePolicy{})
}

func BenchmarkWriteBatched(b *testing.B) {
	benchWrite(b, core.DefaultWritePolicy())
}

// The batch-size ablation holds pipeline depth at the default and varies
// MaxBatch: the gain should grow with the cap until the offered
// concurrency (not the cap) limits batch sizes.
func BenchmarkWriteBatch8(b *testing.B) {
	benchWrite(b, core.WritePolicy{MaxBatch: 8, Pipeline: 2})
}

func BenchmarkWriteBatch64(b *testing.B) {
	benchWrite(b, core.WritePolicy{MaxBatch: 64, Pipeline: 2})
}

func BenchmarkWriteBatch256(b *testing.B) {
	benchWrite(b, core.WritePolicy{MaxBatch: 256, Pipeline: 2})
}

// The linger ablation trades latency for batch size: a short MaxDelay
// lets a round wait for stragglers instead of flushing the moment the
// dispatcher runs.
func BenchmarkWriteBatchLinger(b *testing.B) {
	benchWrite(b, core.WritePolicy{MaxBatch: 64, MaxDelay: 200 * time.Microsecond, Pipeline: 2})
}

// Pipelining off isolates the contribution of overlapping rounds: depth 1
// means the next batch's propose waits for the previous round's FINAL.
func BenchmarkWriteBatchNoPipeline(b *testing.B) {
	benchWrite(b, core.WritePolicy{MaxBatch: 64, Pipeline: 1})
}
