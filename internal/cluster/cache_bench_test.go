package cluster

import (
	"context"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/objects"
)

// The read-path microbenchmarks behind BENCH_cache.json (`make
// bench-cache`): the same Get on the same hot object, with the lease
// cache off (every read is an RPC round to the owner) and on (reads after
// the first are answered from the client-local copy). The gap between the
// two is the per-read cost the cache removes.

func benchCluster(b *testing.B, opts Options) (*Cluster, *client.Client) {
	b.Helper()
	c, err := StartLocal(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	cl, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = cl.Close() })
	return c, cl
}

func benchRead(b *testing.B, opts Options) {
	b.Helper()
	_, cl := benchCluster(b, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "bench/hot"}
	if _, err := cl.Call(ctx, ref, "Set", int64(42)); err != nil {
		b.Fatal(err)
	}
	// Warm the cache (a no-op when caching is off) so the steady state —
	// not the first-read lease grant — is what gets measured.
	if _, err := cl.Call(ctx, ref, "Get"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Call(ctx, ref, "Get"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadUncached(b *testing.B) {
	benchRead(b, Options{})
}

func BenchmarkReadCached(b *testing.B) {
	// A long TTL so no lease expires mid-run: the benchmark isolates the
	// steady-state hit path.
	benchRead(b, Options{LeaseTTL: time.Minute, ClientCache: true})
}
