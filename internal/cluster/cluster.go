// Package cluster assembles a complete DSO deployment — directory, server
// nodes, transport — behind one handle. Tests, benchmarks, examples and the
// FaaS runtime all start clusters through this package; cmd/dso-server
// wires the same pieces over TCP by hand.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/durability"
	"crucial/internal/membership"
	"crucial/internal/netsim"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/statefun"
	"crucial/internal/telemetry"
)

// Options configures a local cluster. The zero value is usable: one node,
// rf=1, no injected latency, in-memory transport, built-in object types.
type Options struct {
	// Nodes is the initial node count (default 1).
	Nodes int
	// RF is the replication factor for persistent objects (default 1).
	RF int
	// Profile injects simulated latencies (default none).
	Profile *netsim.Profile
	// Registry overrides the object type registry (default builtins).
	// Application object types must be registered before StartLocal.
	Registry *core.Registry
	// HeartbeatTimeout configures the failure detector threshold
	// (default 5s; experiments drive membership explicitly anyway).
	HeartbeatTimeout time.Duration
	// ServiceTime/ServiceConcurrency model per-node processing capacity
	// (see server.Config); zero disables the model.
	ServiceTime        time.Duration
	ServiceConcurrency int
	// Telemetry, when non-nil, is shared by every node and client of this
	// cluster: server-side spans and metrics land in the same bundle the
	// runtime samples. Nil disables instrumentation.
	Telemetry *telemetry.Telemetry
	// Chaos, when non-nil, threads every node and client connection
	// through this fault-injection engine: nodes get engine endpoints
	// named by their IDs, clients get "client-NN" endpoints, so engine
	// rules and partitions can address either side of any link. The
	// engine must wrap the same inner network the cluster uses (pass
	// chaos.New(rpc.NewMemNetwork(), ...) and the cluster adopts the
	// engine's inner transport).
	Chaos *chaos.Engine
	// ClientRetry, when non-zero, overrides the retry policy of clients
	// from NewClient — nemesis tests hand out generous budgets so calls
	// survive fault windows.
	ClientRetry core.RetryPolicy
	// ClientAttemptTimeout, when set, bounds each attempt of clients from
	// NewClient (see client.Config.AttemptTimeout).
	ClientAttemptTimeout time.Duration
	// PeerCallTimeout bounds inter-node RPC attempts (see
	// server.Config.PeerCallTimeout); nemesis tests lower it so lost SMR
	// frames are detected and aborted within a fault window.
	PeerCallTimeout time.Duration
	// LeaseTTL, when positive, enables the lease-based read path on every
	// node (see server.Config.LeaseTTL): client cache leases, follower
	// reads, and the primary's local-read fast path.
	LeaseTTL time.Duration
	// ClientCache, when true, attaches a lease-based read cache to every
	// client from NewClient (listener address "cache-client-NN", the
	// cluster registry). Requires LeaseTTL > 0 to be effective.
	ClientCache bool
	// ClientCacheObjects bounds resident entries per client cache
	// (default 1024).
	ClientCacheObjects int
	// Write is the group-commit policy for the SMR write path, applied to
	// every node (server.Config.Write) and every client from NewClient
	// (client.Config.Write). The zero value keeps the classic
	// one-round-per-mutation path; see core.WritePolicy.
	Write core.WritePolicy
	// Rebalance is the elastic resharding policy applied to every node
	// (server.Config.Rebalance): with Enabled set and Telemetry attached,
	// the coordinator node live-migrates sustained heavy hitters onto the
	// least-loaded nodes. The zero value keeps placement hash-driven; see
	// core.RebalancePolicy.
	Rebalance core.RebalancePolicy
	// Durability is the cold-storage durability policy applied to every
	// node (server.Config.Durability): WAL on the write path, periodic
	// checkpoints, recovery on (re)start. Requires ColdStore; the zero
	// value keeps the cluster in-memory-only. See core.DurabilityPolicy.
	Durability core.DurabilityPolicy
	// ColdStore is the durable object store behind the durability tier,
	// shared by every node (each logs under its own key prefix). A
	// restarted or re-added node with the same identity recovers its
	// state from it — including after ALL nodes went down.
	ColdStore durability.Storage
}

// Cluster is a running DSO deployment.
type Cluster struct {
	// Dir is the membership service; experiments may drive it directly.
	Dir *membership.Directory
	// Transport is the in-memory network shared by nodes and clients.
	Transport rpc.Transport

	opts     Options
	registry *core.Registry
	profile  *netsim.Profile
	log      *slog.Logger

	mu        sync.Mutex
	nodes     map[ring.NodeID]*server.Node
	nextID    int
	clientSeq atomic.Uint64
	closed    bool
}

// StartLocal boots an in-process cluster over an in-memory network.
func StartLocal(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	if opts.RF <= 0 {
		opts.RF = 1
	}
	if opts.Profile == nil {
		opts.Profile = netsim.Zero()
	}
	if opts.Registry == nil {
		opts.Registry = objects.BuiltinRegistry()
	}
	// Every node must be able to materialize stateful-function mailboxes,
	// whether or not the application registered custom types.
	statefun.RegisterTypes(opts.Registry)
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	transport := rpc.Transport(rpc.NewMemNetwork())
	if opts.Chaos != nil {
		transport = opts.Chaos.Inner()
	}
	c := &Cluster{
		Dir:       membership.NewDirectory(opts.HeartbeatTimeout),
		Transport: transport,
		opts:      opts,
		registry:  opts.Registry,
		profile:   opts.Profile,
		log:       telemetry.Logger(telemetry.CompCluster),
		nodes:     make(map[ring.NodeID]*server.Node),
	}
	for i := 0; i < opts.Nodes; i++ {
		if _, err := c.AddNode(); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	return c, nil
}

// AddNode starts one more DSO node and returns it. The directory installs
// a new view and existing nodes rebalance onto it (Fig. 8 "add a storage
// node").
func (c *Cluster) AddNode() (*server.Node, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("cluster: closed")
	}
	c.nextID++
	id := ring.NodeID(fmt.Sprintf("dso-%02d", c.nextID))
	c.mu.Unlock()

	n, err := server.Start(c.nodeConfig(id))
	if err != nil {
		return nil, fmt.Errorf("cluster: start node %s: %w", id, err)
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()
	c.log.Info("node added", "node", string(id))
	return n, nil
}

// nodeConfig builds the server config for a node name; AddNode and
// RestartNode share it so a restarted node comes back identical.
func (c *Cluster) nodeConfig(id ring.NodeID) server.Config {
	transport := c.Transport
	if c.opts.Chaos != nil {
		transport = c.opts.Chaos.Endpoint(string(id))
	}
	return server.Config{
		ID:                 id,
		Addr:               string(id),
		Transport:          transport,
		Registry:           c.registry,
		Directory:          c.Dir,
		Profile:            c.profile,
		RF:                 c.opts.RF,
		ServiceTime:        c.opts.ServiceTime,
		ServiceConcurrency: c.opts.ServiceConcurrency,
		PeerCallTimeout:    c.opts.PeerCallTimeout,
		LeaseTTL:           c.opts.LeaseTTL,
		Write:              c.opts.Write,
		Rebalance:          c.opts.Rebalance,
		Durability:         c.opts.Durability,
		ColdStore:          c.opts.ColdStore,
		Telemetry:          c.opts.Telemetry,
		Chaos:              c.opts.Chaos,
	}
}

// RestartNode brings a previously crashed or stopped node back under the
// same identity: it rejoins the directory, the new view is installed
// everywhere, and peers push it the objects it is now responsible for
// (state-transfer recovery). The in-memory transport frees a dead node's
// address on close, so the restart listens where the old incarnation did.
func (c *Cluster) RestartNode(id ring.NodeID) (*server.Node, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("cluster: closed")
	}
	if _, ok := c.nodes[id]; ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %s still running", id)
	}
	c.mu.Unlock()

	n, err := server.Start(c.nodeConfig(id))
	if err != nil {
		return nil, fmt.Errorf("cluster: restart node %s: %w", id, err)
	}
	c.mu.Lock()
	c.nodes[id] = n
	c.mu.Unlock()
	c.log.Info("node restarted", "node", string(id))
	return n, nil
}

// CrashNode kills a node abruptly and informs the directory, like a failure
// detector would. Ephemeral objects on the node are lost; persistent ones
// survive on their replicas.
func (c *Cluster) CrashNode(id ring.NodeID) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	if ok {
		delete(c.nodes, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	c.log.Warn("node crashed", "node", string(id))
	err := n.Crash()
	c.Dir.Crash(id)
	return err
}

// StopNode shuts a node down gracefully (leave + state hand-off).
func (c *Cluster) StopNode(id ring.NodeID) error {
	c.mu.Lock()
	n, ok := c.nodes[id]
	if ok {
		delete(c.nodes, id)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	c.log.Info("node stopping gracefully", "node", string(id))
	return n.Close()
}

// NodeIDs lists live nodes in start order.
func (c *Cluster) NodeIDs() []ring.NodeID {
	v := c.Dir.View()
	return v.Members
}

// Node returns a live node by id (tests).
func (c *Cluster) Node(id ring.NodeID) (*server.Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[id]
	return n, ok
}

// NewClient opens a DSO client against this cluster. With a chaos engine
// configured, each client dials through its own "client-NN" endpoint so
// fault rules can target individual clients. With Options.ClientCache set,
// the client gets a lease-based read cache whose invalidation listener
// binds "cache-client-NN" — nemesis schedules partition that name to
// blackhole invalidations.
func (c *Cluster) NewClient() (*client.Client, error) {
	seq := c.clientSeq.Add(1)
	transport := c.Transport
	if c.opts.Chaos != nil {
		transport = c.opts.Chaos.Endpoint(fmt.Sprintf("client-%02d", seq))
	}
	cfg := client.Config{
		Transport:      transport,
		Views:          c.Dir,
		Profile:        c.profile,
		Retry:          c.opts.ClientRetry,
		AttemptTimeout: c.opts.ClientAttemptTimeout,
		Write:          c.opts.Write,
		Telemetry:      c.opts.Telemetry,
	}
	if c.opts.LeaseTTL > 0 {
		// Leases make follower reads sound, so clients may fan read-only
		// calls across the whole replica group.
		cfg.ReadReplicas = c.opts.RF
	}
	if c.opts.ClientCache {
		cfg.Cache = &client.CacheConfig{
			ListenAddr: fmt.Sprintf("cache-client-%02d", seq),
			Registry:   c.registry,
			MaxObjects: c.opts.ClientCacheObjects,
		}
	}
	return client.New(cfg)
}

// Telemetry exposes the cluster's telemetry bundle (nil when disabled).
func (c *Cluster) Telemetry() *telemetry.Telemetry { return c.opts.Telemetry }

// Registry exposes the cluster's type registry.
func (c *Cluster) Registry() *core.Registry { return c.registry }

// Profile exposes the cluster's latency profile.
func (c *Cluster) Profile() *netsim.Profile { return c.profile }

// RF exposes the replication factor.
func (c *Cluster) RF() int { return c.opts.RF }

// Close stops every node.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nodes := make([]*server.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.nodes = make(map[ring.NodeID]*server.Node)
	c.mu.Unlock()

	var firstErr error
	for _, n := range nodes {
		// Crash, not Close: tearing the whole cluster down should not pay
		// for state hand-off between dying nodes.
		if err := n.Crash(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
