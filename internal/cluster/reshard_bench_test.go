package cluster

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
)

// The elastic-resharding benchmarks behind BENCH_reshard.json (`make
// bench-reshard`): a zipfian-style hot-spot workload — most operations
// hammer one viral counter, the rest spread over a cold tail — on a
// 5-node cluster whose per-node capacity is modelled with the
// ServiceTime/ServiceConcurrency gate (5ms × 4 in-service ops, the same
// M/M/c model crucial-bench uses). Three placements of the same offered
// load:
//
//   - Static: the viral counter is one object on its hash primary. The
//     whole hot fraction funnels through one node's gate; aggregate
//     throughput is pinned near single-node capacity no matter how many
//     members the cluster has.
//   - Sharded: the viral counter is split crucial.ShardedCounter-style
//     into N sub-counters ("<key>#s<i>") that hash across the ring.
//     Recovery is real but at the mercy of placement luck — whichever
//     node draws the most shards is the new bottleneck.
//   - Elastic: sharded AND the rebalancer on. The coordinator detects
//     the hot shards from merged per-node windowed rates and
//     live-migrates them until no member carries more than its share,
//     recovering toward the uniform-load ceiling (DESIGN.md §5g).
//
// The acceptance bar (ISSUE/EXPERIMENTS): elastic ≥ 3× static ops/s.

const (
	reshardNodes    = 5
	reshardShards   = 10
	reshardTailKeys = 32
	// reshardHotFrac is the zipfian head: the fraction of operations
	// aimed at the viral counter.
	reshardHotFrac = 0.85
	// Per-node capacity model: 4 concurrent slots × 5ms service time
	// = 800 ops/s per node, 4000 ops/s uniform-load ceiling. 5ms stays
	// above netsim's busy-spin threshold, so waiting burns no CPU.
	reshardServiceTime = 5 * time.Millisecond
	reshardServiceConc = 4
)

// reshardRefs builds the hot refs (one for static, the shard set
// otherwise) and the cold tail population.
func reshardRefs(sharded bool) (hot []core.Ref, tail []core.Ref) {
	if sharded {
		for i := 0; i < reshardShards; i++ {
			hot = append(hot, core.Ref{Type: objects.TypeAtomicLong,
				Key: shardKeyName("bench/viral", i)})
		}
	} else {
		hot = []core.Ref{{Type: objects.TypeAtomicLong, Key: "bench/viral"}}
	}
	for i := 0; i < reshardTailKeys; i++ {
		tail = append(tail, core.Ref{Type: objects.TypeAtomicLong,
			Key: tailKeyName(i)})
	}
	return hot, tail
}

func shardKeyName(key string, i int) string {
	// Mirrors crucial.ShardedCounter's shard derivation "<key>#s<i>"
	// (internal/cluster cannot import the root package).
	return key + "#s" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func tailKeyName(i int) string {
	return "bench/tail-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// reshardOp performs one zipfian draw: a write on a hot shard with
// probability reshardHotFrac, a read on a random tail key otherwise.
func reshardOp(ctx context.Context, cl *client.Client, rng *rand.Rand, hot, tail []core.Ref) error {
	if rng.Float64() < reshardHotFrac {
		_, err := cl.Call(ctx, hot[rng.Intn(len(hot))], "AddAndGet", int64(1))
		return err
	}
	_, err := cl.Call(ctx, tail[rng.Intn(len(tail))], "Get")
	return err
}

func benchReshard(b *testing.B, sharded bool, rebalance bool) {
	b.Helper()
	opts := Options{
		Nodes:              reshardNodes,
		RF:                 2,
		Telemetry:          telemetry.New(),
		ServiceTime:        reshardServiceTime,
		ServiceConcurrency: reshardServiceConc,
	}
	if rebalance {
		opts.Rebalance = core.RebalancePolicy{
			Enabled:  true,
			Interval: 100 * time.Millisecond,
			HotRate:  50,
			// Shards run well above the population mean (the tail keys
			// drag it down), so the default-ish skew gate fires.
			HotFactor: 2,
			Sustain:   2,
			// Longer than two tracker rate epochs: a migrated key must be
			// re-measured at its new home before it may move again, or
			// stale windows drive placement ping-pong.
			Cooldown: 12 * time.Second,
		}
	}
	c, cl := benchCluster(b, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	hot, tail := reshardRefs(sharded)

	clients := []*client.Client{cl}
	for i := 1; i < 8; i++ {
		extra, err := c.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = extra.Close() })
		clients = append(clients, extra)
	}

	// Create every object up front so genesis placement is out of the
	// measured loop.
	for _, ref := range append(append([]core.Ref{}, hot...), tail...) {
		if _, err := cl.Call(ctx, ref, "Set", int64(0)); err != nil {
			b.Fatal(err)
		}
	}

	if rebalance {
		reshardWarmup(b, c, clients, hot, tail)
	}

	var next atomic.Uint64
	b.SetParallelism(32)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := next.Add(1)
		cl := clients[id%uint64(len(clients))]
		rng := rand.New(rand.NewSource(int64(id)))
		for pb.Next() {
			if err := reshardOp(ctx, cl, rng, hot, tail); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
}

// reshardWarmup drives the zipfian workload outside the timer until the
// rebalancer has spread the hot shards — no member left as primary for
// more than ceil(shards/nodes) of them — so the measured region is the
// rebalanced steady state, not the convergence transient.
func reshardWarmup(b *testing.B, c *Cluster, clients []*client.Client, hot, tail []core.Ref) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(cl *client.Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reshardOp(ctx, cl, rng, hot, tail)
			}
		}(cl, int64(1000+i))
	}
	fair := (len(hot) + reshardNodes - 1) / reshardNodes
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		perNode := make(map[ring.NodeID]int)
		v := c.Dir.View()
		for _, ref := range hot {
			if set := v.Place(ref.String(), c.RF()); len(set) > 0 {
				perNode[set[0]]++
			}
		}
		worst := 0
		for _, n := range perNode {
			if n > worst {
				worst = n
			}
		}
		// Fair spread is the goal, not directives per se: when hash
		// placement already spreads the shards, there is nothing for
		// the rebalancer to do and no directive ever appears.
		if worst <= fair {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

func BenchmarkReshardStatic(b *testing.B) {
	benchReshard(b, false, false)
}

func BenchmarkReshardSharded(b *testing.B) {
	benchReshard(b, true, false)
}

func BenchmarkReshardElastic(b *testing.B) {
	benchReshard(b, true, true)
}
