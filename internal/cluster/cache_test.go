package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/rpc"
	"crucial/internal/telemetry"
)

// Lease-cache coherence tests (DESIGN.md §5d). Every test asserts the
// user-visible guarantee — a read never returns a value an up-to-date
// linearization could not — rather than protocol internals, so the
// implementation can evolve under them.

func cacheOpts(ttl time.Duration) Options {
	return Options{LeaseTTL: ttl, ClientCache: true}
}

// TestCacheHitsServeLocally: after the first read leases the object,
// subsequent reads are answered from the client cache.
func TestCacheHitsServeLocally(t *testing.T) {
	c := startCluster(t, cacheOpts(time.Second))
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "hot"}

	if _, err := cl.Call(ctx, ref, "Set", int64(7)); err != nil {
		t.Fatal(err)
	}
	const reads = 50
	for i := 0; i < reads; i++ {
		res, err := cl.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatal(err)
		}
		if res[0].(int64) != 7 {
			t.Fatalf("read %d: Get = %v, want 7", i, res[0])
		}
	}
	st := cl.DebugCacheStats()
	// Read 1 misses (no lease yet) and fills; the rest must all hit.
	if st.Hits < reads-1 {
		t.Fatalf("cache hits = %d, want >= %d (stats %+v)", st.Hits, reads-1, st)
	}
	if st.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Entries)
	}
}

// TestCacheWriteInvalidates: a write by another client synchronously
// invalidates the cached copy, so the next read observes the new value.
func TestCacheWriteInvalidates(t *testing.T) {
	c := startCluster(t, cacheOpts(5*time.Second))
	reader := newClient(t, c)
	writer := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "shared"}

	if _, err := writer.Call(ctx, ref, "Set", int64(1)); err != nil {
		t.Fatal(err)
	}
	// Warm the reader's cache (first read fills, second hits).
	for i := 0; i < 2; i++ {
		if res, err := reader.Call(ctx, ref, "Get"); err != nil || res[0].(int64) != 1 {
			t.Fatalf("warm read: %v %v", res, err)
		}
	}
	// The TTL is 5s, far longer than this test: only the synchronous
	// invalidation — not expiry — can explain the reader seeing the write.
	if _, err := writer.Call(ctx, ref, "Set", int64(2)); err != nil {
		t.Fatal(err)
	}
	res, err := reader.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 2 {
		t.Fatalf("read after remote write = %v, want 2 (stale cache)", res[0])
	}
	if st := reader.DebugCacheStats(); st.Invalidations == 0 {
		t.Fatalf("no invalidation recorded: %+v", st)
	}
}

// TestCacheLeaseExpiry: a lease past its TTL is not served from; the read
// re-acquires and still returns the current value.
func TestCacheLeaseExpiry(t *testing.T) {
	c := startCluster(t, cacheOpts(30*time.Millisecond))
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "expiring"}

	if _, err := cl.Call(ctx, ref, "Set", int64(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.Call(ctx, ref, "Get"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // let the lease die of old age
	res, err := cl.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 3 {
		t.Fatalf("read after expiry = %v, want 3", res[0])
	}
	if st := cl.DebugCacheStats(); st.LeaseExpiries == 0 {
		t.Fatalf("no lease expiry recorded: %+v", st)
	}
}

// TestCacheWriteRacingGrant hammers one object with concurrent cached
// readers and a writer. Every reader must observe a monotonically
// non-decreasing counter (a stale resurrected lease would show a dip) and
// the final read must equal the number of increments.
func TestCacheWriteRacingGrant(t *testing.T) {
	c := startCluster(t, cacheOpts(40*time.Millisecond))
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "race"}
	writer := newClient(t, c)
	if _, err := writer.Call(ctx, ref, "Set", int64(0)); err != nil {
		t.Fatal(err)
	}

	const (
		readers    = 4
		increments = 60
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var failed atomic.Bool
	for r := 0; r < readers; r++ {
		rc := newClient(t, c)
		wg.Add(1)
		go func(rc interface {
			Call(context.Context, core.Ref, string, ...any) ([]any, error)
		}) {
			defer wg.Done()
			last := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := rc.Call(ctx, ref, "Get")
				if err != nil {
					t.Errorf("reader: %v", err)
					failed.Store(true)
					return
				}
				v := res[0].(int64)
				if v < last {
					t.Errorf("non-monotonic read: %d after %d", v, last)
					failed.Store(true)
					return
				}
				last = v
			}
		}(rc)
	}
	for i := 0; i < increments; i++ {
		if _, err := writer.Call(ctx, ref, "IncrementAndGet"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.Fatal("reader failure above")
	}
	res, err := writer.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != increments {
		t.Fatalf("final value = %v, want %d", res[0], increments)
	}
}

// TestCacheAcrossRebalance: a cached object whose ownership moves to a
// freshly added node must not serve stale reads — the view-change fence
// plus invalidation keep the cache coherent across the hand-off.
func TestCacheAcrossRebalance(t *testing.T) {
	c := startCluster(t, cacheOpts(100*time.Millisecond))
	cl := newClient(t, c)
	ctx := ctxT(t)

	const n = 24
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("mv%d", i)}
		if _, err := cl.Call(ctx, ref, "Set", int64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Call(ctx, ref, "Get"); err != nil { // lease it
			t.Fatal(err)
		}
	}
	if _, err := c.AddNode(); err != nil {
		t.Fatal(err)
	}
	// Writes after the hand-off, then reads: every read must see its
	// object's post-rebalance value no matter which node now owns it.
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("mv%d", i)}
		if _, err := cl.Call(ctx, ref, "AddAndGet", int64(1000)); err != nil {
			t.Fatal(err)
		}
		res, err := cl.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(i + 1000); res[0].(int64) != want {
			t.Fatalf("object %d after rebalance = %v, want %d", i, res[0], want)
		}
	}
}

// TestCacheBlackholedInvalidation: when the primary cannot deliver an
// invalidation (the listener is partitioned away), the write must wait out
// the lease's expiry before committing — and the partitioned client must
// never read stale state afterwards, because its own clock expires the
// lease no later than the server's.
func TestCacheBlackholedInvalidation(t *testing.T) {
	const ttl = 120 * time.Millisecond
	tel := telemetry.New()
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: 1, Telemetry: tel})
	c := startCluster(t, Options{
		LeaseTTL:    ttl,
		ClientCache: true,
		Chaos:       eng,
		Telemetry:   tel,
	})
	reader := newClient(t, c)
	writer := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "blackhole"}

	if _, err := writer.Call(ctx, ref, "Set", int64(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := reader.Call(ctx, ref, "Get"); err != nil {
			t.Fatal(err)
		}
	}
	// Blackhole the reader's invalidation listener (cache-client-01 is the
	// first client's listener endpoint name), then write.
	eng.Partition([]string{"cache-client-01"}, []string{"dso-01", "client-01", "client-02"})
	start := time.Now()
	if _, err := writer.Call(ctx, ref, "Set", int64(2)); err != nil {
		t.Fatal(err)
	}
	wrote := time.Since(start)
	eng.Heal()
	// The reader's lease started before the grant request left, so by the
	// time the write committed the reader's copy is already expired: its
	// next read must miss (or re-acquire) and see the new value.
	res, err := reader.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 2 {
		t.Fatalf("read after blackholed invalidation = %v, want 2", res[0])
	}
	// The write must have been fenced by the expiry wait (allow generous
	// scheduling slack below the TTL, but it cannot have been instant).
	if wrote < ttl/2 {
		t.Fatalf("write committed in %v — did not wait out the unreachable lease (ttl %v)", wrote, ttl)
	}
	waits := tel.Metrics().Counter(telemetry.MetServerLeaseExpiryWts).Value()
	if waits == 0 {
		t.Fatal("no lease expiry wait recorded on the write path")
	}
}

// TestFollowerReadsSpreadLoad: on an rf=2 group, read-only calls fan out
// across both replicas; the follower serves them under a replica lease
// instead of bouncing every call to the primary.
func TestFollowerReadsSpreadLoad(t *testing.T) {
	tel := telemetry.New()
	c := startCluster(t, Options{
		Nodes:       3,
		RF:          2,
		LeaseTTL:    time.Second,
		ClientCache: false, // isolate the follower-read path from the client cache
		Telemetry:   tel,
	})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "replicated-hot"}

	inv := func(method string, args ...any) ([]any, error) {
		return cl.InvokeObject(ctx, core.Invocation{
			Ref: ref, Method: method, Args: args, Persist: true,
		})
	}
	if _, err := inv("Set", int64(42)); err != nil {
		t.Fatal(err)
	}
	const reads = 60
	for i := 0; i < reads; i++ {
		res, err := inv("Get")
		if err != nil {
			t.Fatal(err)
		}
		if res[0].(int64) != 42 {
			t.Fatalf("read %d = %v, want 42", i, res[0])
		}
	}
	follower := tel.Metrics().Counter(telemetry.MetServerFollowerReads).Value()
	if follower == 0 {
		t.Fatal("no follower reads recorded — reads all funneled to the primary")
	}
	// Writes stay linearizable through follower reads: bump and re-read.
	if _, err := inv("AddAndGet", int64(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := inv("Get")
		if err != nil {
			t.Fatal(err)
		}
		if res[0].(int64) != 43 {
			t.Fatalf("post-write follower read = %v, want 43", res[0])
		}
	}
}

// TestReadOnlyFlagRevalidated: a hostile or buggy client marking a
// mutating method read-only must not bypass the write machinery — the
// server re-validates against its own registry.
func TestReadOnlyFlagRevalidated(t *testing.T) {
	c := startCluster(t, cacheOpts(time.Second))
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "hostile"}

	if _, err := cl.InvokeObject(ctx, core.Invocation{
		Ref: ref, Method: "Set", Args: []any{int64(9)}, ReadOnly: true,
	}); err != nil {
		t.Fatal(err)
	}
	// The write must actually have landed (version advanced, not skipped).
	res, err := cl.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 9 {
		t.Fatalf("smuggled write lost: Get = %v, want 9", res[0])
	}
}
