package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"crucial/internal/core"
	"crucial/internal/telemetry"
)

// TestHotKeysEndToEnd drives a zipfian workload through a live 3-node
// RF=2 cluster and checks the per-object load plane end to end: the
// heavy-hitter tracker (shared bundle, the LocalRuntime shape) must
// identify the true hottest objects, report a read/write mix and latency
// percentiles per object, account member-side SMR applies, and stay
// within its fixed capacity despite touching more keys than slots.
func TestHotKeysEndToEnd(t *testing.T) {
	tel := telemetry.New()
	c, err := StartLocal(Options{Nodes: 3, RF: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.5, 1, 499) // 500 distinct keys, capacity is 128
	truth := make(map[string]int)
	const calls = 3000
	for i := 0; i < calls; i++ {
		key := fmt.Sprintf("zipf/%d", zipf.Uint64())
		ref := core.Ref{Type: "AtomicLong", Key: key}
		truth[key]++
		inv := core.Invocation{Ref: ref, Method: "AddAndGet", Args: []any{int64(1)}, Persist: true}
		if i%4 == 0 {
			inv = core.Invocation{Ref: ref, Method: "Get", Persist: true}
		}
		if _, err := cl.InvokeObject(ctx, inv); err != nil {
			t.Fatal(err)
		}
	}

	hottest, hottestN := "", 0
	for k, n := range truth {
		if n > hottestN {
			hottest, hottestN = k, n
		}
	}

	snap := tel.Objects().Snapshot()
	if len(snap.Stats) > telemetry.DefaultObjectTopK {
		t.Fatalf("tracked %d objects, capacity %d", len(snap.Stats), telemetry.DefaultObjectTopK)
	}
	if len(snap.Stats) == 0 {
		t.Fatal("no per-object stats recorded")
	}
	top := snap.Stats[0]
	if top.Key != hottest {
		t.Fatalf("tracker top = %s (count %d), true hottest = %s (%d calls)",
			top.Key, top.Count, hottest, hottestN)
	}
	// The hot key saw both reads and writes, with server-side latency.
	if top.Invokes == 0 || top.Reads == 0 || top.Writes == 0 {
		t.Fatalf("hot key mix: invokes=%d reads=%d writes=%d", top.Invokes, top.Reads, top.Writes)
	}
	if top.Latency.Count == 0 || top.Latency.P50 <= 0 || top.Latency.P999 < top.Latency.P50 {
		t.Fatalf("hot key latency: %+v", top.Latency)
	}
	// RF=2 persistent writes apply on members too: with the shared
	// bundle, coordinator + member applies both land here.
	if top.Applies == 0 {
		t.Fatalf("hot key saw no SMR applies at RF=2: %+v", top)
	}
	if top.Rate(snap.Window) <= 0 {
		t.Fatalf("hot key rate = %v over window %v", top.Rate(snap.Window), snap.Window)
	}
	// The cluster-visible total accounts every client call and server
	// invoke (shared bundle: calls == invokes == total client traffic).
	var sumCalls uint64
	for _, st := range snap.Stats {
		sumCalls += st.Calls
	}
	if sumCalls == 0 || sumCalls > calls {
		t.Fatalf("tracked calls = %d, want (0, %d]", sumCalls, calls)
	}
}
