package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/ring"
)

func startCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := StartLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func newClient(t *testing.T, c *Cluster) *client.Client {
	t.Helper()
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSingleNodeAtomicLong(t *testing.T) {
	c := startCluster(t, Options{})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "counter"}

	res, err := cl.Call(ctx, ref, "AddAndGet", int64(5))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 5 {
		t.Fatalf("AddAndGet = %v", res[0])
	}
	res, err = cl.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 5 {
		t.Fatalf("Get = %v", res[0])
	}
}

func TestObjectsSpreadAcrossNodes(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3})
	cl := newClient(t, c)
	ctx := ctxT(t)

	const n = 60
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("c%d", i)}
		if _, err := cl.Call(ctx, ref, "Set", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, id := range c.NodeIDs() {
		node, ok := c.Node(id)
		if !ok {
			t.Fatalf("node %s missing", id)
		}
		cnt := node.DebugObjectCount()
		if cnt == 0 {
			t.Fatalf("node %s holds no objects; placement is not spreading", id)
		}
		total += cnt
	}
	if total != n {
		t.Fatalf("%d objects resident, want %d", total, n)
	}
}

// AddAndGet returns a distinct value per call when all increments are 1,
// so uniqueness + final total is a linearizability witness for the counter.
func TestConcurrentIncrementsLinearizable(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "shared"}

	const workers = 8
	const perWorker = 50
	seen := make(chan int64, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := newClient(t, c)
			for i := 0; i < perWorker; i++ {
				res, err := cl.Call(ctx, ref, "AddAndGet", int64(1))
				if err != nil {
					t.Errorf("AddAndGet: %v", err)
					return
				}
				seen <- res[0].(int64)
			}
		}()
	}
	wg.Wait()
	close(seen)

	unique := make(map[int64]bool)
	var max int64
	count := 0
	for v := range seen {
		if unique[v] {
			t.Fatalf("value %d returned twice: not linearizable", v)
		}
		unique[v] = true
		if v > max {
			max = v
		}
		count++
	}
	if count != workers*perWorker || max != int64(workers*perWorker) {
		t.Fatalf("count=%d max=%d, want both %d", count, max, workers*perWorker)
	}
}

func TestBarrierAcrossClients(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	ctx := ctxT(t)

	const parties = 6
	ref := core.Ref{Type: objects.TypeCyclicBarrier, Key: "b"}
	inv := func(cl *client.Client) ([]any, error) {
		return cl.InvokeObject(ctx, core.Invocation{
			Ref: ref, Method: "Await", Init: []any{int64(parties)},
		})
	}

	release := make(chan time.Time, parties)
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := newClient(t, c)
			// Stagger arrivals to prove the early ones block.
			time.Sleep(time.Duration(i) * 20 * time.Millisecond)
			if _, err := inv(cl); err != nil {
				t.Errorf("Await: %v", err)
				return
			}
			release <- time.Now()
		}(i)
	}
	wg.Wait()
	close(release)

	var first, last time.Time
	for ts := range release {
		if first.IsZero() || ts.Before(first) {
			first = ts
		}
		if ts.After(last) {
			last = ts
		}
	}
	if last.Sub(first) > time.Second {
		t.Fatalf("parties released %v apart; barrier did not synchronize", last.Sub(first))
	}
}

func TestFutureAcrossClients(t *testing.T) {
	c := startCluster(t, Options{})
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeFuture, Key: "f"}

	getter := newClient(t, c)
	setter := newClient(t, c)

	got := make(chan any, 1)
	go func() {
		res, err := getter.Call(ctx, ref, "Get")
		if err != nil {
			t.Errorf("Get: %v", err)
			got <- nil
			return
		}
		got <- res[0]
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := setter.Call(ctx, ref, "Set", "result"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "result" {
			t.Fatalf("future value = %v", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("getter never released")
	}
}

func TestPersistentObjectSurvivesPrimaryCrash(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "durable"}

	set := func(v int64) error {
		_, err := cl.InvokeObject(ctx, core.Invocation{
			Ref: ref, Method: "Set", Args: []any{v}, Persist: true,
		})
		return err
	}
	get := func() (int64, error) {
		res, err := cl.InvokeObject(ctx, core.Invocation{
			Ref: ref, Method: "Get", Persist: true,
		})
		if err != nil {
			return 0, err
		}
		return res[0].(int64), nil
	}

	if err := set(42); err != nil {
		t.Fatal(err)
	}
	// Identify and kill the primary replica.
	view := c.Dir.View()
	primary := view.Ring().ReplicaSet(ref.String(), 2)[0]
	if err := c.CrashNode(primary); err != nil {
		t.Fatal(err)
	}
	got, err := get()
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("value after primary crash = %d, want 42", got)
	}
	// And the object is writable again (re-replicated onto a new group).
	if err := set(43); err != nil {
		t.Fatal(err)
	}
	if got, err = get(); err != nil || got != 43 {
		t.Fatalf("after re-set: %d, %v", got, err)
	}
}

func TestEphemeralObjectLostOnCrash(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "volatile"}

	if _, err := cl.Call(ctx, ref, "Set", int64(7)); err != nil {
		t.Fatal(err)
	}
	view := c.Dir.View()
	owner, _ := view.Ring().Owner(ref.String())
	if err := c.CrashNode(owner); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Call(ctx, ref, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 0 {
		t.Fatalf("ephemeral object survived crash with value %v", res[0])
	}
}

func TestRebalanceOnNodeAddition(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	cl := newClient(t, c)
	ctx := ctxT(t)

	const n = 40
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("k%d", i)}
		if _, err := cl.Call(ctx, ref, "Set", int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	added, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	// Every value must be readable and unchanged after the ring shifted.
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("k%d", i)}
		res, err := cl.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatalf("Get k%d: %v", i, err)
		}
		if res[0].(int64) != int64(100+i) {
			t.Fatalf("k%d = %v after rebalance, want %d", i, res[0], 100+i)
		}
	}
	if added.DebugObjectCount() == 0 {
		t.Fatal("new node received no objects")
	}
}

func TestGracefulLeaveHandsOffState(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	cl := newClient(t, c)
	ctx := ctxT(t)

	const n = 30
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("g%d", i)}
		if _, err := cl.Call(ctx, ref, "Set", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.NodeIDs()
	if err := c.StopNode(ids[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("g%d", i)}
		res, err := cl.Call(ctx, ref, "Get")
		if err != nil {
			t.Fatalf("Get g%d: %v", i, err)
		}
		if res[0].(int64) != int64(i+1) {
			t.Fatalf("g%d = %v after graceful leave, want %d", i, res[0], i+1)
		}
	}
}

func TestReplicatedCounterConcurrentIncrements(t *testing.T) {
	c := startCluster(t, Options{Nodes: 3, RF: 2})
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "repl-counter"}

	const workers = 6
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := newClient(t, c)
			for i := 0; i < perWorker; i++ {
				if _, err := cl.InvokeObject(ctx, core.Invocation{
					Ref: ref, Method: "AddAndGet", Args: []any{int64(1)}, Persist: true,
				}); err != nil {
					t.Errorf("AddAndGet: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	cl := newClient(t, c)
	res, err := cl.InvokeObject(ctx, core.Invocation{Ref: ref, Method: "Get", Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != workers*perWorker {
		t.Fatalf("replicated counter = %v, want %d", res[0], workers*perWorker)
	}
}

func TestUnknownTypeError(t *testing.T) {
	c := startCluster(t, Options{})
	cl := newClient(t, c)
	ctx := ctxT(t)
	_, err := cl.Call(ctx, core.Ref{Type: "NoSuchType", Key: "x"}, "Get")
	if !errors.Is(err, core.ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}

func TestUnknownMethodError(t *testing.T) {
	c := startCluster(t, Options{})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "x"}
	_, err := cl.Call(ctx, ref, "Bogus")
	if !errors.Is(err, core.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestClusterCloseIdempotent(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode(); err == nil {
		t.Fatal("AddNode succeeded on closed cluster")
	}
}

func TestCrashUnknownNode(t *testing.T) {
	c := startCluster(t, Options{})
	if err := c.CrashNode(ring.NodeID("ghost")); err == nil {
		t.Fatal("CrashNode on unknown id succeeded")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Fatal("client without transport accepted")
	}
}

func TestSemaphoreOverWire(t *testing.T) {
	c := startCluster(t, Options{Nodes: 2})
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeSemaphore, Key: "sem"}
	init := []any{int64(1)}

	acquire := func(cl *client.Client) error {
		_, err := cl.InvokeObject(ctx, core.Invocation{Ref: ref, Method: "Acquire", Init: init})
		return err
	}
	releaseSem := func(cl *client.Client) error {
		_, err := cl.InvokeObject(ctx, core.Invocation{Ref: ref, Method: "Release", Init: init})
		return err
	}

	cl1, cl2 := newClient(t, c), newClient(t, c)
	if err := acquire(cl1); err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() { second <- acquire(cl2) }()
	select {
	case err := <-second:
		t.Fatalf("second Acquire returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := releaseSem(cl1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-second:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second Acquire never released")
	}
}

func TestNodeStatsCount(t *testing.T) {
	c := startCluster(t, Options{})
	cl := newClient(t, c)
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "s"}
	for i := 0; i < 5; i++ {
		if _, err := cl.Call(ctx, ref, "IncrementAndGet"); err != nil {
			t.Fatal(err)
		}
	}
	id := c.NodeIDs()[0]
	n, _ := c.Node(id)
	if n.Stats().Invocations < 5 {
		t.Fatalf("stats = %+v", n.Stats())
	}
}
