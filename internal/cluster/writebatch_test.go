package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/telemetry"
)

// Group-commit integration tests: the same concurrent hot-counter load the
// write benchmark drives, but checked for exactness — every increment must
// land exactly once no matter how the batcher slices the stream into
// rounds — plus the observability contract (DESIGN.md §5e).

// hammerCounter runs workers*perWorker stamped increments of one
// persistent counter through nclients clients and returns the final value.
func hammerCounter(t *testing.T, c *Cluster, workers, perWorker, nclients int) int64 {
	t.Helper()
	clients := make([]*client.Client, nclients)
	var err error
	for i := range clients {
		if clients[i], err = c.NewClient(); err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "wb/counter"}
	if _, err := clients[0].InvokeObject(ctx, core.Invocation{
		Ref: ref, Method: "Set", Args: []any{int64(0)}, Persist: true}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		cl := clients[w%nclients]
		go func() {
			defer wg.Done()
			inc := core.Invocation{Ref: ref, Method: "IncrementAndGet", Persist: true}
			for i := 0; i < perWorker; i++ {
				if _, err := cl.InvokeObject(ctx, inc); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	out, err := clients[0].InvokeObject(ctx, core.Invocation{
		Ref: ref, Method: "Get", Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	return out[0].(int64)
}

// TestWriteBatchingExactlyOnce floods one counter through group commit and
// checks the final value: a batcher that dropped a queued write, applied
// one twice (e.g. a retry landing in a second batch after its first round
// already delivered), or mixed up per-sub-operation results would be off.
func TestWriteBatchingExactlyOnce(t *testing.T) {
	tel := telemetry.New()
	c, err := StartLocal(Options{
		Nodes:     3,
		RF:        2,
		Telemetry: tel,
		Write:     core.WritePolicy{MaxBatch: 8, MaxDelay: 200 * time.Microsecond, Pipeline: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers, perWorker = 24, 25
	if got := hammerCounter(t, c, workers, perWorker, 4); got != workers*perWorker {
		t.Fatalf("counter = %d after %d increments", got, workers*perWorker)
	}

	m := tel.Metrics()
	batches := m.Counter(telemetry.MetServerBatches).Value()
	rounds := m.Counter(telemetry.MetServerSMRRounds).Value()
	if batches == 0 {
		t.Error("no batch round was cut despite batching enabled")
	}
	if rounds > workers*perWorker {
		t.Errorf("%d ordering rounds for %d ops: batching amortized nothing", rounds, workers*perWorker)
	}
}

// TestWriteBatchingDisabledByDefault pins the compatibility contract: the
// zero Options keep the classic one-round-per-mutation path, so existing
// deployments see no behavior change until they opt in.
func TestWriteBatchingDisabledByDefault(t *testing.T) {
	tel := telemetry.New()
	c, err := StartLocal(Options{Nodes: 3, RF: 2, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := hammerCounter(t, c, 8, 5, 2); got != 40 {
		t.Fatalf("counter = %d after 40 increments", got)
	}
	if n := tel.Metrics().Counter(telemetry.MetServerBatches).Value(); n != 0 {
		t.Errorf("zero WritePolicy cut %d batch rounds, want the classic path", n)
	}
}

// TestWriteBatchingMetrics checks the observability contract on /metrics:
// the batch-size histogram exports unitless as crucial_server_batch_size,
// the round counter as crucial_server_batches_total, and the client-side
// flush counter as crucial_client_write_flushes_total.
func TestWriteBatchingMetrics(t *testing.T) {
	tel := telemetry.New()
	c, err := StartLocal(Options{
		Nodes:     3,
		RF:        2,
		Telemetry: tel,
		Write:     core.WritePolicy{MaxBatch: 16, Pipeline: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hammerCounter(t, c, 16, 10, 2)

	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		"crucial_server_batches_total",
		"crucial_server_batch_size_bucket",
		"crucial_server_batch_size_count",
		"crucial_client_write_flushes_total",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("prometheus exposition lacks %s", want)
		}
	}
	if strings.Contains(exp, "crucial_server_batch_size_seconds") {
		t.Error("batch-size histogram exported with a _seconds suffix: it is unitless")
	}
}
