package cluster

import (
	"context"
	"testing"
	"time"

	"crucial/internal/core"
	"crucial/internal/netsim"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/storage/s3sim"
)

// durableStore is the shared cold store: zero latency, immediate LIST
// consistency, so tests assert recovery logic rather than storage timing.
func durableStore() *s3sim.Store {
	return s3sim.New(s3sim.Options{Profile: netsim.Zero(), ListLag: -1})
}

// durableOpts enables the durability tier with an aggressive snapshot
// cadence, so tests reliably exercise the checkpoint-plus-WAL-replay
// recovery path (not just a pure log replay).
func durableOpts(store *s3sim.Store) Options {
	return Options{
		Nodes: 3,
		RF:    2,
		Durability: core.DurabilityPolicy{
			Enabled:          true,
			SyncEvery:        4,
			SnapshotInterval: 50 * time.Millisecond,
			SegmentBytes:     16 << 10,
		},
		ColdStore: store,
	}
}

// addPersist bumps a replicated persistent counter by 1 and returns its
// new value.
func addPersist(ctx context.Context, t *testing.T, cl interface {
	InvokeObject(context.Context, core.Invocation) ([]any, error)
}, ref core.Ref) int64 {
	t.Helper()
	res, err := cl.InvokeObject(ctx, core.Invocation{
		Ref: ref, Method: "AddAndGet", Args: []any{int64(1)}, Persist: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res[0].(int64)
}

func getPersist(ctx context.Context, t *testing.T, cl interface {
	InvokeObject(context.Context, core.Invocation) ([]any, error)
}, ref core.Ref) int64 {
	t.Helper()
	res, err := cl.InvokeObject(ctx, core.Invocation{Ref: ref, Method: "Get", Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	return res[0].(int64)
}

// TestDurabilityRecoversFullClusterCrash is the tier's reason to exist:
// every node goes down at once — no survivor to state-transfer from — and
// a fresh cluster over the same cold store serves every acknowledged
// write. The workload straddles a checkpoint so recovery must both
// restore a snapshot AND replay WAL records, including records for
// operations the checkpoint already covers (replay idempotence: the
// post-apply version stamp in each record gates re-execution).
func TestDurabilityRecoversFullClusterCrash(t *testing.T) {
	store := durableStore()
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "durable-counter"}

	c1 := startCluster(t, durableOpts(store))
	cl1 := newClient(t, c1)
	for i := 0; i < 10; i++ {
		addPersist(ctx, t, cl1, ref)
	}
	// Let at least one checkpoint cover the first ten operations; the log
	// behind the cut is truncated, so recovery genuinely needs the
	// snapshot for them.
	time.Sleep(250 * time.Millisecond)
	for i := 0; i < 7; i++ {
		addPersist(ctx, t, cl1, ref)
	}
	_ = cl1.Close()
	if err := c1.Close(); err != nil {
		t.Fatalf("crash all nodes: %v", err)
	}

	// Nothing survives in memory. The new cluster shares only the store.
	c2 := startCluster(t, durableOpts(store))
	cl2 := newClient(t, c2)
	if got := getPersist(ctx, t, cl2, ref); got != 17 {
		t.Fatalf("recovered counter = %d, want 17 (all acked writes)", got)
	}
	// The recovered cluster must also be live for new writes.
	if got := addPersist(ctx, t, cl2, ref); got != 18 {
		t.Fatalf("post-recovery write = %d, want 18", got)
	}
}

// TestDurabilityDoesNotResurrectEphemeralState: only persistent objects
// ride the durability tier — an ephemeral counter restarts from zero.
func TestDurabilityDoesNotResurrectEphemeralState(t *testing.T) {
	store := durableStore()
	ctx := ctxT(t)
	eph := core.Ref{Type: objects.TypeAtomicLong, Key: "scratch"}

	c1 := startCluster(t, durableOpts(store))
	cl1 := newClient(t, c1)
	if _, err := cl1.Call(ctx, eph, "AddAndGet", int64(9)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // give the snapshotter every chance to over-capture
	_ = cl1.Close()
	_ = c1.Close()

	c2 := startCluster(t, durableOpts(store))
	cl2 := newClient(t, c2)
	res, err := cl2.Call(ctx, eph, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 0 {
		t.Fatalf("ephemeral counter = %v after full restart, want 0", res[0])
	}
}

// TestDurabilityDirectivesSurviveFullCrash: the manifest carries the
// directive table, so a hot-key pin placed by the rebalancer (or an
// operator via dso-cli migrate) survives a whole-cluster outage instead
// of silently reverting placement to hash order.
func TestDurabilityDirectivesSurviveFullCrash(t *testing.T) {
	store := durableStore()
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "pinned"}

	c1 := startCluster(t, durableOpts(store))
	cl1 := newClient(t, c1)
	addPersist(ctx, t, cl1, ref)
	pin := []ring.NodeID{"dso-02", "dso-01"}
	c1.Dir.SetDirective(ref.String(), pin)
	// The pin must land in a checkpoint manifest before the crash.
	time.Sleep(250 * time.Millisecond)
	_ = cl1.Close()
	_ = c1.Close()

	c2 := startCluster(t, durableOpts(store))
	v := c2.Dir.View()
	targets, ok := v.Directives.Lookup(ref.String())
	if !ok {
		t.Fatalf("directive table lost in the crash: %+v", v.Directives)
	}
	if len(targets) != 2 || targets[0] != pin[0] || targets[1] != pin[1] {
		t.Fatalf("recovered directive = %v, want %v", targets, pin)
	}
	// And the pinned object's state came back too.
	cl2 := newClient(t, c2)
	if got := getPersist(ctx, t, cl2, ref); got != 1 {
		t.Fatalf("pinned object state = %d, want 1", got)
	}
}

// TestDurabilitySnapshotOnlyLosesTail documents the SyncEvery<0 contract:
// with the WAL disabled, acks never wait on cold storage and a full crash
// keeps at most the last checkpoint — recovery must still come up clean,
// with the counter somewhere in [0, acked].
func TestDurabilitySnapshotOnlyLosesTail(t *testing.T) {
	store := durableStore()
	ctx := ctxT(t)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "lossy"}

	opts := durableOpts(store)
	opts.Durability.SyncEvery = -1 // snapshot-only durability
	c1 := startCluster(t, opts)
	cl1 := newClient(t, c1)
	const acked = 12
	for i := 0; i < acked; i++ {
		addPersist(ctx, t, cl1, ref)
	}
	time.Sleep(250 * time.Millisecond)
	_ = cl1.Close()
	_ = c1.Close()

	c2 := startCluster(t, opts)
	cl2 := newClient(t, c2)
	got := getPersist(ctx, t, cl2, ref)
	if got < 0 || got > acked {
		t.Fatalf("snapshot-only recovery = %d, want within [0, %d]", got, acked)
	}
	if got == 0 {
		t.Fatalf("snapshot-only recovery = 0: the 250ms checkpoint window never captured anything")
	}
}
