package vmsim

import (
	"context"
	"sync"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine("m", 0, nil); err == nil {
		t.Fatal("zero cores accepted")
	}
	m, err := NewMachine("m", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 4 || m.Name() != "m" {
		t.Fatalf("machine = %s/%d", m.Name(), m.Cores())
	}
}

func TestComputeDuration(t *testing.T) {
	m, _ := NewMachine("m", 1, netsim.Zero())
	start := time.Now()
	if err := m.Compute(context.Background(), 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Compute took %v", d)
	}
}

func TestComputeScaled(t *testing.T) {
	p := netsim.AWS2019(0.1)
	m, _ := NewMachine("m", 1, p)
	start := time.Now()
	if err := m.Compute(context.Background(), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	if d < 8*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("scaled compute took %v, want ~10ms", d)
	}
}

// Core contention: 4 tasks of 30ms on 2 cores must take >= 60ms; on 4
// cores ~30ms. This is the mechanism behind Fig. 3's VM degradation.
func TestCoreContention(t *testing.T) {
	run := func(cores int) time.Duration {
		m, _ := NewMachine("m", cores, netsim.Zero())
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = m.Compute(context.Background(), 30*time.Millisecond)
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	if d := run(2); d < 60*time.Millisecond {
		t.Fatalf("2 cores finished 4x30ms in %v", d)
	}
	if d := run(4); d >= 60*time.Millisecond {
		t.Fatalf("4 cores finished 4x30ms in %v", d)
	}
}

func TestRunExecutesFn(t *testing.T) {
	m, _ := NewMachine("m", 1, netsim.Zero())
	ran := false
	err := m.Run(context.Background(), 0, func() error {
		ran = true
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("Run fn: ran=%v err=%v", ran, err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	m, _ := NewMachine("m", 1, netsim.Zero())
	blocker := make(chan struct{})
	go func() {
		_ = m.Run(context.Background(), 0, func() error {
			<-blocker
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := m.Compute(ctx, time.Millisecond); err == nil {
		t.Fatal("queued task did not honor cancellation")
	}
	close(blocker)
}

func TestWork(t *testing.T) {
	if got := Work(1000, 1000); got != time.Millisecond {
		t.Fatalf("Work = %v", got)
	}
	if got := Work(0, 1e9); got != 0 {
		t.Fatalf("Work(0) = %v", got)
	}
}

func TestTransferTime(t *testing.T) {
	// 100 MB over 100 MB/s = 1s.
	if got := TransferTime(100_000_000, 100); got != time.Second {
		t.Fatalf("TransferTime = %v", got)
	}
	if got := TransferTime(0, 100); got != 0 {
		t.Fatalf("TransferTime(0) = %v", got)
	}
	if got := TransferTime(100, 0); got != 0 {
		t.Fatalf("TransferTime(mbps=0) = %v", got)
	}
}
