// Package vmsim models compute resources: machines with a fixed core
// count executing tasks whose cost is expressed in modeled time. The host
// running this repository has a single CPU, so wall-clock parallelism
// cannot demonstrate 800-way scaling; instead, "compute" is a scaled sleep
// behind a core gate, which makes coordination costs — the paper's actual
// subject — the measured quantity. DESIGN.md documents this substitution.
package vmsim

import (
	"context"
	"errors"
	"time"

	"crucial/internal/netsim"
)

// Machine is one VM with a fixed number of cores. Tasks contend for cores
// exactly like threads on a real box: with more runnable tasks than cores,
// per-task latency degrades proportionally (the Fig. 3 VM baseline).
type Machine struct {
	name    string
	cores   chan struct{}
	profile *netsim.Profile
}

// NewMachine builds a machine. cores must be positive.
func NewMachine(name string, cores int, profile *netsim.Profile) (*Machine, error) {
	if cores <= 0 {
		return nil, errors.New("vmsim: cores must be positive")
	}
	if profile == nil {
		profile = netsim.Zero()
	}
	return &Machine{
		name:    name,
		cores:   make(chan struct{}, cores),
		profile: profile,
	}, nil
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.name }

// Cores returns the core count.
func (m *Machine) Cores() int { return cap(m.cores) }

// Run executes one task of the given modeled duration: it waits for a free
// core, holds it for the (scaled) duration, then releases it. fn, if
// non-nil, runs while the core is held — real work piggybacking on the
// modeled task (e.g. actual ML math on a sample).
func (m *Machine) Run(ctx context.Context, modeled time.Duration, fn func() error) error {
	select {
	case m.cores <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-m.cores }()
	if err := netsim.Sleep(ctx, m.profile.Scaled(modeled)); err != nil {
		return err
	}
	if fn != nil {
		return fn()
	}
	return nil
}

// Compute is a convenience for a pure modeled task.
func (m *Machine) Compute(ctx context.Context, modeled time.Duration) error {
	return m.Run(ctx, modeled, nil)
}

// Work converts a dataset-shaped cost into modeled time: n logical items
// at nsPerItem nanoseconds each.
func Work(n int, nsPerItem float64) time.Duration {
	return time.Duration(float64(n) * nsPerItem)
}

// TransferTime models moving bytes over a link of mbps megabytes/second.
func TransferTime(bytes int, mbps float64) time.Duration {
	if mbps <= 0 || bytes <= 0 {
		return 0
	}
	seconds := float64(bytes) / (mbps * 1e6)
	return time.Duration(seconds * float64(time.Second))
}
