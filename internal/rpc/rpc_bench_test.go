package rpc

import (
	"context"
	"testing"
)

// benchEcho returns its request payload, the cheapest possible handler, so
// the numbers isolate framing, buffering, and scheduling overhead.
func benchEcho(_ context.Context, _ uint8, payload []byte) ([]byte, error) {
	return payload, nil
}

func benchClient(b *testing.B, coalesce bool) *Client {
	b.Helper()
	tr := NewMemNetwork()
	l, err := tr.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(benchEcho)
	go func() { _ = srv.Serve(l) }()
	b.Cleanup(func() { _ = srv.Close() })
	conn, err := tr.Dial("bench")
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(conn)
	c.SetWriteCoalescing(coalesce)
	b.Cleanup(func() { _ = c.Close() })
	return c
}

// BenchmarkRPCEchoSequential measures one in-flight call at a time over
// the in-memory transport: the floor for a single uncontended RPC.
func BenchmarkRPCEchoSequential(b *testing.B) {
	c := benchClient(b, true)
	payload := make([]byte, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := c.Call(ctx, 1, payload)
		if err != nil {
			b.Fatal(err)
		}
		PutBuffer(raw)
	}
}

// BenchmarkRPCEchoParallel multiplexes many in-flight calls on one
// connection; with coalescing enabled, concurrent writers batch into
// single conn.Write calls.
func BenchmarkRPCEchoParallel(b *testing.B) {
	c := benchClient(b, true)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		payload := make([]byte, 64)
		for pb.Next() {
			raw, err := c.Call(ctx, 1, payload)
			if err != nil {
				b.Fatal(err)
			}
			PutBuffer(raw)
		}
	})
}

// BenchmarkRPCEchoParallelDirect is the A/B control: same workload with
// coalescing disabled (one mutex-serialized conn.Write per frame).
func BenchmarkRPCEchoParallelDirect(b *testing.B) {
	c := benchClient(b, false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		payload := make([]byte, 64)
		for pb.Next() {
			raw, err := c.Call(ctx, 1, payload)
			if err != nil {
				b.Fatal(err)
			}
			PutBuffer(raw)
		}
	})
}
