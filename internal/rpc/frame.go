package rpc

import "encoding/binary"

// Frame inspection helpers for transport middleware (the chaos engine's
// fault injector). They expose just enough of the framing for a conn
// wrapper to cut the byte stream into whole frames and classify them,
// without re-implementing — or depending on the layout details of — the
// codec above the stream.

// FrameHeaderSize is the fixed size of a frame header on the wire:
// uint32 payload length, uint64 request id, kind byte, flags byte.
const FrameHeaderSize = headerSize

// FrameMeta describes one frame header.
type FrameMeta struct {
	// PayloadLen is the length of the payload that follows the header.
	PayloadLen int
	// ID is the request id multiplexing concurrent calls on a connection.
	ID uint64
	// Kind is the application-level message kind (server.Kind*).
	Kind uint8
	// Flags carries the request/response/error bits.
	Flags uint8
}

// IsRequest reports whether the frame travels caller -> callee.
func (m FrameMeta) IsRequest() bool { return m.Flags&flagRequest != 0 }

// IsResponse reports whether the frame travels callee -> caller.
func (m FrameMeta) IsResponse() bool { return m.Flags&flagResponse != 0 }

// ParseFrameHeader decodes the first FrameHeaderSize bytes of a frame.
// hdr must be at least FrameHeaderSize long.
func ParseFrameHeader(hdr []byte) FrameMeta {
	return FrameMeta{
		PayloadLen: int(binary.BigEndian.Uint32(hdr[0:4])),
		ID:         binary.BigEndian.Uint64(hdr[4:12]),
		Kind:       hdr[12],
		Flags:      hdr[13],
	}
}
