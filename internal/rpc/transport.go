package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport abstracts how nodes reach each other so the same cluster code
// runs over real TCP (cmd/dso-server) and over in-process pipes (tests,
// benchmarks, examples that do not want to open sockets).
type Transport interface {
	Listen(addr string) (net.Listener, error)
	Dial(addr string) (net.Conn, error)
}

// TCP is the loopback/production transport.
type TCP struct{}

// Listen binds a TCP listener on addr.
func (TCP) Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	return l, nil
}

// Dial opens a TCP connection to addr.
func (TCP) Dial(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return c, nil
}

var _ Transport = TCP{}

// MemNetwork is an in-process network of named endpoints built on
// net.Pipe. Each Listen claims an address; Dial to that address yields a
// connected pair. It is safe for concurrent use.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemNetwork returns an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen claims addr on the network.
func (n *MemNetwork) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, taken := n.listeners[addr]; taken {
		return nil, fmt.Errorf("rpc: memnet address %q already in use", addr)
	}
	l := &memListener{
		net:    n,
		addr:   addr,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listener previously created with Listen.
func (n *MemNetwork) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: memnet dial %q: %w", addr, errConnRefused)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("rpc: memnet dial %q: %w", addr, errConnRefused)
	}
}

// Remove drops a dead listener address so it can be reused (e.g. when a
// crashed node is restarted under the same name).
func (n *MemNetwork) remove(addr string, l *memListener) {
	n.mu.Lock()
	if cur, ok := n.listeners[addr]; ok && cur == l {
		delete(n.listeners, addr)
	}
	n.mu.Unlock()
}

var errConnRefused = errors.New("connection refused")

type memListener struct {
	net    *MemNetwork
	addr   string
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.remove(l.addr, l)
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

var _ net.Listener = (*memListener)(nil)
var _ Transport = (*MemNetwork)(nil)

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
