package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// startPair spins up a server with the given handler on the chosen
// transport and returns a connected client plus cleanup.
func startPair(t *testing.T, tr Transport, h Handler) *Client {
	t.Helper()
	l, err := tr.Listen("node-test")
	if err != nil {
		// TCP transport needs a real address.
		l, err = tr.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(h)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := tr.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func echoHandler(_ context.Context, kind uint8, payload []byte) ([]byte, error) {
	out := append([]byte{kind}, payload...)
	return out, nil
}

func TestCallEchoMem(t *testing.T) {
	c := startPair(t, NewMemNetwork(), echoHandler)
	got, err := c.Call(context.Background(), 7, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append([]byte{7}, []byte("hello")...)) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestCallEchoTCP(t *testing.T) {
	c := startPair(t, TCP{}, echoHandler)
	got, err := c.Call(context.Background(), 1, []byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got[1:]) != "tcp" {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestCallEmptyPayload(t *testing.T) {
	c := startPair(t, NewMemNetwork(), func(_ context.Context, _ uint8, p []byte) ([]byte, error) {
		if len(p) != 0 {
			return nil, errors.New("expected empty")
		}
		return nil, nil
	})
	got, err := c.Call(context.Background(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty response, got %d bytes", len(got))
	}
}

func TestCallHandlerError(t *testing.T) {
	c := startPair(t, NewMemNetwork(), func(_ context.Context, _ uint8, _ []byte) ([]byte, error) {
		return nil, errors.New("boom from handler")
	})
	_, err := c.Call(context.Background(), 0, []byte("x"))
	if err == nil || err.Error() != "boom from handler" {
		t.Fatalf("want handler error, got %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	var inFlight atomic.Int32
	var peak atomic.Int32
	block := make(chan struct{})
	c := startPair(t, NewMemNetwork(), func(_ context.Context, _ uint8, p []byte) ([]byte, error) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-block
		inFlight.Add(-1)
		return p, nil
	})

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			got, err := c.Call(context.Background(), 0, payload)
			if err != nil || !bytes.Equal(got, payload) {
				t.Errorf("call %d: %q, %v", i, got, err)
			}
		}(i)
	}
	// Wait until all requests are in flight on one connection, proving the
	// server does not serialize handlers.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests in flight", inFlight.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if peak.Load() != n {
		t.Fatalf("peak concurrency %d, want %d", peak.Load(), n)
	}
}

func TestCallContextCancellation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c := startPair(t, NewMemNetwork(), func(_ context.Context, _ uint8, p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, 0, []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// The connection must still be usable for other requests after an
	// abandoned one.
	go func() {
		time.Sleep(10 * time.Millisecond)
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		quick := func(_ context.Context) {}
		_ = quick
		_, _ = c.Call(ctx2, 0, []byte("y")) // will block on handler; just ensure no panic
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("second call wedged the client")
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	c := startPair(t, NewMemNetwork(), func(_ context.Context, _ uint8, p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), 0, []byte("x"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("pending call not failed by Close")
	}
	if _, err := c.Call(context.Background(), 0, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after close: %v, want ErrClientClosed", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	tr := NewMemNetwork()
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(func(ctx context.Context, _ uint8, p []byte) ([]byte, error) {
		<-ctx.Done() // blocks until server close cancels the base context
		return nil, ctx.Err()
	})
	go func() { _ = srv.Serve(l) }()

	conn, err := tr.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer func() { _ = c.Close() }()

	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), 0, nil)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("call succeeded after server close")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("client call not unblocked by server close")
	}
}

func TestLargePayload(t *testing.T) {
	c := startPair(t, NewMemNetwork(), echoHandler)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	got, err := c.Call(context.Background(), 3, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[1:], payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestPayloadTooLarge(t *testing.T) {
	w := &connWriter{}
	err := w.write(frame{payload: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint64, kind, flags uint8, payload []byte) bool {
		in := frame{id: id, kind: kind, flags: flags, payload: payload}
		out, err := readFrame(bytes.NewReader(appendFrame(nil, in)))
		if err != nil {
			return false
		}
		return out.id == id && out.kind == kind && out.flags == flags &&
			bytes.Equal(out.payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemNetworkAddressReuse(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("address not reusable after close: %v", err)
	}
}

func TestMemNetworkDialUnknown(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("ghost"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestMemNetworkDialAfterClose(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	if _, err := n.Dial("a"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestMemListenerAddr(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("node-1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if l.Addr().String() != "node-1" || l.Addr().Network() != "mem" {
		t.Fatalf("addr = %v/%v", l.Addr().Network(), l.Addr().String())
	}
}

func TestServerServeAfterClose(t *testing.T) {
	srv := NewServer(echoHandler)
	_ = srv.Close()
	n := NewMemNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l); err == nil {
		t.Fatal("Serve after Close returned nil")
	}
}

// Ensure concurrent clients on separate connections work (the DSO client
// pool uses one connection per node).
func TestManyClientsOneServer(t *testing.T) {
	tr := NewMemNetwork()
	l, err := tr.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(echoHandler)
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := tr.Dial("srv")
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c := NewClient(conn)
			defer func() { _ = c.Close() }()
			for j := 0; j < 20; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				got, err := c.Call(context.Background(), 9, msg)
				if err != nil || !bytes.Equal(got[1:], msg) {
					t.Errorf("client %d call %d: %q, %v", i, j, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

var _ net.Listener = (*memListener)(nil)

func TestObserverSamplesCalls(t *testing.T) {
	c := startPair(t, NewMemNetwork(), func(_ context.Context, kind uint8, payload []byte) ([]byte, error) {
		if kind == 9 {
			return nil, errors.New("boom")
		}
		return payload, nil
	})
	type sample struct {
		kind uint8
		rtt  time.Duration
		sent int
		err  error
	}
	var mu sync.Mutex
	var samples []sample
	c.SetObserver(func(kind uint8, rtt time.Duration, sent int, err error) {
		mu.Lock()
		samples = append(samples, sample{kind, rtt, sent, err})
		mu.Unlock()
	})
	if _, err := c.Call(context.Background(), 1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), 9, nil); err == nil {
		t.Fatal("handler error not surfaced")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(samples) != 2 {
		t.Fatalf("observer saw %d calls, want 2", len(samples))
	}
	if samples[0].kind != 1 || samples[0].sent != 3 || samples[0].err != nil || samples[0].rtt <= 0 {
		t.Fatalf("first sample = %+v", samples[0])
	}
	if samples[1].kind != 9 || samples[1].err == nil {
		t.Fatalf("second sample = %+v", samples[1])
	}
	// Removing the observer stops sampling.
	c.SetObserver(nil)
	if _, err := c.Call(context.Background(), 1, nil); err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("observer fired after removal: %d samples", len(samples))
	}
}

// TestBufferPoolRoundTrip pins the GetBuffer/PutBuffer contract: sizes up
// to the pooled ceiling are served with capacity to spare, oversized
// requests still work, and nil/undersized Puts are ignored.
func TestBufferPoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, minBuffer, minBuffer + 1, maxPooledBuffer, maxPooledBuffer + 1} {
		b := GetBuffer(n)
		if len(b) != 0 {
			t.Fatalf("GetBuffer(%d) len = %d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuffer(%d) cap = %d", n, cap(b))
		}
		PutBuffer(b)
	}
	PutBuffer(nil) // must not panic
}

// TestBufferPoolStress hammers the pool from many goroutines while
// checking that recycled buffers never leak bytes between users (each
// goroutine writes a signature and verifies it before releasing).
func TestBufferPoolStress(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(sig byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := GetBuffer(128)
				b = b[:128]
				for j := range b {
					b[j] = sig
				}
				for j := range b {
					if b[j] != sig {
						t.Errorf("buffer corrupted: got %d want %d", b[j], sig)
						return
					}
				}
				PutBuffer(b)
			}
		}(byte(g))
	}
	wg.Wait()
}

// TestCoalescedWritesUnderLoad drives many concurrent callers through a
// single connection with write coalescing enabled, so follower writers
// regularly hand their frames to an in-flight flusher. Every response must
// still match its request (no frame tearing or cross-wiring).
func TestCoalescedWritesUnderLoad(t *testing.T) {
	c := startPair(t, NewMemNetwork(), echoHandler)
	c.SetWriteCoalescing(true)

	const goroutines = 32
	const callsPer = 200
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				payload := []byte(fmt.Sprintf("g%d-call%d", g, i))
				got, err := c.Call(context.Background(), 3, payload)
				if err != nil {
					errCh <- err
					return
				}
				want := append([]byte{3}, payload...)
				if !bytes.Equal(got, want) {
					errCh <- fmt.Errorf("cross-wired response: got %q want %q", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestDirectWritesUnderLoad is the same workload with coalescing disabled,
// covering the mutex-serialized direct write path used for A/B comparison.
func TestDirectWritesUnderLoad(t *testing.T) {
	c := startPair(t, NewMemNetwork(), echoHandler)
	c.SetWriteCoalescing(false)

	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				payload := []byte(fmt.Sprintf("d%d-%d", g, i))
				got, err := c.Call(context.Background(), 9, payload)
				if err != nil || !bytes.Equal(got, append([]byte{9}, payload...)) {
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d goroutines failed on the direct write path", n)
	}
}

// TestCoalescedWriterFailurePropagates closes the connection under a
// coalesced writer and checks pending calls fail rather than hang.
func TestCoalescedWriterFailurePropagates(t *testing.T) {
	tr := NewMemNetwork()
	block := make(chan struct{})
	c := startPair(t, tr, func(_ context.Context, kind uint8, payload []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer close(block)

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.Call(context.Background(), 1, []byte("stuck"))
			done <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	_ = c.Close()
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("call succeeded after client close while handler blocked")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("pending call hung after client close")
		}
	}
}
