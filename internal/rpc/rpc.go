// Package rpc implements the framed, multiplexed request/response protocol
// used between DSO clients, DSO server nodes, and the simulated cloud
// services.
//
// Design constraints, in order of importance:
//
//  1. A single connection must support many outstanding requests, because
//     synchronization objects (barriers, futures) block server side for
//     arbitrarily long: the server runs every request in its own goroutine
//     and writes responses as they complete, in any order.
//  2. Cancellation must propagate: a caller abandoning a request (context
//     cancelled) must not wedge the connection.
//  3. The framing must be transport-agnostic so the same protocol runs over
//     TCP (cmd/dso-server) and over in-memory pipes (tests, benchmarks).
//  4. The hot path must not allocate: payload buffers are pooled
//     (GetBuffer/PutBuffer), frames are appended straight into a shared
//     write buffer, and concurrent writers on one connection coalesce
//     into a single Write (one syscall carries many frames).
//
// Frame layout (big endian):
//
//	uint32  payload length
//	uint64  request id
//	uint8   kind (application-defined multiplexing tag)
//	uint8   flags (request / response / error-response)
//	[]byte  payload
//
// The frame layout is unchanged since the seed; payload *contents* moved
// from whole-message gob to the tag codec of internal/core/wire.go, which
// is self-identifying (magic byte), so mixed-version peers interoperate:
// decoders accept both payload formats frame by frame.
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/core"
)

const (
	flagRequest  = 0x01
	flagResponse = 0x02
	flagError    = 0x04

	headerSize = 4 + 8 + 1 + 1

	// MaxPayload bounds a single frame. Large transfers (dataset blobs in
	// s3sim) stay well under this.
	MaxPayload = 64 << 20
)

// ErrClientClosed is returned by Call after Close, or when the underlying
// connection fails.
var ErrClientClosed = errors.New("rpc: client closed")

// Payload buffer pool. Incoming frame payloads, outgoing encode buffers
// and handler responses all cycle through here so a warmed-up connection
// serves calls without per-message allocations.
const (
	// minBuffer is the capacity of freshly allocated pool buffers;
	// typical invocation frames are well under this.
	minBuffer = 4 << 10
	// maxPooledBuffer keeps one-off giants (dataset blobs) out of the
	// pool so they do not pin memory.
	maxPooledBuffer = 256 << 10
)

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, minBuffer)
		return &b
	},
}

// GetBuffer returns a zero-length buffer with capacity of at least n from
// the payload pool. Hand it back with PutBuffer when the data encoded or
// decoded from it is no longer referenced.
func GetBuffer(n int) []byte {
	bp := bufPool.Get().(*[]byte)
	b := *bp
	if cap(b) >= n {
		return b[:0]
	}
	bufPool.Put(bp)
	if n < minBuffer {
		n = minBuffer
	}
	return make([]byte, 0, n)
}

// PutBuffer recycles a buffer previously handed out by GetBuffer (or any
// buffer the caller owns outright). The caller must not touch b again.
func PutBuffer(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuffer {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

type frame struct {
	id      uint64
	kind    uint8
	flags   uint8
	payload []byte
}

// appendFrame appends the frame's wire image to dst.
func appendFrame(dst []byte, f frame) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.payload)))
	dst = binary.BigEndian.AppendUint64(dst, f.id)
	dst = append(dst, f.kind, f.flags)
	return append(dst, f.payload...)
}

// connWriter serializes and coalesces frame writes on one connection.
// Concurrent writers append their frames to a shared buffer; the first
// one in becomes the flusher and carries everyone's bytes out in a single
// conn.Write per round, so N goroutines hammering one connection cost
// ~1 syscall per batch instead of N. A failed write closes the connection
// (unblocking the peer's read loop) and poisons the writer.
type connWriter struct {
	conn net.Conn

	mu       sync.Mutex
	err      error
	buf      []byte // frames waiting to be written
	spare    []byte // double buffer swapped with buf on each flush
	flushing bool
	// direct disables coalescing: each write performs its own
	// conn.Write under the lock (the pre-coalescing behavior, kept for
	// A/B benchmarks and debugging).
	direct bool
	// onFlush, when non-nil, runs after every conn.Write that carried
	// frames out (one call per flush, not per frame), under mu — it must
	// be cheap and non-blocking. The DSO client uses it to count write
	// flushes for the client.write_flushes metric.
	onFlush func()
}

// flushed reports one completed conn.Write to the hook. Callers hold mu.
func (w *connWriter) flushed() {
	if w.onFlush != nil {
		w.onFlush()
	}
}

func (w *connWriter) write(f frame) error {
	if len(f.payload) > MaxPayload {
		return fmt.Errorf("rpc: payload %d exceeds limit", len(f.payload))
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.direct {
		w.buf = appendFrame(w.buf[:0], f)
		_, err := w.conn.Write(w.buf)
		if err != nil {
			w.fail(err)
		} else {
			w.flushed()
		}
		w.mu.Unlock()
		return err
	}
	w.buf = appendFrame(w.buf, f)
	if w.flushing {
		// The active flusher will pick these bytes up before it exits;
		// a write failure surfaces through the connection teardown.
		w.mu.Unlock()
		return nil
	}
	w.flushing = true
	for w.err == nil && len(w.buf) > 0 {
		out := w.buf
		w.buf = w.spare[:0]
		w.spare = nil
		w.mu.Unlock()
		_, err := w.conn.Write(out)
		w.mu.Lock()
		if err != nil {
			w.fail(err)
		} else {
			w.flushed()
		}
		if cap(out) <= maxPooledBuffer {
			w.spare = out[:0]
		}
	}
	w.flushing = false
	err := w.err
	w.mu.Unlock()
	return err
}

// fail poisons the writer and closes the connection so both directions
// (including a blocked read loop) observe the failure. Callers hold mu.
func (w *connWriter) fail(err error) {
	if w.err == nil {
		w.err = err
		_ = w.conn.Close()
	}
}

// readFrame reads one frame, drawing the payload buffer from the pool.
// Ownership of the payload passes to the caller, who may recycle it with
// PutBuffer once decoded.
func readFrame(r io.Reader) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxPayload {
		return frame{}, fmt.Errorf("rpc: incoming payload %d exceeds limit", n)
	}
	f := frame{
		id:    binary.BigEndian.Uint64(hdr[4:12]),
		kind:  hdr[12],
		flags: hdr[13],
	}
	if n > 0 {
		f.payload = GetBuffer(int(n))[:n]
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// Handler processes one request. kind is the application multiplexing tag;
// the returned bytes are shipped back as the response payload. Returning an
// error sends an error response carrying err.Error(). Handlers run in their
// own goroutine per request and may block (that is the point).
//
// Buffer ownership: payload is only valid for the duration of the call —
// the server recycles it after the handler returns, so handlers must copy
// anything they keep (every decoder in this codebase copies). The returned
// slice is recycled by the server once the response frame is written;
// handlers must hand back a buffer they own (a fresh allocation or one
// from GetBuffer) and not retain it.
type Handler func(ctx context.Context, kind uint8, payload []byte) ([]byte, error)

// Server serves the protocol on any net.Listener.
type Server struct {
	handler Handler

	mu       sync.Mutex
	closed   bool
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// NewServer returns a server dispatching to handler.
func NewServer(handler Handler) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handler:    handler,
		conns:      make(map[net.Conn]struct{}),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
}

// Serve accepts connections on l until Close. It returns the accept error
// that terminated the loop (net.ErrClosed after a clean Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return ErrClientClosed
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	w := &connWriter{conn: conn}
	var reqWG sync.WaitGroup
	defer reqWG.Wait()

	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.flags&flagRequest == 0 {
			PutBuffer(f.payload)
			continue // ignore stray frames
		}
		reqWG.Add(1)
		go func(f frame) {
			defer reqWG.Done()
			out, herr := s.handler(s.baseCtx, f.kind, f.payload)
			resp := frame{id: f.id, kind: f.kind, flags: flagResponse}
			if herr != nil {
				resp.flags |= flagError
				resp.payload = []byte(herr.Error())
			} else {
				resp.payload = out
			}
			err := w.write(resp)
			// Both buffers are dead once the frame is out: the request
			// payload (handlers may not retain it) and the response
			// (copied into the write buffer). Guard against a handler
			// echoing the request buffer back so it is not pooled twice.
			aliased := len(out) > 0 && len(f.payload) > 0 && &out[0] == &f.payload[0]
			PutBuffer(f.payload)
			if !aliased {
				PutBuffer(resp.payload)
			}
			if err != nil {
				_ = conn.Close()
			}
		}(f)
	}
}

// Close stops accepting, closes every connection and cancels the contexts
// of in-flight handlers, then waits for connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancelBase()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

type pending struct {
	ch chan result
}

type result struct {
	payload []byte
	err     error
}

// chPool recycles the one-shot result channels of Call. A channel re-enters
// the pool only when provably drained and senderless: either its result was
// received, or the caller removed its pending entry before any sender could
// observe it.
var chPool = sync.Pool{
	New: func() any { return make(chan result, 1) },
}

// Observer receives one sample per completed Call: the multiplexing kind,
// the round-trip time (including server-side blocking), the request
// payload size, and the terminal error (nil on success). Implementations
// must be safe for concurrent use; telemetry installs one to feed RPC
// latency histograms without the rpc package depending on it.
type Observer func(kind uint8, rtt time.Duration, sent int, err error)

// Client multiplexes calls over a single connection.
type Client struct {
	conn net.Conn
	w    *connWriter

	mu      sync.Mutex
	pending map[uint64]pending
	closed  bool
	readErr error

	// observer is loaded on every Call with one atomic read, so the
	// uninstrumented path pays a couple of nanoseconds at most.
	observer atomic.Pointer[Observer]

	nextID atomic.Uint64
	done   chan struct{}
}

// NewClient wraps an established connection. The client owns the
// connection and closes it on Close. Write coalescing is on by default;
// SetWriteCoalescing(false) reverts to one Write per frame.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		w:       &connWriter{conn: conn},
		pending: make(map[uint64]pending),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// SetWritePolicy applies a write policy's transport-level knob to this
// connection: core.WritePolicy.DirectWrites (MaxBatch < 0) reverts frame
// coalescing to one conn.Write per frame, any other policy keeps
// coalescing on. The batching knobs themselves (MaxBatch, MaxDelay,
// Pipeline) act one layer up, on the SMR ordering path — the rpc layer
// only honors the debug escape hatch. Meant to be set right after
// NewClient; flipping it mid-traffic is safe but the switch is not
// synchronized with in-flight writes.
func (c *Client) SetWritePolicy(p core.WritePolicy) {
	c.w.mu.Lock()
	c.w.direct = p.DirectWrites()
	c.w.mu.Unlock()
}

// SetFlushHook installs fn to run after every completed write flush on
// this connection (one call per conn.Write, which may carry many frames).
// fn runs under the writer lock and must be cheap; pass nil to remove.
func (c *Client) SetFlushHook(fn func()) {
	c.w.mu.Lock()
	c.w.onFlush = fn
	c.w.mu.Unlock()
}

// SetWriteCoalescing toggles batching of concurrent writes into single
// conn.Write calls.
//
// Deprecated: use SetWritePolicy — SetWriteCoalescing(false) is
// SetWritePolicy(core.WritePolicy{MaxBatch: -1}), SetWriteCoalescing(true)
// is the zero policy. Kept as a shim so existing A/B benchmarks and tests
// keep working.
func (c *Client) SetWriteCoalescing(enable bool) {
	if enable {
		c.SetWritePolicy(core.WritePolicy{})
	} else {
		c.SetWritePolicy(core.WritePolicy{MaxBatch: -1})
	}
}

// Dial connects over TCP and returns a client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.failAll(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		if f.flags&flagResponse == 0 {
			PutBuffer(f.payload)
			continue
		}
		c.mu.Lock()
		p, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		if !ok {
			PutBuffer(f.payload)
			continue // caller gave up (context cancelled)
		}
		if f.flags&flagError != 0 {
			p.ch <- result{err: errors.New(string(f.payload))}
			PutBuffer(f.payload)
		} else {
			p.ch <- result{payload: f.payload}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.readErr = err
	ps := make([]pending, 0, len(c.pending))
	for id, p := range c.pending {
		ps = append(ps, p)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	for _, p := range ps {
		p.ch <- result{err: err}
	}
}

// SetObserver installs a per-call sampler (nil removes it).
func (c *Client) SetObserver(f Observer) {
	if f == nil {
		c.observer.Store(nil)
		return
	}
	c.observer.Store(&f)
}

// Call sends one request and waits for its response or context
// cancellation. It is safe for concurrent use.
//
// The returned payload is a pooled buffer owned by the caller; callers on
// hot paths may hand it back with PutBuffer once they have fully decoded
// it (decoders must not retain references into it afterwards). Callers
// that never recycle simply let the garbage collector take it.
func (c *Client) Call(ctx context.Context, kind uint8, payload []byte) ([]byte, error) {
	if obs := c.observer.Load(); obs != nil {
		start := time.Now()
		out, err := c.call(ctx, kind, payload)
		(*obs)(kind, time.Since(start), len(payload), err)
		return out, err
	}
	return c.call(ctx, kind, payload)
}

func (c *Client) call(ctx context.Context, kind uint8, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := chPool.Get().(chan result)

	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		chPool.Put(ch)
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.pending[id] = pending{ch: ch}
	c.mu.Unlock()

	err := c.w.write(frame{id: id, kind: kind, flags: flagRequest, payload: payload})
	if err != nil {
		c.mu.Lock()
		_, mine := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if mine {
			chPool.Put(ch)
		}
		return nil, fmt.Errorf("rpc: send: %w", err)
	}

	select {
	case r := <-ch:
		chPool.Put(ch)
		return r.payload, r.err
	case <-ctx.Done():
		c.mu.Lock()
		_, mine := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if mine {
			// No sender can exist: the entry was still ours, so the read
			// loop never saw it. Safe to recycle.
			chPool.Put(ch)
		}
		// Otherwise the read loop (or failAll) owns the channel and its
		// imminent send; abandon it to the garbage collector.
		return nil, ctx.Err()
	}
}

// Close tears down the connection and fails outstanding calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

var _ io.Closer = (*Client)(nil)
