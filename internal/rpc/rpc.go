// Package rpc implements the framed, multiplexed request/response protocol
// used between DSO clients, DSO server nodes, and the simulated cloud
// services.
//
// Design constraints, in order of importance:
//
//  1. A single connection must support many outstanding requests, because
//     synchronization objects (barriers, futures) block server side for
//     arbitrarily long: the server runs every request in its own goroutine
//     and writes responses as they complete, in any order.
//  2. Cancellation must propagate: a caller abandoning a request (context
//     cancelled) must not wedge the connection.
//  3. The framing must be transport-agnostic so the same protocol runs over
//     TCP (cmd/dso-server) and over in-memory pipes (tests, benchmarks).
//
// Frame layout (big endian):
//
//	uint32  payload length
//	uint64  request id
//	uint8   kind (application-defined multiplexing tag)
//	uint8   flags (request / response / error-response)
//	[]byte  payload
package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

const (
	flagRequest  = 0x01
	flagResponse = 0x02
	flagError    = 0x04

	headerSize = 4 + 8 + 1 + 1

	// MaxPayload bounds a single frame. Large transfers (dataset blobs in
	// s3sim) stay well under this.
	MaxPayload = 64 << 20
)

// ErrClientClosed is returned by Call after Close, or when the underlying
// connection fails.
var ErrClientClosed = errors.New("rpc: client closed")

type frame struct {
	id      uint64
	kind    uint8
	flags   uint8
	payload []byte
}

func writeFrame(w io.Writer, buf *[]byte, f frame) error {
	if len(f.payload) > MaxPayload {
		return fmt.Errorf("rpc: payload %d exceeds limit", len(f.payload))
	}
	need := headerSize + len(f.payload)
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	b := (*buf)[:need]
	binary.BigEndian.PutUint32(b[0:4], uint32(len(f.payload)))
	binary.BigEndian.PutUint64(b[4:12], f.id)
	b[12] = f.kind
	b[13] = f.flags
	copy(b[headerSize:], f.payload)
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxPayload {
		return frame{}, fmt.Errorf("rpc: incoming payload %d exceeds limit", n)
	}
	f := frame{
		id:    binary.BigEndian.Uint64(hdr[4:12]),
		kind:  hdr[12],
		flags: hdr[13],
	}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// Handler processes one request. kind is the application multiplexing tag;
// the returned bytes are shipped back as the response payload. Returning an
// error sends an error response carrying err.Error(). Handlers run in their
// own goroutine per request and may block (that is the point).
type Handler func(ctx context.Context, kind uint8, payload []byte) ([]byte, error)

// Server serves the protocol on any net.Listener.
type Server struct {
	handler Handler

	mu       sync.Mutex
	closed   bool
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// NewServer returns a server dispatching to handler.
func NewServer(handler Handler) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		handler:    handler,
		conns:      make(map[net.Conn]struct{}),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
}

// Serve accepts connections on l until Close. It returns the accept error
// that terminated the loop (net.ErrClosed after a clean Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return ErrClientClosed
	}
	s.listener = l
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	var writeMu sync.Mutex
	var wbuf []byte
	var reqWG sync.WaitGroup
	defer reqWG.Wait()

	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.flags&flagRequest == 0 {
			continue // ignore stray frames
		}
		reqWG.Add(1)
		go func(f frame) {
			defer reqWG.Done()
			out, herr := s.handler(s.baseCtx, f.kind, f.payload)
			resp := frame{id: f.id, kind: f.kind, flags: flagResponse}
			if herr != nil {
				resp.flags |= flagError
				resp.payload = []byte(herr.Error())
			} else {
				resp.payload = out
			}
			writeMu.Lock()
			err := writeFrame(conn, &wbuf, resp)
			writeMu.Unlock()
			if err != nil {
				_ = conn.Close()
			}
		}(f)
	}
}

// Close stops accepting, closes every connection and cancels the contexts
// of in-flight handlers, then waits for connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.cancelBase()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}

type pending struct {
	ch chan result
}

type result struct {
	payload []byte
	err     error
}

// Observer receives one sample per completed Call: the multiplexing kind,
// the round-trip time (including server-side blocking), the request
// payload size, and the terminal error (nil on success). Implementations
// must be safe for concurrent use; telemetry installs one to feed RPC
// latency histograms without the rpc package depending on it.
type Observer func(kind uint8, rtt time.Duration, sent int, err error)

// Client multiplexes calls over a single connection.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	wbuf    []byte

	mu      sync.Mutex
	pending map[uint64]pending
	closed  bool
	readErr error

	// observer is loaded on every Call with one atomic read, so the
	// uninstrumented path pays a couple of nanoseconds at most.
	observer atomic.Pointer[Observer]

	nextID atomic.Uint64
	done   chan struct{}
}

// NewClient wraps an established connection. The client owns the
// connection and closes it on Close.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]pending),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Dial connects over TCP and returns a client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.failAll(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		if f.flags&flagResponse == 0 {
			continue
		}
		c.mu.Lock()
		p, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		if !ok {
			continue // caller gave up (context cancelled)
		}
		if f.flags&flagError != 0 {
			p.ch <- result{err: errors.New(string(f.payload))}
		} else {
			p.ch <- result{payload: f.payload}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	c.readErr = err
	ps := make([]pending, 0, len(c.pending))
	for id, p := range c.pending {
		ps = append(ps, p)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	for _, p := range ps {
		p.ch <- result{err: err}
	}
}

// SetObserver installs a per-call sampler (nil removes it).
func (c *Client) SetObserver(f Observer) {
	if f == nil {
		c.observer.Store(nil)
		return
	}
	c.observer.Store(&f)
}

// Call sends one request and waits for its response or context
// cancellation. It is safe for concurrent use.
func (c *Client) Call(ctx context.Context, kind uint8, payload []byte) ([]byte, error) {
	if obs := c.observer.Load(); obs != nil {
		start := time.Now()
		out, err := c.call(ctx, kind, payload)
		(*obs)(kind, time.Since(start), len(payload), err)
		return out, err
	}
	return c.call(ctx, kind, payload)
}

func (c *Client) call(ctx context.Context, kind uint8, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan result, 1)

	c.mu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.pending[id] = pending{ch: ch}
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, &c.wbuf, frame{id: id, kind: kind, flags: flagRequest, payload: payload})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: send: %w", err)
	}

	select {
	case r := <-ch:
		return r.payload, r.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close tears down the connection and fails outstanding calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

var _ io.Closer = (*Client)(nil)
