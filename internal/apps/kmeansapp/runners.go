package kmeansapp

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"crucial"
	"crucial/internal/core"
	"crucial/internal/ml"
	"crucial/internal/netsim"
	"crucial/internal/sparksim"
	"crucial/internal/storage/redissim"
	"crucial/internal/vmsim"
)

// Config parameterizes one k-means run, identically across all engines.
type Config struct {
	// K clusters over Dims-dimensional points; Workers parallel workers
	// running MaxIterations iterations.
	K, Dims, Workers, MaxIterations int
	// PointsPerWorker is the real data computed per worker (each worker
	// generates its partition deterministically from Seed+partition,
	// standing in for its S3 partition fetch).
	PointsPerWorker int
	Seed            int64
	// ModeledPointsPerWorker, when positive, adds modeled compute per
	// iteration representing the paper-scale partition (~695k points of
	// the 100 GB dataset): ModeledPoints*K*Dims distance-term evaluations
	// at NsPerOp nanoseconds each, compressed by TimeScale.
	ModeledPointsPerWorker int
	NsPerOp                float64
	TimeScale              float64
	// Persist replicates the model objects (Fig. 8 trains with
	// persistence on).
	Persist bool
	// KeyPrefix isolates object keys between runs sharing a cluster.
	KeyPrefix string
	// RedisLuaNsPerElem models Lua interpretation cost in the
	// Redis-backed variant: every element touched by a server-side script
	// (k*dims per get/update) costs this many nanoseconds of
	// single-threaded event-loop time, compressed by TimeScale. The
	// default (when zero) is 8000ns, covering interpreted arithmetic and
	// the value re-encoding a Lua script pays per element — the gap
	// Fig. 2a attributes to scripts. Negative disables the cost.
	RedisLuaNsPerElem float64
	// SparkStageOverheadMs is the modeled per-iteration driver overhead
	// of the Spark comparator (MLlib job scheduling, caching, and stage
	// bookkeeping beyond raw task dispatch), calibrated from the paper's
	// EMR measurements. Zero means none.
	SparkStageOverheadMs float64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 4
	}
	if c.Dims <= 0 {
		c.Dims = 8
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 5
	}
	if c.PointsPerWorker <= 0 {
		c.PointsPerWorker = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "kmeans"
	}
	return c
}

// modeledCompute returns the real sleep representing one iteration's
// paper-scale computation.
func (c Config) modeledCompute() time.Duration {
	if c.ModeledPointsPerWorker <= 0 || c.NsPerOp <= 0 {
		return 0
	}
	ops := float64(c.ModeledPointsPerWorker) * float64(c.K) * float64(c.Dims)
	return time.Duration(ops * c.NsPerOp * c.TimeScale)
}

// initialCentroids reproduces the centroids object's deterministic random
// initialization so every engine starts from the same model.
func (c Config) initialCentroids() [][]float64 {
	rng := rand.New(rand.NewSource(c.Seed))
	flat := make([]float64, c.K*c.Dims)
	for i := range flat {
		flat[i] = rng.NormFloat64() * 10
	}
	out := make([][]float64, c.K)
	for k := 0; k < c.K; k++ {
		out[k] = flat[k*c.Dims : (k+1)*c.Dims]
	}
	return out
}

// partition deterministically generates one worker's data slice; all
// partitions draw from the same blob centers (c.Seed).
func (c Config) partition(part int) [][]float64 {
	return ml.GeneratePointsPartition(c.PointsPerWorker, c.Dims, c.K, c.Seed, c.Seed+int64(part)+1)
}

// Result captures a run for the benchmark harness.
type Result struct {
	Centroids [][]float64
	// IterTimes are real wall-clock iteration durations measured at the
	// driver; divide by TimeScale for modeled time.
	IterTimes []time.Duration
	Total     time.Duration
}

// --- Crucial proxies for the custom objects ---

// Centroids is the client proxy of GlobalCentroids.
type Centroids struct{ H crucial.Handle }

// NewCentroids builds the proxy. The init arguments materialize the object
// on first access.
func NewCentroids(key string, k, dims, parties int, seed int64, opts ...crucial.Option) *Centroids {
	s := crucial.NewShared(TypeGlobalCentroids, key,
		[]any{int64(k), int64(dims), int64(parties), seed}, opts...)
	return &Centroids{H: s.H}
}

// Get returns the flattened centroids and their generation.
func (c *Centroids) Get(ctx context.Context) ([]float64, int64, error) {
	res, err := c.H.Invoke(ctx, "Get")
	if err != nil {
		return nil, 0, err
	}
	return res[0].([]float64), res[1].(int64), nil
}

// Update contributes one partition's sums/counts (server-side aggregate).
func (c *Centroids) Update(ctx context.Context, sums []float64, counts []int64) error {
	_, err := c.H.Invoke(ctx, "Update", sums, counts)
	return err
}

// Delta returns the max centroid shift of the last completed fold.
func (c *Centroids) Delta(ctx context.Context) (float64, error) {
	res, err := c.H.Invoke(ctx, "Delta")
	if err != nil {
		return 0, err
	}
	return res[0].(float64), nil
}

// Delta is the client proxy of GlobalDelta (the Listing 2 convergence
// criterion object).
type Delta struct{ H crucial.Handle }

// NewDelta builds the proxy.
func NewDelta(key string, parties int, opts ...crucial.Option) *Delta {
	s := crucial.NewShared(TypeGlobalDelta, key, []any{int64(parties)}, opts...)
	return &Delta{H: s.H}
}

// Update contributes one partition's local delta.
func (d *Delta) Update(ctx context.Context, v float64) error {
	_, err := d.H.Invoke(ctx, "Update", v)
	return err
}

// Last returns the previous round's folded delta (-1 before any fold).
func (d *Delta) Last(ctx context.Context) (float64, error) {
	res, err := d.H.Invoke(ctx, "Last")
	if err != nil {
		return 0, err
	}
	return res[0].(float64), nil
}

// Worker is the Listing 2 Runnable: one cloud thread of the serverless
// k-means.
type Worker struct {
	Cfg  Config
	Part int

	Centroids *Centroids
	Delta     *Delta
	Iter      *crucial.AtomicInt
	Barrier   *crucial.CyclicBarrier
}

// Run executes the iterative clustering loop (compare with Listing 2: the
// shared iteration counter makes retried executions idempotent).
func (w *Worker) Run(tc *crucial.TC) error {
	ctx := tc.Context()
	points := w.Cfg.partition(w.Part) // stand-in for loadDatasetFragment()
	pad := w.Cfg.modeledCompute()

	iter, err := w.Iter.Get(ctx)
	if err != nil {
		return err
	}
	for int(iter) < w.Cfg.MaxIterations {
		flat, _, err := w.Centroids.Get(ctx)
		if err != nil {
			return err
		}
		cents := Unflatten(flat, w.Cfg.K, w.Cfg.Dims)
		st := ml.AssignPartition(points, cents)
		if pad > 0 {
			if err := netsim.Sleep(ctx, pad); err != nil {
				return err
			}
		}
		if err := w.Delta.Update(ctx, st.Cost); err != nil {
			return err
		}
		sums, counts := FlattenStats(st)
		if err := w.Centroids.Update(ctx, sums, counts); err != nil {
			return err
		}
		if _, err := w.Barrier.Await(ctx); err != nil {
			return err
		}
		if _, err := w.Iter.CompareAndSet(ctx, iter, iter+1); err != nil {
			return err
		}
		if iter, err = w.Iter.Get(ctx); err != nil {
			return err
		}
	}
	return nil
}

// NewWorker wires one worker's proxies for cfg.
func NewWorker(cfg Config, part int) *Worker {
	cfg = cfg.withDefaults()
	var opts []crucial.Option
	if cfg.Persist {
		opts = append(opts, crucial.WithPersist())
	}
	return &Worker{
		Cfg:       cfg,
		Part:      part,
		Centroids: NewCentroids(cfg.KeyPrefix+"/centroids", cfg.K, cfg.Dims, cfg.Workers, cfg.Seed, opts...),
		Delta:     NewDelta(cfg.KeyPrefix+"/delta", cfg.Workers, opts...),
		Iter:      crucial.NewAtomicInt(cfg.KeyPrefix + "/iterations"),
		Barrier:   crucial.NewCyclicBarrier(cfg.KeyPrefix+"/barrier", cfg.Workers),
	}
}

// RunCrucial executes the serverless k-means on a runtime, returning the
// final model and timing.
func RunCrucial(ctx context.Context, rt *crucial.Runtime, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	rs := make([]crucial.Runnable, cfg.Workers)
	for i := range rs {
		rs[i] = NewWorker(cfg, i)
	}
	start := time.Now()
	threads := make([]*crucial.CloudThread, len(rs))
	for i, r := range rs {
		threads[i] = rt.NewThread(r)
		threads[i].StartCtx(ctx)
	}
	if err := crucial.JoinAll(threads); err != nil {
		return Result{}, err
	}
	total := time.Since(start)

	probe := NewCentroids(cfg.KeyPrefix+"/centroids", cfg.K, cfg.Dims, cfg.Workers, cfg.Seed)
	rt.Bind(probe)
	flat, _, err := probe.Get(ctx)
	if err != nil {
		return Result{}, err
	}
	return Result{Centroids: Unflatten(flat, cfg.K, cfg.Dims), Total: total}, nil
}

// RunSpark executes the same clustering as an MLlib-style BSP job:
// broadcast centroids, map partitions, reduce at the driver, recompute —
// the per-iteration reduce phase Crucial avoids.
func RunSpark(ctx context.Context, c *sparksim.Cluster, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	centroids := cfg.initialCentroids()
	pad := cfg.modeledCompute()
	modelBytes := cfg.K*cfg.Dims*8 + cfg.K*8

	res := Result{IterTimes: make([]time.Duration, 0, cfg.MaxIterations)}
	start := time.Now()
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		iterStart := time.Now()
		if cfg.SparkStageOverheadMs > 0 {
			d := time.Duration(cfg.SparkStageOverheadMs * float64(time.Millisecond) * cfg.TimeScale)
			if err := netsim.Sleep(ctx, d); err != nil {
				return Result{}, err
			}
		}
		if err := c.Broadcast(ctx, modelBytes); err != nil {
			return Result{}, err
		}
		tasks := make([]sparksim.Task[ml.PartitionStats], cfg.Workers)
		for i := range tasks {
			part := i
			tasks[i] = sparksim.Task[ml.PartitionStats]{
				// pad is already compressed by cfg.TimeScale; sparksim
				// re-applies its profile scale, so divide it back out to
				// sleep the same real duration as the Crucial workers.
				Compute: time.Duration(float64(pad) / prescale(c)),
				Fn: func() (ml.PartitionStats, error) {
					return ml.AssignPartition(cfg.partition(part), centroids), nil
				},
			}
		}
		partials, err := sparksim.RunStage(ctx, c, tasks)
		if err != nil {
			return Result{}, err
		}
		merged, err := sparksim.ReduceCollect(ctx, c, partials, modelBytes, ml.MergeStats)
		if err != nil {
			return Result{}, err
		}
		centroids, _ = ml.RecomputeCentroids(merged, centroids)
		res.IterTimes = append(res.IterTimes, time.Since(iterStart))
	}
	res.Total = time.Since(start)
	res.Centroids = centroids
	return res, nil
}

// prescale is the spark cluster's own compression factor (guarded > 0).
func prescale(c *sparksim.Cluster) float64 {
	s := c.Config().Profile.Scale
	if s <= 0 {
		return 1
	}
	return s
}

// RunVM executes the baseline of Fig. 3: plain threads on one machine with
// in-memory shared state. Coordination is (nearly) free; the machine's
// core count is the bottleneck.
func RunVM(ctx context.Context, m *vmsim.Machine, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	centroids := cfg.initialCentroids()
	pad := cfg.modeledCompute()

	var mu sync.Mutex
	start := time.Now()
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		var agg ml.PartitionStats
		first := true
		var wg sync.WaitGroup
		errs := make([]error, cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go func(part int) {
				defer wg.Done()
				// pad is already compressed by cfg.TimeScale; the machine
				// must not compress it again, so pass through Run with a
				// pre-scaled value via profile-scale-1 machines.
				errs[part] = m.Run(ctx, pad, func() error {
					st := ml.AssignPartition(cfg.partition(part), centroids)
					mu.Lock()
					if first {
						agg = st
						first = false
					} else {
						agg = ml.MergeStats(agg, st)
					}
					mu.Unlock()
					return nil
				})
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return Result{}, err
			}
		}
		centroids, _ = ml.RecomputeCentroids(agg, centroids)
	}
	return Result{Centroids: centroids, Total: time.Since(start)}, nil
}

// RunCrucialRedis is the Fig. 5 variant: the same worker loop, but shared
// state lives in a Redis-like store with the aggregation implemented as
// server-side scripts and the barrier as a poll loop — every scripted
// operation serializes on the single-threaded shard. The store may be a
// local cluster or an RPC front (fair comparisons use the latter); the
// k-means scripts must already be registered on the backing cluster
// (RegisterRedisScripts).
func RunCrucialRedis(ctx context.Context, rc redissim.Store, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	pad := cfg.modeledCompute()

	luaNs := cfg.RedisLuaNsPerElem
	if luaNs == 0 {
		luaNs = 8000
	}
	var scriptWorkNs int64
	if luaNs > 0 {
		scriptWorkNs = int64(luaNs * float64(cfg.K*cfg.Dims) * cfg.TimeScale)
	}

	// Seed the model.
	init := cfg.initialCentroids()
	flat := make([]float64, 0, cfg.K*cfg.Dims)
	for _, c := range init {
		flat = append(flat, c...)
	}
	keyC := cfg.KeyPrefix + "/centroids"
	keyB := cfg.KeyPrefix + "/barrier"
	if _, err := rc.Eval(ctx, "kmeans_init", []string{keyC}, flat, int64(cfg.K), int64(cfg.Dims), int64(cfg.Workers)); err != nil {
		return Result{}, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			points := cfg.partition(part)
			for iter := 0; iter < cfg.MaxIterations; iter++ {
				v, err := rc.Eval(ctx, "kmeans_get", []string{keyC}, scriptWorkNs)
				if err != nil {
					errs[part] = err
					return
				}
				cents := Unflatten(v.([]float64), cfg.K, cfg.Dims)
				st := ml.AssignPartition(points, cents)
				if pad > 0 {
					if err := netsim.Sleep(ctx, pad); err != nil {
						errs[part] = err
						return
					}
				}
				sums, counts := FlattenStats(st)
				if _, err := rc.Eval(ctx, "kmeans_update", []string{keyC}, sums, counts, scriptWorkNs); err != nil {
					errs[part] = err
					return
				}
				// Polling barrier: INCR arrival count, poll the round
				// counter until the last arrival advances it.
				if err := redisBarrier(ctx, rc, keyB, cfg.Workers, iter); err != nil {
					errs[part] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	total := time.Since(start)

	v, err := rc.Eval(ctx, "kmeans_get", []string{keyC})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Centroids: Unflatten(v.([]float64), cfg.K, cfg.Dims),
		Total:     total,
	}, nil
}

// redisBarrier implements a generation barrier over the store with
// polling, the best a scripting KV can do.
func redisBarrier(ctx context.Context, rc redissim.Store, key string, parties, round int) error {
	if _, err := rc.Eval(ctx, "barrier_arrive", []string{key}, int64(parties)); err != nil {
		return err
	}
	for {
		v, err := rc.Eval(ctx, "barrier_round", []string{key})
		if err != nil {
			return err
		}
		if v.(int64) > int64(round) {
			return nil
		}
		if err := netsim.Sleep(ctx, time.Millisecond); err != nil {
			return err
		}
	}
}

// luaSleep blocks the shard's event loop for the modeled interpretation
// cost shipped as args[i] (nanoseconds; absent or zero means none). It
// deliberately uses a plain sleep inside the script: that is precisely how
// a slow Lua script behaves in Redis — nothing else on the shard runs.
func luaSleep(args []any, i int) {
	if i >= len(args) {
		return
	}
	ns, ok := core.NumberAsInt64(args[i])
	if !ok || ns <= 0 {
		return
	}
	_ = netsim.Sleep(context.Background(), time.Duration(ns))
}

// RegisterRedisScripts installs the k-means Lua-script analogs on every
// shard. Idempotent.
func RegisterRedisScripts(rc *redissim.Cluster) {
	rc.RegisterScript("kmeans_init", func(d *redissim.Data, keys []string, args []any) (any, error) {
		flat := args[0].([]float64)
		d.SetFloats(keys[0], flat)
		d.SetInt(keys[0]+"/k", args[1].(int64))
		d.SetInt(keys[0]+"/dims", args[2].(int64))
		d.SetInt(keys[0]+"/parties", args[3].(int64))
		d.SetFloats(keys[0]+"/sums", make([]float64, len(flat)))
		d.SetFloats(keys[0]+"/counts", make([]float64, args[1].(int64)))
		d.SetInt(keys[0]+"/contrib", 0)
		return nil, nil
	})
	rc.RegisterScript("kmeans_get", func(d *redissim.Data, keys []string, args []any) (any, error) {
		luaSleep(args, 0)
		v, ok := d.GetFloats(keys[0])
		if !ok {
			return nil, fmt.Errorf("kmeansapp: centroids not initialized")
		}
		return v, nil
	})
	rc.RegisterScript("kmeans_update", func(d *redissim.Data, keys []string, args []any) (any, error) {
		luaSleep(args, 2)
		sums := args[0].([]float64)
		counts := args[1].([]int64)
		curSums, _ := d.GetFloats(keys[0] + "/sums")
		curCounts, _ := d.GetFloats(keys[0] + "/counts")
		for i := range sums {
			curSums[i] += sums[i]
		}
		for i := range counts {
			curCounts[i] += float64(counts[i])
		}
		contrib, _ := d.GetInt(keys[0] + "/contrib")
		contrib++
		parties, _ := d.GetInt(keys[0] + "/parties")
		if contrib == parties {
			dims, _ := d.GetInt(keys[0] + "/dims")
			cents, _ := d.GetFloats(keys[0])
			for c := range curCounts {
				if curCounts[c] == 0 {
					continue
				}
				for dd := int64(0); dd < dims; dd++ {
					i := int64(c)*dims + dd
					cents[i] = curSums[i] / curCounts[c]
				}
			}
			d.SetFloats(keys[0], cents)
			d.SetFloats(keys[0]+"/sums", make([]float64, len(curSums)))
			d.SetFloats(keys[0]+"/counts", make([]float64, len(curCounts)))
			contrib = 0
		} else {
			d.SetFloats(keys[0]+"/sums", curSums)
			d.SetFloats(keys[0]+"/counts", curCounts)
		}
		d.SetInt(keys[0]+"/contrib", contrib)
		return nil, nil
	})
	rc.RegisterScript("barrier_arrive", func(d *redissim.Data, keys []string, args []any) (any, error) {
		parties := args[0].(int64)
		n, _ := d.GetInt(keys[0] + "/count")
		n++
		if n == parties {
			round, _ := d.GetInt(keys[0] + "/round")
			d.SetInt(keys[0]+"/round", round+1)
			n = 0
		}
		d.SetInt(keys[0]+"/count", n)
		return nil, nil
	})
	rc.RegisterScript("barrier_round", func(d *redissim.Data, keys []string, _ []any) (any, error) {
		round, _ := d.GetInt(keys[0] + "/round")
		return round, nil
	})
}
