package kmeansapp

import (
	"context"
	"math"
	"testing"
	"time"

	"crucial"
	"crucial/internal/ml"
	"crucial/internal/netsim"
	"crucial/internal/sparksim"
	"crucial/internal/storage/redissim"
	"crucial/internal/vmsim"
)

func testCfg() Config {
	return Config{
		K: 3, Dims: 4, Workers: 3, MaxIterations: 4,
		PointsPerWorker: 120, Seed: 7,
	}
}

func newRuntime(t *testing.T) *crucial.Runtime {
	t.Helper()
	reg := crucial.NewTypeRegistry()
	RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	crucial.Register(&Worker{})
	return rt
}

// referenceRun computes the exact expected model: same init, same
// partitions, sequential.
func referenceRun(cfg Config) [][]float64 {
	cfg = cfg.withDefaults()
	centroids := cfg.initialCentroids()
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		var agg ml.PartitionStats
		for p := 0; p < cfg.Workers; p++ {
			st := ml.AssignPartition(cfg.partition(p), centroids)
			if p == 0 {
				agg = st
			} else {
				agg = ml.MergeStats(agg, st)
			}
		}
		centroids, _ = ml.RecomputeCentroids(agg, centroids)
	}
	return centroids
}

func assertCentroidsEqual(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d centroids, want %d", label, len(got), len(want))
	}
	for c := range want {
		for d := range want[c] {
			if math.Abs(got[c][d]-want[c][d]) > 1e-6 {
				t.Fatalf("%s: centroid[%d][%d] = %v, want %v", label, c, d, got[c][d], want[c][d])
			}
		}
	}
}

func TestCrucialMatchesReference(t *testing.T) {
	rt := newRuntime(t)
	cfg := testCfg()
	res, err := RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, res.Centroids, referenceRun(cfg), "crucial")
}

func TestSparkMatchesReference(t *testing.T) {
	c, err := sparksim.NewCluster(sparksim.Config{
		Workers: 2, CoresPerWorker: 2, Profile: netsim.Zero(), TaskOverheadMs: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	res, err := RunSpark(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, res.Centroids, referenceRun(cfg), "spark")
	if len(res.IterTimes) != cfg.MaxIterations {
		t.Fatalf("iteration times = %d", len(res.IterTimes))
	}
}

func TestVMMatchesReference(t *testing.T) {
	m, err := vmsim.NewMachine("vm", 2, netsim.Zero())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	res, err := RunVM(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, res.Centroids, referenceRun(cfg), "vm")
}

func TestRedisMatchesReference(t *testing.T) {
	rc := redissim.NewCluster(2, netsim.Zero())
	defer rc.Close()
	RegisterRedisScripts(rc)
	cfg := testCfg()
	res, err := RunCrucialRedis(context.Background(), rc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, res.Centroids, referenceRun(cfg), "redis")
}

// All four engines agree with each other (transitively via the reference),
// which is the strongest cross-validation of the harness.
func TestAllEnginesAgree(t *testing.T) {
	cfg := testCfg()
	want := referenceRun(cfg)

	rt := newRuntime(t)
	crucialRes, err := RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, crucialRes.Centroids, want, "crucial-vs-all")
}

func TestModeledComputeExtendsRuntime(t *testing.T) {
	m, err := vmsim.NewMachine("vm", 4, netsim.Zero())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.MaxIterations = 2
	base, err := RunVM(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ModeledPointsPerWorker = 1000
	cfg.NsPerOp = 2000 // 1000*3*4*2000ns = 24ms per iteration
	padded, err := RunVM(context.Background(), m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if padded.Total < base.Total+30*time.Millisecond {
		t.Fatalf("modeled compute had no effect: base %v, padded %v", base.Total, padded.Total)
	}
}

func TestUnflattenAndFlatten(t *testing.T) {
	st := ml.PartitionStats{
		Sums:   [][]float64{{1, 2}, {3, 4}},
		Counts: []int64{5, 6},
	}
	sums, counts := FlattenStats(st)
	if len(sums) != 4 || sums[2] != 3 || counts[1] != 6 {
		t.Fatalf("flatten = %v %v", sums, counts)
	}
	grid := Unflatten([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if grid[1][0] != 4 || grid[0][2] != 3 {
		t.Fatalf("unflatten = %v", grid)
	}
}

func TestCentroidsObjectValidation(t *testing.T) {
	if _, err := newCentroidsObject([]any{int64(0), int64(2), int64(2), int64(1)}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := newDeltaObject([]any{int64(0)}); err == nil {
		t.Fatal("parties=0 accepted")
	}
}

func TestDeltaObjectFold(t *testing.T) {
	obj, err := newDeltaObject([]any{int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	d := obj.(*deltaObject)
	if _, err := d.Call(nil, "Update", []any{3.5}); err != nil {
		t.Fatal(err)
	}
	res, err := d.Call(nil, "Last", nil)
	if err != nil || res[0].(float64) != -1 {
		t.Fatalf("Last before fold = %v %v", res, err)
	}
	if _, err := d.Call(nil, "Update", []any{1.5}); err != nil {
		t.Fatal(err)
	}
	res, _ = d.Call(nil, "Last", nil)
	if res[0].(float64) != 3.5 {
		t.Fatalf("Last after fold = %v", res)
	}
}

func TestCentroidsSnapshotRoundTrip(t *testing.T) {
	obj, err := newCentroidsObject([]any{int64(2), int64(3), int64(1), int64(9)})
	if err != nil {
		t.Fatal(err)
	}
	co := obj.(*centroidsObject)
	if _, err := co.Call(nil, "Update", []any{[]float64{1, 2, 3, 4, 5, 6}, []int64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	data, err := co.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	obj2, _ := newCentroidsObject([]any{int64(1), int64(1), int64(1), int64(1)})
	co2 := obj2.(*centroidsObject)
	if err := co2.Restore(data); err != nil {
		t.Fatal(err)
	}
	res, err := co2.Call(nil, "Get", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := res[0].([]float64)
	if len(got) != 6 || got[0] != 1 || got[5] != 6 {
		t.Fatalf("restored centroids = %v (fold with parties=1 should equal the update)", got)
	}
}

func TestPersistentTraining(t *testing.T) {
	reg := crucial.NewTypeRegistry()
	RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 3, RF: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	crucial.Register(&Worker{})

	cfg := testCfg().withDefaults()
	cfg.Persist = true
	res, err := RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, res.Centroids, referenceRun(cfg), "persistent")

	// The model survives the primary's crash.
	ref := "kmeans.GlobalCentroids[" + cfg.KeyPrefix + "/centroids]"
	view := rt.Cluster().Dir.View()
	primary := view.Ring().ReplicaSet(ref, 2)[0]
	if err := rt.Cluster().CrashNode(primary); err != nil {
		t.Fatal(err)
	}
	probe := NewCentroids(cfg.KeyPrefix+"/centroids", cfg.K, cfg.Dims, cfg.Workers, cfg.Seed, crucial.WithPersist())
	rt.Bind(probe)
	flat, _, err := probe.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, Unflatten(flat, cfg.K, cfg.Dims), res.Centroids, "after-crash")
}

// The Section 4.4 story end-to-end: cloud threads fail randomly, the
// retry policy re-invokes them with identical payloads, and the shared
// iteration counter keeps re-execution idempotent — the final model must
// equal the failure-free reference exactly.
func TestTrainingSurvivesInjectedFunctionFailures(t *testing.T) {
	reg := crucial.NewTypeRegistry()
	RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:     2,
		Registry:     reg,
		FailureRate:  0.5,
		DefaultRetry: crucial.RetryPolicy{MaxRetries: 30, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	crucial.Register(&Worker{})

	cfg := testCfg()
	cfg.Workers = 6 // enough invocations that the seeded injector fires
	cfg.KeyPrefix = "kmeans-faulty"
	res, err := RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCentroidsEqual(t, res.Centroids, referenceRun(cfg), "faulty")
	if rt.Platform().Stats().Failures == 0 {
		t.Fatal("no failures injected; the retry path was not exercised")
	}
}
