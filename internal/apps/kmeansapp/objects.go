// Package kmeansapp implements the paper's serverless k-means (Listing 2)
// and its comparators: the same Lloyd's-algorithm kernels running as
// Crucial cloud threads, as a Spark-like BSP job, as plain VM threads
// (Fig. 3), and as Crucial-over-Redis (Fig. 5). The Crucial version uses
// two user-defined shared objects — GlobalCentroids and GlobalDelta — the
// @Shared custom types the paper highlights for fine-grained aggregation.
package kmeansapp

import (
	"fmt"
	"math/rand"

	"crucial/internal/core"
	"crucial/internal/ml"
)

// Type names of the custom shared objects.
const (
	TypeGlobalCentroids = "kmeans.GlobalCentroids"
	TypeGlobalDelta     = "kmeans.GlobalDelta"
)

// centroidsObject is the server-side GlobalCentroids: it holds the current
// model and aggregates per-partition sums/counts in place (the O(N)
// auto-reduce of Section 4.2). When the last party of a generation
// contributes, it folds the accumulators into new centroids.
type centroidsObject struct {
	k, dims, parties int
	centroids        []float64 // flattened k x dims
	sums             []float64
	counts           []int64
	contributors     int
	generation       int64
	delta            float64 // max centroid shift of the last fold
}

// newCentroidsObject builds the object. Init: k, dims, parties, seed.
func newCentroidsObject(init []any) (core.Object, error) {
	k, err := core.Int64Arg(init, 0)
	if err != nil {
		return nil, err
	}
	dims, err := core.Int64Arg(init, 1)
	if err != nil {
		return nil, err
	}
	parties, err := core.Int64Arg(init, 2)
	if err != nil {
		return nil, err
	}
	seed, err := core.Int64Arg(init, 3)
	if err != nil {
		return nil, err
	}
	if k <= 0 || dims <= 0 || parties <= 0 {
		return nil, fmt.Errorf("kmeansapp: invalid centroids init k=%d dims=%d parties=%d", k, dims, parties)
	}
	o := &centroidsObject{
		k:         int(k),
		dims:      int(dims),
		parties:   int(parties),
		centroids: make([]float64, int(k)*int(dims)),
		sums:      make([]float64, int(k)*int(dims)),
		counts:    make([]int64, k),
	}
	// Random initial positions, deterministic per seed so replicas and
	// retried threads agree.
	rng := rand.New(rand.NewSource(seed))
	for i := range o.centroids {
		o.centroids[i] = rng.NormFloat64() * 10
	}
	return o, nil
}

func (o *centroidsObject) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Get":
		out := make([]float64, len(o.centroids))
		copy(out, o.centroids)
		return []any{out, o.generation}, nil
	case "Update":
		sums, err := core.Arg[[]float64](args, 0)
		if err != nil {
			return nil, err
		}
		counts, err := core.Arg[[]int64](args, 1)
		if err != nil {
			return nil, err
		}
		if len(sums) != len(o.sums) || len(counts) != len(o.counts) {
			return nil, fmt.Errorf("kmeansapp: update shape %dx%d, want %dx%d",
				len(sums), len(counts), len(o.sums), len(o.counts))
		}
		for i := range sums {
			o.sums[i] += sums[i]
		}
		for c := range counts {
			o.counts[c] += counts[c]
		}
		o.contributors++
		if o.contributors == o.parties {
			o.fold()
		}
		return []any{o.generation}, nil
	case "Delta":
		return []any{o.delta}, nil
	default:
		return nil, fmt.Errorf("%w: GlobalCentroids.%s", core.ErrUnknownMethod, method)
	}
}

// fold recomputes the centroids from the accumulated sums/counts and
// starts the next generation.
func (o *centroidsObject) fold() {
	var maxShift float64
	for c := 0; c < o.k; c++ {
		if o.counts[c] == 0 {
			continue
		}
		var shift float64
		for d := 0; d < o.dims; d++ {
			i := c*o.dims + d
			next := o.sums[i] / float64(o.counts[c])
			diff := next - o.centroids[i]
			shift += diff * diff
			o.centroids[i] = next
		}
		if shift > maxShift {
			maxShift = shift
		}
	}
	o.delta = maxShift
	for i := range o.sums {
		o.sums[i] = 0
	}
	for c := range o.counts {
		o.counts[c] = 0
	}
	o.contributors = 0
	o.generation++
}

type centroidsState struct {
	K, Dims, Parties int
	Centroids, Sums  []float64
	Counts           []int64
	Contributors     int
	Generation       int64
	Delta            float64
}

// Snapshot supports replication/rebalancing (Fig. 8 stores the trained
// model in replicated GlobalCentroids).
func (o *centroidsObject) Snapshot() ([]byte, error) {
	return core.EncodeValue(centroidsState{
		K: o.k, Dims: o.dims, Parties: o.parties,
		Centroids: o.centroids, Sums: o.sums, Counts: o.counts,
		Contributors: o.contributors, Generation: o.generation, Delta: o.delta,
	})
}

// Restore replaces the object state.
func (o *centroidsObject) Restore(data []byte) error {
	var s centroidsState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	o.k, o.dims, o.parties = s.K, s.Dims, s.Parties
	o.centroids, o.sums, o.counts = s.Centroids, s.Sums, s.Counts
	o.contributors, o.generation, o.delta = s.Contributors, s.Generation, s.Delta
	return nil
}

// deltaObject is the server-side GlobalDelta: the convergence criterion
// accumulator of Listing 2 (kept separate from the centroids for fidelity
// to the paper's code).
type deltaObject struct {
	parties      int
	current      float64
	last         float64
	contributors int
}

// newDeltaObject builds the object. Init: parties.
func newDeltaObject(init []any) (core.Object, error) {
	parties, err := core.Int64Arg(init, 0)
	if err != nil {
		return nil, err
	}
	if parties <= 0 {
		return nil, fmt.Errorf("kmeansapp: delta needs parties > 0")
	}
	return &deltaObject{parties: int(parties), last: -1}, nil
}

func (o *deltaObject) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Update":
		d, err := core.Arg[float64](args, 0)
		if err != nil {
			return nil, err
		}
		if d > o.current {
			o.current = d
		}
		o.contributors++
		if o.contributors == o.parties {
			o.last = o.current
			o.current = 0
			o.contributors = 0
		}
		return nil, nil
	case "Last":
		return []any{o.last}, nil
	default:
		return nil, fmt.Errorf("%w: GlobalDelta.%s", core.ErrUnknownMethod, method)
	}
}

type deltaState struct {
	Parties      int
	Current      float64
	Last         float64
	Contributors int
}

// Snapshot supports replication/rebalancing.
func (o *deltaObject) Snapshot() ([]byte, error) {
	return core.EncodeValue(deltaState{
		Parties: o.parties, Current: o.current, Last: o.last, Contributors: o.contributors,
	})
}

// Restore replaces the object state.
func (o *deltaObject) Restore(data []byte) error {
	var s deltaState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	o.parties, o.current, o.last, o.contributors = s.Parties, s.Current, s.Last, s.Contributors
	return nil
}

var (
	_ core.Object      = (*centroidsObject)(nil)
	_ core.Snapshotter = (*centroidsObject)(nil)
	_ core.Object      = (*deltaObject)(nil)
	_ core.Snapshotter = (*deltaObject)(nil)
)

// RegisterTypes installs the custom shared types into a registry (the
// paper's "jar uploaded to the DSO servers").
func RegisterTypes(reg *core.Registry) {
	reg.MustRegister(core.TypeInfo{Name: TypeGlobalCentroids, New: newCentroidsObject})
	reg.MustRegister(core.TypeInfo{Name: TypeGlobalDelta, New: newDeltaObject})
}

// Unflatten reshapes a flattened k*dims centroid vector.
func Unflatten(flat []float64, k, dims int) [][]float64 {
	out := make([][]float64, k)
	for c := 0; c < k; c++ {
		out[c] = flat[c*dims : (c+1)*dims]
	}
	return out
}

// FlattenStats flattens per-cluster sums for the Update call.
func FlattenStats(st ml.PartitionStats) (sums []float64, counts []int64) {
	k := len(st.Sums)
	dims := 0
	if k > 0 {
		dims = len(st.Sums[0])
	}
	sums = make([]float64, k*dims)
	for c := 0; c < k; c++ {
		copy(sums[c*dims:(c+1)*dims], st.Sums[c])
	}
	counts = make([]int64, len(st.Counts))
	copy(counts, st.Counts)
	return sums, counts
}
