// Package montecarlo implements the paper's Listing 1: a multi-threaded
// Monte Carlo estimation of pi whose only shared state is one counter.
// It backs the quickstart example, the Fig. 2b scalability experiment and
// the Fig. 6 map phase.
package montecarlo

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"crucial"
	"crucial/internal/netsim"
)

// Params sizes one estimation run.
type Params struct {
	// Threads cloud threads each draw Iterations points.
	Threads    int
	Iterations int64
	Seed       int64
	// ModeledIterations, when positive, represents paper-scale work: the
	// thread really draws Iterations points for the statistics, then
	// sleeps ModeledIterations/PointsPerSecond (compressed by TimeScale)
	// and scales its count, standing in for the full loop (see DESIGN.md).
	ModeledIterations int64
	PointsPerSecond   float64
	TimeScale         float64
	// CounterKey names the shared counter.
	CounterKey string
}

func (p Params) withDefaults() Params {
	if p.Threads <= 0 {
		p.Threads = 4
	}
	if p.Iterations <= 0 {
		p.Iterations = 10000
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.PointsPerSecond <= 0 {
		p.PointsPerSecond = 12_000_000 // one Lambda core, ~12M points/s
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 1
	}
	if p.CounterKey == "" {
		p.CounterKey = "counter"
	}
	return p
}

// Sample draws n points and counts the hits inside the unit circle.
func Sample(n int64, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	var count int64
	for i := int64(0); i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1.0 {
			count++
		}
	}
	return count
}

// Estimator is the Listing 1 Runnable.
type Estimator struct {
	P       Params
	Idx     int
	Counter *crucial.AtomicLong
}

// NewEstimator wires one cloud thread.
func NewEstimator(p Params, idx int) *Estimator {
	p = p.withDefaults()
	return &Estimator{P: p, Idx: idx, Counter: crucial.NewAtomicLong(p.CounterKey)}
}

// Run draws points and pushes the hit count into the shared counter
// (lines 7-16 of Listing 1).
func (e *Estimator) Run(tc *crucial.TC) error {
	count, total, err := e.ComputeOnly(tc.Context())
	if err != nil {
		return err
	}
	_ = total
	_, err = e.Counter.AddAndGet(tc.Context(), count)
	return err
}

// ComputeOnly performs the (possibly partially modeled) sampling without
// touching the shared counter, returning the hits and the logical number
// of points they represent. The mapreduce experiment reuses it with its
// own emission channels.
func (e *Estimator) ComputeOnly(ctx context.Context) (hits, total int64, err error) {
	p := e.P.withDefaults()
	hits = Sample(p.Iterations, p.Seed+int64(e.Idx))
	total = p.Iterations
	if p.ModeledIterations > p.Iterations {
		// Stand-in for the rest of the loop: sleep the modeled compute
		// time and extrapolate the hit count from the real sample.
		extra := p.ModeledIterations - p.Iterations
		d := time.Duration(float64(extra) / p.PointsPerSecond * float64(time.Second) * p.TimeScale)
		if err := netsim.Sleep(ctx, d); err != nil {
			return 0, 0, err
		}
		hits += int64(float64(extra) * float64(hits) / float64(p.Iterations))
		total = p.ModeledIterations
	}
	return hits, total, nil
}

// Result summarizes a run.
type Result struct {
	Pi          float64
	TotalPoints int64
	Elapsed     time.Duration
}

// RunCrucial executes the estimation with cloud threads (Listing 1's
// main): fork, join, read the counter.
func RunCrucial(ctx context.Context, rt *crucial.Runtime, p Params) (Result, error) {
	p = p.withDefaults()
	crucial.Register(&Estimator{})
	start := time.Now()
	threads := make([]*crucial.CloudThread, p.Threads)
	for i := range threads {
		threads[i] = rt.NewThread(NewEstimator(p, i))
		threads[i].StartCtx(ctx)
	}
	if err := crucial.JoinAll(threads); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	counter := crucial.NewAtomicLong(p.CounterKey)
	rt.Bind(counter)
	hits, err := counter.Get(ctx)
	if err != nil {
		return Result{}, err
	}
	perThread := p.Iterations
	if p.ModeledIterations > perThread {
		perThread = p.ModeledIterations
	}
	total := perThread * int64(p.Threads)
	return Result{
		Pi:          4.0 * float64(hits) / float64(total),
		TotalPoints: total,
		Elapsed:     elapsed,
	}, nil
}

// RunLocal is the plain multi-threaded version (the program Listing 1
// starts from; Table 4 counts the lines changed between the two).
func RunLocal(ctx context.Context, p Params) (Result, error) {
	p = p.withDefaults()
	var counter int64
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p.Threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hits := Sample(p.Iterations, p.Seed+int64(i))
			mu.Lock()
			counter += hits
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	total := p.Iterations * int64(p.Threads)
	return Result{
		Pi:          4.0 * float64(counter) / float64(total),
		TotalPoints: total,
		Elapsed:     time.Since(start),
	}, nil
}
