package montecarlo

import (
	"context"
	"math"
	"testing"
	"time"

	"crucial"
)

func TestSampleDeterministic(t *testing.T) {
	a := Sample(10000, 7)
	b := Sample(10000, 7)
	if a != b {
		t.Fatal("Sample not deterministic")
	}
	// Hit ratio must be near pi/4.
	ratio := float64(a) / 10000
	if math.Abs(ratio-math.Pi/4) > 0.03 {
		t.Fatalf("hit ratio %v far from pi/4", ratio)
	}
}

func TestRunLocal(t *testing.T) {
	res, err := RunLocal(context.Background(), Params{Threads: 4, Iterations: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Pi-math.Pi) > 0.1 {
		t.Fatalf("pi = %v", res.Pi)
	}
	if res.TotalPoints != 40000 {
		t.Fatalf("points = %d", res.TotalPoints)
	}
}

func TestRunCrucial(t *testing.T) {
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rt.Close() }()
	res, err := RunCrucial(context.Background(), rt, Params{
		Threads: 4, Iterations: 10000, Seed: 1, CounterKey: "mc-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Pi-math.Pi) > 0.1 {
		t.Fatalf("pi = %v", res.Pi)
	}
}

func TestCrucialMatchesLocalCounts(t *testing.T) {
	// Same seeds => identical per-thread samples => identical estimate.
	p := Params{Threads: 3, Iterations: 5000, Seed: 11, CounterKey: "mc-match"}
	local, err := RunLocal(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := crucial.NewLocalRuntime(crucial.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rt.Close() }()
	remote, err := RunCrucial(context.Background(), rt, p)
	if err != nil {
		t.Fatal(err)
	}
	if local.Pi != remote.Pi {
		t.Fatalf("local pi %v != crucial pi %v", local.Pi, remote.Pi)
	}
}

func TestModeledExtension(t *testing.T) {
	e := &Estimator{P: Params{
		Iterations:        1000,
		ModeledIterations: 100000,
		PointsPerSecond:   10_000_000,
		TimeScale:         1,
		Seed:              5,
	}}
	start := time.Now()
	hits, total, err := e.ComputeOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total != 100000 {
		t.Fatalf("total = %d", total)
	}
	ratio := float64(hits) / float64(total)
	if math.Abs(ratio-math.Pi/4) > 0.05 {
		t.Fatalf("extrapolated ratio %v", ratio)
	}
	// 99000 extra points at 10M/s ~ 9.9ms sleep.
	if time.Since(start) < 9*time.Millisecond {
		t.Fatal("modeled extension did not sleep")
	}
}

func TestModeledDisabledWhenSmaller(t *testing.T) {
	e := &Estimator{P: Params{Iterations: 1000, ModeledIterations: 10, Seed: 5}}
	_, total, err := e.ComputeOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total != 1000 {
		t.Fatalf("total = %d, modeled smaller than real must be ignored", total)
	}
}
