package santa

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"crucial"
	"crucial/internal/core"
	"crucial/internal/netsim"
)

// Params sizes one simulation. The paper's instance: 10 elves, 9 reindeer,
// 15 toy deliveries.
type Params struct {
	Elves, Reindeer, Deliveries int
	// TotalConsults is the shared pool of consultations the elves work
	// through; it must be divisible by the showroom size (3). A shared
	// pool (rather than a per-elf quota) keeps the system deadlock-free:
	// with fixed quotas, the last batch can demand a second ticket from
	// an elf already blocked inside that batch.
	TotalConsults int
	// Modeled activity durations, compressed by TimeScale at run time.
	DeliveryTime, ConsultTime, VacationTime time.Duration
	TimeScale                               float64
	Seed                                    int64
	// Prefix isolates DSO object keys between runs.
	Prefix string
}

// ElfGroupSize is the number of elves Santa helps at a time.
const ElfGroupSize = 3

func (p Params) withDefaults() (Params, error) {
	if p.Elves <= 0 {
		p.Elves = 10
	}
	if p.Reindeer <= 0 {
		p.Reindeer = 9
	}
	if p.Deliveries <= 0 {
		p.Deliveries = 15
	}
	if p.TotalConsults <= 0 {
		p.TotalConsults = p.Elves * 3
	}
	if p.TotalConsults%ElfGroupSize != 0 {
		return p, fmt.Errorf("santa: %d total consults not divisible by %d",
			p.TotalConsults, ElfGroupSize)
	}
	if p.DeliveryTime <= 0 {
		p.DeliveryTime = 100 * time.Millisecond
	}
	if p.ConsultTime <= 0 {
		p.ConsultTime = 50 * time.Millisecond
	}
	if p.VacationTime <= 0 {
		p.VacationTime = 120 * time.Millisecond
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Prefix == "" {
		p.Prefix = "santa"
	}
	return p, nil
}

func (p Params) sleep(ctx context.Context, d time.Duration, jitter *rand.Rand) error {
	if jitter != nil {
		d = d/2 + time.Duration(jitter.Int63n(int64(d)))
	}
	return netsim.Sleep(ctx, time.Duration(float64(d)*p.TimeScale))
}

// episodes is the total number of batches Santa serves.
func (p Params) episodes() int {
	return p.Deliveries + p.TotalConsults/ElfGroupSize
}

// SantaLoop is Santa: await a full group (reindeer first), serve it,
// release it — repeated until all deliveries and consultations are done.
func SantaLoop(ctx context.Context, f SyncFactory, p Params) error {
	signal := f.Signal(p.Prefix + "/signal")
	rgroup := f.Group(p.Prefix+"/rgroup", p.Reindeer)
	egroup := f.Group(p.Prefix+"/egroup", ElfGroupSize)
	harness := f.Gate(p.Prefix+"/harness", p.Reindeer)
	unharness := f.Gate(p.Prefix+"/unharness", p.Reindeer)
	showIn := f.Gate(p.Prefix+"/showin", ElfGroupSize)
	showOut := f.Gate(p.Prefix+"/showout", ElfGroupSize)

	for served := 0; served < p.episodes(); served++ {
		kind, err := signal.Await(ctx)
		if err != nil {
			return err
		}
		switch kind {
		case KindReindeer:
			if err := harness.Open(ctx); err != nil {
				return err
			}
			if err := p.sleep(ctx, p.DeliveryTime, nil); err != nil {
				return err
			}
			if err := unharness.Open(ctx); err != nil {
				return err
			}
			if err := rgroup.Release(ctx); err != nil {
				return err
			}
		case KindElf:
			if err := showIn.Open(ctx); err != nil {
				return err
			}
			if err := p.sleep(ctx, p.ConsultTime, nil); err != nil {
				return err
			}
			if err := showOut.Open(ctx); err != nil {
				return err
			}
			if err := egroup.Release(ctx); err != nil {
				return err
			}
		default:
			return fmt.Errorf("santa: unexpected signal %q", kind)
		}
	}
	return nil
}

// ReindeerLoop is one reindeer: vacation, regroup, get harnessed, deliver,
// get unharnessed — once per delivery.
func ReindeerLoop(ctx context.Context, f SyncFactory, p Params, idx int) error {
	signal := f.Signal(p.Prefix + "/signal")
	rgroup := f.Group(p.Prefix+"/rgroup", p.Reindeer)
	harness := f.Gate(p.Prefix+"/harness", p.Reindeer)
	unharness := f.Gate(p.Prefix+"/unharness", p.Reindeer)
	jitter := rand.New(rand.NewSource(p.Seed + int64(idx)))

	for d := 0; d < p.Deliveries; d++ {
		if err := p.sleep(ctx, p.VacationTime, jitter); err != nil {
			return err
		}
		last, err := rgroup.Join(ctx)
		if err != nil {
			return err
		}
		if last {
			if err := signal.Raise(ctx, KindReindeer); err != nil {
				return err
			}
		}
		if err := harness.Pass(ctx); err != nil {
			return err
		}
		if err := unharness.Pass(ctx); err != nil {
			return err
		}
	}
	return nil
}

// ElfLoop is one elf: work until stuck, group up in threes, consult Santa.
// Elves draw consultations from the shared pool until it runs dry.
func ElfLoop(ctx context.Context, f SyncFactory, p Params, idx int) error {
	signal := f.Signal(p.Prefix + "/signal")
	egroup := f.Group(p.Prefix+"/egroup", ElfGroupSize)
	showIn := f.Gate(p.Prefix+"/showin", ElfGroupSize)
	showOut := f.Gate(p.Prefix+"/showout", ElfGroupSize)
	pool := f.Counter(p.Prefix+"/consults", int64(p.TotalConsults))
	jitter := rand.New(rand.NewSource(p.Seed + 1000 + int64(idx)))

	for {
		remaining, err := pool.Dec(ctx)
		if err != nil {
			return err
		}
		if remaining < 0 {
			return nil
		}
		if err := p.sleep(ctx, p.VacationTime/2, jitter); err != nil {
			return err
		}
		last, err := egroup.Join(ctx)
		if err != nil {
			return err
		}
		if last {
			if err := signal.Raise(ctx, KindElf); err != nil {
				return err
			}
		}
		if err := showIn.Pass(ctx); err != nil {
			return err
		}
		if err := showOut.Pass(ctx); err != nil {
			return err
		}
	}
}

// runEntities runs the full cast over a factory using local goroutines.
func runEntities(ctx context.Context, f SyncFactory, p Params) error {
	var wg sync.WaitGroup
	errCh := make(chan error, 1+p.Reindeer+p.Elves)
	launch := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				errCh <- err
			}
		}()
	}
	launch(func() error { return SantaLoop(ctx, f, p) })
	for i := 0; i < p.Reindeer; i++ {
		i := i
		launch(func() error { return ReindeerLoop(ctx, f, p, i) })
	}
	for i := 0; i < p.Elves; i++ {
		i := i
		launch(func() error { return ElfLoop(ctx, f, p, i) })
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// RunPOJO solves the problem with local goroutines and monitors.
func RunPOJO(ctx context.Context, p Params) (time.Duration, error) {
	full, err := p.withDefaults()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := runEntities(ctx, NewLocalFactory(), full); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// RunDSO solves the problem with local goroutines whose synchronization
// objects live in the DSO layer (the "@Shared only" refinement).
func RunDSO(ctx context.Context, rt *crucial.Runtime, p Params) (time.Duration, error) {
	full, err := p.withDefaults()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := runEntities(ctx, NewDSOFactory(rt.Invoker()), full); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Entity is the cloud-thread form of one cast member.
type Entity struct {
	Role string // "santa", "reindeer", or "elf"
	Idx  int
	P    Params
}

// Run dispatches the entity's loop with DSO-backed objects bound to the
// function's client.
func (e *Entity) Run(tc *crucial.TC) error {
	f := NewDSOFactory(tc.Invoker())
	switch e.Role {
	case "santa":
		return SantaLoop(tc.Context(), f, e.P)
	case "reindeer":
		return ReindeerLoop(tc.Context(), f, e.P, e.Idx)
	case "elf":
		return ElfLoop(tc.Context(), f, e.P, e.Idx)
	default:
		return fmt.Errorf("santa: unknown role %q", e.Role)
	}
}

// RunCloud solves the problem with every entity on a cloud thread
// (the full Crucial refinement of Fig. 7c).
func RunCloud(ctx context.Context, rt *crucial.Runtime, p Params) (time.Duration, error) {
	full, err := p.withDefaults()
	if err != nil {
		return 0, err
	}
	crucial.Register(&Entity{})
	rs := make([]crucial.Runnable, 0, 1+full.Reindeer+full.Elves)
	rs = append(rs, &Entity{Role: "santa", P: full})
	for i := 0; i < full.Reindeer; i++ {
		rs = append(rs, &Entity{Role: "reindeer", Idx: i, P: full})
	}
	for i := 0; i < full.Elves; i++ {
		rs = append(rs, &Entity{Role: "elf", Idx: i, P: full})
	}
	start := time.Now()
	threads := make([]*crucial.CloudThread, len(rs))
	for i, r := range rs {
		threads[i] = rt.NewThread(r)
		threads[i].StartCtx(ctx)
	}
	if err := crucial.JoinAll(threads); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// --- DSO factory: proxies over the custom shared objects ---

// DSOFactory builds proxies bound to a DSO client.
type DSOFactory struct {
	inv core.Invoker
}

// NewDSOFactory wraps an invoker (runtime master client or a thread's
// client).
func NewDSOFactory(inv core.Invoker) *DSOFactory {
	return &DSOFactory{inv: inv}
}

// Group returns a proxy for the named group.
func (f *DSOFactory) Group(name string, n int) Group {
	s := crucial.NewShared(TypeGroup, name, []any{int64(n)})
	s.H.BindDSO(f.inv)
	return &dsoGroup{s: s}
}

// Gate returns a proxy for the named gate.
func (f *DSOFactory) Gate(name string, n int) Gate {
	s := crucial.NewShared(TypeGate, name, []any{int64(n)})
	s.H.BindDSO(f.inv)
	return &dsoGate{s: s}
}

// Signal returns a proxy for the named signal.
func (f *DSOFactory) Signal(name string) Signal {
	s := crucial.NewShared(TypeSignal, name, nil)
	s.H.BindDSO(f.inv)
	return &dsoSignal{s: s}
}

// Counter returns a proxy for the named shared counter.
func (f *DSOFactory) Counter(name string, initial int64) Counter {
	c := crucial.NewAtomicLongInit(name, initial)
	c.H.BindDSO(f.inv)
	return &dsoCounter{c: c}
}

type dsoCounter struct{ c *crucial.AtomicLong }

func (d *dsoCounter) Dec(ctx context.Context) (int64, error) {
	return d.c.DecrementAndGet(ctx)
}

type dsoGroup struct{ s *crucial.Shared }

func (g *dsoGroup) Join(ctx context.Context) (bool, error) {
	return crucial.Call1[bool](ctx, g.s, "Join")
}

func (g *dsoGroup) Release(ctx context.Context) error {
	return crucial.Call0(ctx, g.s, "Release")
}

type dsoGate struct{ s *crucial.Shared }

func (g *dsoGate) Pass(ctx context.Context) error { return crucial.Call0(ctx, g.s, "Pass") }
func (g *dsoGate) Open(ctx context.Context) error { return crucial.Call0(ctx, g.s, "Open") }

type dsoSignal struct{ s *crucial.Shared }

func (s *dsoSignal) Raise(ctx context.Context, kind string) error {
	return crucial.Call0(ctx, s.s, "Raise", kind)
}

func (s *dsoSignal) Await(ctx context.Context) (string, error) {
	return crucial.Call1[string](ctx, s.s, "Await")
}

var (
	_ SyncFactory = (*LocalFactory)(nil)
	_ SyncFactory = (*DSOFactory)(nil)
	_ Group       = (*dsoGroup)(nil)
	_ Gate        = (*dsoGate)(nil)
	_ Signal      = (*dsoSignal)(nil)
)
