package santa

import (
	"context"
	"testing"
	"time"

	"crucial"
)

func fastParams() Params {
	return Params{
		Elves: 4, Reindeer: 3, Deliveries: 3, TotalConsults: 12,
		DeliveryTime: 4 * time.Millisecond,
		ConsultTime:  2 * time.Millisecond,
		VacationTime: 4 * time.Millisecond,
		Seed:         3,
	}
}

func santaRuntime(t *testing.T) *crucial.Runtime {
	t.Helper()
	reg := crucial.NewTypeRegistry()
	RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestParamsValidation(t *testing.T) {
	p := fastParams()
	p.TotalConsults = 4 // not divisible by 3
	if _, err := p.withDefaults(); err == nil {
		t.Fatal("non-divisible elf work accepted")
	}
}

func TestEpisodeCount(t *testing.T) {
	p, err := fastParams().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	// 3 deliveries + 12/3 elf batches = 7.
	if got := p.episodes(); got != 7 {
		t.Fatalf("episodes = %d", got)
	}
}

func TestRunPOJOCompletes(t *testing.T) {
	d, err := RunPOJO(ctxT(t), fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
}

func TestRunPOJODefaultInstance(t *testing.T) {
	// The paper's instance (10 elves, 9 reindeer, 15 deliveries) with
	// tiny activity times.
	p := Params{
		DeliveryTime: time.Millisecond,
		ConsultTime:  time.Millisecond,
		VacationTime: 2 * time.Millisecond,
	}
	if _, err := RunPOJO(ctxT(t), p); err != nil {
		t.Fatal(err)
	}
}

func TestRunDSOCompletes(t *testing.T) {
	rt := santaRuntime(t)
	p := fastParams()
	p.Prefix = "santa-dso"
	d, err := RunDSO(ctxT(t), rt, p)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
}

func TestRunCloudCompletes(t *testing.T) {
	rt := santaRuntime(t)
	p := fastParams()
	p.Prefix = "santa-cloud"
	d, err := RunCloud(ctxT(t), rt, p)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
}

// The three variants must take broadly comparable time (Fig. 7c: DSO
// within ~8% of POJO at paper scale; here we only require the same order
// of magnitude since activity times are tiny).
func TestVariantsComparable(t *testing.T) {
	rt := santaRuntime(t)
	ctx := ctxT(t)

	pojo, err := RunPOJO(ctx, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams()
	p.Prefix = "santa-cmp"
	dso, err := RunDSO(ctx, rt, p)
	if err != nil {
		t.Fatal(err)
	}
	if dso < pojo/2 {
		t.Fatalf("DSO (%v) implausibly faster than POJO (%v)", dso, pojo)
	}
	if dso > pojo*20 {
		t.Fatalf("DSO (%v) more than 20x POJO (%v)", dso, pojo)
	}
}

func TestEntityUnknownRole(t *testing.T) {
	rt := santaRuntime(t)
	crucial.Register(&Entity{})
	p, err := fastParams().withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	th := rt.NewThread(&Entity{Role: "grinch", P: p})
	th.Start()
	if err := th.Join(); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestLocalFactoryReuse(t *testing.T) {
	f := NewLocalFactory()
	g1 := f.Group("g", 3)
	g2 := f.Group("g", 3)
	if g1 != g2 {
		t.Fatal("factory built two objects for one name")
	}
}

func TestLocalSignalPriority(t *testing.T) {
	f := NewLocalFactory()
	s := f.Signal("s")
	ctx := context.Background()
	if err := s.Raise(ctx, KindElf); err != nil {
		t.Fatal(err)
	}
	if err := s.Raise(ctx, KindReindeer); err != nil {
		t.Fatal(err)
	}
	kind, err := s.Await(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindReindeer {
		t.Fatalf("Await = %q, reindeer must have priority", kind)
	}
	kind, _ = s.Await(ctx)
	if kind != KindElf {
		t.Fatalf("second Await = %q", kind)
	}
}

func TestLocalSignalUnknownKind(t *testing.T) {
	f := NewLocalFactory()
	if err := f.Signal("s").Raise(context.Background(), "penguin"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestRunStatefunCompletes runs the event-driven variant: all work
// served, and a second run on the same runtime (fresh prefix) works
// since deployment and runs are decoupled.
func TestRunStatefunCompletes(t *testing.T) {
	rt := santaRuntime(t)
	santaFn, reindeerFn, elfFn, err := DeployStatefun(rt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	p := fastParams()
	p.Prefix = "santa-sf-1"
	d, err := RunStatefun(ctx, p, santaFn, reindeerFn, elfFn)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	p.Prefix = "santa-sf-2"
	if _, err := RunStatefun(ctx, p, santaFn, reindeerFn, elfFn); err != nil {
		t.Fatal(err)
	}
}
