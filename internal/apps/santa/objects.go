// Package santa solves the Santa Claus problem (Trono, 1994; paper
// Section 6.3.3): Santa sleeps until either all 9 reindeer return from
// vacation (deliver toys) or 3 of the 10 elves need help (consult). The
// entities coordinate through groups and gates, implemented three ways:
//
//   - POJO: local goroutines with monitor-based objects (the single-machine
//     baseline of Fig. 7c),
//   - DSO: the same algorithm with the objects in the DSO layer (only the
//     object placement changes — the code of the entities is identical),
//   - Cloud: DSO objects and entities running as cloud threads.
//
// The three variants share one algorithm parameterized by the SyncFactory
// interface, which is the Go equivalent of "the code of the objects used
// in the POJO solution is not changed; only the @Shared annotation is
// required".
package santa

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"crucial/internal/core"
)

// Group admits up to n entities per batch; the batch then waits to be
// served and released.
type Group interface {
	// Join blocks while a full batch is being served, then admits the
	// caller; last reports whether the caller completed the batch.
	Join(ctx context.Context) (last bool, err error)
	// Release ends the batch, readmitting waiting joiners.
	Release(ctx context.Context) error
}

// Gate lets exactly n entities pass each time it is opened. Open blocks
// until all n have passed (giving Santa his synchronization points).
type Gate interface {
	Pass(ctx context.Context) error
	Open(ctx context.Context) error
}

// Signal is Santa's doorbell: entities raise a kind, Santa awaits one,
// reindeer having priority (the problem's fairness requirement).
type Signal interface {
	Raise(ctx context.Context, kind string) error
	Await(ctx context.Context) (string, error)
}

// Kinds of signal.
const (
	KindReindeer = "reindeer"
	KindElf      = "elf"
)

// Counter is a shared work pool: Dec atomically takes one unit,
// returning the remaining count (negative when the pool is dry).
type Counter interface {
	Dec(ctx context.Context) (int64, error)
}

// SyncFactory builds named synchronization objects; implementations are
// local monitors or DSO proxies.
type SyncFactory interface {
	Group(name string, n int) Group
	Gate(name string, n int) Gate
	Signal(name string) Signal
	Counter(name string, initial int64) Counter
}

// --- Local (POJO) implementation: plain monitors ---

// LocalFactory builds in-process objects (the single-machine solution).
type LocalFactory struct {
	mu   sync.Mutex
	objs map[string]any
}

// NewLocalFactory builds an empty factory.
func NewLocalFactory() *LocalFactory {
	return &LocalFactory{objs: make(map[string]any)}
}

func factoryGet[T any](f *LocalFactory, name string, build func() T) T {
	f.mu.Lock()
	defer f.mu.Unlock()
	if o, ok := f.objs[name]; ok {
		return o.(T)
	}
	o := build()
	f.objs[name] = o
	return o
}

// Group returns the named group.
func (f *LocalFactory) Group(name string, n int) Group {
	return factoryGet(f, name, func() *localGroup {
		g := &localGroup{n: n}
		g.cond = sync.NewCond(&g.mu)
		return g
	})
}

// Gate returns the named gate.
func (f *LocalFactory) Gate(name string, n int) Gate {
	return factoryGet(f, name, func() *localGate {
		g := &localGate{n: n}
		g.cond = sync.NewCond(&g.mu)
		return g
	})
}

// Signal returns the named signal.
func (f *LocalFactory) Signal(name string) Signal {
	return factoryGet(f, name, func() *localSignal {
		s := &localSignal{}
		s.cond = sync.NewCond(&s.mu)
		return s
	})
}

// Counter returns the named counter seeded with initial.
func (f *LocalFactory) Counter(name string, initial int64) Counter {
	return factoryGet(f, name, func() *localCounter {
		c := &localCounter{}
		c.v.Store(initial)
		return c
	})
}

type localCounter struct {
	v atomic.Int64
}

func (c *localCounter) Dec(context.Context) (int64, error) {
	return c.v.Add(-1), nil
}

// localGroup admits joiners in FIFO ticket order: ticket t belongs to
// batch t/n, and Join returns once that batch is active (all earlier
// batches released). FIFO admission makes the group starvation-free: with
// a total join count divisible by n, every batch eventually fills, whereas
// naive "first n waiters" admission can strand the last joiners of a
// bounded workload (three eager elves can exhaust their consultations
// early and leave a straggler unable to ever fill a batch).
type localGroup struct {
	mu          sync.Mutex
	cond        *sync.Cond
	n           int
	nextTicket  int
	activeBatch int
}

func (g *localGroup) Join(context.Context) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.nextTicket
	g.nextTicket++
	batch := t / g.n
	last := t%g.n == g.n-1
	for g.activeBatch != batch {
		g.cond.Wait()
	}
	return last, nil
}

func (g *localGroup) Release(context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.activeBatch++
	g.cond.Broadcast()
	return nil
}

type localGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	open   bool
	passed int
}

func (g *localGate) Pass(context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.open {
		g.cond.Wait()
	}
	g.passed++
	if g.passed == g.n {
		g.open = false
	}
	g.cond.Broadcast()
	return nil
}

func (g *localGate) Open(context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.passed = 0
	g.open = true
	g.cond.Broadcast()
	for g.passed != g.n {
		g.cond.Wait()
	}
	return nil
}

type localSignal struct {
	mu       sync.Mutex
	cond     *sync.Cond
	reindeer int
	elves    int
}

func (s *localSignal) Raise(_ context.Context, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch kind {
	case KindReindeer:
		s.reindeer++
	case KindElf:
		s.elves++
	default:
		return fmt.Errorf("santa: unknown signal kind %q", kind)
	}
	s.cond.Broadcast()
	return nil
}

func (s *localSignal) Await(context.Context) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.reindeer == 0 && s.elves == 0 {
		s.cond.Wait()
	}
	if s.reindeer > 0 { // reindeer priority
		s.reindeer--
		return KindReindeer, nil
	}
	s.elves--
	return KindElf, nil
}

// --- DSO server-side objects (the @Shared versions) ---

// Type names of the custom shared objects.
const (
	TypeGroup  = "santa.Group"
	TypeGate   = "santa.Gate"
	TypeSignal = "santa.Signal"
)

// RegisterTypes installs the Santa object types into a registry.
func RegisterTypes(reg *core.Registry) {
	reg.MustRegister(core.TypeInfo{Name: TypeGroup, New: newGroupObject, Synchronization: true})
	reg.MustRegister(core.TypeInfo{Name: TypeGate, New: newGateObject, Synchronization: true})
	reg.MustRegister(core.TypeInfo{Name: TypeSignal, New: newSignalObject, Synchronization: true})
}

// groupObject mirrors localGroup on a DSO node with the same FIFO ticket
// semantics. Note the identical logic: ctl.Wait/Broadcast replace the
// monitor (this is the paper's point).
type groupObject struct {
	n           int64
	nextTicket  int64
	activeBatch int64
}

func newGroupObject(init []any) (core.Object, error) {
	n, err := core.Int64Arg(init, 0)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("santa: group needs n > 0")
	}
	return &groupObject{n: n}, nil
}

func (g *groupObject) Call(ctl core.Ctl, method string, _ []any) ([]any, error) {
	switch method {
	case "Join":
		t := g.nextTicket
		g.nextTicket++
		batch := t / g.n
		last := t%g.n == g.n-1
		if err := ctl.Wait(func() bool { return g.activeBatch == batch }); err != nil {
			return nil, err
		}
		return []any{last}, nil
	case "Release":
		g.activeBatch++
		ctl.Broadcast()
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: santa.Group.%s", core.ErrUnknownMethod, method)
	}
}

type gateObject struct {
	n      int64
	open   bool
	passed int64
}

func newGateObject(init []any) (core.Object, error) {
	n, err := core.Int64Arg(init, 0)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("santa: gate needs n > 0")
	}
	return &gateObject{n: n}, nil
}

func (g *gateObject) Call(ctl core.Ctl, method string, _ []any) ([]any, error) {
	switch method {
	case "Pass":
		if err := ctl.Wait(func() bool { return g.open }); err != nil {
			return nil, err
		}
		g.passed++
		if g.passed == g.n {
			g.open = false
		}
		ctl.Broadcast()
		return nil, nil
	case "Open":
		g.passed = 0
		g.open = true
		ctl.Broadcast()
		if err := ctl.Wait(func() bool { return g.passed == g.n }); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: santa.Gate.%s", core.ErrUnknownMethod, method)
	}
}

type signalObject struct {
	reindeer int64
	elves    int64
}

func newSignalObject(_ []any) (core.Object, error) {
	return &signalObject{}, nil
}

func (s *signalObject) Call(ctl core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Raise":
		kind, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		switch kind {
		case KindReindeer:
			s.reindeer++
		case KindElf:
			s.elves++
		default:
			return nil, fmt.Errorf("santa: unknown signal kind %q", kind)
		}
		ctl.Broadcast()
		return nil, nil
	case "Await":
		if err := ctl.Wait(func() bool { return s.reindeer > 0 || s.elves > 0 }); err != nil {
			return nil, err
		}
		if s.reindeer > 0 {
			s.reindeer--
			return []any{KindReindeer}, nil
		}
		s.elves--
		return []any{KindElf}, nil
	default:
		return nil, fmt.Errorf("%w: santa.Signal.%s", core.ErrUnknownMethod, method)
	}
}

var (
	_ core.Object = (*groupObject)(nil)
	_ core.Object = (*gateObject)(nil)
	_ core.Object = (*signalObject)(nil)
)
