package santa

import (
	"context"
	"fmt"
	"time"

	"crucial"
)

// The event-driven variant: the same Santa Claus problem rewritten on
// stateful functions (DESIGN.md §5i). Where the other variants block
// threads on monitors (Await, Join, Pass), here nobody blocks: Santa,
// every reindeer, and every elf is a function instance reacting to
// messages, with all coordination state in Santa's durable mailbox.
// Group formation becomes queueing ("ready" messages accumulate in
// Santa's state until a full group exists), priority becomes serving
// the reindeer queue first, and the deadlock the blocking variant must
// design around (elves stuck mid-batch waiting for tickets) cannot
// exist — a handler never waits, it either serves a full group or
// commits its queue and returns.

// Stateful-function types of the cast.
const (
	FnSanta    = "santa"
	FnReindeer = "reindeer"
	FnElf      = "elf"
)

// santaMind is Santa's durable state: the queued ready entities, the
// remaining work, and the herd parameters.
type santaMind struct {
	Started        bool
	Reindeer       int      // herd size that forms one delivery group
	DeliveriesLeft int      // sleigh runs not yet dispatched
	ConsultsLeft   int      // shared consultation pool (tickets)
	RQ             []string // reindeer ids waiting at the North Pole
	EQ             []string // elf ids waiting outside the showroom
	Deliveries     int      // total runs served (for the final report)
	Consults       int      // total consultations served
	DoneKey        string   // reply key answered when all work is done
	Done           bool
}

// santaStart begins a simulation: group sizes and work totals.
type santaStart struct {
	Reindeer      int
	Deliveries    int
	TotalConsults int
}

// herdInit tells a reindeer or elf which Santa instance it serves and,
// for reindeer, how many deliveries it participates in.
type herdInit struct {
	Santa string
	Left  int
}

// readyMsg announces an entity at Santa's door.
type readyMsg struct {
	ID string
}

// herdState is a reindeer's or elf's durable state.
type herdState struct {
	Santa string
	Left  int // deliveries remaining (reindeer only)
}

// santaReport is the final reply to the driver.
type santaReport struct {
	Deliveries int
	Consults   int
}

// HandleSanta reacts to start/ready messages: queue the arrival, then
// serve every full group the queues allow — reindeer first, the
// problem's priority rule — and send the verdicts in the same commit.
func HandleSanta(c *crucial.FnCtx, m crucial.FnMsg) error {
	var st santaMind
	if _, err := c.State(&st); err != nil {
		return err
	}
	switch m.Name() {
	case "start":
		var s santaStart
		if err := m.Body(&s); err != nil {
			return err
		}
		st.Started = true
		st.Reindeer = s.Reindeer
		st.DeliveriesLeft = s.Deliveries
		st.ConsultsLeft = s.TotalConsults
		st.DoneKey = m.ReplyKey()
	case "reindeer-ready":
		var r readyMsg
		if err := m.Body(&r); err != nil {
			return err
		}
		st.RQ = append(st.RQ, r.ID)
	case "elf-ready":
		var r readyMsg
		if err := m.Body(&r); err != nil {
			return err
		}
		st.EQ = append(st.EQ, r.ID)
	default:
		return fmt.Errorf("santa: unknown message %q", m.Name())
	}
	if st.Started {
		if err := serve(c, &st); err != nil {
			return err
		}
	}
	return c.SetState(&st)
}

// serve dispatches every full group available, reindeer before elves,
// then retires drained queues and reports completion.
func serve(c *crucial.FnCtx, st *santaMind) error {
	for {
		if st.DeliveriesLeft > 0 && len(st.RQ) >= st.Reindeer {
			group := st.RQ[:st.Reindeer]
			st.RQ = append([]string(nil), st.RQ[st.Reindeer:]...)
			st.DeliveriesLeft--
			st.Deliveries++
			for _, id := range group {
				if err := c.Send(crucial.FnAddress{FnType: FnReindeer, ID: id}, "delivered", nil); err != nil {
					return err
				}
			}
			continue
		}
		if st.ConsultsLeft >= ElfGroupSize && len(st.EQ) >= ElfGroupSize {
			group := st.EQ[:ElfGroupSize]
			st.EQ = append([]string(nil), st.EQ[ElfGroupSize:]...)
			st.ConsultsLeft -= ElfGroupSize
			st.Consults += ElfGroupSize
			for _, id := range group {
				if err := c.Send(crucial.FnAddress{FnType: FnElf, ID: id}, "consulted", nil); err != nil {
					return err
				}
			}
			continue
		}
		break
	}
	if st.ConsultsLeft < ElfGroupSize {
		// The pool is dry (or has a remainder smaller than a group):
		// waiting elves go back to toy-making for good.
		for _, id := range st.EQ {
			if err := c.Send(crucial.FnAddress{FnType: FnElf, ID: id}, "done", nil); err != nil {
				return err
			}
		}
		st.EQ = nil
	}
	if !st.Done && st.DeliveriesLeft == 0 && st.ConsultsLeft < ElfGroupSize {
		st.Done = true
		if st.DoneKey != "" {
			if err := c.SendReply(st.DoneKey, santaReport{Deliveries: st.Deliveries, Consults: st.Consults}); err != nil {
				return err
			}
		}
	}
	return nil
}

// HandleReindeer checks in for each delivery until its count runs out.
func HandleReindeer(c *crucial.FnCtx, m crucial.FnMsg) error {
	var st herdState
	if _, err := c.State(&st); err != nil {
		return err
	}
	switch m.Name() {
	case "init":
		var init herdInit
		if err := m.Body(&init); err != nil {
			return err
		}
		st.Santa = init.Santa
		st.Left = init.Left
	case "delivered":
		st.Left--
	default:
		return fmt.Errorf("reindeer: unknown message %q", m.Name())
	}
	if st.Left > 0 {
		if err := c.Send(crucial.FnAddress{FnType: FnSanta, ID: st.Santa}, "reindeer-ready",
			readyMsg{ID: c.Self().ID}); err != nil {
			return err
		}
	}
	return c.SetState(&st)
}

// HandleElf asks for a consultation whenever it is free; Santa's "done"
// sends it back to the workshop permanently.
func HandleElf(c *crucial.FnCtx, m crucial.FnMsg) error {
	var st herdState
	if _, err := c.State(&st); err != nil {
		return err
	}
	switch m.Name() {
	case "init":
		var init herdInit
		if err := m.Body(&init); err != nil {
			return err
		}
		st.Santa = init.Santa
	case "consulted":
		// Free again: queue up for the next ticket.
	case "done":
		return c.SetState(&st)
	default:
		return fmt.Errorf("elf: unknown message %q", m.Name())
	}
	if err := c.Send(crucial.FnAddress{FnType: FnSanta, ID: st.Santa}, "elf-ready",
		readyMsg{ID: c.Self().ID}); err != nil {
		return err
	}
	return c.SetState(&st)
}

// DeployStatefun registers the three event-driven handlers on the
// runtime (once per runtime).
func DeployStatefun(rt *crucial.Runtime) (santaFn, reindeerFn, elfFn *crucial.StatefulFunction, err error) {
	if santaFn, err = rt.DeployStatefulFunction(FnSanta, HandleSanta); err != nil {
		return nil, nil, nil, err
	}
	if reindeerFn, err = rt.DeployStatefulFunction(FnReindeer, HandleReindeer); err != nil {
		return nil, nil, nil, err
	}
	if elfFn, err = rt.DeployStatefulFunction(FnElf, HandleElf); err != nil {
		return nil, nil, nil, err
	}
	return santaFn, reindeerFn, elfFn, nil
}

// RunStatefun solves the problem event-driven: no entity ever blocks,
// so the modeled activity durations do not apply — the returned
// duration measures pure message-passing throughput. Deploy must have
// happened already (deploy is once per runtime, runs are many).
func RunStatefun(ctx context.Context, p Params, santaFn, reindeerFn, elfFn *crucial.StatefulFunction) (time.Duration, error) {
	full, err := p.withDefaults()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	santaID := full.Prefix
	for i := 0; i < full.Reindeer; i++ {
		id := fmt.Sprintf("%s/r%d", full.Prefix, i)
		if err := reindeerFn.Send(ctx, id, "init", herdInit{Santa: santaID, Left: full.Deliveries}); err != nil {
			return 0, err
		}
	}
	for i := 0; i < full.Elves; i++ {
		id := fmt.Sprintf("%s/e%d", full.Prefix, i)
		if err := elfFn.Send(ctx, id, "init", herdInit{Santa: santaID}); err != nil {
			return 0, err
		}
	}
	var report santaReport
	err = santaFn.Call(ctx, santaID, "start", santaStart{
		Reindeer:      full.Reindeer,
		Deliveries:    full.Deliveries,
		TotalConsults: full.TotalConsults,
	}, &report)
	if err != nil {
		return 0, err
	}
	if report.Deliveries != full.Deliveries || report.Consults != full.TotalConsults {
		return 0, fmt.Errorf("santa: served %d deliveries / %d consults, want %d / %d",
			report.Deliveries, report.Consults, full.Deliveries, full.TotalConsults)
	}
	return time.Since(start), nil
}
