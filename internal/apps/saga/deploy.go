package saga

import (
	"context"

	"crucial"
)

// Handles bundles the deployed saga functions for runtime-based callers
// (tests and the local mode of examples/saga).
type Handles struct {
	Order     *crucial.StatefulFunction
	Inventory *crucial.StatefulFunction
	Payment   *crucial.StatefulFunction
	Shipping  *crucial.StatefulFunction
}

// Deploy registers the four saga function types on the runtime.
func Deploy(rt *crucial.Runtime) (*Handles, error) {
	var h Handles
	var err error
	if h.Order, err = rt.DeployStatefulFunction(FnOrder, HandleOrder); err != nil {
		return nil, err
	}
	if h.Inventory, err = rt.DeployStatefulFunction(FnInventory, HandleInventory); err != nil {
		return nil, err
	}
	if h.Payment, err = rt.DeployStatefulFunction(FnPayment, HandlePayment); err != nil {
		return nil, err
	}
	if h.Shipping, err = rt.DeployStatefulFunction(FnShipping, HandleShipping); err != nil {
		return nil, err
	}
	return &h, nil
}

// Restock adds qty units to a SKU's stock.
func (h *Handles) Restock(ctx context.Context, sku string, qty int64) error {
	return h.Inventory.Send(ctx, sku, "restock", Step{Qty: qty})
}

// Deposit adds amount to an account's balance.
func (h *Handles) Deposit(ctx context.Context, account string, amount int64) error {
	return h.Payment.Send(ctx, account, "deposit", Step{Amount: amount})
}

// Place starts the saga for orderID and blocks until it completes or
// fails, returning the receipt.
func (h *Handles) Place(ctx context.Context, orderID string, po PlaceOrder) (Receipt, error) {
	var r Receipt
	if err := h.Order.Call(ctx, orderID, "place", po, &r); err != nil {
		return Receipt{}, err
	}
	return r, nil
}

// PlaceAsync starts the saga for orderID without waiting for the
// outcome; poll the order's state (or the receipt phase) to observe it.
func (h *Handles) PlaceAsync(ctx context.Context, orderID string, po PlaceOrder) error {
	return h.Order.Send(ctx, orderID, "place", po)
}
