package saga

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"crucial"
)

func sagaRuntime(t *testing.T, opts crucial.Options) (*crucial.Runtime, *Handles) {
	t.Helper()
	rt, err := crucial.NewLocalRuntime(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	h, err := Deploy(rt)
	if err != nil {
		t.Fatal(err)
	}
	return rt, h
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// waitFor polls cond until it holds; the receipt can arrive before
// asynchronous tail effects (like a compensating release) are applied.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSagaHappyPath(t *testing.T) {
	_, h := sagaRuntime(t, crucial.Options{DSONodes: 2, RF: 2})
	ctx := ctxT(t)
	if err := h.Restock(ctx, "widget", 10); err != nil {
		t.Fatal(err)
	}
	if err := h.Deposit(ctx, "alice", 500); err != nil {
		t.Fatal(err)
	}
	r, err := h.Place(ctx, "o1", PlaceOrder{SKU: "widget", Qty: 3, Amount: 120, Account: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != PhaseCompleted {
		t.Fatalf("receipt: %+v", r)
	}
	var inv InventoryState
	if _, err := h.Inventory.State(ctx, "widget", &inv); err != nil {
		t.Fatal(err)
	}
	if inv.Stock != 7 || len(inv.Reserved) != 1 || inv.Reserved["o1"] != 3 {
		t.Fatalf("inventory: %+v", inv)
	}
	var pay PaymentState
	if _, err := h.Payment.State(ctx, "alice", &pay); err != nil {
		t.Fatal(err)
	}
	if pay.Balance != 380 || pay.Charged["o1"] != 120 {
		t.Fatalf("payment: %+v", pay)
	}
	var ship ShippingState
	if _, err := h.Shipping.State(ctx, "depot", &ship); err != nil {
		t.Fatal(err)
	}
	if ship.Dispatched != 1 {
		t.Fatalf("shipping: %+v", ship)
	}
}

// TestSagaCompensation drives a saga into a declined payment and checks
// the compensating release restored the reservation to stock.
func TestSagaCompensation(t *testing.T) {
	_, h := sagaRuntime(t, crucial.Options{DSONodes: 2, Statefun: crucial.StatefunOptions{InProcess: true}})
	ctx := ctxT(t)
	if err := h.Restock(ctx, "gadget", 5); err != nil {
		t.Fatal(err)
	}
	if err := h.Deposit(ctx, "bob", 10); err != nil {
		t.Fatal(err)
	}
	r, err := h.Place(ctx, "o2", PlaceOrder{SKU: "gadget", Qty: 2, Amount: 100, Account: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != PhaseFailed || r.Reason == "" {
		t.Fatalf("receipt: %+v", r)
	}
	waitFor(t, "compensating release", func() bool {
		// A fresh struct every poll: gob merges decoded maps into an
		// existing value, which would mask the release.
		var inv InventoryState
		if _, err := h.Inventory.State(ctx, "gadget", &inv); err != nil {
			t.Fatal(err)
		}
		return inv.Stock == 5 && len(inv.Reserved) == 0
	})
	var pay PaymentState
	if _, err := h.Payment.State(ctx, "bob", &pay); err != nil {
		t.Fatal(err)
	}
	if pay.Balance != 10 || len(pay.Charged) != 0 {
		t.Fatalf("payment mutated on decline: %+v", pay)
	}
}

// TestSagaOutOfStock rejects in the first step: no reservation, no
// charge, no compensation needed.
func TestSagaOutOfStock(t *testing.T) {
	_, h := sagaRuntime(t, crucial.Options{DSONodes: 2, Statefun: crucial.StatefunOptions{InProcess: true}})
	ctx := ctxT(t)
	if err := h.Deposit(ctx, "carol", 1000); err != nil {
		t.Fatal(err)
	}
	r, err := h.Place(ctx, "o3", PlaceOrder{SKU: "rare", Qty: 1, Amount: 10, Account: "carol"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != PhaseFailed {
		t.Fatalf("receipt: %+v", r)
	}
	var pay PaymentState
	if _, err := h.Payment.State(ctx, "carol", &pay); err != nil {
		t.Fatal(err)
	}
	if pay.Balance != 1000 {
		t.Fatalf("charged despite rejection: %+v", pay)
	}
}

// TestSagaConcurrentOrders races many sagas over shared stock and a
// shared account; the books must balance exactly: completed orders
// consumed stock and money, failed orders consumed nothing.
func TestSagaConcurrentOrders(t *testing.T) {
	_, h := sagaRuntime(t, crucial.Options{DSONodes: 3, RF: 2, Statefun: crucial.StatefunOptions{InProcess: true}})
	ctx := ctxT(t)
	const orders = 12
	if err := h.Restock(ctx, "bulk", 8); err != nil { // enough for 8 of 12
		t.Fatal(err)
	}
	if err := h.Deposit(ctx, "dave", 1000); err != nil {
		t.Fatal(err)
	}
	receipts := make([]Receipt, orders)
	var wg sync.WaitGroup
	for i := 0; i < orders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := h.Place(ctx, fmt.Sprintf("c%d", i),
				PlaceOrder{SKU: "bulk", Qty: 1, Amount: 50, Account: "dave"})
			if err != nil {
				t.Error(err)
				return
			}
			receipts[i] = r
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var completed int64
	for _, r := range receipts {
		if r.Status == PhaseCompleted {
			completed++
		}
	}
	if completed != 8 {
		t.Fatalf("completed = %d, want 8 (stock-limited)", completed)
	}
	var inv InventoryState
	if _, err := h.Inventory.State(ctx, "bulk", &inv); err != nil {
		t.Fatal(err)
	}
	if inv.Stock != 0 || int64(len(inv.Reserved)) != completed {
		t.Fatalf("inventory: %+v", inv)
	}
	var pay PaymentState
	if _, err := h.Payment.State(ctx, "dave", &pay); err != nil {
		t.Fatal(err)
	}
	if pay.Balance != 1000-completed*50 {
		t.Fatalf("balance = %d, want %d", pay.Balance, 1000-completed*50)
	}
	var ship ShippingState
	if _, err := h.Shipping.State(ctx, "depot", &ship); err != nil {
		t.Fatal(err)
	}
	if ship.Dispatched != completed {
		t.Fatalf("dispatched = %d, want %d", ship.Dispatched, completed)
	}
}
