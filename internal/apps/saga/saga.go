// Package saga is the durable-workflow example of DESIGN.md §5i: an
// order saga built on stateful functions. Each order is one "order"
// instance orchestrating three participants — inventory, payment,
// shipping — purely through mailbox messages. Every step's state change
// and outgoing message commit atomically, so the saga resumes from its
// exact step across process crashes, node crashes, and full-cluster
// restarts, with no step applied twice: a reservation is never charged
// twice, a failed payment always releases its reservation.
//
// The flow (happy path, with the compensation branch in brackets):
//
//	client ── place ──▶ order ── reserve ──▶ inventory
//	                    order ◀─ reserved ── inventory
//	                    order ── charge ───▶ payment
//	                    order ◀─ charged ─── payment      [declined:
//	                    order ── dispatch ─▶ shipping       release the
//	                    order ◀─ dispatched─ shipping       reservation]
//	client ◀─ receipt ─ order
package saga

import (
	"fmt"

	"crucial/internal/statefun"
)

// Function types of the saga cast.
const (
	FnOrder     = "order"
	FnInventory = "inventory"
	FnPayment   = "payment"
	FnShipping  = "shipping"
)

// Order phases, in the order the saga moves through them. A saga that
// fails ends in PhaseFailed with the reason recorded; compensation (the
// inventory release) has already been sent in the same commit that
// recorded the failure.
const (
	PhaseReserving = "reserving"
	PhaseCharging  = "charging"
	PhaseShipping  = "shipping"
	PhaseCompleted = "completed"
	PhaseFailed    = "failed"
)

// PlaceOrder is the client's request: what to buy, from which stock,
// charged to which account.
type PlaceOrder struct {
	SKU     string
	Qty     int64
	Amount  int64
	Account string
}

// Receipt is the saga's final answer to the client.
type Receipt struct {
	OrderID string
	Status  string // PhaseCompleted or PhaseFailed
	Reason  string // why, when failed
}

// Step is the message body participants and the orchestrator exchange;
// OrderID routes answers back to the right order instance.
type Step struct {
	OrderID string
	SKU     string
	Qty     int64
	Amount  int64
	Account string
	Reason  string
}

// OrderState is an order instance's durable state: the request, the
// current phase, the client's reply key (answered when the saga ends),
// and the failure reason if any.
type OrderState struct {
	Order    PlaceOrder
	Phase    string
	ReplyKey string
	Reason   string
}

// InventoryState is a per-SKU stock instance: free stock plus the
// per-order reservations that a compensating release returns to stock.
type InventoryState struct {
	Stock    int64
	Reserved map[string]int64
}

// PaymentState is a per-account balance instance with the per-order
// charges it has applied.
type PaymentState struct {
	Balance int64
	Charged map[string]int64
}

// ShippingState counts dispatches from one depot instance.
type ShippingState struct {
	Dispatched int64
}

// RegisterAll adds the four saga handlers to hs, for engines built
// directly on internal/statefun (the remote-cluster mode of
// examples/saga). Runtimes use Deploy instead.
func RegisterAll(hs *statefun.HandlerSet) error {
	for fnType, h := range map[string]statefun.Handler{
		FnOrder:     HandleOrder,
		FnInventory: HandleInventory,
		FnPayment:   HandlePayment,
		FnShipping:  HandleShipping,
	} {
		if err := hs.Register(fnType, h); err != nil {
			return err
		}
	}
	return nil
}

// orderAddr routes a participant's answer back to the orchestrator.
func orderAddr(orderID string) statefun.Address {
	return statefun.Address{FnType: FnOrder, ID: orderID}
}

// HandleOrder is the orchestrator: it walks the order through
// reserve → charge → dispatch, records each transition in its state, and
// stages the next step's message in the same atomic commit.
func HandleOrder(c *statefun.Ctx, m statefun.Msg) error {
	var st OrderState
	if _, err := c.State(&st); err != nil {
		return err
	}
	fail := func(reason string) error {
		st.Phase = PhaseFailed
		st.Reason = reason
		if st.ReplyKey != "" {
			receipt := Receipt{OrderID: c.Self().ID, Status: PhaseFailed, Reason: reason}
			if err := c.SendReply(st.ReplyKey, receipt); err != nil {
				return err
			}
		}
		return c.SetState(st)
	}
	switch m.Name() {
	case "place":
		if st.Phase != "" {
			// A duplicate placement (a client retry beyond the dedup
			// window): answer with the current status, change nothing.
			if m.ReplyKey() != "" {
				return c.Reply(Receipt{OrderID: c.Self().ID, Status: st.Phase, Reason: st.Reason})
			}
			return nil
		}
		var po PlaceOrder
		if err := m.Body(&po); err != nil {
			return err
		}
		st = OrderState{Order: po, Phase: PhaseReserving, ReplyKey: m.ReplyKey()}
		step := Step{OrderID: c.Self().ID, SKU: po.SKU, Qty: po.Qty, Amount: po.Amount, Account: po.Account}
		if err := c.Send(statefun.Address{FnType: FnInventory, ID: po.SKU}, "reserve", step); err != nil {
			return err
		}
		return c.SetState(st)
	case "reserved":
		st.Phase = PhaseCharging
		step := Step{OrderID: c.Self().ID, Amount: st.Order.Amount, Account: st.Order.Account}
		if err := c.Send(statefun.Address{FnType: FnPayment, ID: st.Order.Account}, "charge", step); err != nil {
			return err
		}
		return c.SetState(st)
	case "rejected":
		var step Step
		if err := m.Body(&step); err != nil {
			return err
		}
		return fail(step.Reason)
	case "charged":
		st.Phase = PhaseShipping
		step := Step{OrderID: c.Self().ID, SKU: st.Order.SKU, Qty: st.Order.Qty}
		if err := c.Send(statefun.Address{FnType: FnShipping, ID: "depot"}, "dispatch", step); err != nil {
			return err
		}
		return c.SetState(st)
	case "declined":
		// Compensate: the reservation made in the reserve step must be
		// returned to stock. The release rides the same commit as the
		// failure record, so a crash cannot separate them.
		var step Step
		if err := m.Body(&step); err != nil {
			return err
		}
		release := Step{OrderID: c.Self().ID, SKU: st.Order.SKU}
		if err := c.Send(statefun.Address{FnType: FnInventory, ID: st.Order.SKU}, "release", release); err != nil {
			return err
		}
		return fail(step.Reason)
	case "dispatched":
		st.Phase = PhaseCompleted
		if st.ReplyKey != "" {
			receipt := Receipt{OrderID: c.Self().ID, Status: PhaseCompleted}
			if err := c.SendReply(st.ReplyKey, receipt); err != nil {
				return err
			}
		}
		return c.SetState(st)
	default:
		return fmt.Errorf("saga: order got unknown message %q", m.Name())
	}
}

// HandleInventory manages one SKU's stock: reservations move stock into
// a per-order bucket, releases (the compensation) move it back.
func HandleInventory(c *statefun.Ctx, m statefun.Msg) error {
	var st InventoryState
	if _, err := c.State(&st); err != nil {
		return err
	}
	if st.Reserved == nil {
		st.Reserved = make(map[string]int64)
	}
	var step Step
	if err := m.Body(&step); err != nil {
		return err
	}
	switch m.Name() {
	case "restock":
		st.Stock += step.Qty
		return c.SetState(st)
	case "reserve":
		if st.Stock < step.Qty {
			reply := Step{OrderID: step.OrderID, Reason: fmt.Sprintf("out of stock: %s", c.Self().ID)}
			if err := c.Send(orderAddr(step.OrderID), "rejected", reply); err != nil {
				return err
			}
			return nil
		}
		st.Stock -= step.Qty
		st.Reserved[step.OrderID] += step.Qty
		if err := c.Send(orderAddr(step.OrderID), "reserved", Step{OrderID: step.OrderID}); err != nil {
			return err
		}
		return c.SetState(st)
	case "release":
		st.Stock += st.Reserved[step.OrderID]
		delete(st.Reserved, step.OrderID)
		return c.SetState(st)
	default:
		return fmt.Errorf("saga: inventory got unknown message %q", m.Name())
	}
}

// HandlePayment manages one account's balance: a charge that fits the
// balance is applied and answered "charged", one that does not is
// answered "declined" (triggering the orchestrator's compensation).
func HandlePayment(c *statefun.Ctx, m statefun.Msg) error {
	var st PaymentState
	if _, err := c.State(&st); err != nil {
		return err
	}
	if st.Charged == nil {
		st.Charged = make(map[string]int64)
	}
	var step Step
	if err := m.Body(&step); err != nil {
		return err
	}
	switch m.Name() {
	case "deposit":
		st.Balance += step.Amount
		return c.SetState(st)
	case "charge":
		if st.Balance < step.Amount {
			reply := Step{OrderID: step.OrderID, Reason: fmt.Sprintf("insufficient funds: %s", c.Self().ID)}
			return c.Send(orderAddr(step.OrderID), "declined", reply)
		}
		st.Balance -= step.Amount
		st.Charged[step.OrderID] += step.Amount
		if err := c.Send(orderAddr(step.OrderID), "charged", Step{OrderID: step.OrderID}); err != nil {
			return err
		}
		return c.SetState(st)
	default:
		return fmt.Errorf("saga: payment got unknown message %q", m.Name())
	}
}

// HandleShipping dispatches from one depot and confirms to the order.
func HandleShipping(c *statefun.Ctx, m statefun.Msg) error {
	if m.Name() != "dispatch" {
		return fmt.Errorf("saga: shipping got unknown message %q", m.Name())
	}
	var st ShippingState
	if _, err := c.State(&st); err != nil {
		return err
	}
	var step Step
	if err := m.Body(&step); err != nil {
		return err
	}
	st.Dispatched++
	if err := c.Send(orderAddr(step.OrderID), "dispatched", Step{OrderID: step.OrderID}); err != nil {
		return err
	}
	return c.SetState(st)
}
