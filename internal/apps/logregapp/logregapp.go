// Package logregapp implements the paper's serverless logistic regression
// (Section 6.2.2) and its Spark comparator. The Crucial version keeps the
// weight vector in a user-defined shared object that aggregates
// sub-gradients server side and applies the descent step when the last
// worker of a round contributes — the fine-grained update pattern that
// replaces Spark's per-iteration broadcast + reduce.
package logregapp

import (
	"context"
	"fmt"
	"time"

	"crucial"
	"crucial/internal/core"
	"crucial/internal/ml"
	"crucial/internal/netsim"
	"crucial/internal/sparksim"
)

// TypeGlobalModel is the wire name of the custom shared object.
const TypeGlobalModel = "logreg.GlobalModel"

// Config parameterizes one training run, identically across engines.
type Config struct {
	// Dims features (the paper: 100), Workers parallel workers (80),
	// Iterations descent steps (100).
	Dims, Workers, Iterations int
	// PointsPerWorker is the real data per worker; LearningRate the step
	// size.
	PointsPerWorker int
	LearningRate    float64
	Seed            int64
	// ModeledPointsPerWorker adds modeled compute per iteration at
	// NsPerOp ns per point-feature term, compressed by TimeScale
	// (the 100 GB-dataset stand-in; see DESIGN.md).
	ModeledPointsPerWorker int
	NsPerOp                float64
	TimeScale              float64
	// KeyPrefix isolates object keys between runs sharing a cluster.
	KeyPrefix string
	// SparkStageOverheadMs is the modeled per-iteration driver overhead
	// of the Spark comparator, calibrated from the paper's EMR
	// measurements. Zero means none.
	SparkStageOverheadMs float64
}

func (c Config) withDefaults() Config {
	if c.Dims <= 0 {
		c.Dims = 10
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.PointsPerWorker <= 0 {
		c.PointsPerWorker = 250
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 2.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.KeyPrefix == "" {
		c.KeyPrefix = "logreg"
	}
	return c
}

func (c Config) modeledCompute() time.Duration {
	if c.ModeledPointsPerWorker <= 0 || c.NsPerOp <= 0 {
		return 0
	}
	ops := float64(c.ModeledPointsPerWorker) * float64(c.Dims)
	return time.Duration(ops * c.NsPerOp * c.TimeScale)
}

// partition deterministically generates one worker's labeled slice; all
// partitions label against the same ground-truth model (c.Seed).
func (c Config) partition(part int) ([][]float64, []float64) {
	return ml.GenerateLabeledPartition(c.PointsPerWorker, c.Dims, c.Seed, c.Seed+int64(part)+1)
}

// Result captures a run.
type Result struct {
	Weights []float64
	// Losses is the per-iteration average log-loss (Fig. 4's loss curve).
	Losses []float64
	// IterTimes are real per-iteration durations where the engine's
	// driver can observe them.
	IterTimes []time.Duration
	Total     time.Duration
}

// modelObject is the server-side GlobalModel.
type modelObject struct {
	dims, parties int
	lr            float64
	weights       []float64
	grad          []float64
	lossSum       float64
	nSum          int64
	contributors  int
	losses        []float64
	generation    int64
}

func newModelObject(init []any) (core.Object, error) {
	dims, err := core.Int64Arg(init, 0)
	if err != nil {
		return nil, err
	}
	parties, err := core.Int64Arg(init, 1)
	if err != nil {
		return nil, err
	}
	lr, err := core.Arg[float64](init, 2)
	if err != nil {
		return nil, err
	}
	if dims <= 0 || parties <= 0 || lr <= 0 {
		return nil, fmt.Errorf("logregapp: invalid init dims=%d parties=%d lr=%v", dims, parties, lr)
	}
	return &modelObject{
		dims:    int(dims),
		parties: int(parties),
		lr:      lr,
		weights: make([]float64, dims),
		grad:    make([]float64, dims),
	}, nil
}

func (o *modelObject) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Weights":
		out := make([]float64, len(o.weights))
		copy(out, o.weights)
		return []any{out, o.generation}, nil
	case "Update":
		grad, err := core.Arg[[]float64](args, 0)
		if err != nil {
			return nil, err
		}
		loss, err := core.Arg[float64](args, 1)
		if err != nil {
			return nil, err
		}
		n, err := core.Int64Arg(args, 2)
		if err != nil {
			return nil, err
		}
		if len(grad) != len(o.grad) {
			return nil, fmt.Errorf("logregapp: gradient dim %d, want %d", len(grad), len(o.grad))
		}
		for i := range grad {
			o.grad[i] += grad[i]
		}
		o.lossSum += loss
		o.nSum += n
		o.contributors++
		if o.contributors == o.parties {
			o.weights = ml.ApplyGradient(o.weights, o.grad, o.lr, int(o.nSum))
			o.losses = append(o.losses, o.lossSum/float64(o.nSum))
			o.grad = make([]float64, o.dims)
			o.lossSum, o.nSum, o.contributors = 0, 0, 0
			o.generation++
		}
		return []any{o.generation}, nil
	case "Losses":
		out := make([]float64, len(o.losses))
		copy(out, o.losses)
		return []any{out}, nil
	default:
		return nil, fmt.Errorf("%w: GlobalModel.%s", core.ErrUnknownMethod, method)
	}
}

type modelState struct {
	Dims, Parties int
	LR            float64
	Weights, Grad []float64
	LossSum       float64
	NSum          int64
	Contributors  int
	Losses        []float64
	Generation    int64
}

// Snapshot supports replication/rebalancing.
func (o *modelObject) Snapshot() ([]byte, error) {
	return core.EncodeValue(modelState{
		Dims: o.dims, Parties: o.parties, LR: o.lr,
		Weights: o.weights, Grad: o.grad, LossSum: o.lossSum, NSum: o.nSum,
		Contributors: o.contributors, Losses: o.losses, Generation: o.generation,
	})
}

// Restore replaces the object state.
func (o *modelObject) Restore(data []byte) error {
	var s modelState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	o.dims, o.parties, o.lr = s.Dims, s.Parties, s.LR
	o.weights, o.grad, o.lossSum, o.nSum = s.Weights, s.Grad, s.LossSum, s.NSum
	o.contributors, o.losses, o.generation = s.Contributors, s.Losses, s.Generation
	return nil
}

var (
	_ core.Object      = (*modelObject)(nil)
	_ core.Snapshotter = (*modelObject)(nil)
)

// RegisterTypes installs the custom shared type into a registry.
func RegisterTypes(reg *core.Registry) {
	reg.MustRegister(core.TypeInfo{Name: TypeGlobalModel, New: newModelObject})
}

// Model is the client proxy of GlobalModel.
type Model struct{ H crucial.Handle }

// NewModel builds the proxy.
func NewModel(key string, dims, parties int, lr float64, opts ...crucial.Option) *Model {
	s := crucial.NewShared(TypeGlobalModel, key, []any{int64(dims), int64(parties), lr}, opts...)
	return &Model{H: s.H}
}

// Weights returns the current weight vector and its generation.
func (m *Model) Weights(ctx context.Context) ([]float64, int64, error) {
	res, err := m.H.Invoke(ctx, "Weights")
	if err != nil {
		return nil, 0, err
	}
	return res[0].([]float64), res[1].(int64), nil
}

// Update contributes one partition's sub-gradient, loss, and size.
func (m *Model) Update(ctx context.Context, grad []float64, loss float64, n int) error {
	_, err := m.H.Invoke(ctx, "Update", grad, loss, int64(n))
	return err
}

// Losses returns the per-iteration average loss recorded server side.
func (m *Model) Losses(ctx context.Context) ([]float64, error) {
	res, err := m.H.Invoke(ctx, "Losses")
	if err != nil {
		return nil, err
	}
	return res[0].([]float64), nil
}

// Worker is the Crucial logistic regression cloud thread.
type Worker struct {
	Cfg  Config
	Part int

	Model   *Model
	Iter    *crucial.AtomicInt
	Barrier *crucial.CyclicBarrier
}

// NewWorker wires one worker for cfg.
func NewWorker(cfg Config, part int) *Worker {
	cfg = cfg.withDefaults()
	return &Worker{
		Cfg:     cfg,
		Part:    part,
		Model:   NewModel(cfg.KeyPrefix+"/model", cfg.Dims, cfg.Workers, cfg.LearningRate),
		Iter:    crucial.NewAtomicInt(cfg.KeyPrefix + "/iterations"),
		Barrier: crucial.NewCyclicBarrier(cfg.KeyPrefix+"/barrier", cfg.Workers),
	}
}

// Run executes the training loop: fetch weights, compute the partition's
// sub-gradient and loss, push both to the DSO layer, synchronize, repeat.
func (w *Worker) Run(tc *crucial.TC) error {
	ctx := tc.Context()
	points, labels := w.Cfg.partition(w.Part)
	pad := w.Cfg.modeledCompute()

	iter, err := w.Iter.Get(ctx)
	if err != nil {
		return err
	}
	for int(iter) < w.Cfg.Iterations {
		weights, _, err := w.Model.Weights(ctx)
		if err != nil {
			return err
		}
		grad := ml.SubGradient(points, labels, weights)
		loss := ml.LogisticLoss(points, labels, weights)
		if pad > 0 {
			if err := netsim.Sleep(ctx, pad); err != nil {
				return err
			}
		}
		if err := w.Model.Update(ctx, grad, loss, len(points)); err != nil {
			return err
		}
		if _, err := w.Barrier.Await(ctx); err != nil {
			return err
		}
		if _, err := w.Iter.CompareAndSet(ctx, iter, iter+1); err != nil {
			return err
		}
		if iter, err = w.Iter.Get(ctx); err != nil {
			return err
		}
	}
	return nil
}

// RunCrucial trains on a Crucial runtime.
func RunCrucial(ctx context.Context, rt *crucial.Runtime, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	threads := make([]*crucial.CloudThread, cfg.Workers)
	start := time.Now()
	for i := range threads {
		threads[i] = rt.NewThread(NewWorker(cfg, i))
		threads[i].StartCtx(ctx)
	}
	if err := crucial.JoinAll(threads); err != nil {
		return Result{}, err
	}
	total := time.Since(start)

	probe := NewModel(cfg.KeyPrefix+"/model", cfg.Dims, cfg.Workers, cfg.LearningRate)
	rt.Bind(probe)
	weights, _, err := probe.Weights(ctx)
	if err != nil {
		return Result{}, err
	}
	losses, err := probe.Losses(ctx)
	if err != nil {
		return Result{}, err
	}
	return Result{Weights: weights, Losses: losses, Total: total}, nil
}

// sparkPartial is one task's contribution in the Spark job.
type sparkPartial struct {
	grad []float64
	loss float64
	n    int
}

// RunSpark trains with the MLlib structure: broadcast weights, map
// partitions, reduce sub-gradients at the driver, step.
func RunSpark(ctx context.Context, c *sparksim.Cluster, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	weights := make([]float64, cfg.Dims)
	pad := cfg.modeledCompute()
	modelBytes := cfg.Dims * 8

	res := Result{
		Losses:    make([]float64, 0, cfg.Iterations),
		IterTimes: make([]time.Duration, 0, cfg.Iterations),
	}
	scale := c.Config().Profile.Scale
	if scale <= 0 {
		scale = 1
	}
	start := time.Now()
	for iter := 0; iter < cfg.Iterations; iter++ {
		iterStart := time.Now()
		if cfg.SparkStageOverheadMs > 0 {
			d := time.Duration(cfg.SparkStageOverheadMs * float64(time.Millisecond) * cfg.TimeScale)
			if err := netsim.Sleep(ctx, d); err != nil {
				return Result{}, err
			}
		}
		if err := c.Broadcast(ctx, modelBytes); err != nil {
			return Result{}, err
		}
		tasks := make([]sparksim.Task[sparkPartial], cfg.Workers)
		for i := range tasks {
			part := i
			tasks[i] = sparksim.Task[sparkPartial]{
				Compute: time.Duration(float64(pad) / scale),
				Fn: func() (sparkPartial, error) {
					points, labels := cfg.partition(part)
					return sparkPartial{
						grad: ml.SubGradient(points, labels, weights),
						loss: ml.LogisticLoss(points, labels, weights),
						n:    len(points),
					}, nil
				},
			}
		}
		partials, err := sparksim.RunStage(ctx, c, tasks)
		if err != nil {
			return Result{}, err
		}
		merged, err := sparksim.ReduceCollect(ctx, c, partials, modelBytes+16,
			func(a, b sparkPartial) sparkPartial {
				for i := range a.grad {
					a.grad[i] += b.grad[i]
				}
				a.loss += b.loss
				a.n += b.n
				return a
			})
		if err != nil {
			return Result{}, err
		}
		weights = ml.ApplyGradient(weights, merged.grad, cfg.LearningRate, merged.n)
		res.Losses = append(res.Losses, merged.loss/float64(merged.n))
		res.IterTimes = append(res.IterTimes, time.Since(iterStart))
	}
	res.Total = time.Since(start)
	res.Weights = weights
	return res, nil
}

// RunLocal is the reference single-process trainer over the same
// partitioned data (tests use it as ground truth for both engines).
func RunLocal(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	weights := make([]float64, cfg.Dims)
	losses := make([]float64, 0, cfg.Iterations)

	parts := make([][][]float64, cfg.Workers)
	labels := make([][]float64, cfg.Workers)
	total := 0
	for p := 0; p < cfg.Workers; p++ {
		parts[p], labels[p] = cfg.partition(p)
		total += len(parts[p])
	}
	for iter := 0; iter < cfg.Iterations; iter++ {
		grad := make([]float64, cfg.Dims)
		var loss float64
		for p := 0; p < cfg.Workers; p++ {
			g := ml.SubGradient(parts[p], labels[p], weights)
			for i := range grad {
				grad[i] += g[i]
			}
			loss += ml.LogisticLoss(parts[p], labels[p], weights)
		}
		weights = ml.ApplyGradient(weights, grad, cfg.LearningRate, total)
		losses = append(losses, loss/float64(total))
	}
	return Result{Weights: weights, Losses: losses}, nil
}
