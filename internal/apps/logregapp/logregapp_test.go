package logregapp

import (
	"context"
	"math"
	"testing"

	"crucial"
	"crucial/internal/netsim"
	"crucial/internal/sparksim"
)

func testCfg() Config {
	return Config{
		Dims: 6, Workers: 3, Iterations: 6,
		PointsPerWorker: 150, LearningRate: 2.0, Seed: 5,
	}
}

func newRuntime(t *testing.T) *crucial.Runtime {
	t.Helper()
	reg := crucial.NewTypeRegistry()
	RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	crucial.Register(&Worker{})
	return rt
}

func assertClose(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestCrucialMatchesLocal(t *testing.T) {
	cfg := testCfg()
	want, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(t)
	got, err := RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got.Weights, want.Weights, 1e-6, "weights")
	assertClose(t, got.Losses, want.Losses, 1e-6, "losses")
}

func TestSparkMatchesLocal(t *testing.T) {
	cfg := testCfg()
	want, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sparksim.NewCluster(sparksim.Config{
		Workers: 2, CoresPerWorker: 2, Profile: netsim.Zero(), TaskOverheadMs: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSpark(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertClose(t, got.Weights, want.Weights, 1e-6, "weights")
	assertClose(t, got.Losses, want.Losses, 1e-6, "losses")
	if len(got.IterTimes) != cfg.Iterations {
		t.Fatalf("iter times = %d", len(got.IterTimes))
	}
}

func TestLossDecreases(t *testing.T) {
	cfg := testCfg()
	cfg.Iterations = 15
	res, err := RunLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestModelObjectValidation(t *testing.T) {
	if _, err := newModelObject([]any{int64(0), int64(2), 0.5}); err == nil {
		t.Fatal("dims=0 accepted")
	}
	if _, err := newModelObject([]any{int64(2), int64(2), -1.0}); err == nil {
		t.Fatal("negative lr accepted")
	}
}

func TestModelObjectRejectsBadGradient(t *testing.T) {
	obj, err := newModelObject([]any{int64(3), int64(1), 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Call(nil, "Update", []any{[]float64{1}, 0.5, int64(10)}); err == nil {
		t.Fatal("wrong-dim gradient accepted")
	}
}

func TestModelSnapshotRoundTrip(t *testing.T) {
	obj, _ := newModelObject([]any{int64(2), int64(1), 1.0})
	mo := obj.(*modelObject)
	if _, err := mo.Call(nil, "Update", []any{[]float64{1, 2}, 3.0, int64(2)}); err != nil {
		t.Fatal(err)
	}
	data, err := mo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	obj2, _ := newModelObject([]any{int64(1), int64(1), 1.0})
	mo2 := obj2.(*modelObject)
	if err := mo2.Restore(data); err != nil {
		t.Fatal(err)
	}
	res, err := mo2.Call(nil, "Weights", nil)
	if err != nil {
		t.Fatal(err)
	}
	w := res[0].([]float64)
	if len(w) != 2 || w[0] == 0 {
		t.Fatalf("restored weights = %v", w)
	}
	res, _ = mo2.Call(nil, "Losses", nil)
	if len(res[0].([]float64)) != 1 {
		t.Fatalf("restored losses = %v", res[0])
	}
}
