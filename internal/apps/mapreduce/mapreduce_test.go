package mapreduce

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crucial"
	"crucial/internal/netsim"
	"crucial/internal/storage/queuesim"
	"crucial/internal/storage/s3sim"
)

func mrRuntime(t *testing.T) *crucial.Runtime {
	t.Helper()
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func registerTestEnv(t *testing.T, id string, profile *netsim.Profile) {
	t.Helper()
	RegisterEnv(id, &Env{
		S3:    s3sim.New(s3sim.Options{Profile: profile, ListLag: 5 * time.Millisecond}),
		Queue: queuesim.NewQueue(profile),
	})
	t.Cleanup(func() { UnregisterEnv(id) })
}

func TestAllVariantsProduceSamePi(t *testing.T) {
	rt := mrRuntime(t)
	ctx := context.Background()

	var first float64
	for i, v := range Variants() {
		envID := fmt.Sprintf("env-%s", v)
		registerTestEnv(t, envID, netsim.Zero())
		p := Params{
			Threads: 4, Iterations: 8000, Seed: 7,
			EnvID:  envID,
			Prefix: fmt.Sprintf("mr-%s", v),
		}
		res, err := Run(ctx, rt, p, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.Pi < 2.8 || res.Pi > 3.5 {
			t.Fatalf("%s: pi = %v", v, res.Pi)
		}
		if i == 0 {
			first = res.Pi
		} else if res.Pi != first {
			t.Fatalf("%s: pi %v differs from first variant %v (same seed must agree)", v, res.Pi, first)
		}
		if res.Sync < 0 || res.Total <= 0 {
			t.Fatalf("%s: timing %v/%v", v, res.Sync, res.Total)
		}
	}
}

func TestUnknownVariant(t *testing.T) {
	rt := mrRuntime(t)
	_, err := Run(context.Background(), rt, Params{Threads: 1, Prefix: "bad"}, Variant("nope"))
	if err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestMissingEnv(t *testing.T) {
	rt := mrRuntime(t)
	_, err := Run(context.Background(), rt, Params{
		Threads: 1, EnvID: "ghost", Prefix: "ghost",
	}, VariantSQS)
	if err == nil {
		t.Fatal("missing environment accepted")
	}
}

func TestSlowVariantsSlowerThanFutures(t *testing.T) {
	rt := mrRuntime(t)
	ctx := context.Background()

	// Latency-bearing profile so the ordering S3 > Future emerges.
	profile := netsim.Zero()
	profile.S3Put = netsim.Latency{Base: 8 * time.Millisecond}
	profile.S3Get = netsim.Latency{Base: 6 * time.Millisecond}
	profile.S3List = netsim.Latency{Base: 6 * time.Millisecond}
	registerTestEnv(t, "env-order", profile)

	run := func(v Variant) time.Duration {
		t.Helper()
		res, err := Run(ctx, rt, Params{
			Threads: 3, Iterations: 2000, Seed: 3,
			EnvID:  "env-order",
			Prefix: fmt.Sprintf("order-%s", v),
		}, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		return res.Sync
	}
	s3Time := run(VariantS3Polling)
	futTime := run(VariantFuture)
	if s3Time <= futTime {
		t.Fatalf("S3 polling (%v) not slower than futures (%v)", s3Time, futTime)
	}
}

func TestEnvRegistry(t *testing.T) {
	env := &Env{}
	RegisterEnv("x", env)
	got, err := lookupEnv("x")
	if err != nil || got != env {
		t.Fatalf("lookup = %v %v", got, err)
	}
	UnregisterEnv("x")
	if _, err := lookupEnv("x"); err == nil {
		t.Fatal("lookup after unregister succeeded")
	}
}

func TestDecodeCount(t *testing.T) {
	n, err := decodeCount(encodeCount(42))
	if err != nil || n != 42 {
		t.Fatalf("round trip = %d %v", n, err)
	}
	if _, err := decodeCount([]byte("nope")); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestComputeDuration(t *testing.T) {
	p := Params{
		Iterations: 1000, ModeledIterations: 2000,
		PointsPerSecond: 1000, TimeScale: 1,
	}.withDefaults()
	if got := p.computeDuration(); got != time.Second {
		t.Fatalf("computeDuration = %v, want 1s", got)
	}
	p.ModeledIterations = 0
	if got := p.computeDuration(); got != 0 {
		t.Fatalf("computeDuration without modeling = %v", got)
	}
}
