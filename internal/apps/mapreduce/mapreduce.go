// Package mapreduce implements the Fig. 6 experiment: synchronizing the
// map phase of a MapReduce job (the Monte Carlo estimation of Listing 1
// run map-style) with five different techniques:
//
//	(i)   PyWren-style polling over S3-like object storage,
//	(ii)  the same polling over the in-memory grid used as a plain KV
//	      store (the "Infinispan" baseline),
//	(iii) an SQS-like queue,
//	(iv)  Crucial Future objects (one per mapper, blocking Get), and
//	(v)   Crucial auto-reduce: partials aggregated server side, driver
//	      woken by a latch — the reduce phase disappears.
package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"crucial"
	"crucial/internal/apps/montecarlo"
	"crucial/internal/netsim"
	"crucial/internal/storage/queuesim"
	"crucial/internal/storage/s3sim"
)

// Variant selects the synchronization technique.
type Variant string

// The five techniques of Fig. 6.
const (
	VariantS3Polling  Variant = "pywren-s3"
	VariantKVPolling  Variant = "infinispan-poll"
	VariantSQS        Variant = "sqs"
	VariantFuture     Variant = "crucial-future"
	VariantAutoReduce Variant = "crucial-autoreduce"
)

// Variants lists all techniques in presentation order.
func Variants() []Variant {
	return []Variant{
		VariantS3Polling, VariantKVPolling, VariantSQS,
		VariantFuture, VariantAutoReduce,
	}
}

// Env holds the external cloud services a mapper reaches by global
// endpoint (cloud functions address S3/SQS through process-global SDKs;
// the registry below models those global endpoints).
type Env struct {
	S3    *s3sim.Store
	Queue *queuesim.Queue
}

var envs = struct {
	sync.Mutex
	m map[string]*Env
}{m: make(map[string]*Env)}

// RegisterEnv publishes the services under an id referenced by mappers.
func RegisterEnv(id string, env *Env) {
	envs.Lock()
	defer envs.Unlock()
	envs.m[id] = env
}

// UnregisterEnv removes an environment.
func UnregisterEnv(id string) {
	envs.Lock()
	defer envs.Unlock()
	delete(envs.m, id)
}

func lookupEnv(id string) (*Env, error) {
	envs.Lock()
	defer envs.Unlock()
	env, ok := envs.m[id]
	if !ok {
		return nil, fmt.Errorf("mapreduce: unknown environment %q", id)
	}
	return env, nil
}

// Params sizes one run.
type Params struct {
	// Threads mappers, each sampling Iterations points (plus modeled
	// extension, like montecarlo.Params).
	Threads           int
	Iterations        int64
	ModeledIterations int64
	PointsPerSecond   float64
	TimeScale         float64
	Seed              int64
	// EnvID names the registered Env (S3/SQS variants).
	EnvID string
	// Prefix isolates keys between runs.
	Prefix string
	// PollInterval is the modeled pause between storage polls
	// (default 5ms).
	PollInterval time.Duration
}

func (p Params) withDefaults() Params {
	if p.Threads <= 0 {
		p.Threads = 4
	}
	if p.Iterations <= 0 {
		p.Iterations = 5000
	}
	if p.PointsPerSecond <= 0 {
		p.PointsPerSecond = 12_000_000
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Prefix == "" {
		p.Prefix = "mr"
	}
	if p.PollInterval <= 0 {
		p.PollInterval = 5 * time.Millisecond
	}
	return p
}

// computeDuration is the modeled map-phase compute time (identical across
// variants; subtracted out to isolate synchronization time).
func (p Params) computeDuration() time.Duration {
	if p.ModeledIterations <= p.Iterations || p.PointsPerSecond <= 0 {
		return 0
	}
	extra := p.ModeledIterations - p.Iterations
	return time.Duration(float64(extra) / p.PointsPerSecond * float64(time.Second) * p.TimeScale)
}

// Mapper is the map-phase Runnable: sample, then emit through the
// variant's channel.
type Mapper struct {
	P       Params
	Idx     int
	Variant Variant
}

// Run computes the partial count and emits it.
func (m *Mapper) Run(tc *crucial.TC) error {
	ctx := tc.Context()
	p := m.P.withDefaults()
	est := &montecarlo.Estimator{
		P: montecarlo.Params{
			Iterations:        p.Iterations,
			ModeledIterations: p.ModeledIterations,
			PointsPerSecond:   p.PointsPerSecond,
			TimeScale:         p.TimeScale,
			Seed:              p.Seed,
		},
		Idx: m.Idx,
	}
	hits, _, err := estCompute(ctx, est)
	if err != nil {
		return err
	}

	switch m.Variant {
	case VariantS3Polling:
		env, err := lookupEnv(p.EnvID)
		if err != nil {
			return err
		}
		return env.S3.Put(ctx, fmt.Sprintf("%s/part-%04d", p.Prefix, m.Idx), encodeCount(hits))
	case VariantKVPolling:
		cell := crucial.NewKV(fmt.Sprintf("%s/part-%04d", p.Prefix, m.Idx))
		tc.Bind(cell)
		return cell.Put(ctx, encodeCount(hits))
	case VariantSQS:
		env, err := lookupEnv(p.EnvID)
		if err != nil {
			return err
		}
		return env.Queue.Send(ctx, encodeCount(hits))
	case VariantFuture:
		fut := crucial.NewFuture[int64](fmt.Sprintf("%s/fut-%04d", p.Prefix, m.Idx))
		tc.Bind(fut)
		return fut.Set(ctx, hits)
	case VariantAutoReduce:
		counter := crucial.NewAtomicLong(p.Prefix + "/sum")
		latch := crucial.NewCountDownLatch(p.Prefix+"/latch", p.Threads)
		tc.Bind(counter, latch)
		if _, err := counter.AddAndGet(ctx, hits); err != nil {
			return err
		}
		_, err := latch.CountDown(ctx)
		return err
	default:
		return fmt.Errorf("mapreduce: unknown variant %q", m.Variant)
	}
}

// estCompute runs the estimator's sampling without touching its counter.
func estCompute(ctx context.Context, e *montecarlo.Estimator) (int64, int64, error) {
	return e.ComputeOnly(ctx)
}

func encodeCount(v int64) []byte {
	return []byte(strconv.FormatInt(v, 10))
}

func decodeCount(b []byte) (int64, error) {
	v, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mapreduce: bad partial %q: %w", b, err)
	}
	return v, nil
}

// Result of one run.
type Result struct {
	Pi float64
	// Total is the wall-clock of the whole run; Sync is Total minus the
	// (identical, modeled) compute time — the Fig. 6 quantity.
	Total time.Duration
	Sync  time.Duration
}

// Run executes the map phase with the chosen synchronization technique
// and reduces to the pi estimate.
func Run(ctx context.Context, rt *crucial.Runtime, p Params, v Variant) (Result, error) {
	p = p.withDefaults()
	crucial.Register(&Mapper{})

	start := time.Now()
	threads := make([]*crucial.CloudThread, p.Threads)
	for i := range threads {
		threads[i] = rt.NewThread(&Mapper{P: p, Idx: i, Variant: v})
		threads[i].StartCtx(ctx)
	}

	sum, err := collect(ctx, rt, p, v)
	if err != nil {
		return Result{}, err
	}
	if err := crucial.JoinAll(threads); err != nil {
		return Result{}, err
	}
	total := time.Since(start)

	perThread := p.Iterations
	if p.ModeledIterations > perThread {
		perThread = p.ModeledIterations
	}
	points := perThread * int64(p.Threads)
	syncTime := total - p.computeDuration()
	if syncTime < 0 {
		syncTime = 0
	}
	return Result{
		Pi:    4.0 * float64(sum) / float64(points),
		Total: total,
		Sync:  syncTime,
	}, nil
}

// collect implements the driver side of each technique.
func collect(ctx context.Context, rt *crucial.Runtime, p Params, v Variant) (int64, error) {
	poll := time.Duration(float64(p.PollInterval) * p.TimeScale)
	switch v {
	case VariantS3Polling:
		env, err := lookupEnv(p.EnvID)
		if err != nil {
			return 0, err
		}
		// PyWren: poll LIST until every partial shows up (eventual
		// consistency makes this erratic), then GET each one and reduce.
		for {
			keys, err := env.S3.List(ctx, p.Prefix+"/part-")
			if err != nil {
				return 0, err
			}
			if len(keys) >= p.Threads {
				var sum int64
				for _, k := range keys {
					data, err := env.S3.Get(ctx, k)
					if err != nil {
						return 0, err
					}
					n, err := decodeCount(data)
					if err != nil {
						return 0, err
					}
					sum += n
				}
				return sum, nil
			}
			if err := netsim.Sleep(ctx, poll); err != nil {
				return 0, err
			}
		}
	case VariantKVPolling:
		// Same polling pattern against the in-memory grid: faster but
		// still poll-based.
		var sum int64
		for i := 0; i < p.Threads; i++ {
			cell := crucial.NewKV(fmt.Sprintf("%s/part-%04d", p.Prefix, i))
			rt.Bind(cell)
			for {
				data, ok, err := cell.Get(ctx)
				if err != nil {
					return 0, err
				}
				if ok {
					n, err := decodeCount(data)
					if err != nil {
						return 0, err
					}
					sum += n
					break
				}
				if err := netsim.Sleep(ctx, poll); err != nil {
					return 0, err
				}
			}
		}
		return sum, nil
	case VariantSQS:
		env, err := lookupEnv(p.EnvID)
		if err != nil {
			return 0, err
		}
		var sum int64
		received := 0
		for received < p.Threads {
			// One message per receive: SQS's MaxNumberOfMessages default,
			// and the reason the paper finds this technique slowest.
			msgs, err := env.Queue.Receive(ctx, 1)
			if err != nil {
				return 0, err
			}
			for _, msg := range msgs {
				n, err := decodeCount(msg)
				if err != nil {
					return 0, err
				}
				sum += n
				received++
			}
		}
		return sum, nil
	case VariantFuture:
		// Blocking Get: the server responds the moment the result lands.
		var sum int64
		for i := 0; i < p.Threads; i++ {
			fut := crucial.NewFuture[int64](fmt.Sprintf("%s/fut-%04d", p.Prefix, i))
			rt.Bind(fut)
			v, err := fut.Get(ctx)
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum, nil
	case VariantAutoReduce:
		// The reduce already happened in the DSO layer: await the latch,
		// read one number.
		latch := crucial.NewCountDownLatch(p.Prefix+"/latch", p.Threads)
		counter := crucial.NewAtomicLong(p.Prefix + "/sum")
		rt.Bind(latch, counter)
		if err := latch.Await(ctx); err != nil {
			return 0, err
		}
		return counter.Get(ctx)
	default:
		return 0, fmt.Errorf("mapreduce: unknown variant %q", v)
	}
}
