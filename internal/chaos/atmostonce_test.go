package chaos_test

import (
	"context"
	"testing"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// atMostOnceCluster builds a cluster whose first invocation response is
// blackholed: the server executes, the client never hears back, times the
// attempt out and retries the same stamped invocation.
func atMostOnceCluster(t *testing.T, nodes, rf int) (*cluster.Cluster, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New()
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: 7, Telemetry: tel})
	eng.AddRule(chaos.Rule{
		From:    "dso-*",
		To:      "client-*",
		Dir:     chaos.Responses,
		Kind:    server.KindInvoke,
		Faults:  chaos.LinkFaults{Drop: 1},
		MaxHits: 1,
	})
	cl, err := cluster.StartLocal(cluster.Options{
		Nodes:     nodes,
		RF:        rf,
		Chaos:     eng,
		Telemetry: tel,
		ClientRetry: core.RetryPolicy{
			MaxRetries: 20, Backoff: time.Millisecond,
			MaxBackoff: 10 * time.Millisecond, Multiplier: 1.5, Jitter: 0.2,
		},
		ClientAttemptTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, tel
}

func checkMovesOnce(t *testing.T, cl *cluster.Cluster, tel *telemetry.Telemetry, persist bool) {
	t.Helper()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "amo"}
	res, err := c.InvokeObject(ctx, core.Invocation{
		Ref: ref, Method: "AddAndGet", Args: []any{int64(1)}, Persist: persist,
	})
	if err != nil {
		t.Fatalf("AddAndGet after response loss: %v", err)
	}
	if got := res[0].(int64); got != 1 {
		t.Fatalf("AddAndGet = %d, want 1 (the increment must apply exactly once)", got)
	}

	res, err = c.InvokeObject(ctx, core.Invocation{Ref: ref, Method: "Get", Persist: persist})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].(int64); got != 1 {
		t.Fatalf("counter = %d after one increment with a lost response, want exactly 1", got)
	}

	if v := tel.Metrics().Counter(telemetry.MetChaosFramesDropped).Value(); v == 0 {
		t.Error("the blackhole rule never fired — test exercised nothing")
	}
	if v := tel.Metrics().Counter(telemetry.MetServerDedupHits).Value(); v == 0 {
		t.Error("retry was not answered from the dedup window")
	}
}

// TestAtMostOnceBlackholedResponse is the core at-most-once regression: the
// response to the first AddAndGet is dropped in-network, the client retries,
// and the counter still moves exactly once because the server replays the
// cached response instead of re-executing.
func TestAtMostOnceBlackholedResponse(t *testing.T) {
	cl, tel := atMostOnceCluster(t, 1, 1)
	checkMovesOnce(t, cl, tel, false)
}

// TestAtMostOnceReplicatedBlackhole repeats the regression for a persistent
// (SMR, rf=2) object: the retried invocation passes through total-order
// multicast again, and the dedup window — populated on every replica at
// apply time — must stop the second application.
func TestAtMostOnceReplicatedBlackhole(t *testing.T) {
	cl, tel := atMostOnceCluster(t, 2, 2)
	checkMovesOnce(t, cl, tel, true)
}
