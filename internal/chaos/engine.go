// Package chaos is a deterministic, seeded fault-injection engine for the
// DSO stack. It weaves into the system at three seams:
//
//   - the transport: Engine wraps an rpc.Transport and hands each process a
//     named Endpoint whose connections pass every frame through the fault
//     rules — per-link drop, delay, duplication (and, through probabilistic
//     delay, reordering) — plus symmetric and asymmetric partitions that
//     refuse dials and blackhole in-flight frames;
//   - node lifecycle: crash/restart schedules in a Plan drive
//     cluster-level Crash/Restart hooks, exercising failure detection,
//     view changes and state transfer;
//   - the FaaS platform: Engine implements the platform's fault-injector
//     seam, failing invocations and slowing container starts per function.
//
// Determinism: every probabilistic decision draws from one seeded
// math/rand stream guarded by the engine mutex, and GeneratePlan derives a
// fault schedule from a seed alone. Re-running with the same seed replays
// the same plan and the same per-frame dice stream — the interleaving with
// workload goroutines still varies with scheduling, but the fault schedule
// itself is reproducible, which is what a failed nemesis run needs.
//
// Faults operate at frame granularity, never mid-frame: a chaos connection
// cuts the byte stream on rpc frame boundaries (rpc.ParseFrameHeader)
// before rolling the dice, so a dropped request looks to the client
// exactly like a lost datagram — the connection stays usable and the
// multiplexed calls sharing it are unaffected.
//
// Every injected fault increments a chaos.* counter (exported on /metrics
// as crucial_chaos_*_total) and, when a tracer is configured, records a
// chaos.fault marker span tagged with the fault kind and link.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"crucial/internal/rpc"
	"crucial/internal/telemetry"
)

// ErrPartitioned is returned by Dial on a blocked link. Its text contains
// "connection refused" so the DSO client's retryable-error classifier
// treats it like any other transport failure.
var ErrPartitioned = errors.New("chaos: connection refused (link partitioned)")

// Direction selects which flow a rule applies to, classified by the frame
// flags rather than by which side wrote the bytes.
type Direction int

const (
	// Both matches requests and responses.
	Both Direction = iota
	// Requests matches only caller->callee frames.
	Requests
	// Responses matches only callee->caller frames.
	Responses
)

// LinkFaults are the per-frame fault probabilities of one rule. All
// probabilities are in [0, 1].
type LinkFaults struct {
	// Drop blackholes the frame.
	Drop float64
	// Duplicate delivers the frame twice.
	Duplicate float64
	// Delay defers delivery by DelayBy plus a uniform jitter in
	// [0, DelayJitter). Because only some frames are delayed, delay doubles
	// as reordering: an undelayed successor overtakes a delayed frame.
	Delay       float64
	DelayBy     time.Duration
	DelayJitter time.Duration
}

// Rule applies LinkFaults to frames flowing From -> To. Endpoint name
// patterns are an exact name, "*" (any), or a "prefix*" glob such as
// "client-*". The zero Kind matches every message kind; a non-zero Kind
// restricts the rule to that kind (e.g. server.KindInvoke), letting a test
// fault the data plane while leaving membership traffic alone.
type Rule struct {
	From, To string
	Dir      Direction
	Kind     uint8
	Faults   LinkFaults
	// MaxHits, when positive, retires the rule after it has injected that
	// many faults ("drop exactly one response").
	MaxHits int

	hits int
}

// FaaSFaults configures fault injection for one FaaS function.
type FaaSFaults struct {
	// FailProb fails the invocation with the platform's injected-failure
	// error before the handler runs.
	FailProb float64
	// SlowProb stretches container provisioning by SlowBy plus a uniform
	// jitter in [0, SlowJitter), modelling a slow cold start.
	SlowProb   float64
	SlowBy     time.Duration
	SlowJitter time.Duration
	// MaxFaults, when positive, retires the entry after that many
	// injected faults.
	MaxFaults int

	hits int
}

// Options configures an Engine.
type Options struct {
	// Seed fixes the dice stream. The zero seed is replaced by 1 so that
	// the zero Options value is still deterministic.
	Seed int64
	// Telemetry supplies the counter registry and the tracer for
	// chaos.fault marker spans. When nil the engine keeps private
	// counters, still readable through Counts.
	Telemetry *telemetry.Telemetry
}

type link struct{ from, to string }

// Engine owns the fault rules and wraps a transport. All mutators are safe
// for concurrent use with in-flight traffic; rule changes apply to the
// next frame, not retroactively.
type Engine struct {
	mu      sync.Mutex
	rng     *rand.Rand
	inner   rpc.Transport
	rules   []*Rule
	blocked map[link]struct{}
	faas    map[string]*FaaSFaults

	tracer  *telemetry.Tracer
	metrics *telemetry.Registry

	cDropped        *telemetry.Counter
	cDelayed        *telemetry.Counter
	cDuplicated     *telemetry.Counter
	cPartitionDrops *telemetry.Counter
	cDialsRefused   *telemetry.Counter
	cFaaSFaults     *telemetry.Counter
	cFaaSDelays     *telemetry.Counter
	cCrashes        *telemetry.Counter
	cRestarts       *telemetry.Counter
}

// New builds an engine around the given inner transport.
func New(inner rpc.Transport, opts Options) *Engine {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	e := &Engine{
		rng:     rand.New(rand.NewSource(opts.Seed)),
		inner:   inner,
		blocked: make(map[link]struct{}),
		faas:    make(map[string]*FaaSFaults),
		tracer:  opts.Telemetry.Tracer(),
		metrics: opts.Telemetry.Metrics(),
	}
	if e.metrics == nil {
		// Count faults even when uninstrumented so Counts always works.
		e.metrics = telemetry.NewRegistry()
	}
	e.cDropped = e.metrics.Counter(telemetry.MetChaosFramesDropped)
	e.cDelayed = e.metrics.Counter(telemetry.MetChaosFramesDelayed)
	e.cDuplicated = e.metrics.Counter(telemetry.MetChaosFramesDuplicated)
	e.cPartitionDrops = e.metrics.Counter(telemetry.MetChaosPartitionDrops)
	e.cDialsRefused = e.metrics.Counter(telemetry.MetChaosDialsRefused)
	e.cFaaSFaults = e.metrics.Counter(telemetry.MetChaosFaaSFaults)
	e.cFaaSDelays = e.metrics.Counter(telemetry.MetChaosFaaSDelays)
	e.cCrashes = e.metrics.Counter(telemetry.MetChaosCrashes)
	e.cRestarts = e.metrics.Counter(telemetry.MetChaosRestarts)
	return e
}

// Inner returns the wrapped transport (the real network under the chaos
// layer) — deployment glue listens and dials around the engine with it.
func (e *Engine) Inner() rpc.Transport { return e.inner }

// Endpoint returns the transport a process named name should use. Listen
// passes through untouched; Dial enforces partitions and wraps the
// connection so both flows pass through the fault rules. The dialed
// address doubles as the remote endpoint name, which holds throughout the
// repo: node addresses equal node IDs on the in-memory transport, and
// clients dial nodes by address.
func (e *Engine) Endpoint(name string) rpc.Transport {
	return endpoint{e: e, name: name}
}

type endpoint struct {
	e    *Engine
	name string
}

func (ep endpoint) Listen(addr string) (net.Listener, error) {
	return ep.e.inner.Listen(addr)
}

func (ep endpoint) Dial(addr string) (net.Conn, error) {
	e := ep.e
	if e.linkBlocked(ep.name, addr) || e.linkBlocked(addr, ep.name) {
		// Refuse the dial when either flow is blocked: a connection that
		// can send but never hear answers is modelled by per-frame
		// partition drops on established connections, while fresh dials
		// across any partition fail fast like a real refused connection.
		e.cDialsRefused.Inc()
		e.markerSpan("dial_refused", ep.name+"->"+addr)
		return nil, fmt.Errorf("dial %s: %w", addr, ErrPartitioned)
	}
	c, err := e.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newChaosConn(e, ep.name, addr, c), nil
}

// Partition splits the cluster into groups and blocks every link that
// crosses group boundaries, in both directions. Names not listed in any
// group keep full connectivity. Calling Partition again replaces the
// previous partition.
func (e *Engine) Partition(groups ...[]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.blocked = make(map[link]struct{})
	for i, g := range groups {
		for j, h := range groups {
			if i == j {
				continue
			}
			for _, from := range g {
				for _, to := range h {
					e.blocked[link{from, to}] = struct{}{}
				}
			}
		}
	}
}

// PartitionOneWay blocks only the from -> to flow for each pair, creating
// an asymmetric partition: from's frames to to vanish while to can still
// reach from. Unlike Partition it adds to the current blocked set.
func (e *Engine) PartitionOneWay(from, to []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, f := range from {
		for _, t := range to {
			e.blocked[link{f, t}] = struct{}{}
		}
	}
}

// Heal removes every partition. Established connections resume delivering
// frames; refused dials succeed again on retry.
func (e *Engine) Heal() {
	e.mu.Lock()
	e.blocked = make(map[link]struct{})
	e.mu.Unlock()
}

func (e *Engine) linkBlocked(from, to string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.blocked[link{from, to}]
	return ok
}

// AddRule installs a fault rule and returns a function that removes it.
// Rules are consulted in installation order; the first rule matching a
// frame rolls the dice for it.
func (e *Engine) AddRule(r Rule) (remove func()) {
	rp := &r
	e.mu.Lock()
	e.rules = append(e.rules, rp)
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		for i, have := range e.rules {
			if have == rp {
				e.rules = append(e.rules[:i], e.rules[i+1:]...)
				return
			}
		}
	}
}

// ClearRules removes all link-fault rules (partitions are unaffected).
func (e *Engine) ClearRules() {
	e.mu.Lock()
	e.rules = nil
	e.mu.Unlock()
}

// SetFaaSFaults installs fault injection for one function; fn may be a
// "prefix*" glob or "*". A zero FaaSFaults removes the entry.
func (e *Engine) SetFaaSFaults(fn string, f FaaSFaults) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if f == (FaaSFaults{}) {
		delete(e.faas, fn)
		return
	}
	e.faas[fn] = &f
}

// ClearFaaSFaults removes all FaaS fault entries.
func (e *Engine) ClearFaaSFaults() {
	e.mu.Lock()
	e.faas = make(map[string]*FaaSFaults)
	e.mu.Unlock()
}

// Reset heals partitions and clears link and FaaS rules; counters keep
// their values.
func (e *Engine) Reset() {
	e.mu.Lock()
	e.blocked = make(map[link]struct{})
	e.rules = nil
	e.faas = make(map[string]*FaaSFaults)
	e.mu.Unlock()
}

// InvocationFault implements the FaaS platform's injector seam: a non-nil
// error fails the invocation before the handler runs. The returned error
// is nil or faas.ErrInjectedFailure — spelled structurally here because
// chaos must not import faas (the platform imports nothing of chaos
// either; the seam is a plain interface).
func (e *Engine) InvocationFault(fn string) error {
	e.mu.Lock()
	f := e.matchFaaS(fn)
	fault := f != nil && f.FailProb > 0 && e.rng.Float64() < f.FailProb && f.take()
	e.mu.Unlock()
	if !fault {
		return nil
	}
	e.cFaaSFaults.Inc()
	e.markerSpan("faas_failure", fn)
	return errInjectedInvocation
}

// errInjectedInvocation signals the platform to fail the invocation; the
// platform maps it onto its own ErrInjectedFailure accounting.
var errInjectedInvocation = errors.New("chaos: injected invocation failure")

// ContainerDelay implements the injector seam's slow-container leg: the
// returned duration stretches container provisioning for this invocation.
func (e *Engine) ContainerDelay(fn string) time.Duration {
	e.mu.Lock()
	f := e.matchFaaS(fn)
	var d time.Duration
	if f != nil && f.SlowProb > 0 && e.rng.Float64() < f.SlowProb && f.take() {
		d = f.SlowBy
		if f.SlowJitter > 0 {
			d += time.Duration(e.rng.Int63n(int64(f.SlowJitter)))
		}
	}
	e.mu.Unlock()
	if d > 0 {
		e.cFaaSDelays.Inc()
		e.markerSpan("faas_delay", fn)
	}
	return d
}

// matchFaaS returns the fault entry for fn (exact name wins over globs).
// Caller holds e.mu.
func (e *Engine) matchFaaS(fn string) *FaaSFaults {
	if f, ok := e.faas[fn]; ok {
		return f
	}
	for pat, f := range e.faas {
		if pat != fn && matchName(pat, fn) {
			return f
		}
	}
	return nil
}

func (f *FaaSFaults) take() bool {
	if f.MaxFaults > 0 && f.hits >= f.MaxFaults {
		return false
	}
	f.hits++
	return true
}

// NoteCrash records a plan-driven node crash in the counters/trace.
func (e *Engine) NoteCrash(node string) {
	e.cCrashes.Inc()
	e.markerSpan("crash", node)
}

// NoteRestart records a plan-driven node restart.
func (e *Engine) NoteRestart(node string) {
	e.cRestarts.Inc()
	e.markerSpan("restart", node)
}

// Counts is a snapshot of the fault counters.
type Counts struct {
	FramesDropped    uint64
	FramesDelayed    uint64
	FramesDuplicated uint64
	PartitionDrops   uint64
	DialsRefused     uint64
	FaaSFaults       uint64
	FaaSDelays       uint64
	Crashes          uint64
	Restarts         uint64
}

// Total sums every fault class.
func (c Counts) Total() uint64 {
	return c.FramesDropped + c.FramesDelayed + c.FramesDuplicated +
		c.PartitionDrops + c.DialsRefused + c.FaaSFaults + c.FaaSDelays +
		c.Crashes + c.Restarts
}

// Counts snapshots the fault counters.
func (e *Engine) Counts() Counts {
	return Counts{
		FramesDropped:    e.cDropped.Value(),
		FramesDelayed:    e.cDelayed.Value(),
		FramesDuplicated: e.cDuplicated.Value(),
		PartitionDrops:   e.cPartitionDrops.Value(),
		DialsRefused:     e.cDialsRefused.Value(),
		FaaSFaults:       e.cFaaSFaults.Value(),
		FaaSDelays:       e.cFaaSDelays.Value(),
		Crashes:          e.cCrashes.Value(),
		Restarts:         e.cRestarts.Value(),
	}
}

// verdict is the engine's decision for one frame.
type verdict struct {
	drop      bool
	partition bool // drop because of a partition, not a rule
	dup       bool
	delay     time.Duration
}

// frameVerdict rolls the dice for one frame flowing from -> to. Partitions
// take precedence; otherwise the first matching rule decides.
func (e *Engine) frameVerdict(from, to string, meta rpc.FrameMeta) verdict {
	e.mu.Lock()
	if _, ok := e.blocked[link{from, to}]; ok {
		e.mu.Unlock()
		e.cPartitionDrops.Inc()
		e.markerSpan("partition_drop", from+"->"+to)
		return verdict{drop: true, partition: true}
	}
	var v verdict
	var kind string
	for _, r := range e.rules {
		if !r.matches(from, to, meta) {
			continue
		}
		f := r.Faults
		switch {
		case f.Drop > 0 && e.rng.Float64() < f.Drop:
			v.drop = true
			kind = "drop"
		case f.Duplicate > 0 && e.rng.Float64() < f.Duplicate:
			v.dup = true
			kind = "duplicate"
		case f.Delay > 0 && e.rng.Float64() < f.Delay:
			v.delay = f.DelayBy
			if f.DelayJitter > 0 {
				v.delay += time.Duration(e.rng.Int63n(int64(f.DelayJitter)))
			}
			kind = "delay"
		}
		if kind != "" {
			if r.MaxHits > 0 {
				r.hits++
				if r.hits >= r.MaxHits {
					e.removeRuleLocked(r)
				}
			}
		}
		break // first matching rule decides, fault or not
	}
	e.mu.Unlock()
	switch kind {
	case "drop":
		e.cDropped.Inc()
	case "duplicate":
		e.cDuplicated.Inc()
	case "delay":
		e.cDelayed.Inc()
	}
	if kind != "" {
		e.markerSpan(kind, from+"->"+to)
	}
	return v
}

func (e *Engine) removeRuleLocked(rp *Rule) {
	for i, have := range e.rules {
		if have == rp {
			e.rules = append(e.rules[:i], e.rules[i+1:]...)
			return
		}
	}
}

func (r *Rule) matches(from, to string, meta rpc.FrameMeta) bool {
	if !matchName(r.From, from) || !matchName(r.To, to) {
		return false
	}
	if r.Kind != 0 && r.Kind != meta.Kind {
		return false
	}
	switch r.Dir {
	case Requests:
		return meta.IsRequest()
	case Responses:
		return meta.IsResponse()
	}
	return true
}

// matchName matches an endpoint name against an exact name, "*", or a
// trailing-star prefix glob ("client-*").
func matchName(pat, name string) bool {
	if pat == "" || pat == "*" {
		return true
	}
	if strings.HasSuffix(pat, "*") {
		return strings.HasPrefix(name, strings.TrimSuffix(pat, "*"))
	}
	return pat == name
}

// markerSpan records a chaos.fault span so trace dumps show what faults
// the workload survived. Link faults have no invocation context at the
// transport layer, so these are standalone root spans; FaaS faults
// additionally tag the live faas.invoke span in the platform.
func (e *Engine) markerSpan(kind, link string) {
	if e.tracer == nil {
		return
	}
	_, sp := e.tracer.Start(context.Background(), telemetry.SpanChaosFault)
	sp.SetAttr(telemetry.AttrChaos, kind)
	sp.SetAttr(telemetry.AttrChaosLink, link)
	sp.End()
}
