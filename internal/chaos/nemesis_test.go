// Nemesis harness: concurrent counter/map/list workloads run against a
// live cluster while a seeded fault schedule partitions links, drops and
// duplicates frames, and crashes/restarts nodes. Every recorded per-object
// history must be linearizable — the paper's central guarantee must hold
// not just on the happy path but under the full fault model.
//
// The tests live in package chaos_test because they drive the cluster
// package, which itself links the chaos engine in.
package chaos_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/linearizability"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// nemObject is one shared object under test plus its recorded history.
type nemObject struct {
	kind    string // "counter", "map", "list"
	ref     core.Ref
	persist bool
	model   linearizability.Model

	mu      sync.Mutex
	history []linearizability.Operation
}

func (o *nemObject) record(op linearizability.Operation) {
	o.mu.Lock()
	o.history = append(o.history, op)
	o.mu.Unlock()
}

// nemesisOpts parameterizes one nemesis run.
type nemesisOpts struct {
	seed      int64
	workers   int
	ops       int // ops per worker per object
	ephemeral bool
	// cache turns the lease-based client cache on (short TTL, so leases
	// expire and re-grant inside the schedule) — reads are then served
	// from client-local copies and follower replicas, and the histories
	// must STILL be linearizable under every fault in the plan.
	cache bool
	// write turns group commit on: concurrent mutations share ordering
	// rounds (batched payloads, pipelined FINAL acks) and the per-sub-op
	// at-most-once window is the only thing standing between a retried
	// batch and a double-applied counter increment. Histories must stay
	// linearizable with batching under every fault in the plan.
	write bool
	// plan builds the fault schedule from the cluster's node names.
	plan func(nodes []string) chaos.Plan
	// during, when set, runs concurrently with the workload (a second
	// nemesis beyond the fault plan — e.g. a migration driver bouncing a
	// hot object between primaries). It must return when stop closes.
	during func(ctx context.Context, cl *cluster.Cluster, stop <-chan struct{})
}

// nemesisRetry is deliberately generous: a call may straddle several fault
// windows and must outlive all of them.
func nemesisRetry() core.RetryPolicy {
	return core.RetryPolicy{
		MaxRetries: 150,
		Backoff:    time.Millisecond,
		MaxBackoff: 15 * time.Millisecond,
		Multiplier: 1.5,
		Jitter:     0.3,
	}
}

// runNemesis executes the workload under the fault plan and checks every
// object history for linearizability. It returns the engine and telemetry
// for schedule-specific assertions.
func runNemesis(t *testing.T, o nemesisOpts) (*chaos.Engine, *telemetry.Telemetry) {
	t.Helper()
	if o.workers == 0 {
		o.workers = 3
	}
	if o.ops == 0 {
		o.ops = 4
		if testing.Short() {
			o.ops = 3
		}
	}
	tel := telemetry.New()
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: o.seed, Telemetry: tel})
	copts := cluster.Options{
		Nodes:                3,
		RF:                   2,
		Chaos:                eng,
		Telemetry:            tel,
		ClientRetry:          nemesisRetry(),
		ClientAttemptTimeout: 200 * time.Millisecond,
		PeerCallTimeout:      250 * time.Millisecond,
	}
	if o.cache {
		copts.LeaseTTL = 50 * time.Millisecond
		copts.ClientCache = true
	}
	if o.write {
		// Small batches and a short linger so rounds actually coalesce the
		// 3-worker load while still cutting many distinct rounds per window.
		copts.Write = core.WritePolicy{MaxBatch: 8, MaxDelay: time.Millisecond, Pipeline: 2}
	}
	cl, err := cluster.StartLocal(copts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	objs := []*nemObject{
		{kind: "counter", ref: core.Ref{Type: objects.TypeAtomicLong, Key: "nem-counter-p"},
			persist: true, model: linearizability.CounterModel()},
		{kind: "map", ref: core.Ref{Type: objects.TypeMap, Key: "nem-map"},
			persist: true, model: linearizability.MapModel()},
		{kind: "list", ref: core.Ref{Type: objects.TypeList, Key: "nem-list"},
			persist: true, model: linearizability.ListModel()},
	}
	if o.ephemeral {
		// Ephemeral objects live on exactly one node and die with it, so
		// only schedules without crashes may include one.
		objs = append(objs, &nemObject{kind: "counter",
			ref:   core.Ref{Type: objects.TypeAtomicLong, Key: "nem-counter-e"},
			model: linearizability.CounterModel()})
	}

	nodes := make([]string, 0, 3)
	for _, id := range cl.NodeIDs() {
		nodes = append(nodes, string(id))
	}
	plan := o.plan(nodes)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	planDone := make(chan error, 1)
	go func() {
		planDone <- plan.Run(ctx, chaos.Target{
			Engine: eng,
			Crash:  func(n string) error { return cl.CrashNode(ring.NodeID(n)) },
			Restart: func(n string) error {
				_, err := cl.RestartNode(ring.NodeID(n))
				return err
			},
		})
	}()

	stopDuring := make(chan struct{})
	duringDone := make(chan struct{})
	if o.during != nil {
		go func() {
			defer close(duringDone)
			o.during(ctx, cl, stopDuring)
		}()
	} else {
		close(duringDone)
	}

	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := cl.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < o.ops; i++ {
				for _, obj := range objs {
					nemesisOp(t, ctx, conn, obj, w, i)
					time.Sleep(time.Duration(4+(w+i)%5) * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopDuring)
	<-duringDone
	if err := <-planDone; err != nil {
		t.Fatalf("fault plan: %v", err)
	}
	if t.Failed() {
		t.FailNow() // worker errors: histories are incomplete
	}

	for _, obj := range objs {
		obj.mu.Lock()
		history := append([]linearizability.Operation(nil), obj.history...)
		obj.mu.Unlock()
		if _, ok := linearizability.Check(obj.model, history); !ok {
			linearizability.SortByCall(history)
			t.Errorf("%s history (%s) not linearizable under seed %d:\n%+v",
				obj.kind, obj.ref.Key, o.seed, history)
		}
	}
	if total := eng.Counts().Total(); total == 0 {
		t.Error("fault plan injected no faults — the schedule did not engage")
	}
	return eng, tel
}

// nemesisOp issues one operation on obj and records it in the history.
func nemesisOp(t *testing.T, ctx context.Context, conn *client.Client, obj *nemObject, w, i int) {
	var method string
	var args []any
	var input any
	switch obj.kind {
	case "counter":
		if (w+i)%3 == 2 {
			method, input = "Get", linearizability.CounterOp{Kind: "get"}
		} else {
			method = "AddAndGet"
			args = []any{int64(1)}
			input = linearizability.CounterOp{Kind: "add", Delta: 1}
		}
	case "map":
		key := fmt.Sprintf("k%d", i%2)
		switch (w + i) % 3 {
		case 0:
			method = "Put"
			args = []any{key, int64(w*100 + i)}
			input = linearizability.MapOp{Kind: "put", Key: key, Value: int64(w*100 + i)}
		case 1:
			method = "Get"
			args = []any{key}
			input = linearizability.MapOp{Kind: "get", Key: key}
		default:
			method = "Remove"
			args = []any{key}
			input = linearizability.MapOp{Kind: "remove", Key: key}
		}
	case "list":
		if (w+i)%3 == 2 {
			method, input = "Size", linearizability.ListOp{Kind: "size"}
		} else {
			method = "Add"
			args = []any{int64(w*100 + i)}
			input = linearizability.ListOp{Kind: "add", Value: int64(w*100 + i)}
		}
	}

	call := time.Now()
	res, err := conn.InvokeObject(ctx, core.Invocation{
		Ref: obj.ref, Method: method, Args: args, Persist: obj.persist,
	})
	ret := time.Now()
	if err != nil {
		t.Errorf("worker %d %s.%s: %v", w, obj.ref.Key, method, err)
		return
	}
	obj.record(linearizability.Operation{
		ClientID: w,
		Input:    input,
		Output:   nemesisOutput(t, obj.kind, method, res),
		Call:     call,
		Return:   ret,
	})
}

// nemesisOutput converts a raw result slice into the model's output type.
func nemesisOutput(t *testing.T, kind, method string, res []any) any {
	switch kind {
	case "counter", "list":
		v, ok := core.NumberAsInt64(res[0])
		if !ok {
			t.Fatalf("%s.%s returned %T, want integer", kind, method, res[0])
		}
		return v
	case "map":
		had := res[1].(bool)
		out := linearizability.MapOut{OK: had}
		if had {
			v, ok := core.NumberAsInt64(res[0])
			if !ok {
				t.Fatalf("map.%s returned %T, want integer", method, res[0])
			}
			out.Value = v
		}
		return out
	}
	t.Fatalf("unknown object kind %q", kind)
	return nil
}

// spacing returns the fault-window period, shrunk in short mode.
func spacing() time.Duration {
	if testing.Short() {
		return 50 * time.Millisecond
	}
	return 70 * time.Millisecond
}

// windows returns the number of fault windows, shrunk in short mode.
func windows() int {
	if testing.Short() {
		return 2
	}
	return 4
}

// TestNemesisPartition runs the workload under symmetric and asymmetric
// partitions (seed 101). Ephemeral objects are included: no node dies, so
// single-copy state survives.
func TestNemesisPartition(t *testing.T) {
	runNemesis(t, nemesisOpts{
		seed:      101,
		ephemeral: true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				victim := nodes[w%len(nodes)]
				rest := make([]string, 0, len(nodes)-1)
				for _, n := range nodes {
					if n != victim {
						rest = append(rest, n)
					}
				}
				if w%2 == 0 {
					steps = append(steps, chaos.Step{At: at, Kind: chaos.ActPartition,
						Groups: [][]string{{victim}, rest}})
				} else {
					steps = append(steps, chaos.Step{At: at, Kind: chaos.ActPartitionOneWay,
						From: []string{victim}, To: rest})
				}
				steps = append(steps, chaos.Step{At: at + s*3/4, Kind: chaos.ActHeal})
			}
			return chaos.Plan{Steps: steps}
		},
	})
}

// TestNemesisDropDelay runs the workload under probabilistic frame drops
// and delays on every link (seed 202). Delay doubles as reordering.
func TestNemesisDropDelay(t *testing.T) {
	runNemesis(t, nemesisOpts{
		seed:      202,
		ephemeral: true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				r := chaos.Rule{Faults: chaos.LinkFaults{Drop: 0.12}}
				if w%2 == 1 {
					r = chaos.Rule{Faults: chaos.LinkFaults{
						Delay: 0.4, DelayBy: 2 * time.Millisecond, DelayJitter: 4 * time.Millisecond}}
				}
				steps = append(steps,
					chaos.Step{At: at, Kind: chaos.ActRule, Rule: r},
					chaos.Step{At: at + s*3/4, Kind: chaos.ActClearRules})
			}
			return chaos.Plan{Steps: steps}
		},
	})
}

// TestNemesisDuplicate duplicates invocation requests (seed 303): the
// server executes the original and must answer the duplicate from the
// at-most-once window, otherwise counters double-count and the histories
// fail the check.
func TestNemesisDuplicate(t *testing.T) {
	_, tel := runNemesis(t, nemesisOpts{
		seed:      303,
		ephemeral: true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			return chaos.Plan{Steps: []chaos.Step{
				{At: 0, Kind: chaos.ActRule, Rule: chaos.Rule{
					From: "client-*", Dir: chaos.Requests, Kind: server.KindInvoke,
					Faults: chaos.LinkFaults{Duplicate: 0.5}}},
				{At: s * time.Duration(windows()), Kind: chaos.ActClearRules},
			}}
		},
	})
	hits := tel.Metrics().Counter(telemetry.MetServerDedupHits).Value()
	if hits == 0 {
		t.Error("duplicated requests never hit the dedup window")
	}
}

// TestNemesisCrashRestart crashes and restarts nodes (seed 404): crashed
// state must survive on replicas (RF=2) and hand back via state transfer
// when the node rejoins. Persistent objects only — ephemeral state dies
// with its node by design.
func TestNemesisCrashRestart(t *testing.T) {
	runNemesis(t, nemesisOpts{
		seed: 404,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				victim := nodes[1+w%(len(nodes)-1)] // rotate over non-first nodes
				steps = append(steps,
					chaos.Step{At: at, Kind: chaos.ActCrash, Node: victim},
					chaos.Step{At: at + s*3/4, Kind: chaos.ActRestart, Node: victim})
			}
			return chaos.Plan{Steps: steps}
		},
	})
}

// TestNemesisWriteBatchPartition runs the workload with group commit ON
// (seed 505) under the partition schedule: concurrent mutations share
// ordering rounds while partitions isolate the coordinator mid-round, so
// retried writes land in *different* batches than their first attempt and
// only the per-sub-operation at-most-once window keeps them applied once.
// Every history must stay linearizable with batching enabled.
func TestNemesisWriteBatchPartition(t *testing.T) {
	_, tel := runNemesis(t, nemesisOpts{
		seed:      505,
		ephemeral: true,
		write:     true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				victim := nodes[w%len(nodes)]
				rest := make([]string, 0, len(nodes)-1)
				for _, n := range nodes {
					if n != victim {
						rest = append(rest, n)
					}
				}
				steps = append(steps,
					chaos.Step{At: at, Kind: chaos.ActPartition,
						Groups: [][]string{{victim}, rest}},
					chaos.Step{At: at + s*3/4, Kind: chaos.ActHeal})
			}
			return chaos.Plan{Steps: steps}
		},
	})
	if tel.Metrics().Counter(telemetry.MetServerBatches).Value() == 0 {
		t.Error("group commit enabled but no batch round was ever cut")
	}
}

// TestNemesisWriteBatchCrashRestart crashes nodes with group commit ON
// (seed 707): a coordinator may die with batches queued and rounds in
// flight, replicas must converge on the batched state, and the restarted
// node's state transfer must hand back object versions advanced by whole
// batches at a time.
func TestNemesisWriteBatchCrashRestart(t *testing.T) {
	runNemesis(t, nemesisOpts{
		seed:  707,
		write: true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				victim := nodes[1+w%(len(nodes)-1)] // rotate over non-first nodes
				steps = append(steps,
					chaos.Step{At: at, Kind: chaos.ActCrash, Node: victim},
					chaos.Step{At: at + s*3/4, Kind: chaos.ActRestart, Node: victim})
			}
			return chaos.Plan{Steps: steps}
		},
	})
}

// TestNemesisCachePartition runs the workload with the lease-based client
// cache ON (seed 606): reads are served from client-local copies and
// follower replicas while partitions isolate nodes, and one window drops
// every frame reaching the cache-side invalidation listeners — the
// blackholed-invalidation case, where a writer must wait out the lease
// TTL before committing because it cannot reach the holders. The
// histories must stay linearizable throughout; a cache that served one
// stale read would fail the check.
func TestNemesisCachePartition(t *testing.T) {
	_, tel := runNemesis(t, nemesisOpts{
		seed:      606,
		ephemeral: true,
		cache:     true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				if w%2 == 0 {
					victim := nodes[w%len(nodes)]
					rest := make([]string, 0, len(nodes)-1)
					for _, n := range nodes {
						if n != victim {
							rest = append(rest, n)
						}
					}
					steps = append(steps, chaos.Step{At: at, Kind: chaos.ActPartition,
						Groups: [][]string{{victim}, rest}})
				} else {
					// Blackhole invalidations and revocations: nothing from
					// any node reaches any client cache listener.
					steps = append(steps, chaos.Step{At: at, Kind: chaos.ActRule,
						Rule: chaos.Rule{From: "dso-*", To: "cache-client-*",
							Faults: chaos.LinkFaults{Drop: 1}}})
				}
				steps = append(steps,
					chaos.Step{At: at + s*3/4, Kind: chaos.ActHeal},
					chaos.Step{At: at + s*3/4, Kind: chaos.ActClearRules})
			}
			return chaos.Plan{Steps: steps}
		},
	})
	if g := tel.Metrics().Counter(telemetry.MetServerLeaseGrants).Value(); g == 0 {
		t.Error("cache nemesis granted no leases — the cache never engaged")
	}
}

// TestNemesisCacheCrashRestart crashes and restarts nodes with the client
// cache ON (seed 707): leases granted by a primary die with it, and the
// view-change fence on the successor must keep every still-leased cached
// copy consistent until it has provably expired. Persistent objects only.
// The windows are twice as wide as the cache-off schedule's: every view
// change arms a one-TTL write fence, so recovery (rejoin + state
// transfer + fence) takes longer, and RF=2 only tolerates one lost copy
// at a time — crashing the next node before the previous one has caught
// back up would exceed the fault model, not test it.
func TestNemesisCacheCrashRestart(t *testing.T) {
	_, tel := runNemesis(t, nemesisOpts{
		seed:  707,
		cache: true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := 2 * s * time.Duration(w)
				victim := nodes[1+w%(len(nodes)-1)] // rotate over non-first nodes
				steps = append(steps,
					chaos.Step{At: at, Kind: chaos.ActCrash, Node: victim},
					chaos.Step{At: at + s/2, Kind: chaos.ActRestart, Node: victim})
			}
			return chaos.Plan{Steps: steps}
		},
	})
	if g := tel.Metrics().Counter(telemetry.MetServerLeaseGrants).Value(); g == 0 {
		t.Error("cache nemesis granted no leases — the cache never engaged")
	}
}

// TestNemesisMigrationPartition live-migrates the hot persistent counter
// between primaries while partitions land (seed 808): a migration driver
// re-pins the object onto whichever nodes are not its current primary, over
// and over, as the fault plan isolates nodes — so pushes fail mid-flight,
// directive flips race invocations, and clients chase the object through
// ErrRebalancing bounces. Every history must stay linearizable: a migration
// that lost an update, forked the lineage (dual primary), or served a stale
// read through a surviving lease would fail the check.
func TestNemesisMigrationPartition(t *testing.T) {
	hot := core.Ref{Type: objects.TypeAtomicLong, Key: "nem-counter-p"}
	_, tel := runNemesis(t, nemesisOpts{
		seed:      808,
		ephemeral: true,
		plan: func(nodes []string) chaos.Plan {
			s := spacing()
			var steps []chaos.Step
			for w := 0; w < windows(); w++ {
				at := s * time.Duration(w)
				victim := nodes[w%len(nodes)]
				rest := make([]string, 0, len(nodes)-1)
				for _, n := range nodes {
					if n != victim {
						rest = append(rest, n)
					}
				}
				steps = append(steps,
					chaos.Step{At: at, Kind: chaos.ActPartition,
						Groups: [][]string{{victim}, rest}},
					chaos.Step{At: at + s*3/4, Kind: chaos.ActHeal})
			}
			return chaos.Plan{Steps: steps}
		},
		during: func(ctx context.Context, cl *cluster.Cluster, stop <-chan struct{}) {
			for {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				// Re-pin the hot counter onto everyone but its current
				// primary. Failures are expected mid-partition (the push
				// cannot reach the new primary) and must be harmless: the
				// fence lifts, the directive stays put, clients retry.
				set := cl.Dir.View().Place(hot.String(), cl.RF())
				if len(set) > 0 {
					if n, ok := cl.Node(set[0]); ok {
						var targets []ring.NodeID
						for _, id := range cl.NodeIDs() {
							if id != set[0] {
								targets = append(targets, id)
							}
						}
						if len(targets) > cl.RF() {
							targets = targets[:cl.RF()]
						}
						mctx, cancel := context.WithTimeout(ctx, 2*time.Second)
						_ = n.MigrateObject(mctx, hot, targets, false)
						cancel()
					}
				}
				select {
				case <-stop:
					return
				case <-time.After(spacing() / 3):
				}
			}
		},
	})
	if tel.Metrics().Counter(telemetry.MetServerMigrations).Value() == 0 {
		t.Error("no live migration ever completed during the schedule")
	}
}

// TestNemesisCombined drives a generated schedule mixing partitions, link
// faults and crash/restarts (seed 505). GeneratePlan is deterministic, so
// a failure reproduces from the seed alone.
func TestNemesisCombined(t *testing.T) {
	if testing.Short() {
		t.Skip("combined schedule is the long nemesis; short mode runs the focused ones")
	}
	runNemesis(t, nemesisOpts{
		seed: 505,
		plan: func(nodes []string) chaos.Plan {
			return chaos.GeneratePlan(505, chaos.PlanConfig{
				Nodes:        nodes,
				Steps:        6,
				Spacing:      spacing(),
				Partitions:   true,
				LinkFaults:   true,
				CrashRestart: true,
			})
		},
	})
}
