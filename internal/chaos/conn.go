package chaos

import (
	"bytes"
	"io"
	"net"
	"sync"
	"time"

	"crucial/internal/rpc"
)

// chaosConn passes both flows of a dialed connection through the engine's
// fault rules at frame granularity.
//
// Write side (local -> remote): bytes are accumulated until a complete rpc
// frame is available, then the engine rolls the dice per frame. Delivered
// and duplicated frames go to the underlying connection immediately;
// delayed frames are rewritten by a timer; dropped frames vanish. A mutex
// around underlying writes keeps frames atomic even when a delayed frame
// fires concurrently with a fresh write.
//
// Read side (remote -> local): a pump goroutine drains the underlying
// connection continuously, cuts the stream into frames, and pushes the
// survivors into an inbox the Read method serves from. Draining
// continuously is what makes delay work on net.Pipe transports: the remote
// writer unblocks immediately while delivery to the local reader waits in
// the inbox, and an undelayed successor frame can overtake a delayed one
// (reordering).
type chaosConn struct {
	net.Conn
	e             *Engine
	local, remote string

	wmu    sync.Mutex // Write path: splitter + dice
	wsplit splitter
	outMu  sync.Mutex // underlying writes (shared with delay timers)
	werr   error      // first underlying write error (under outMu)

	in inbox
}

func newChaosConn(e *Engine, local, remote string, inner net.Conn) *chaosConn {
	c := &chaosConn{Conn: inner, e: e, local: local, remote: remote}
	c.in.cond = sync.NewCond(&c.in.mu)
	go c.pump()
	return c
}

func (c *chaosConn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	c.wsplit.feed(p)
	for {
		frame, meta, ok := c.wsplit.next()
		if !ok {
			break
		}
		v := c.e.frameVerdict(c.local, c.remote, meta)
		switch {
		case v.drop:
		case v.delay > 0:
			time.AfterFunc(v.delay, func() { c.writeRaw(frame) })
		default:
			c.writeRaw(frame)
			if v.dup {
				c.writeRaw(frame)
			}
		}
	}
	c.wmu.Unlock()

	c.outMu.Lock()
	err := c.werr
	c.outMu.Unlock()
	if err != nil {
		return 0, err
	}
	// Dropped frames still count as written: to the caller a drop is loss
	// inside the network, not a broken connection.
	return len(p), nil
}

func (c *chaosConn) writeRaw(frame []byte) {
	c.outMu.Lock()
	defer c.outMu.Unlock()
	if c.werr != nil {
		return
	}
	if _, err := c.Conn.Write(frame); err != nil {
		c.werr = err
	}
}

func (c *chaosConn) Read(p []byte) (int, error) {
	return c.in.read(p)
}

func (c *chaosConn) pump() {
	buf := make([]byte, 32*1024)
	for {
		n, err := c.Conn.Read(buf)
		if n > 0 {
			c.in.mu.Lock()
			c.rpumpFeed(buf[:n])
			c.in.mu.Unlock()
		}
		if err != nil {
			c.in.fail(err)
			return
		}
	}
}

// rpumpFeed runs under c.in.mu (the pump is the only splitter user, but
// the inbox pushes must be ordered with delayed pushes anyway).
func (c *chaosConn) rpumpFeed(p []byte) {
	c.in.rsplit.feed(p)
	for {
		frame, meta, ok := c.in.rsplit.next()
		if !ok {
			return
		}
		v := c.e.frameVerdict(c.remote, c.local, meta)
		switch {
		case v.drop:
		case v.delay > 0:
			time.AfterFunc(v.delay, func() { c.in.push(frame) })
		default:
			c.in.pushLocked(frame)
			if v.dup {
				c.in.pushLocked(frame)
			}
		}
	}
}

// inbox buffers inbound frames between the pump and Read.
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rsplit splitter
	buf    bytes.Buffer
	err    error
}

func (in *inbox) push(frame []byte) {
	in.mu.Lock()
	in.pushLocked(frame)
	in.mu.Unlock()
}

func (in *inbox) pushLocked(frame []byte) {
	if in.err != nil {
		return // connection already failed; late delayed frames vanish
	}
	in.buf.Write(frame)
	in.cond.Broadcast()
}

func (in *inbox) fail(err error) {
	in.mu.Lock()
	if in.err == nil {
		in.err = err
	}
	in.cond.Broadcast()
	in.mu.Unlock()
}

func (in *inbox) read(p []byte) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for in.buf.Len() == 0 && in.err == nil {
		in.cond.Wait()
	}
	if in.buf.Len() > 0 {
		return in.buf.Read(p)
	}
	if in.err == io.EOF {
		return 0, io.EOF
	}
	return 0, in.err
}

// Close closes the underlying connection; the pump observes the resulting
// read error and fails the inbox, waking any blocked Read.
func (c *chaosConn) Close() error {
	return c.Conn.Close()
}

// splitter reassembles a byte stream into whole rpc frames.
type splitter struct {
	buf []byte
}

func (s *splitter) feed(p []byte) {
	s.buf = append(s.buf, p...)
}

// next pops one complete frame (header + payload) as a fresh copy, safe to
// retain past the next feed.
func (s *splitter) next() ([]byte, rpc.FrameMeta, bool) {
	if len(s.buf) < rpc.FrameHeaderSize {
		return nil, rpc.FrameMeta{}, false
	}
	meta := rpc.ParseFrameHeader(s.buf)
	total := rpc.FrameHeaderSize + meta.PayloadLen
	if len(s.buf) < total {
		return nil, rpc.FrameMeta{}, false
	}
	frame := make([]byte, total)
	copy(frame, s.buf[:total])
	s.buf = s.buf[total:]
	if len(s.buf) == 0 {
		s.buf = nil // let the backing array go once fully drained
	}
	return frame, meta, true
}
