// Kill-everything nemesis: the whole cluster dies at once — no surviving
// replica to state-transfer from — and a fresh cluster restarted over the
// same cold store must serve every acknowledged write. This is the
// durability tier's headline guarantee (DESIGN.md §5h): RF-replication
// tolerates f node failures, the WAL + checkpoint path tolerates all of
// them.
package chaos_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/linearizability"
	"crucial/internal/netsim"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/storage/s3sim"
	"crucial/internal/telemetry"
)

// TestNemesisKillEverything runs three phases over one shared cold store:
//
//  1. A faulted workload (link drops and delays, plus transient storage
//     PUT failures that the WAL flusher must retry through) builds
//     linearizable history on a persistent counter, and a hot-key
//     directive is pinned.
//  2. Blind increments run flat out while the WHOLE cluster is crashed
//     mid-stream. Successes are acked (durable by contract); failures are
//     in doubt — each may or may not have applied before the lights went
//     out.
//  3. A brand-new cluster boots from the cold store alone. The recovered
//     counter must hold every acked write and invent none:
//     acked <= recovered <= acked + in-doubt. The directive must survive,
//     recovery must have replayed WAL records, and a fresh post-recovery
//     workload must itself be linearizable.
func TestNemesisKillEverything(t *testing.T) {
	const seed = 909
	store := s3sim.New(s3sim.Options{Profile: netsim.Zero(), ListLag: -1})
	dur := core.DurabilityPolicy{
		Enabled:          true,
		SyncEvery:        4,
		SnapshotInterval: 150 * time.Millisecond,
		SegmentBytes:     32 << 10,
	}
	tel := telemetry.New()
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: seed, Telemetry: tel})
	c1, err := cluster.StartLocal(cluster.Options{
		Nodes:                3,
		RF:                   2,
		Chaos:                eng,
		Telemetry:            tel,
		ClientRetry:          nemesisRetry(),
		ClientAttemptTimeout: 200 * time.Millisecond,
		PeerCallTimeout:      250 * time.Millisecond,
		Durability:           dur,
		ColdStore:            store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "kill-counter"}
	counter := &nemObject{kind: "counter", ref: ref, persist: true,
		model: linearizability.CounterModel()}

	// ---- Phase 1: faulted workload with recorded history ----------------
	// Link faults on every inter-node and client link, and a transient PUT
	// failure rate on the cold store itself: group-commit flushes must
	// retry through it without acking anything undurable.
	store.SetFaults(s3sim.Faults{PutErrRate: 0.05})
	s := spacing()
	planDone := make(chan error, 1)
	go func() {
		planDone <- chaos.Plan{Steps: []chaos.Step{
			{At: 0, Kind: chaos.ActRule, Rule: chaos.Rule{Faults: chaos.LinkFaults{Drop: 0.1}}},
			{At: s, Kind: chaos.ActClearRules},
			{At: s, Kind: chaos.ActRule, Rule: chaos.Rule{Faults: chaos.LinkFaults{
				Delay: 0.4, DelayBy: 2 * time.Millisecond, DelayJitter: 4 * time.Millisecond}}},
			{At: 2 * s, Kind: chaos.ActClearRules},
		}}.Run(ctx, chaos.Target{Engine: eng})
	}()

	const phase1Workers, phase1Ops = 3, 5
	var phase1Adds atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < phase1Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := c1.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < phase1Ops; i++ {
				if (w+i)%3 != 2 {
					phase1Adds.Add(1)
				}
				nemesisOp(t, ctx, conn, counter, w, i)
				time.Sleep(time.Duration(4+(w+i)%5) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if err := <-planDone; err != nil {
		t.Fatalf("fault plan: %v", err)
	}
	store.SetFaults(s3sim.Faults{})
	if t.Failed() {
		t.FailNow() // phase-1 ops must all succeed; the history is complete
	}
	counter.mu.Lock()
	history := append([]linearizability.Operation(nil), counter.history...)
	counter.mu.Unlock()
	if _, ok := linearizability.Check(counter.model, history); !ok {
		linearizability.SortByCall(history)
		t.Fatalf("pre-kill history not linearizable under seed %d:\n%+v", seed, history)
	}
	if eng.Counts().Total() == 0 {
		t.Error("fault plan injected no faults — the schedule did not engage")
	}

	// Pin the counter off its hash placement and let a checkpoint capture
	// both the pin and the phase-1 state (two snapshot intervals).
	ids := c1.NodeIDs()
	pin := []ring.NodeID{ids[len(ids)-1], ids[0]}
	c1.Dir.SetDirective(ref.String(), pin)
	time.Sleep(2 * dur.SnapshotInterval)

	// ---- Phase 2: kill everything mid-workload --------------------------
	var acked, inDoubt atomic.Int64
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := c1.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
				_, err := conn.InvokeObject(cctx, core.Invocation{
					Ref: ref, Method: "AddAndGet", Args: []any{int64(1)}, Persist: true,
				})
				ccancel()
				if err != nil {
					// In doubt: the crash may have landed between apply+WAL
					// flush and the ack. One count per issued-but-unacked op
					// keeps the recovery upper bound exact.
					inDoubt.Add(1)
					return
				}
				acked.Add(1)
			}
		}()
	}
	time.Sleep(80 * time.Millisecond)
	if err := c1.Close(); err != nil {
		t.Fatalf("kill everything: %v", err)
	}
	close(stop)
	wg.Wait()
	if acked.Load() == 0 {
		t.Fatal("no phase-2 write was acked before the kill; the kill landed too early to test anything")
	}

	// ---- Phase 3: restart from the cold store alone ---------------------
	tel2 := telemetry.New()
	c2, err := cluster.StartLocal(cluster.Options{
		Nodes: 3, RF: 2, Telemetry: tel2, Durability: dur, ColdStore: store,
	})
	if err != nil {
		t.Fatalf("restart from cold store: %v", err)
	}
	defer c2.Close()
	conn, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := conn.InvokeObject(ctx, core.Invocation{Ref: ref, Method: "Get", Persist: true})
	if err != nil {
		t.Fatalf("read recovered counter: %v", err)
	}
	recovered := res[0].(int64)
	min := phase1Adds.Load() + acked.Load()
	max := min + inDoubt.Load()
	if recovered < min {
		t.Fatalf("recovered counter = %d, below the %d acked writes: durability lost data", recovered, min)
	}
	if recovered > max {
		t.Fatalf("recovered counter = %d > %d acked + %d in doubt: recovery invented writes (replay not idempotent)",
			recovered, min, inDoubt.Load())
	}
	if v := tel2.Metrics().Counter(telemetry.MetWALReplays).Value(); v == 0 {
		t.Error("recovery replayed no WAL records: the phase-2 tail came from nowhere")
	}
	targets, ok := c2.Dir.View().Directives.Lookup(ref.String())
	if !ok || len(targets) != 2 || targets[0] != pin[0] || targets[1] != pin[1] {
		t.Errorf("directive pin did not survive the full-cluster crash: got %v, want %v", targets, pin)
	}

	// The recovered cluster must itself be consistent under load: a fresh
	// post-recovery history (new object, so the model starts at zero).
	after := &nemObject{kind: "counter", persist: true,
		ref:   core.Ref{Type: objects.TypeAtomicLong, Key: "post-recovery"},
		model: linearizability.CounterModel()}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wconn, err := c2.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			defer wconn.Close()
			for i := 0; i < 4; i++ {
				nemesisOp(t, ctx, wconn, after, w, i)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	after.mu.Lock()
	history = append([]linearizability.Operation(nil), after.history...)
	after.mu.Unlock()
	if _, ok := linearizability.Check(after.model, history); !ok {
		linearizability.SortByCall(history)
		t.Errorf("post-recovery history not linearizable:\n%+v", history)
	}
}
