package chaos_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/faas"
	"crucial/internal/rpc"
)

// The chaos engine must plug into the FaaS platform's injector seam
// structurally — neither package imports the other outside of tests.
var _ faas.Injector = (*chaos.Engine)(nil)

// TestEngineDrivesFaaSPlatform runs the engine as the platform's injector:
// scheduled invocation faults surface as ErrInjectedFailure, slow-container
// delays stretch execution, and both drain once MaxFaults is hit.
func TestEngineDrivesFaaSPlatform(t *testing.T) {
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: 42})
	p := faas.NewPlatform(faas.Options{Injector: eng})
	if err := p.Deploy("sq", func(_ context.Context, in []byte) ([]byte, error) {
		return in, nil
	}, faas.FunctionConfig{}); err != nil {
		t.Fatal(err)
	}

	eng.SetFaaSFaults("sq", chaos.FaaSFaults{FailProb: 1, MaxFaults: 2})
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(context.Background(), "sq", nil); !errors.Is(err, faas.ErrInjectedFailure) {
			t.Fatalf("invocation %d: err = %v, want ErrInjectedFailure", i, err)
		}
	}
	if out, err := p.Invoke(context.Background(), "sq", []byte("ok")); err != nil || string(out) != "ok" {
		t.Fatalf("after MaxFaults drained: %q, %v", out, err)
	}
	if got := eng.Counts().FaaSFaults; got != 2 {
		t.Fatalf("engine counted %d faas faults, want 2", got)
	}
	if got := p.Metrics().Counter("faas.failures.by_fn.sq").Value(); got != 2 {
		t.Fatalf("per-function failure counter = %d, want 2", got)
	}

	eng.SetFaaSFaults("sq", chaos.FaaSFaults{SlowProb: 1, SlowBy: 5 * time.Millisecond, MaxFaults: 1})
	start := time.Now()
	if _, err := p.Invoke(context.Background(), "sq", nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("slow-container delay was not applied")
	}
	if got := eng.Counts().FaaSDelays; got != 1 {
		t.Fatalf("engine counted %d faas delays, want 1", got)
	}
}
