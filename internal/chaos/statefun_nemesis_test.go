// Stateful-functions nemesis: the exactly-once-visible contract of
// DESIGN.md §5i checked end to end through every prior subsystem at
// once — messages pushed through the at-most-once write path with group
// commit on, drained by a dispatch engine over lease-cached reads,
// handler effects (state + forwards) committed atomically, everything
// WAL-logged — while links fault and then the WHOLE cluster is killed
// mid-stream and restarted from cold storage. No acked message may be
// lost, no message may be applied twice, and every applied message must
// be forwarded downstream exactly once.
package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/netsim"
	"crucial/internal/rpc"
	"crucial/internal/statefun"
	"crucial/internal/storage/s3sim"
	"crucial/internal/telemetry"
)

// sfMsg is the message body senders push at accumulator instances: the
// sending stream's identity and its per-stream counter.
type sfMsg struct {
	Sender string
	K      uint64
}

// sfAccState is an accumulator instance's private state: per-stream
// high-water marks, the total applied, and a double-apply counter that
// must stay zero.
type sfAccState struct {
	Applied map[string]uint64
	Count   int64
	Dups    int64
}

// sfSinkState is the sink instance's private state: per-source message
// counts (each accumulator forwards every applied message here).
type sfSinkState struct {
	BySource map[string]int64
	Count    int64
}

// sfHandlers builds the handler set shared by the pre- and post-crash
// engines. The accumulator records each message in state and forwards it
// to the sink in the same atomic commit; the sink counts per source.
func sfHandlers(t *testing.T) *statefun.HandlerSet {
	t.Helper()
	hs := statefun.NewHandlerSet()
	if err := hs.Register("acc", func(c *statefun.Ctx, m statefun.Msg) error {
		var body sfMsg
		if err := m.Body(&body); err != nil {
			return err
		}
		var st sfAccState
		if _, err := c.State(&st); err != nil {
			return err
		}
		if st.Applied == nil {
			st.Applied = make(map[string]uint64)
		}
		if body.K <= st.Applied[body.Sender] {
			// A message applied twice: the exactly-once violation this
			// whole test exists to catch.
			st.Dups++
		} else {
			st.Applied[body.Sender] = body.K
			st.Count++
			if err := c.Send(statefun.Address{FnType: "sink", ID: "s"}, "fwd",
				sfMsg{Sender: c.Self().ID, K: body.K}); err != nil {
				return err
			}
		}
		return c.SetState(st)
	}); err != nil {
		t.Fatal(err)
	}
	if err := hs.Register("sink", func(c *statefun.Ctx, m statefun.Msg) error {
		var body sfMsg
		if err := m.Body(&body); err != nil {
			return err
		}
		var st sfSinkState
		if _, err := c.State(&st); err != nil {
			return err
		}
		if st.BySource == nil {
			st.BySource = make(map[string]int64)
		}
		st.BySource[body.Sender]++
		st.Count++
		return c.SetState(st)
	}); err != nil {
		t.Fatal(err)
	}
	return hs
}

// sfEngine starts a dispatch engine (with its own client) over clu.
func sfEngine(t *testing.T, clu *cluster.Cluster, hs *statefun.HandlerSet) (*statefun.Engine, func()) {
	t.Helper()
	conn, err := clu.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	proc := statefun.NewProc(conn, hs, statefun.ProcOptions{})
	eng := statefun.NewEngine(statefun.EngineConfig{
		Invoker:      conn,
		Runner:       proc,
		Workers:      4,
		PollInterval: 2 * time.Millisecond,
	})
	return eng, func() {
		eng.Close()
		_ = conn.Close()
	}
}

// TestNemesisStatefunKillEverything runs three phases over one cold
// store:
//
//  1. Sender streams push messages at accumulator instances through link
//     drops and delays; a dispatch engine drains them concurrently.
//  2. The whole cluster is killed mid-stream. Each stream stops at its
//     first error: everything acked before it is durable by contract,
//     the failed push is in doubt (≤1 per stream).
//  3. A fresh cluster boots from the cold store, a fresh engine drains
//     every queue and outbox dry, and the books must balance: per
//     (stream, instance) acked ≤ applied ≤ acked + in-doubt, zero
//     double-applies, and the sink holds exactly one forward per
//     applied message.
func TestNemesisStatefunKillEverything(t *testing.T) {
	const seed = 1010
	const accInstances = 3
	const streams = 2 // sender goroutines, each touching every instance
	store := s3sim.New(s3sim.Options{Profile: netsim.Zero(), ListLag: -1})
	dur := core.DurabilityPolicy{
		Enabled:          true,
		SyncEvery:        4,
		SnapshotInterval: 150 * time.Millisecond,
		SegmentBytes:     32 << 10,
	}
	tel := telemetry.New()
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: seed, Telemetry: tel})
	c1, err := cluster.StartLocal(cluster.Options{
		Nodes:                3,
		RF:                   2,
		Chaos:                eng,
		Telemetry:            tel,
		ClientRetry:          nemesisRetry(),
		ClientAttemptTimeout: 200 * time.Millisecond,
		PeerCallTimeout:      250 * time.Millisecond,
		LeaseTTL:             150 * time.Millisecond,
		ClientCache:          true,
		Write:                core.DefaultWritePolicy(),
		Durability:           dur,
		ColdStore:            store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	hs := sfHandlers(t)
	_, stopEngine1 := sfEngine(t, c1, hs)

	// ---- Phase 1+2: faulted sender streams, then kill everything --------
	// acked[stream][inst] counts pushes acked before the stream stopped;
	// inDoubt[stream][inst] is 1 when the stream died on that instance.
	// A push under active link faults can legitimately take seconds
	// (each dropped frame costs an attempt timeout), so streams get
	// generous per-op timeouts and only a hard error — retry budget
	// exhausted, which is what the cluster kill produces — stops them.
	acked := make([][]uint64, streams)
	inDoubt := make([][]uint64, streams)
	var ackedTotal atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < streams; w++ {
		acked[w] = make([]uint64, accInstances)
		inDoubt[w] = make([]uint64, accInstances)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := c1.NewClient()
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			sender := statefun.NewSender(conn, fmt.Sprintf("stream-%d", w), 0)
			for k := uint64(1); ; k++ {
				for i := 0; i < accInstances; i++ {
					select {
					case <-stop:
						return
					default:
					}
					to := statefun.Address{FnType: "acc", ID: fmt.Sprintf("a%d", i)}
					body, err := statefun.EncodeBody(sfMsg{Sender: sender.From(), K: k})
					if err != nil {
						t.Error(err)
						return
					}
					cctx, ccancel := context.WithTimeout(ctx, 20*time.Second)
					err = sender.Send(cctx, to, "add", body, "")
					ccancel()
					switch {
					case err == nil:
						acked[w][i] = k
						ackedTotal.Add(1)
					case errors.Is(err, statefun.ErrMailboxFull):
						// Backpressure: rejected, not in doubt. The K
						// value is skipped for this instance (gaps are
						// fine — Applied tracks the max).
					default:
						// In doubt: the push may or may not have landed
						// before the lights went out. Stop the stream so
						// at most one message per (stream, instance) is
						// unaccounted.
						inDoubt[w][i] = 1
						return
					}
					time.Sleep(time.Duration(1+(w+int(k))%3) * time.Millisecond)
				}
			}
		}(w)
	}

	// Fault windows are paced by acked progress, not wall clock, so each
	// rule is guaranteed to see real traffic: drops while the first batch
	// flows, delays while the second flows, then a clean stretch so the
	// kill lands on a cluster that is healthy but mid-stream.
	waitAcked := func(target int64) {
		dl := time.Now().Add(30 * time.Second)
		for ackedTotal.Load() < target && time.Now().Before(dl) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	eng.AddRule(chaos.Rule{Faults: chaos.LinkFaults{Drop: 0.08}})
	waitAcked(8)
	eng.ClearRules()
	eng.AddRule(chaos.Rule{Faults: chaos.LinkFaults{
		Delay: 0.4, DelayBy: 2 * time.Millisecond, DelayJitter: 4 * time.Millisecond}})
	waitAcked(16)
	eng.ClearRules()
	waitAcked(30)
	if ackedTotal.Load() == 0 {
		t.Fatal("no push was acked before the kill; nothing to test")
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("kill everything: %v", err)
	}
	close(stop)
	wg.Wait()
	stopEngine1()
	if t.Failed() {
		t.FailNow()
	}
	if eng.Counts().Total() == 0 {
		t.Error("fault plan injected no faults — the schedule did not engage")
	}

	// ---- Phase 3: restart from the cold store, drain, audit -------------
	tel2 := telemetry.New()
	c2, err := cluster.StartLocal(cluster.Options{
		Nodes: 3, RF: 2, Telemetry: tel2,
		LeaseTTL: 150 * time.Millisecond, ClientCache: true,
		Write: core.DefaultWritePolicy(), Durability: dur, ColdStore: store,
	})
	if err != nil {
		t.Fatalf("restart from cold store: %v", err)
	}
	defer c2.Close()
	_, stopEngine2 := sfEngine(t, c2, hs)
	defer stopEngine2()

	conn, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Wait until every queue and outbox is dry.
	addrs := make([]statefun.Address, 0, accInstances+1)
	for i := 0; i < accInstances; i++ {
		addrs = append(addrs, statefun.Address{FnType: "acc", ID: fmt.Sprintf("a%d", i)})
	}
	addrs = append(addrs, statefun.Address{FnType: "sink", ID: "s"})
	deadline := time.Now().Add(45 * time.Second)
	for {
		dry := true
		for _, a := range addrs {
			st, err := statefun.StatusOf(ctx, conn, a, 0)
			if err != nil || st.QueueLen > 0 || st.OutboxLen > 0 {
				dry = false
				break
			}
		}
		if dry {
			break
		}
		if time.Now().After(deadline) {
			for _, a := range addrs {
				st, err := statefun.StatusOf(ctx, conn, a, 0)
				t.Logf("stuck %s: %+v err=%v", a, st, err)
			}
			t.Fatal("queues/outboxes did not drain after recovery")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v := tel2.Metrics().Counter(telemetry.MetWALReplays).Value(); v == 0 {
		t.Error("recovery replayed no WAL records: the recovered mailboxes came from nowhere")
	}

	// Audit the books. Per (stream, instance): everything acked must be
	// applied (durability), and at most the one in-doubt message beyond
	// that (no invented messages). Double-applies must be zero.
	var totalApplied int64
	for i := 0; i < accInstances; i++ {
		a := statefun.Address{FnType: "acc", ID: fmt.Sprintf("a%d", i)}
		var st sfAccState
		ok, err := statefun.StateOf(ctx, conn, a, 0, &st)
		if err != nil || !ok {
			t.Fatalf("read %s state: ok=%v err=%v", a, ok, err)
		}
		if st.Dups != 0 {
			t.Errorf("%s applied %d messages twice", a, st.Dups)
		}
		for w := 0; w < streams; w++ {
			stream := fmt.Sprintf("stream-%d", w)
			applied := st.Applied[stream]
			if applied < acked[w][i] {
				t.Errorf("%s lost acked messages from %s: applied max %d < acked %d",
					a, stream, applied, acked[w][i])
			}
			if applied > acked[w][i]+inDoubt[w][i] {
				t.Errorf("%s has more from %s than acked+in-doubt: %d > %d+%d",
					a, stream, applied, acked[w][i], inDoubt[w][i])
			}
		}
		totalApplied += st.Count
	}
	var sink sfSinkState
	ok, err := statefun.StateOf(ctx, conn, statefun.Address{FnType: "sink", ID: "s"}, 0, &sink)
	if err != nil || !ok {
		t.Fatalf("read sink state: ok=%v err=%v", ok, err)
	}
	if sink.Count != totalApplied {
		t.Errorf("sink got %d forwards, sources applied %d: outbox delivery not exactly-once",
			sink.Count, totalApplied)
	}
	for i := 0; i < accInstances; i++ {
		a := statefun.Address{FnType: "acc", ID: fmt.Sprintf("a%d", i)}
		var st sfAccState
		if _, err := statefun.StateOf(ctx, conn, a, 0, &st); err != nil {
			t.Fatal(err)
		}
		if got := sink.BySource[a.ID]; got != st.Count {
			t.Errorf("sink counted %d from %s, source applied %d", got, a, st.Count)
		}
	}
}
