package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// ActionKind enumerates what a plan step does.
type ActionKind int

const (
	// ActPartition installs a symmetric partition (Step.Groups).
	ActPartition ActionKind = iota
	// ActPartitionOneWay blocks only Step.From -> Step.To.
	ActPartitionOneWay
	// ActHeal removes every partition.
	ActHeal
	// ActRule installs a link-fault rule (Step.Rule).
	ActRule
	// ActClearRules removes all link-fault rules.
	ActClearRules
	// ActCrash crashes Step.Node via the target's Crash hook.
	ActCrash
	// ActRestart restarts Step.Node via the target's Restart hook.
	ActRestart
	// ActFaaS installs FaaS faults for Step.Fn (Step.FaaS).
	ActFaaS
	// ActReset heals partitions and clears link and FaaS rules.
	ActReset
)

var actionNames = map[ActionKind]string{
	ActPartition:       "partition",
	ActPartitionOneWay: "partition-one-way",
	ActHeal:            "heal",
	ActRule:            "rule",
	ActClearRules:      "clear-rules",
	ActCrash:           "crash",
	ActRestart:         "restart",
	ActFaaS:            "faas",
	ActReset:           "reset",
}

// Step is one scheduled action of a plan.
type Step struct {
	// At is the offset from plan start at which the step fires.
	At   time.Duration
	Kind ActionKind

	Groups   [][]string // ActPartition
	From, To []string   // ActPartitionOneWay
	Rule     Rule       // ActRule
	Node     string     // ActCrash, ActRestart
	Fn       string     // ActFaaS
	FaaS     FaaSFaults // ActFaaS
}

// String renders the step for logs and determinism tests.
func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", s.At, actionNames[s.Kind])
	switch s.Kind {
	case ActPartition:
		fmt.Fprintf(&b, " %v", s.Groups)
	case ActPartitionOneWay:
		fmt.Fprintf(&b, " %v->%v", s.From, s.To)
	case ActRule:
		fmt.Fprintf(&b, " %s->%s drop=%.2f dup=%.2f delay=%.2f/%s",
			s.Rule.From, s.Rule.To, s.Rule.Faults.Drop,
			s.Rule.Faults.Duplicate, s.Rule.Faults.Delay, s.Rule.Faults.DelayBy)
	case ActCrash, ActRestart:
		fmt.Fprintf(&b, " %s", s.Node)
	case ActFaaS:
		fmt.Fprintf(&b, " %s fail=%.2f slow=%.2f", s.Fn, s.FaaS.FailProb, s.FaaS.SlowProb)
	}
	return b.String()
}

// Plan is a timed fault schedule. Steps must be ordered by At; Run fires
// them relative to the moment it is called.
type Plan struct {
	Steps []Step
}

// String renders one step per line — two plans generated from the same
// seed render identically, which the determinism test pins.
func (p Plan) String() string {
	lines := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		lines[i] = s.String()
	}
	return strings.Join(lines, "\n")
}

// Target is what a plan acts on. Crash and Restart may be nil when the
// plan contains no lifecycle steps.
type Target struct {
	Engine  *Engine
	Crash   func(node string) error
	Restart func(node string) error
}

// Run fires the plan's steps at their offsets. It returns early on ctx
// cancellation or on the first Crash/Restart hook error; rule and
// partition steps cannot fail.
func (p Plan) Run(ctx context.Context, t Target) error {
	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for _, s := range p.Steps {
		if wait := s.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := applyStep(s, t); err != nil {
			return fmt.Errorf("chaos: step %q: %w", s.String(), err)
		}
	}
	return nil
}

func applyStep(s Step, t Target) error {
	e := t.Engine
	switch s.Kind {
	case ActPartition:
		e.Partition(s.Groups...)
	case ActPartitionOneWay:
		e.PartitionOneWay(s.From, s.To)
	case ActHeal:
		e.Heal()
	case ActRule:
		e.AddRule(s.Rule)
	case ActClearRules:
		e.ClearRules()
	case ActCrash:
		if t.Crash == nil {
			return fmt.Errorf("no crash hook")
		}
		if err := t.Crash(s.Node); err != nil {
			return err
		}
		e.NoteCrash(s.Node)
	case ActRestart:
		if t.Restart == nil {
			return fmt.Errorf("no restart hook")
		}
		if err := t.Restart(s.Node); err != nil {
			return err
		}
		e.NoteRestart(s.Node)
	case ActFaaS:
		e.SetFaaSFaults(s.Fn, s.FaaS)
	case ActReset:
		e.Reset()
	}
	return nil
}

// PlanConfig parameterizes GeneratePlan.
type PlanConfig struct {
	// Nodes are the cluster node names faults target.
	Nodes []string
	// Steps is the number of fault windows to generate.
	Steps int
	// Spacing is the period of one fault window: the fault fires at the
	// window start and reverts three quarters in, leaving a healthy gap
	// before the next window so the workload keeps making progress.
	Spacing time.Duration
	// Fault-class toggles. At least one must be set.
	Partitions   bool
	LinkFaults   bool
	CrashRestart bool
	FaaS         bool
	// FaaSFunctions are the function names FaaS fault steps target
	// (required when FaaS is set).
	FaaSFunctions []string
}

// GeneratePlan derives a fault schedule deterministically from the seed:
// the same seed and config always produce the identical step list. Every
// generated window reverts its own fault (heal, clear-rules, restart)
// before the next begins, at most one node is down at any time, and the
// plan ends fully healed.
func GeneratePlan(seed int64, cfg PlanConfig) Plan {
	rng := rand.New(rand.NewSource(seed))
	var classes []ActionKind
	if cfg.Partitions {
		classes = append(classes, ActPartition)
	}
	if cfg.LinkFaults {
		classes = append(classes, ActRule)
	}
	if cfg.CrashRestart {
		classes = append(classes, ActCrash)
	}
	if cfg.FaaS {
		classes = append(classes, ActFaaS)
	}
	if len(classes) == 0 || cfg.Steps <= 0 || len(cfg.Nodes) == 0 {
		return Plan{}
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 50 * time.Millisecond
	}

	var steps []Step
	for i := 0; i < cfg.Steps; i++ {
		at := cfg.Spacing * time.Duration(i)
		revert := at + cfg.Spacing*3/4
		switch classes[rng.Intn(len(classes))] {
		case ActPartition:
			node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			rest := without(cfg.Nodes, node)
			if rng.Float64() < 0.5 || len(rest) == 0 {
				steps = append(steps,
					Step{At: at, Kind: ActPartition, Groups: [][]string{{node}, rest}},
					Step{At: revert, Kind: ActHeal})
			} else {
				steps = append(steps,
					Step{At: at, Kind: ActPartitionOneWay, From: []string{node}, To: rest},
					Step{At: revert, Kind: ActHeal})
			}
		case ActRule:
			r := Rule{From: "*", To: "*"}
			switch rng.Intn(3) {
			case 0:
				r.Faults.Drop = 0.05 + rng.Float64()*0.15
			case 1:
				r.Faults.Duplicate = 0.1 + rng.Float64()*0.2
			case 2:
				r.Faults.Delay = 0.2 + rng.Float64()*0.3
				r.Faults.DelayBy = time.Duration(1+rng.Intn(4)) * time.Millisecond
				r.Faults.DelayJitter = 2 * time.Millisecond
			}
			steps = append(steps,
				Step{At: at, Kind: ActRule, Rule: r},
				Step{At: revert, Kind: ActClearRules})
		case ActCrash:
			node := cfg.Nodes[rng.Intn(len(cfg.Nodes))]
			steps = append(steps,
				Step{At: at, Kind: ActCrash, Node: node},
				Step{At: revert, Kind: ActRestart, Node: node})
		case ActFaaS:
			fn := cfg.FaaSFunctions[rng.Intn(len(cfg.FaaSFunctions))]
			f := FaaSFaults{FailProb: 0.1 + rng.Float64()*0.2}
			if rng.Float64() < 0.5 {
				f.SlowProb = 0.2
				f.SlowBy = time.Duration(1+rng.Intn(3)) * time.Millisecond
			}
			steps = append(steps,
				Step{At: at, Kind: ActFaaS, Fn: fn, FaaS: f},
				Step{At: revert, Kind: ActFaaS, Fn: fn}) // zero FaaSFaults removes
		}
	}
	// Belt and braces: end in the fully healed state even if a future
	// editor reorders windows.
	steps = append(steps, Step{At: cfg.Spacing * time.Duration(cfg.Steps), Kind: ActReset})
	return Plan{Steps: steps}
}

func without(names []string, drop string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}
