package chaos

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"crucial/internal/rpc"
	"crucial/internal/telemetry"
)

const (
	flagRequest  = 0x01 // mirrors rpc's unexported frame flags
	flagResponse = 0x02
)

// makeFrame builds one wire frame: header (len, id, kind, flags) + payload.
func makeFrame(id uint64, kind, flags uint8, payload []byte) []byte {
	buf := make([]byte, rpc.FrameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(buf[4:12], id)
	buf[12] = kind
	buf[13] = flags
	copy(buf[rpc.FrameHeaderSize:], payload)
	return buf
}

func TestSplitterReassemblesFragments(t *testing.T) {
	f1 := makeFrame(1, 7, flagRequest, []byte("hello"))
	f2 := makeFrame(2, 8, flagResponse, nil)
	stream := append(append([]byte{}, f1...), f2...)

	var s splitter
	var got [][]byte
	// Feed one byte at a time: worst-case fragmentation.
	for _, b := range stream {
		s.feed([]byte{b})
		for {
			frame, meta, ok := s.next()
			if !ok {
				break
			}
			if int(meta.PayloadLen) != len(frame)-rpc.FrameHeaderSize {
				t.Fatalf("meta payload %d, frame payload %d", meta.PayloadLen, len(frame)-rpc.FrameHeaderSize)
			}
			got = append(got, frame)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d frames, want 2", len(got))
	}
	if string(got[0]) != string(f1) || string(got[1]) != string(f2) {
		t.Fatal("frames corrupted by fragmentation")
	}
}

func TestMatchName(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"", "anything", true},
		{"*", "anything", true},
		{"dso-01", "dso-01", true},
		{"dso-01", "dso-02", false},
		{"client-*", "client-07", true},
		{"client-*", "dso-01", false},
	}
	for _, c := range cases {
		if got := matchName(c.pat, c.name); got != c.want {
			t.Errorf("matchName(%q, %q) = %v, want %v", c.pat, c.name, got, c.want)
		}
	}
}

// dialPair connects a chaos endpoint to a plain listener on a fresh
// in-memory network, returning the wrapped dialer conn and the raw
// accepted conn.
func dialPair(t *testing.T, e *Engine, local, addr string) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := e.inner.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := e.Endpoint(local).Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dialer.Close() })
	remote := <-accepted
	t.Cleanup(func() { remote.Close() })
	return dialer, remote
}

// writeAsync writes a stream (one or more whole frames) from a goroutine:
// net.Pipe rendezvouses writer with reader, so a synchronous write-then-
// read would deadlock the test.
func writeAsync(t *testing.T, c net.Conn, stream []byte) {
	t.Helper()
	go func() { _, _ = c.Write(stream) }()
}

// readFrame reads exactly one frame from a raw conn.
func readFrame(t *testing.T, c net.Conn, timeout time.Duration) []byte {
	t.Helper()
	type result struct {
		frame []byte
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		hdr := make([]byte, rpc.FrameHeaderSize)
		if _, err := io.ReadFull(c, hdr); err != nil {
			ch <- result{nil, err}
			return
		}
		meta := rpc.ParseFrameHeader(hdr)
		frame := make([]byte, rpc.FrameHeaderSize+meta.PayloadLen)
		copy(frame, hdr)
		if _, err := io.ReadFull(c, frame[rpc.FrameHeaderSize:]); err != nil {
			ch <- result{nil, err}
			return
		}
		ch <- result{frame, nil}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("read frame: %v", r.err)
		}
		return r.frame
	case <-time.After(timeout):
		t.Fatal("timed out waiting for a frame")
		return nil
	}
}

func TestPartitionRefusesDialAndHealRestores(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	ln, err := e.inner.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { // drain accepts: memnet dials rendezvous with Accept
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	e.Partition([]string{"a"}, []string{"b"})
	_, err = e.Endpoint("a").Dial("b")
	if err == nil {
		t.Fatal("dial across partition succeeded")
	}
	// The error must read as a connection failure so the DSO client's
	// retry classifier keeps retrying rather than giving up.
	if !strings.Contains(err.Error(), "connection") {
		t.Fatalf("partition error %q not classified retryable", err)
	}
	if e.Counts().DialsRefused == 0 {
		t.Fatal("refused dial not counted")
	}
	e.Heal()
	c, err := e.Endpoint("a").Dial("b")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c.Close()
}

func TestPartitionBlackholesEstablishedConn(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	dialer, remote := dialPair(t, e, "a", "b")

	// Healthy first: the frame crosses.
	writeAsync(t, dialer, makeFrame(1, 9, flagRequest, []byte("x")))
	readFrame(t, remote, time.Second)

	e.Partition([]string{"a"}, []string{"b"})
	// A blackholed frame is loss inside the network, not an error — and
	// the write returns without blocking on the (absent) reader.
	if _, err := dialer.Write(makeFrame(2, 9, flagRequest, []byte("y"))); err != nil {
		t.Fatal(err)
	}
	e.Heal()
	writeAsync(t, dialer, makeFrame(3, 9, flagRequest, []byte("z")))
	frame := readFrame(t, remote, time.Second)
	if got := rpc.ParseFrameHeader(frame).ID; got != 3 {
		t.Fatalf("frame %d arrived, want the post-heal frame 3", got)
	}
	if e.Counts().PartitionDrops != 1 {
		t.Fatalf("partition drops = %d, want 1", e.Counts().PartitionDrops)
	}
}

func TestDropRuleWithMaxHitsRetires(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	dialer, remote := dialPair(t, e, "a", "b")

	// Drop exactly one request frame, then deliver normally.
	e.AddRule(Rule{From: "a", To: "b", Dir: Requests, Faults: LinkFaults{Drop: 1}, MaxHits: 1})
	stream := append(makeFrame(1, 9, flagRequest, nil), makeFrame(2, 9, flagRequest, nil)...)
	writeAsync(t, dialer, stream)
	frame := readFrame(t, remote, time.Second)
	if got := rpc.ParseFrameHeader(frame).ID; got != 2 {
		t.Fatalf("frame %d arrived, want 2 (frame 1 dropped)", got)
	}
	if got := e.Counts().FramesDropped; got != 1 {
		t.Fatalf("frames dropped = %d, want 1", got)
	}
}

func TestDuplicateRuleDeliversTwice(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	dialer, remote := dialPair(t, e, "a", "b")

	e.AddRule(Rule{Faults: LinkFaults{Duplicate: 1}, MaxHits: 1})
	writeAsync(t, dialer, makeFrame(5, 9, flagRequest, []byte("dup")))
	first := readFrame(t, remote, time.Second)
	second := readFrame(t, remote, time.Second)
	if string(first) != string(second) {
		t.Fatal("duplicate differs from original")
	}
	if got := rpc.ParseFrameHeader(first).ID; got != 5 {
		t.Fatalf("frame %d, want 5", got)
	}
	if e.Counts().FramesDuplicated != 1 {
		t.Fatal("duplicate not counted")
	}
}

func TestDelayRuleReordersResponses(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	dialer, remote := dialPair(t, e, "a", "b")

	// Delay exactly one response on the read path (remote -> local); the
	// next response overtakes it.
	e.AddRule(Rule{Dir: Responses, Faults: LinkFaults{Delay: 1, DelayBy: 30 * time.Millisecond}, MaxHits: 1})
	// The dialer-side pump drains the pipe continuously, so these writes
	// unblock even before the test reads anything.
	if _, err := remote.Write(makeFrame(1, 9, flagResponse, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.Write(makeFrame(2, 9, flagResponse, nil)); err != nil {
		t.Fatal(err)
	}
	first := readFrame(t, dialer, time.Second)
	second := readFrame(t, dialer, time.Second)
	if a, b := rpc.ParseFrameHeader(first).ID, rpc.ParseFrameHeader(second).ID; a != 2 || b != 1 {
		t.Fatalf("arrival order (%d, %d), want delayed frame overtaken: (2, 1)", a, b)
	}
	if e.Counts().FramesDelayed != 1 {
		t.Fatal("delay not counted")
	}
}

func TestKindFilterLeavesOtherTrafficAlone(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	dialer, remote := dialPair(t, e, "a", "b")

	e.AddRule(Rule{Kind: 9, Faults: LinkFaults{Drop: 1}})
	// Frame 1 matches the kind and is dropped; frame 2 is untouched.
	stream := append(makeFrame(1, 9, flagRequest, nil), makeFrame(2, 3, flagRequest, nil)...)
	writeAsync(t, dialer, stream)
	frame := readFrame(t, remote, time.Second)
	if got := rpc.ParseFrameHeader(frame).ID; got != 2 {
		t.Fatalf("frame %d arrived, want 2", got)
	}
}

func TestFaaSInjectorFaults(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	e.SetFaaSFaults("trainer", FaaSFaults{FailProb: 1, MaxFaults: 1})
	if err := e.InvocationFault("other"); err != nil {
		t.Fatalf("unconfigured function faulted: %v", err)
	}
	if err := e.InvocationFault("trainer"); err == nil {
		t.Fatal("configured function did not fault")
	}
	if err := e.InvocationFault("trainer"); err != nil {
		t.Fatalf("MaxFaults did not retire the entry: %v", err)
	}
	e.SetFaaSFaults("slow-*", FaaSFaults{SlowProb: 1, SlowBy: 5 * time.Millisecond})
	if d := e.ContainerDelay("slow-worker"); d < 5*time.Millisecond {
		t.Fatalf("glob-matched delay = %v, want >= 5ms", d)
	}
	if d := e.ContainerDelay("fast-worker"); d != 0 {
		t.Fatalf("unmatched function delayed by %v", d)
	}
	c := e.Counts()
	if c.FaaSFaults != 1 || c.FaaSDelays != 1 {
		t.Fatalf("faas counters = (%d, %d), want (1, 1)", c.FaaSFaults, c.FaaSDelays)
	}
}

func TestGeneratePlanDeterministic(t *testing.T) {
	cfg := PlanConfig{
		Nodes:         []string{"dso-00", "dso-01", "dso-02"},
		Steps:         12,
		Spacing:       40 * time.Millisecond,
		Partitions:    true,
		LinkFaults:    true,
		CrashRestart:  true,
		FaaS:          true,
		FaaSFunctions: []string{"f1", "f2"},
	}
	a, b := GeneratePlan(42, cfg), GeneratePlan(42, cfg)
	if a.String() != b.String() {
		t.Fatalf("same seed produced different plans:\n%s\n----\n%s", a, b)
	}
	if c := GeneratePlan(43, cfg); a.String() == c.String() {
		t.Fatal("different seeds produced the same plan")
	}
	if len(a.Steps) == 0 {
		t.Fatal("empty plan")
	}
	// Every window reverts: final state is fully healed, and at most one
	// node is down at any point in the schedule.
	if last := a.Steps[len(a.Steps)-1]; last.Kind != ActReset {
		t.Fatalf("plan ends with %v, want reset", actionNames[last.Kind])
	}
	down := 0
	for _, s := range a.Steps {
		switch s.Kind {
		case ActCrash:
			down++
		case ActRestart:
			down--
		}
		if down > 1 {
			t.Fatal("plan crashes two nodes at once")
		}
	}
	if down != 0 {
		t.Fatalf("plan leaves %d node(s) down", down)
	}
}

func TestPlanRunAppliesSteps(t *testing.T) {
	e := New(rpc.NewMemNetwork(), Options{Seed: 1})
	var crashed, restarted []string
	plan := Plan{Steps: []Step{
		{At: 0, Kind: ActPartition, Groups: [][]string{{"a"}, {"b"}}},
		{At: 5 * time.Millisecond, Kind: ActCrash, Node: "dso-01"},
		{At: 10 * time.Millisecond, Kind: ActRestart, Node: "dso-01"},
		{At: 15 * time.Millisecond, Kind: ActReset},
	}}
	err := plan.Run(t.Context(), Target{
		Engine:  e,
		Crash:   func(n string) error { crashed = append(crashed, n); return nil },
		Restart: func(n string) error { restarted = append(restarted, n); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(crashed) != 1 || crashed[0] != "dso-01" || len(restarted) != 1 {
		t.Fatalf("lifecycle hooks: crashed %v restarted %v", crashed, restarted)
	}
	if e.linkBlocked("a", "b") {
		t.Fatal("reset did not heal the partition")
	}
	c := e.Counts()
	if c.Crashes != 1 || c.Restarts != 1 {
		t.Fatalf("lifecycle counters = (%d, %d), want (1, 1)", c.Crashes, c.Restarts)
	}
}

func TestChaosCountersExportAsPrometheus(t *testing.T) {
	tel := telemetry.New()
	e := New(rpc.NewMemNetwork(), Options{Seed: 1, Telemetry: tel})
	e.Partition([]string{"a"}, []string{"b"})
	if _, err := e.Endpoint("a").Dial("b"); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "crucial_chaos_dials_refused_total 1") {
		t.Fatalf("chaos counter missing from exposition:\n%s", sb.String())
	}
	// And the fault left a marker span for trace dumps.
	found := false
	for _, sp := range tel.Tracer().Spans() {
		if sp.Name == telemetry.SpanChaosFault {
			found = true
		}
	}
	if !found {
		t.Fatal("no chaos.fault marker span recorded")
	}
}
