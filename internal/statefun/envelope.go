// Package statefun implements the event-driven stateful functions layer
// (DESIGN.md §5i): functions addressed by (fnType, id), each instance
// owning one durable mailbox DSO that holds its inbound queue, its
// private state blob, and a transactional outbox of unsent effects.
//
// Delivery composes the machinery of earlier PRs instead of adding new
// protocol: pushes ride the at-most-once write path (PR 4), idle
// mailboxes are polled through lease-cached read-only methods (PR 5),
// the handler's whole effect set commits as a single group-commit
// invocation (PR 6), the mailbox is a persistent object so every
// transition lands in the WAL and survives full-cluster recovery
// (PR 9), and hot instances reshard like any other object (PR 8).
// Execution is at-least-once; effects are exactly-once-visible.
package statefun

import (
	"errors"
	"fmt"
	"strings"

	"crucial/internal/core"
	"crucial/internal/objects"
)

// TypeMailbox is the registry name of the mailbox object backing one
// function instance.
const TypeMailbox = "StatefunMailbox"

// ReplyFnType is the reserved function type used to address replies: an
// envelope sent to Address{FnType: ReplyFnType, ID: k} is not enqueued
// into a mailbox but completes the Future object stored under key k.
const ReplyFnType = "_reply"

// DirectoryKey is the key of the Map object listing the currently live
// (possibly-nonempty) function instances; dispatch engines poll it to
// learn what to drain, and retire entries after the idle TTL.
const DirectoryKey = "statefun/.dir"

// Address names one function instance: a registered function type plus a
// free-form instance id (the Cloudburst/StateFun addressing model).
type Address struct {
	FnType string
	ID     string
}

// Key returns the DSO key of the instance's mailbox object.
func (a Address) Key() string { return "statefun/" + a.FnType + "/" + a.ID }

// DirEntry returns the instance's key in the dispatch directory.
func (a Address) DirEntry() string { return a.FnType + "/" + a.ID }

// String renders the address as fnType/id.
func (a Address) String() string { return a.FnType + "/" + a.ID }

// AddressFromDirEntry parses a directory entry back into an Address.
func AddressFromDirEntry(s string) (Address, bool) {
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return Address{}, false
	}
	return Address{FnType: s[:i], ID: s[i+1:]}, true
}

// ValidateFnType checks that fnType can be registered and addressed:
// non-empty, no leading '_' (reserved, e.g. ReplyFnType), and no '/'
// (directory entries are "fnType/id" split at the first '/', so a slash
// in the type would parse back as a different, handler-less address and
// strand the instance's messages).
func ValidateFnType(fnType string) error {
	if fnType == "" || fnType[0] == '_' || strings.ContainsRune(fnType, '/') {
		return fmt.Errorf("statefun: invalid function type %q (must be non-empty, not start with '_', not contain '/')", fnType)
	}
	return nil
}

// ValidateAddress checks that an address can be delivered to: a valid
// function type plus a non-empty ID (a directory entry with an empty ID
// fails to parse, so such an instance would never be dispatched).
func ValidateAddress(a Address) error {
	if err := ValidateFnType(a.FnType); err != nil {
		return err
	}
	if a.ID == "" {
		return fmt.Errorf("statefun: invalid address %q: empty instance id", a.String())
	}
	return nil
}

// Envelope is one message: destination address, the sender's identity and
// per-destination sequence number (the application-level dedup key), a
// message name the handler switches on, an opaque encoded body, and an
// optional reply key (a Future object key the handler may complete).
type Envelope struct {
	To      Address
	From    string
	Seq     uint64
	Name    string
	Body    []byte
	ReplyTo string
}

// OutEntry is one undelivered outbox effect: the envelope plus the
// outbox sequence number the mailbox assigned at commit time (stable
// across redeliveries, which is what makes resending dedupable).
type OutEntry struct {
	Seq uint64
	Env Envelope
}

// PushStatus is the mailbox's verdict on one Push.
type PushStatus string

// Push verdicts: accepted, rejected by the per-sender dedup window, or
// bounced by the queue capacity (backpressure).
const (
	PushOK   PushStatus = "ok"
	PushDup  PushStatus = "dup"
	PushFull PushStatus = "full"
)

// PushResult reports the outcome of a Push and the queue length after it
// (senders register the instance in the dispatch directory when the
// queue transitions empty → nonempty, i.e. QueueLen == 1).
type PushResult struct {
	Status   PushStatus
	QueueLen int64
}

// Task is the read-only view a runner fetches before executing: the head
// message (if any), the instance's current private state, and the number
// of undelivered outbox entries left over from earlier commits.
type Task struct {
	Has      bool
	EnqSeq   uint64
	Env      Envelope
	State    []byte
	HasState bool
	QueueLen int64
	OutLen   int64
}

// CommitReq is the handler's entire effect set, applied atomically by one
// Commit invocation: pop the head message (identified by EnqSeq), replace
// the private state, and append the outgoing envelopes to the outbox with
// mailbox-assigned sequence numbers stamped From the given identity.
type CommitReq struct {
	EnqSeq   uint64
	From     string
	State    []byte
	SetState bool
	Sends    []Envelope
}

// CommitResult reports whether the commit applied (false means the head
// had already been committed by an earlier attempt — the redelivery
// no-op) and returns every still-undelivered outbox entry so the runner
// can forward them regardless.
type CommitResult struct {
	Applied bool
	Pending []OutEntry
}

// MailboxStatus is the read-only health view of one instance, used by
// dispatch engines for idle detection and by tests.
type MailboxStatus struct {
	QueueLen  int64
	OutboxLen int64
	Processed int64
	Dups      int64
	Rejected  int64
}

// EncodeBody gob-encodes a handler-level message body (nil encodes to
// an empty body).
func EncodeBody(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	return core.EncodeValue(v)
}

// DecodeBody decodes a body produced by EncodeBody into v.
func DecodeBody(data []byte, v any) error {
	if len(data) == 0 {
		return fmt.Errorf("statefun: empty body")
	}
	return core.DecodeValue(data, v)
}

// RegisterTypes adds the mailbox object type to a registry (idempotent)
// and registers the layer's wire structs and read-only methods. Cluster
// bootstrap calls it so every node can materialize mailboxes.
func RegisterTypes(r *core.Registry) {
	registerWireTypes()
	if _, err := r.Lookup(TypeMailbox); err == nil {
		return
	}
	r.MustRegister(core.TypeInfo{Name: TypeMailbox, New: NewMailbox})
}

// registerWireTypes makes the layer's argument/result structs and the
// mailbox's read-only classification known process-wide (idempotent).
func registerWireTypes() {
	core.RegisterValueTypes()
	core.RegisterValue(Address{})
	core.RegisterValue(Envelope{})
	core.RegisterValue(OutEntry{})
	core.RegisterValue([]OutEntry(nil))
	core.RegisterValue([]Envelope(nil))
	core.RegisterValue(PushResult{})
	core.RegisterValue(Task{})
	core.RegisterValue(CommitReq{})
	core.RegisterValue(CommitResult{})
	core.RegisterValue(MailboxStatus{})
	core.RegisterReadOnlyMethods(TypeMailbox, "Fetch", "Status", "Outbox")
}

// isFutureAlreadySet reports whether err is the (possibly wire-decoded)
// future-already-completed error. The objects package registers it as a
// core error sentinel, so errors.Is holds across the wire.
func isFutureAlreadySet(err error) bool {
	return errors.Is(err, objects.ErrFutureAlreadySet)
}

// resultAs decodes the single result of a mailbox invocation into T.
func resultAs[T any](res []any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	if len(res) < 1 {
		return zero, fmt.Errorf("statefun: empty result set")
	}
	v, ok := res[0].(T)
	if !ok {
		return zero, fmt.Errorf("statefun: result has type %T, want %T", res[0], zero)
	}
	return v, nil
}
