package statefun

import (
	"fmt"

	"crucial/internal/core"
)

// DefaultMailboxCap is the queue capacity used when the constructor is
// given none; pushes beyond it bounce with PushFull (backpressure).
const DefaultMailboxCap = 1024

// queuedMsg is one enqueued message plus the monotonically increasing
// enqueue sequence number that identifies it to Commit.
type queuedMsg struct {
	EnqSeq uint64
	Env    Envelope
}

// Mailbox is the durable heart of one function instance: a bounded FIFO
// of inbound envelopes, the instance's private state blob, a per-sender
// max-seq dedup window, and a transactional outbox. Every mutation is a
// single SMR invocation, so the PR 6 group-commit path batches it, the
// PR 9 WAL logs it, and replication/recovery replay it idempotently.
//
// The exactly-once-visible argument (DESIGN.md §5i) rests on three
// properties enforced here: Push rejects any envelope whose (From, Seq)
// is at or below the sender's high-water mark; Commit pops the head only
// if its enqueue sequence still matches (so a redelivered handler run
// commits as a no-op); and outbox entries get their sequence numbers
// assigned exactly once, at first commit, so resending them after a
// crash dedupes at the destination.
type Mailbox struct {
	capacity  int64
	queue     []queuedMsg
	nextEnq   uint64
	state     []byte
	hasState  bool
	seen      map[string]uint64
	outbox    []OutEntry
	nextOut   uint64
	processed int64
	dups      int64
	rejected  int64
}

// NewMailbox builds a mailbox; an optional first init argument overrides
// the queue capacity.
func NewMailbox(init []any) (core.Object, error) {
	capacity := int64(DefaultMailboxCap)
	if len(init) > 0 {
		c, err := core.Int64Arg(init, 0)
		if err != nil {
			return nil, err
		}
		if c > 0 {
			capacity = c
		}
	}
	return &Mailbox{capacity: capacity, seen: make(map[string]uint64)}, nil
}

// Call dispatches a mailbox method.
func (m *Mailbox) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Push":
		env, err := structArg[Envelope](args, 0, "Push")
		if err != nil {
			return nil, err
		}
		return []any{m.push(env)}, nil
	case "Fetch":
		return []any{m.fetch()}, nil
	case "Commit":
		req, err := structArg[CommitReq](args, 0, "Commit")
		if err != nil {
			return nil, err
		}
		return []any{m.commit(req)}, nil
	case "AckOut":
		upTo, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		m.ackOut(uint64(upTo))
		return nil, nil
	case "Status":
		return []any{MailboxStatus{
			QueueLen:  int64(len(m.queue)),
			OutboxLen: int64(len(m.outbox)),
			Processed: m.processed,
			Dups:      m.dups,
			Rejected:  m.rejected,
		}}, nil
	case "Outbox":
		out := make([]OutEntry, len(m.outbox))
		copy(out, m.outbox)
		return []any{out}, nil
	default:
		return nil, fmt.Errorf("%w: Mailbox.%s", core.ErrUnknownMethod, method)
	}
}

// push enqueues one envelope unless the sender's dedup window or the
// queue capacity rejects it.
func (m *Mailbox) push(env Envelope) PushResult {
	if env.From != "" && env.Seq != 0 && env.Seq <= m.seen[env.From] {
		m.dups++
		return PushResult{Status: PushDup, QueueLen: int64(len(m.queue))}
	}
	if int64(len(m.queue)) >= m.capacity {
		m.rejected++
		return PushResult{Status: PushFull, QueueLen: int64(len(m.queue))}
	}
	if env.From != "" && env.Seq != 0 {
		m.seen[env.From] = env.Seq
	}
	m.nextEnq++
	m.queue = append(m.queue, queuedMsg{EnqSeq: m.nextEnq, Env: env})
	return PushResult{Status: PushOK, QueueLen: int64(len(m.queue))}
}

// fetch returns the head message and current state without mutating
// anything (read-only, so idle polls are answered from lease caches).
func (m *Mailbox) fetch() Task {
	t := Task{
		State:    m.state,
		HasState: m.hasState,
		QueueLen: int64(len(m.queue)),
		OutLen:   int64(len(m.outbox)),
	}
	if len(m.queue) > 0 {
		t.Has = true
		t.EnqSeq = m.queue[0].EnqSeq
		t.Env = m.queue[0].Env
	}
	return t
}

// commit atomically applies one handler run's effect set. The head is
// popped only if its enqueue sequence matches req.EnqSeq; a stale commit
// (the message was already applied by an earlier delivery attempt)
// changes nothing and reports Applied=false. Either way the full
// undelivered outbox is returned so the caller can forward it.
func (m *Mailbox) commit(req CommitReq) CommitResult {
	applied := len(m.queue) > 0 && m.queue[0].EnqSeq == req.EnqSeq
	if applied {
		m.queue = m.queue[1:]
		m.processed++
		if req.SetState {
			m.state = req.State
			m.hasState = true
		}
		for _, env := range req.Sends {
			m.nextOut++
			env.From = req.From
			env.Seq = m.nextOut
			m.outbox = append(m.outbox, OutEntry{Seq: m.nextOut, Env: env})
		}
	}
	pending := make([]OutEntry, len(m.outbox))
	copy(pending, m.outbox)
	return CommitResult{Applied: applied, Pending: pending}
}

// ackOut prunes every outbox entry with sequence ≤ upTo (cumulative ack
// from the deliverer).
func (m *Mailbox) ackOut(upTo uint64) {
	i := 0
	for i < len(m.outbox) && m.outbox[i].Seq <= upTo {
		i++
	}
	if i > 0 {
		m.outbox = append([]OutEntry(nil), m.outbox[i:]...)
	}
}

// mailboxState is the snapshot wire form of a mailbox.
type mailboxState struct {
	Capacity  int64
	Queue     []queuedMsg
	NextEnq   uint64
	State     []byte
	HasState  bool
	Seen      map[string]uint64
	Outbox    []OutEntry
	NextOut   uint64
	Processed int64
	Dups      int64
	Rejected  int64
}

// Snapshot encodes the full mailbox state (checkpointed by the
// durability tier and shipped whole by migration/state transfer).
func (m *Mailbox) Snapshot() ([]byte, error) {
	return core.EncodeValue(mailboxState{
		Capacity:  m.capacity,
		Queue:     m.queue,
		NextEnq:   m.nextEnq,
		State:     m.state,
		HasState:  m.hasState,
		Seen:      m.seen,
		Outbox:    m.outbox,
		NextOut:   m.nextOut,
		Processed: m.processed,
		Dups:      m.dups,
		Rejected:  m.rejected,
	})
}

// Restore replaces the mailbox state from a snapshot.
func (m *Mailbox) Restore(data []byte) error {
	var s mailboxState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	m.capacity = s.Capacity
	m.queue = s.Queue
	m.nextEnq = s.NextEnq
	m.state = s.State
	m.hasState = s.HasState
	m.seen = s.Seen
	if m.seen == nil {
		m.seen = make(map[string]uint64)
	}
	m.outbox = s.Outbox
	m.nextOut = s.NextOut
	m.processed = s.Processed
	m.dups = s.Dups
	m.rejected = s.Rejected
	return nil
}

var _ core.Snapshotter = (*Mailbox)(nil)

// structArg extracts a typed struct argument.
func structArg[T any](args []any, i int, method string) (T, error) {
	var zero T
	if i >= len(args) {
		return zero, fmt.Errorf("statefun: %s needs %d argument(s)", method, i+1)
	}
	v, ok := args[i].(T)
	if !ok {
		return zero, fmt.Errorf("statefun: %s argument %d has type %T, want %T",
			method, i, args[i], zero)
	}
	return v, nil
}
