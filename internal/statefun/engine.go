package statefun

import (
	"context"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/telemetry"
)

// Engine is the dispatch loop of the layer: it discovers live instances
// through the directory Map (a read-only Keys poll, answered from the
// lease cache while nothing changes), schedules drain passes onto a
// worker pool, backs idle instances off adaptively, follows dirty hints
// from local sends so hot chains dispatch without polling, and retires
// instances that stay empty past the idle TTL.
//
// Engines are soft state: every fact they hold is reconstructable from
// the directory and the mailboxes, so an engine can crash, restart or
// run beside other engines without affecting correctness — a redundant
// dispatch costs one no-op commit.
type Engine struct {
	cfg    EngineConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	work   chan Address

	mu        sync.Mutex
	instances map[string]*instance

	cGC *telemetry.Counter
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// Invoker is the DSO client used for directory reads and GC.
	Invoker core.Invoker
	// Runner executes drain passes (Proc, or the runtime's FaaS runner).
	Runner Runner
	// Workers is the drain-pass concurrency (0 = 8).
	Workers int
	// PollInterval is the scheduler tick and the busy-instance poll
	// floor (0 = 2ms).
	PollInterval time.Duration
	// IdlePollMax caps the per-instance idle backoff (0 = 250ms).
	IdlePollMax time.Duration
	// DirRefresh is how often the directory is re-listed (0 = 10 ticks).
	DirRefresh time.Duration
	// IdleTTL retires instances idle this long from the directory
	// (0 = never).
	IdleTTL time.Duration
	// MailboxCap is passed to mailbox constructors during GC rechecks
	// (0 = DefaultMailboxCap).
	MailboxCap int64
	// Metrics receives the engine's counters (nil = private registry).
	Metrics *telemetry.Registry
}

// instance is the engine's soft state about one function instance.
type instance struct {
	addr      Address
	inflight  bool
	dirty     bool
	nextPoll  time.Time
	backoff   time.Duration
	idleSince time.Time
}

// NewEngine starts an engine; Close stops it.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.IdlePollMax <= 0 {
		cfg.IdlePollMax = 250 * time.Millisecond
	}
	if cfg.DirRefresh <= 0 {
		cfg.DirRefresh = 10 * cfg.PollInterval
	}
	if cfg.MailboxCap <= 0 {
		cfg.MailboxCap = DefaultMailboxCap
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		work:      make(chan Address, 4*cfg.Workers),
		instances: make(map[string]*instance),
		cGC:       reg.Counter(telemetry.MetStatefunInstancesGC),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// Close stops the scheduler and waits for in-flight drain passes.
func (e *Engine) Close() {
	e.cancel()
	e.wg.Wait()
}

// Notify marks an instance dirty (a local send just enqueued a message),
// so the next tick dispatches it without waiting for a directory refresh
// or poll timer.
func (e *Engine) Notify(addr Address) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.touch(addr).dirty = true
}

// touch returns the tracked instance, creating it due-now if unknown.
// Callers hold e.mu.
func (e *Engine) touch(addr Address) *instance {
	key := addr.DirEntry()
	inst := e.instances[key]
	if inst == nil {
		inst = &instance{addr: addr, backoff: e.cfg.PollInterval, idleSince: time.Now()}
		e.instances[key] = inst
	}
	return inst
}

// run is the scheduler loop: refresh the directory, enqueue due
// instances.
func (e *Engine) run() {
	defer e.wg.Done()
	defer close(e.work)
	tick := time.NewTicker(e.cfg.PollInterval)
	defer tick.Stop()
	var lastDir time.Time
	for {
		select {
		case <-e.ctx.Done():
			return
		case now := <-tick.C:
			if now.Sub(lastDir) >= e.cfg.DirRefresh {
				e.refreshDirectory()
				lastDir = now
			}
			e.schedule(now)
		}
	}
}

// refreshDirectory lists the dispatch directory and tracks any instance
// it does not know yet. Errors are ignored — the next refresh retries,
// and the engine keeps draining the instances it already knows (it must
// ride out full-cluster-down windows).
func (e *Engine) refreshDirectory() {
	res, err := e.cfg.Invoker.InvokeObject(e.ctx, core.Invocation{
		Ref:     core.Ref{Type: objects.TypeMap, Key: DirectoryKey},
		Method:  "Keys",
		Persist: true,
	})
	keys, err := resultAs[[]string](res, err)
	if err != nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range keys {
		if _, known := e.instances[k]; known {
			continue
		}
		if addr, ok := AddressFromDirEntry(k); ok {
			e.touch(addr)
		}
	}
}

// schedule enqueues every due, not-inflight instance onto the worker
// pool (skipping any the pool has no room for until the next tick).
func (e *Engine) schedule(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, inst := range e.instances {
		if inst.inflight || (!inst.dirty && now.Before(inst.nextPoll)) {
			continue
		}
		select {
		case e.work <- inst.addr:
			inst.inflight = true
			inst.dirty = false
		default:
			return
		}
	}
}

// worker executes drain passes.
func (e *Engine) worker() {
	defer e.wg.Done()
	for addr := range e.work {
		report, err := e.cfg.Runner.Run(e.ctx, addr)
		e.complete(addr, report, err)
	}
}

// complete folds a drain pass's outcome back into the schedule: activity
// resets the backoff and re-dispatches immediately, failures and idle
// passes back off exponentially, and instances idle past the TTL are
// retired.
func (e *Engine) complete(addr Address, report RunReport, err error) {
	now := time.Now()
	var retire *instance
	e.mu.Lock()
	inst := e.touch(addr)
	inst.inflight = false
	switch {
	case err != nil:
		inst.backoff = clampBackoff(2*inst.backoff, e.cfg.IdlePollMax)
		inst.nextPoll = now.Add(inst.backoff)
		inst.idleSince = now
	case report.Processed > 0 || report.QueueLen > 0 || report.OutboxLen > 0:
		inst.backoff = e.cfg.PollInterval
		inst.idleSince = now
		if report.QueueLen > 0 || report.OutboxLen > 0 {
			inst.dirty = true
		} else {
			inst.nextPoll = now.Add(inst.backoff)
		}
	default:
		inst.backoff = clampBackoff(2*inst.backoff, e.cfg.IdlePollMax)
		inst.nextPoll = now.Add(inst.backoff)
		if e.cfg.IdleTTL > 0 && now.Sub(inst.idleSince) >= e.cfg.IdleTTL {
			retire = inst
		}
	}
	for _, d := range report.Dirty {
		e.touch(d).dirty = true
	}
	e.mu.Unlock()
	if retire != nil {
		e.retire(addr)
	}
}

// retire removes an idle instance from the directory, then re-checks its
// mailbox: a message that raced in is covered either by the sender's own
// re-registration (pushes that find the queue empty register the
// instance) or by the recheck re-registering it here. Only a still-empty
// instance is forgotten.
func (e *Engine) retire(addr Address) {
	if _, err := e.cfg.Invoker.InvokeObject(e.ctx, core.Invocation{
		Ref:     core.Ref{Type: objects.TypeMap, Key: DirectoryKey},
		Method:  "Remove",
		Args:    []any{addr.DirEntry()},
		Persist: true,
	}); err != nil {
		return
	}
	st, err := StatusOf(e.ctx, e.cfg.Invoker, addr, e.cfg.MailboxCap)
	if err != nil {
		return
	}
	if st.QueueLen > 0 || st.OutboxLen > 0 {
		if RegisterInstance(e.ctx, e.cfg.Invoker, addr) == nil {
			e.Notify(addr)
		}
		return
	}
	e.mu.Lock()
	delete(e.instances, addr.DirEntry())
	e.mu.Unlock()
	e.cGC.Inc()
}

// clampBackoff doubles-with-cap for poll backoff.
func clampBackoff(d, max time.Duration) time.Duration {
	if d > max {
		return max
	}
	return d
}

// Instances returns how many instances the engine currently tracks.
func (e *Engine) Instances() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.instances)
}
