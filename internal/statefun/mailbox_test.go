package statefun

import (
	"testing"

	"crucial/internal/core"
)

// newTestMailbox builds a mailbox with the given capacity.
func newTestMailbox(t *testing.T, capacity int64) *Mailbox {
	t.Helper()
	obj, err := NewMailbox([]any{capacity})
	if err != nil {
		t.Fatal(err)
	}
	return obj.(*Mailbox)
}

// env builds a test envelope.
func env(from string, seq uint64, name string) Envelope {
	return Envelope{To: Address{FnType: "fn", ID: "a"}, From: from, Seq: seq, Name: name}
}

func TestMailboxPushDedupWindow(t *testing.T) {
	m := newTestMailbox(t, 16)
	if r := m.push(env("s1", 1, "a")); r.Status != PushOK || r.QueueLen != 1 {
		t.Fatalf("first push: %+v", r)
	}
	// Same sequence again (a transport- or app-level redelivery).
	if r := m.push(env("s1", 1, "a")); r.Status != PushDup {
		t.Fatalf("dup push accepted: %+v", r)
	}
	// Lower sequence after a higher one.
	if r := m.push(env("s1", 3, "c")); r.Status != PushOK {
		t.Fatalf("seq 3: %+v", r)
	}
	if r := m.push(env("s1", 2, "b")); r.Status != PushDup {
		t.Fatalf("stale seq 2 accepted: %+v", r)
	}
	// Independent senders have independent windows.
	if r := m.push(env("s2", 1, "x")); r.Status != PushOK {
		t.Fatalf("other sender: %+v", r)
	}
	st := m.fetch()
	if st.QueueLen != 3 {
		t.Fatalf("queue len = %d, want 3", st.QueueLen)
	}
}

func TestMailboxPushOverflow(t *testing.T) {
	m := newTestMailbox(t, 2)
	m.push(env("s", 1, "a"))
	m.push(env("s", 2, "b"))
	r := m.push(env("s", 3, "c"))
	if r.Status != PushFull || r.QueueLen != 2 {
		t.Fatalf("overflow push: %+v", r)
	}
	// A bounced push must not advance the dedup window: the retry (same
	// seq) must be accepted once room exists.
	cr := m.commit(CommitReq{EnqSeq: m.fetch().EnqSeq, From: "fn/a"})
	if !cr.Applied {
		t.Fatal("commit did not apply")
	}
	if r := m.push(env("s", 3, "c")); r.Status != PushOK {
		t.Fatalf("retry after drain: %+v", r)
	}
}

func TestMailboxCommitIdempotence(t *testing.T) {
	m := newTestMailbox(t, 16)
	m.push(env("s", 1, "a"))
	task := m.fetch()
	if !task.Has || task.Env.Name != "a" {
		t.Fatalf("fetch: %+v", task)
	}
	req := CommitReq{
		EnqSeq:   task.EnqSeq,
		From:     "fn/a",
		State:    []byte("state-1"),
		SetState: true,
		Sends:    []Envelope{{To: Address{FnType: "fn", ID: "b"}, Name: "fwd"}},
	}
	first := m.commit(req)
	if !first.Applied || len(first.Pending) != 1 {
		t.Fatalf("first commit: %+v", first)
	}
	if first.Pending[0].Env.From != "fn/a" || first.Pending[0].Env.Seq != 1 {
		t.Fatalf("outbox stamping: %+v", first.Pending[0].Env)
	}
	// The redelivered run commits again with the same EnqSeq: a no-op
	// that must not double-append the sends nor touch state.
	second := m.commit(req)
	if second.Applied {
		t.Fatal("duplicate commit applied")
	}
	if len(second.Pending) != 1 {
		t.Fatalf("outbox grew on duplicate commit: %d entries", len(second.Pending))
	}
	if m.processed != 1 {
		t.Fatalf("processed = %d, want 1", m.processed)
	}
}

func TestMailboxAckOut(t *testing.T) {
	m := newTestMailbox(t, 16)
	m.push(env("s", 1, "a"))
	task := m.fetch()
	res := m.commit(CommitReq{EnqSeq: task.EnqSeq, From: "fn/a", Sends: []Envelope{
		{To: Address{FnType: "fn", ID: "b"}},
		{To: Address{FnType: "fn", ID: "c"}},
		{To: Address{FnType: "fn", ID: "d"}},
	}})
	if len(res.Pending) != 3 {
		t.Fatalf("pending = %d", len(res.Pending))
	}
	m.ackOut(2)
	if got := m.fetch().OutLen; got != 1 {
		t.Fatalf("outbox after ack(2) = %d, want 1", got)
	}
	m.ackOut(3)
	if got := m.fetch().OutLen; got != 0 {
		t.Fatalf("outbox after ack(3) = %d, want 0", got)
	}
	// Cumulative acks are idempotent.
	m.ackOut(3)
	if got := m.fetch().OutLen; got != 0 {
		t.Fatalf("outbox after re-ack = %d, want 0", got)
	}
}

func TestMailboxSnapshotRoundTrip(t *testing.T) {
	registerWireTypes()
	m := newTestMailbox(t, 8)
	m.push(env("s", 1, "a"))
	m.push(env("s", 2, "b"))
	task := m.fetch()
	m.commit(CommitReq{EnqSeq: task.EnqSeq, From: "fn/a", State: []byte("st"), SetState: true,
		Sends: []Envelope{{To: Address{FnType: "fn", ID: "b"}, Name: "fwd"}}})
	data, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewMailbox(nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := obj.(*Mailbox)
	if err := m2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if m2.capacity != 8 || m2.processed != 1 || len(m2.queue) != 1 || len(m2.outbox) != 1 {
		t.Fatalf("restored mailbox: %+v", m2)
	}
	// The dedup window must survive: replaying seq 2 after recovery is a dup.
	if r := m2.push(env("s", 2, "b")); r.Status != PushDup {
		t.Fatalf("dedup window lost in snapshot: %+v", r)
	}
	// And the enqueue counter must not reissue sequence numbers.
	if r := m2.push(env("s", 3, "c")); r.Status != PushOK {
		t.Fatalf("push after restore: %+v", r)
	}
	next := m2.fetch()
	if next.EnqSeq != 2 {
		t.Fatalf("head enq seq after restore = %d, want 2", next.EnqSeq)
	}
}

func TestMailboxCallDispatch(t *testing.T) {
	registerWireTypes()
	obj, err := NewMailbox(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := obj.Call(nil, "Push", []any{env("s", 1, "a")})
	if err != nil {
		t.Fatal(err)
	}
	if pr := res[0].(PushResult); pr.Status != PushOK {
		t.Fatalf("push via Call: %+v", pr)
	}
	if _, err := obj.Call(nil, "Bogus", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	res, err = obj.Call(nil, "Status", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := res[0].(MailboxStatus); st.QueueLen != 1 {
		t.Fatalf("status via Call: %+v", st)
	}
}

// TestAddressDirEntryRoundTrip pins the directory-entry encoding.
func TestAddressDirEntryRoundTrip(t *testing.T) {
	a := Address{FnType: "order", ID: "o/42"}
	back, ok := AddressFromDirEntry(a.DirEntry())
	if !ok || back != a {
		t.Fatalf("round trip: %v %v", back, ok)
	}
	if _, ok := AddressFromDirEntry("noslash"); ok {
		t.Fatal("parsed entry without slash")
	}
}

// TestReadOnlyClassification pins the lease-cacheable method set: Fetch,
// Status and Outbox must be read-only (idle polls ride the lease cache),
// and the mutating methods must not be.
func TestReadOnlyClassification(t *testing.T) {
	registerWireTypes()
	for _, m := range []string{"Fetch", "Status", "Outbox"} {
		if !core.IsReadOnlyMethod(TypeMailbox, m) {
			t.Errorf("%s not classified read-only", m)
		}
	}
	for _, m := range []string{"Push", "Commit", "AckOut"} {
		if core.IsReadOnlyMethod(TypeMailbox, m) {
			t.Errorf("%s wrongly classified read-only", m)
		}
	}
}
