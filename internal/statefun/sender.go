package statefun

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"crucial/internal/core"
	"crucial/internal/objects"
)

// ErrMailboxFull is returned when a push bounces off the destination
// queue's capacity; the message was not enqueued and may be resent.
var ErrMailboxFull = errors.New("statefun: mailbox full")

// Sender is the client-side sending half of the layer: it allocates
// per-destination monotonic sequence numbers under a per-destination
// lock (the dedup windows are max-seq based, so sends to one mailbox
// must land in order), pushes through the at-most-once write path, and
// registers newly-nonempty instances in the dispatch directory.
type Sender struct {
	inv        core.Invoker
	from       string
	mailboxCap int64

	mu    sync.Mutex
	dests map[string]*destStream
}

// destStream serializes sends to one destination mailbox.
type destStream struct {
	mu   sync.Mutex
	next uint64
	// needReg records a directory registration that a previous Send owed
	// (its push made the queue nonempty) but failed to complete; the next
	// Send retries it regardless of the queue length it observes, so a
	// transient registration failure cannot strand a durably-enqueued
	// message outside the dispatch directory.
	needReg bool
}

// NewSender builds a sender whose envelopes carry the given identity
// (unique per sending principal, e.g. derived from the DSO client id)
// and whose lazily-created mailboxes get the given capacity (0 = default).
func NewSender(inv core.Invoker, from string, mailboxCap int64) *Sender {
	if mailboxCap <= 0 {
		mailboxCap = DefaultMailboxCap
	}
	return &Sender{inv: inv, from: from, mailboxCap: mailboxCap, dests: make(map[string]*destStream)}
}

// From returns the sender identity stamped on outgoing envelopes.
func (s *Sender) From() string { return s.from }

// stream returns the per-destination sequencer for key.
func (s *Sender) stream(key string) *destStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dests[key]
	if d == nil {
		d = &destStream{}
		s.dests[key] = d
	}
	return d
}

// Send enqueues one message for (to.FnType, to.ID). A nil error means the
// message is durably enqueued exactly once; ErrMailboxFull means it was
// rejected and not enqueued; any other error leaves it in doubt (at most
// once — resending may deliver it twice under a new sequence number).
func (s *Sender) Send(ctx context.Context, to Address, name string, body []byte, replyTo string) error {
	if err := ValidateAddress(to); err != nil {
		return err
	}
	d := s.stream(to.Key())
	d.mu.Lock()
	defer d.mu.Unlock()
	// The sequence number is burned even on error: an errored push may
	// still have applied, so reusing its number for the next message
	// could get that message wrongly deduped away.
	d.next++
	env := Envelope{To: to, From: s.from, Seq: d.next, Name: name, Body: body, ReplyTo: replyTo}
	res, err := PushEnvelope(ctx, s.inv, env, s.mailboxCap)
	if err != nil {
		return err
	}
	switch res.Status {
	case PushFull:
		return fmt.Errorf("%w: %s", ErrMailboxFull, to)
	case PushOK:
		if res.QueueLen == 1 || d.needReg {
			return s.register(ctx, d, to)
		}
	case PushDup:
		// A retry of a push whose first attempt errored after applying —
		// and possibly before the registration it owed. Registration is
		// idempotent, so re-register while the queue is nonempty rather
		// than strand the message outside the directory.
		if res.QueueLen > 0 || d.needReg {
			return s.register(ctx, d, to)
		}
	}
	return nil
}

// register completes the directory registration owed for to, remembering
// a failure in d so a later Send retries it.
func (s *Sender) register(ctx context.Context, d *destStream, to Address) error {
	d.needReg = true
	if err := RegisterInstance(ctx, s.inv, to); err != nil {
		return err
	}
	d.needReg = false
	return nil
}

// Call sends a request message carrying a fresh reply future and blocks
// until the handler (or one of its downstream functions) completes it,
// returning the raw reply body.
func (s *Sender) Call(ctx context.Context, to Address, name string, body []byte, replyKey string) ([]byte, error) {
	if err := s.Send(ctx, to, name, body, replyKey); err != nil {
		return nil, err
	}
	return AwaitReply(ctx, s.inv, replyKey)
}

// PushEnvelope ships one envelope to its destination mailbox (creating
// the mailbox with the given capacity on first touch). Mailboxes are
// persistent objects: replicated, WAL-logged, and rebalanceable.
func PushEnvelope(ctx context.Context, inv core.Invoker, env Envelope, mailboxCap int64) (PushResult, error) {
	if mailboxCap <= 0 {
		mailboxCap = DefaultMailboxCap
	}
	res, err := inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: env.To.Key()},
		Method:  "Push",
		Args:    []any{env},
		Init:    []any{mailboxCap},
		Persist: true,
	})
	return resultAs[PushResult](res, err)
}

// RegisterInstance adds the instance to the dispatch directory so
// engines start draining it. Registration is idempotent; callers invoke
// it on every empty → nonempty queue transition.
func RegisterInstance(ctx context.Context, inv core.Invoker, addr Address) error {
	_, err := inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: objects.TypeMap, Key: DirectoryKey},
		Method:  "Put",
		Args:    []any{addr.DirEntry(), true},
		Persist: true,
	})
	return err
}

// AwaitReply blocks on the reply future stored under key and returns the
// reply body set by the handler.
func AwaitReply(ctx context.Context, inv core.Invoker, key string) ([]byte, error) {
	res, err := inv.InvokeObject(ctx, core.Invocation{
		Ref:    core.Ref{Type: objects.TypeFuture, Key: key},
		Method: "Get",
	})
	body, err := resultAs[[]byte](res, err)
	if err != nil {
		return nil, err
	}
	return body, nil
}

// DeliverReply completes the reply future named by env.To.ID with the
// envelope body. A future that is already completed counts as delivered
// (the redelivery case), so the outbox entry can be acked.
func DeliverReply(ctx context.Context, inv core.Invoker, env Envelope) error {
	_, err := inv.InvokeObject(ctx, core.Invocation{
		Ref:    core.Ref{Type: objects.TypeFuture, Key: env.To.ID},
		Method: "Set",
		Args:   []any{env.Body},
	})
	if err != nil && !isFutureAlreadySet(err) {
		return err
	}
	return nil
}
