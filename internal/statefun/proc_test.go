package statefun

import (
	"context"
	"errors"
	"testing"

	"crucial/internal/core"
	"crucial/internal/objects"
)

// fakeInvoker backs mailboxes, the dispatch directory and reply futures
// in memory, so the delivery paths of Proc and Sender can be exercised
// without a cluster — including the crash windows a real cluster only
// hits under fault injection.
type fakeInvoker struct {
	mailboxes map[string]*Mailbox
	dir       map[string]bool
	futures   map[string][]byte
	dirErrs   int // the next N directory Puts fail (injected fault)
	dirPuts   int
}

func newFakeInvoker() *fakeInvoker {
	return &fakeInvoker{
		mailboxes: make(map[string]*Mailbox),
		dir:       make(map[string]bool),
		futures:   make(map[string][]byte),
	}
}

func (f *fakeInvoker) mailbox(t *testing.T, key string, capacity int64) *Mailbox {
	t.Helper()
	m := f.mailboxes[key]
	if m == nil {
		m = newTestMailbox(t, capacity)
		f.mailboxes[key] = m
	}
	return m
}

func (f *fakeInvoker) InvokeObject(_ context.Context, inv core.Invocation) ([]any, error) {
	switch inv.Ref.Type {
	case TypeMailbox:
		capacity := int64(DefaultMailboxCap)
		if len(inv.Init) > 0 {
			if c, ok := inv.Init[0].(int64); ok && c > 0 {
				capacity = c
			}
		}
		m := f.mailboxes[inv.Ref.Key]
		if m == nil {
			obj, err := NewMailbox([]any{capacity})
			if err != nil {
				return nil, err
			}
			m = obj.(*Mailbox)
			f.mailboxes[inv.Ref.Key] = m
		}
		return m.Call(nil, inv.Method, inv.Args)
	case objects.TypeMap:
		switch inv.Method {
		case "Put":
			f.dirPuts++
			if f.dirErrs > 0 {
				f.dirErrs--
				return nil, errors.New("injected directory failure")
			}
			f.dir[inv.Args[0].(string)] = true
			return []any{any(nil)}, nil
		case "Remove":
			delete(f.dir, inv.Args[0].(string))
			return []any{any(nil)}, nil
		}
	case objects.TypeFuture:
		if inv.Method == "Set" {
			if _, done := f.futures[inv.Ref.Key]; done {
				// Mimic the wire: the sentinel crosses as text and is
				// re-materialized by DecodeError.
				return nil, core.DecodeError(core.EncodeError(objects.ErrFutureAlreadySet))
			}
			f.futures[inv.Ref.Key] = inv.Args[0].([]byte)
			return nil, nil
		}
	}
	return nil, errors.New("fakeInvoker: unsupported " + inv.Ref.Type + "." + inv.Method)
}

// commitWithSends pushes one message into src's mailbox and commits it
// with the given sends, returning the pending outbox entries.
func commitWithSends(t *testing.T, f *fakeInvoker, src Address, sends []Envelope) []OutEntry {
	t.Helper()
	m := f.mailbox(t, src.Key(), DefaultMailboxCap)
	if r := m.push(Envelope{To: src, From: "test", Seq: uint64(m.processed) + 1, Name: "go"}); r.Status != PushOK {
		t.Fatalf("seed push: %+v", r)
	}
	res := m.commit(CommitReq{EnqSeq: m.fetch().EnqSeq, From: src.Key(), Sends: sends})
	if !res.Applied {
		t.Fatal("seed commit did not apply")
	}
	return res.Pending
}

// TestDeliverRegistersOnPushDup pins the crash-window fix: a prior
// delivery attempt pushed the message (queue 0 → 1) but died before
// registering the destination in the dispatch directory. The retry sees
// PushDup and must still register and hint the destination — otherwise
// the durable message is never dispatched.
func TestDeliverRegistersOnPushDup(t *testing.T) {
	f := newFakeInvoker()
	src := Address{FnType: "src", ID: "1"}
	dst := Address{FnType: "dst", ID: "1"}
	pending := commitWithSends(t, f, src, []Envelope{{To: dst, Name: "fwd"}})
	if len(pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(pending))
	}

	// The crashed first attempt: push applied, registration did not.
	if r, err := PushEnvelope(context.Background(), f, pending[0].Env, 0); err != nil || r.Status != PushOK {
		t.Fatalf("simulated first push: %+v %v", r, err)
	}
	if len(f.dir) != 0 {
		t.Fatalf("directory not empty before retry: %v", f.dir)
	}

	p := NewProc(f, NewHandlerSet(), ProcOptions{})
	var report RunReport
	if err := p.deliver(context.Background(), src, pending, &report); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if !f.dir[dst.DirEntry()] {
		t.Fatalf("destination not registered on PushDup retry: %v", f.dir)
	}
	hinted := false
	for _, d := range report.Dirty {
		hinted = hinted || d == dst
	}
	if !hinted {
		t.Fatalf("destination not dirty-hinted on PushDup retry: %v", report.Dirty)
	}
	if got := f.mailbox(t, src.Key(), 0).fetch().OutLen; got != 0 {
		t.Fatalf("outbox not acked after dup delivery: %d entries left", got)
	}
	// And the message itself was not double-enqueued.
	if got := f.mailbox(t, dst.Key(), 0).fetch().QueueLen; got != 1 {
		t.Fatalf("destination queue = %d, want 1", got)
	}
}

// TestDeliverSkipsOnlyFullDestination pins the head-of-line fix: a full
// destination suspends its own entries but must not block delivery to
// other destinations (only the contiguous delivered prefix is acked).
func TestDeliverSkipsOnlyFullDestination(t *testing.T) {
	f := newFakeInvoker()
	src := Address{FnType: "src", ID: "1"}
	full := Address{FnType: "busy", ID: "b"}
	open := Address{FnType: "calm", ID: "c"}
	// Fill the busy destination to capacity before delivery starts.
	fm := f.mailbox(t, full.Key(), 2)
	for seq := uint64(1); seq <= 2; seq++ {
		if r := fm.push(Envelope{To: full, From: "other", Seq: seq}); r.Status != PushOK {
			t.Fatalf("prefill %d: %+v", seq, r)
		}
	}
	pending := commitWithSends(t, f, src, []Envelope{
		{To: full, Name: "m1"},
		{To: open, Name: "m2"},
		{To: full, Name: "m3"},
	})

	p := NewProc(f, NewHandlerSet(), ProcOptions{MailboxCap: 2})
	var report RunReport
	if err := p.deliver(context.Background(), src, pending, &report); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if got := f.mailbox(t, open.Key(), 0).fetch().QueueLen; got != 1 {
		t.Fatalf("open destination queue = %d, want 1 (blocked behind full dest)", got)
	}
	if !f.dir[open.DirEntry()] {
		t.Fatal("open destination not registered")
	}
	// Nothing contiguous delivered → nothing acked; all three entries
	// must survive for the retry.
	if got := f.mailbox(t, src.Key(), 0).fetch().OutLen; got != 3 {
		t.Fatalf("outbox = %d entries, want 3", got)
	}

	// Drain the busy destination and retry: the full-dest entries land in
	// order, the already-delivered one dedups, and everything acks.
	fm.commit(CommitReq{EnqSeq: fm.fetch().EnqSeq, From: full.Key()})
	fm.commit(CommitReq{EnqSeq: fm.fetch().EnqSeq, From: full.Key()})
	srcBox := f.mailbox(t, src.Key(), 0)
	outCopy := make([]OutEntry, len(srcBox.outbox))
	copy(outCopy, srcBox.outbox)
	var report2 RunReport
	if err := p.deliver(context.Background(), src, outCopy, &report2); err != nil {
		t.Fatalf("retry deliver: %v", err)
	}
	if got := f.mailbox(t, src.Key(), 0).fetch().OutLen; got != 0 {
		t.Fatalf("outbox after retry = %d entries, want 0", got)
	}
	if got := f.mailbox(t, full.Key(), 0).fetch().QueueLen; got != 2 {
		t.Fatalf("busy destination queue = %d, want 2 (m1, m3 in order)", got)
	}
	if got := f.mailbox(t, open.Key(), 0).fetch().QueueLen; got != 1 {
		t.Fatalf("open destination queue = %d, want 1 (m2 delivered once)", got)
	}
	bm := f.mailbox(t, full.Key(), 0)
	if bm.queue[0].Env.Name != "m1" || bm.queue[1].Env.Name != "m3" {
		t.Fatalf("per-destination order lost: %q, %q", bm.queue[0].Env.Name, bm.queue[1].Env.Name)
	}
}

// TestDeliverAcksDuplicateReply pins the reply-redelivery path: a reply
// whose future is already completed counts as delivered, recognised via
// the error sentinel even in its wire-decoded form.
func TestDeliverAcksDuplicateReply(t *testing.T) {
	f := newFakeInvoker()
	src := Address{FnType: "src", ID: "1"}
	f.futures["rk"] = []byte("already") // the earlier attempt delivered it
	pending := commitWithSends(t, f, src, []Envelope{
		{To: Address{FnType: ReplyFnType, ID: "rk"}, Body: []byte("again")},
	})
	p := NewProc(f, NewHandlerSet(), ProcOptions{})
	var report RunReport
	if err := p.deliver(context.Background(), src, pending, &report); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if got := f.mailbox(t, src.Key(), 0).fetch().OutLen; got != 0 {
		t.Fatalf("outbox not acked after duplicate reply: %d entries", got)
	}
}

// TestSenderRetriesRegistrationAfterFailure pins the client-side half of
// the registration hole: a Send whose push made the queue nonempty but
// whose directory Put failed must complete the registration on the next
// Send, even though that send no longer observes QueueLen == 1.
func TestSenderRetriesRegistrationAfterFailure(t *testing.T) {
	f := newFakeInvoker()
	f.dirErrs = 1
	dst := Address{FnType: "dst", ID: "1"}
	s := NewSender(f, "client/1", 0)
	if err := s.Send(context.Background(), dst, "a", nil, ""); err == nil {
		t.Fatal("Send succeeded despite registration failure")
	}
	if err := s.Send(context.Background(), dst, "b", nil, ""); err != nil {
		t.Fatalf("second Send: %v", err)
	}
	if !f.dir[dst.DirEntry()] {
		t.Fatalf("registration not retried: %v", f.dir)
	}
	if got := f.mailbox(t, dst.Key(), 0).fetch().QueueLen; got != 2 {
		t.Fatalf("destination queue = %d, want 2", got)
	}
}

// TestSenderRegistersOnPushDup pins the retry-after-ambiguous-error case:
// a resent push that dedups must still register the destination while
// its queue is nonempty (the first attempt may have died pre-registration).
func TestSenderRegistersOnPushDup(t *testing.T) {
	f := newFakeInvoker()
	dst := Address{FnType: "dst", ID: "1"}
	// First attempt applied the push but crashed before registering: model
	// it with a direct PushEnvelope under the sender's identity and seq 1.
	env := Envelope{To: dst, From: "client/1", Seq: 1, Name: "a"}
	if r, err := PushEnvelope(context.Background(), f, env, 0); err != nil || r.Status != PushOK {
		t.Fatalf("simulated first push: %+v %v", r, err)
	}
	// The restarted client resends through a fresh Sender (same identity,
	// seq restarts at 1) — the push dedups, the registration must not.
	s := NewSender(f, "client/1", 0)
	if err := s.Send(context.Background(), dst, "a", nil, ""); err != nil {
		t.Fatalf("resend: %v", err)
	}
	if !f.dir[dst.DirEntry()] {
		t.Fatalf("destination not registered on dup resend: %v", f.dir)
	}
	if got := f.mailbox(t, dst.Key(), 0).fetch().QueueLen; got != 1 {
		t.Fatalf("destination queue = %d, want 1 (dup enqueued)", got)
	}
}

// TestValidateFnTypeAndAddress pins the addressing invariants: directory
// entries split at the first '/', so types with slashes (or empty IDs)
// would produce entries that parse back to undispatchable addresses.
func TestValidateFnTypeAndAddress(t *testing.T) {
	hs := NewHandlerSet()
	noop := func(*Ctx, Msg) error { return nil }
	for _, bad := range []string{"", "_hidden", "a/b"} {
		if err := hs.Register(bad, noop); err == nil {
			t.Errorf("Register(%q) accepted", bad)
		}
	}
	if err := hs.Register("ok", noop); err != nil {
		t.Fatalf("Register(ok): %v", err)
	}
	s := NewSender(newFakeInvoker(), "client/1", 0)
	for _, bad := range []Address{
		{FnType: "a/b", ID: "x"},
		{FnType: "", ID: "x"},
		{FnType: "ok", ID: ""},
	} {
		if err := s.Send(context.Background(), bad, "m", nil, ""); err == nil {
			t.Errorf("Send to %q accepted", bad)
		}
	}
	c := &Ctx{}
	if err := c.Send(Address{FnType: "a/b", ID: "x"}, "m", nil); err == nil {
		t.Error("Ctx.Send to slashed type accepted")
	}
}

// TestFutureAlreadySetSurvivesWire pins that the already-completed-future
// verdict rests on an error sentinel, not on message text: the decoded
// wire error (bare and wrapped) must satisfy errors.Is.
func TestFutureAlreadySetSurvivesWire(t *testing.T) {
	bare := core.DecodeError(core.EncodeError(objects.ErrFutureAlreadySet))
	if !isFutureAlreadySet(bare) {
		t.Fatalf("bare wire error not recognised: %v", bare)
	}
	wrapped := core.DecodeError(objects.ErrFutureAlreadySet.Error() + ": key rk")
	if !isFutureAlreadySet(wrapped) {
		t.Fatalf("wrapped wire error not recognised: %v", wrapped)
	}
	if isFutureAlreadySet(errors.New("some other failure")) {
		t.Fatal("unrelated error recognised as future-already-set")
	}
}
