package statefun

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/telemetry"
)

// Handler processes one message addressed to an instance of its function
// type. Side effects must go through the Ctx (state update, sends,
// reply): they commit atomically after the handler returns nil, so a
// crash, panic or error mid-handler leaves no partial effects and the
// message is redelivered. Handlers therefore run at-least-once and must
// not mutate anything outside the Ctx.
type Handler func(c *Ctx, m Msg) error

// ErrNoHandler is returned when a message targets a function type with
// no registered handler.
var ErrNoHandler = errors.New("statefun: no handler registered for function type")

// HandlerSet maps function types to their handlers.
type HandlerSet struct {
	mu sync.RWMutex
	m  map[string]Handler
}

// NewHandlerSet builds an empty handler set.
func NewHandlerSet() *HandlerSet { return &HandlerSet{m: make(map[string]Handler)} }

// Register adds the handler for fnType; re-registering a type is an error.
func (s *HandlerSet) Register(fnType string, h Handler) error {
	if err := ValidateFnType(fnType); err != nil {
		return err
	}
	if h == nil {
		return errors.New("statefun: nil handler")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.m[fnType]; dup {
		return fmt.Errorf("statefun: function type %q already registered", fnType)
	}
	s.m[fnType] = h
	return nil
}

// Lookup returns the handler for fnType, or nil.
func (s *HandlerSet) Lookup(fnType string) Handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[fnType]
}

// Msg is the message view handed to a handler.
type Msg struct {
	env Envelope
}

// Name returns the message name the sender chose.
func (m Msg) Name() string { return m.env.Name }

// Sender returns the sending principal's identity (a peer instance's
// mailbox key, or a client identity).
func (m Msg) Sender() string { return m.env.From }

// ReplyKey returns the reply-future key the sender is waiting on, or ""
// for a fire-and-forget message. Handlers may answer immediately via
// Ctx.Reply or stash the key in state and answer later via Ctx.SendReply.
func (m Msg) ReplyKey() string { return m.env.ReplyTo }

// RawBody returns the encoded message body.
func (m Msg) RawBody() []byte { return m.env.Body }

// Body decodes the message body into v.
func (m Msg) Body(v any) error { return DecodeBody(m.env.Body, v) }

// Ctx collects one handler run's effects: the state update, outgoing
// sends and replies. Nothing is visible to anyone until the runner
// commits the whole set as one mailbox invocation.
type Ctx struct {
	ctx      context.Context
	inv      core.Invoker
	self     Address
	task     Task
	newState []byte
	setState bool
	sends    []Envelope
}

// Context returns the invocation context (cancelled on engine shutdown
// or FaaS timeout).
func (c *Ctx) Context() context.Context { return c.ctx }

// Self returns the address of the running instance.
func (c *Ctx) Self() Address { return c.self }

// Invoker returns the DSO client, for handlers that read or write shared
// objects beyond their private state. Such calls take effect immediately
// and are NOT covered by the commit atomicity — prefer private state and
// sends where exactly-once matters.
func (c *Ctx) Invoker() core.Invoker { return c.inv }

// State decodes the instance's private state into v, reporting whether
// any state exists yet.
func (c *Ctx) State(v any) (bool, error) {
	if !c.task.HasState {
		return false, nil
	}
	if err := DecodeBody(c.task.State, v); err != nil {
		return true, err
	}
	return true, nil
}

// SetState stages v as the instance's new private state.
func (c *Ctx) SetState(v any) error {
	data, err := EncodeBody(v)
	if err != nil {
		return err
	}
	c.newState = data
	c.setState = true
	return nil
}

// Send stages a message to another instance (or to self); it is
// enqueued via the outbox after commit, exactly once.
func (c *Ctx) Send(to Address, name string, body any) error {
	if err := ValidateAddress(to); err != nil {
		return err
	}
	data, err := EncodeBody(body)
	if err != nil {
		return err
	}
	c.sends = append(c.sends, Envelope{To: to, Name: name, Body: data})
	return nil
}

// SendReply stages a reply body for the future stored under key (a
// ReplyKey captured from an earlier message).
func (c *Ctx) SendReply(key string, body any) error {
	if key == "" {
		return errors.New("statefun: empty reply key")
	}
	data, err := EncodeBody(body)
	if err != nil {
		return err
	}
	c.sends = append(c.sends, Envelope{To: Address{FnType: ReplyFnType, ID: key}, Body: data})
	return nil
}

// Reply stages a reply to the current message's sender; it is an error
// if the message carries no reply key.
func (c *Ctx) Reply(body any) error {
	if c.task.Env.ReplyTo == "" {
		return errors.New("statefun: message has no reply key")
	}
	return c.SendReply(c.task.Env.ReplyTo, body)
}

// RunReport is what a runner tells the dispatch engine about one drain
// pass: how many messages committed, what is left queued or undelivered,
// and which other instances received messages (dirty hints that let the
// engine dispatch them without waiting for a poll).
type RunReport struct {
	Processed int64
	QueueLen  int64
	OutboxLen int64
	Dirty     []Address
}

// Runner executes one drain pass over an instance's mailbox. The engine
// treats it as a black box so the same scheduler drives both in-process
// execution (Proc) and FaaS-shipped execution (the runtime's runner
// function).
type Runner interface {
	Run(ctx context.Context, addr Address) (RunReport, error)
}

// Proc executes instances in-process against a DSO client: fetch the
// head message, run the handler, commit the effect set, forward the
// outbox. It is safe for concurrent use and safe to run in several
// processes at once — a doubly-dispatched instance costs a redundant
// handler run whose commit is a no-op, never a double-applied effect.
type Proc struct {
	inv        core.Invoker
	handlers   *HandlerSet
	mailboxCap int64
	maxBatch   int

	cMessages     *telemetry.Counter
	cSends        *telemetry.Counter
	cReplies      *telemetry.Counter
	cFull         *telemetry.Counter
	cFailures     *telemetry.Counter
	cRedeliveries *telemetry.Counter
	hDispatch     *telemetry.Histogram
}

// ProcOptions configures a Proc.
type ProcOptions struct {
	// MailboxCap is the queue capacity for mailboxes the proc creates
	// when forwarding (0 = DefaultMailboxCap).
	MailboxCap int64
	// MaxBatch bounds how many messages one Run drains before yielding
	// the worker (0 = 32).
	MaxBatch int
	// Metrics receives the statefun.* counters (nil = private registry).
	Metrics *telemetry.Registry
}

// NewProc builds a runner executing handlers in-process.
func NewProc(inv core.Invoker, handlers *HandlerSet, opts ProcOptions) *Proc {
	if opts.MailboxCap <= 0 {
		opts.MailboxCap = DefaultMailboxCap
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 32
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Proc{
		inv:           inv,
		handlers:      handlers,
		mailboxCap:    opts.MailboxCap,
		maxBatch:      opts.MaxBatch,
		cMessages:     reg.Counter(telemetry.MetStatefunMessages),
		cSends:        reg.Counter(telemetry.MetStatefunSends),
		cReplies:      reg.Counter(telemetry.MetStatefunReplies),
		cFull:         reg.Counter(telemetry.MetStatefunMailboxFull),
		cFailures:     reg.Counter(telemetry.MetStatefunHandlerFailures),
		cRedeliveries: reg.Counter(telemetry.MetStatefunRedeliveries),
		hDispatch:     reg.Histogram(telemetry.HistStatefunDispatch),
	}
}

// Run drains up to MaxBatch messages from the instance's mailbox.
func (p *Proc) Run(ctx context.Context, addr Address) (RunReport, error) {
	var report RunReport
	for n := 0; n < p.maxBatch; n++ {
		task, err := p.fetch(ctx, addr)
		if err != nil {
			return report, err
		}
		report.QueueLen = task.QueueLen
		report.OutboxLen = task.OutLen
		if !task.Has {
			// Nothing queued, but a previous run (possibly on a crashed
			// node) may have committed effects it never forwarded.
			if task.OutLen > 0 {
				pending, err := p.pendingOutbox(ctx, addr)
				if err != nil {
					return report, err
				}
				if err := p.deliver(ctx, addr, pending, &report); err != nil {
					return report, err
				}
			}
			return report, nil
		}
		h := p.handlers.Lookup(addr.FnType)
		if h == nil {
			return report, fmt.Errorf("%w: %q", ErrNoHandler, addr.FnType)
		}
		started := time.Now()
		c := &Ctx{ctx: ctx, inv: p.inv, self: addr, task: task}
		if err := runHandler(h, c, Msg{env: task.Env}); err != nil {
			p.cFailures.Inc()
			return report, fmt.Errorf("statefun: handler %s: %w", addr, err)
		}
		res, err := p.commit(ctx, addr, CommitReq{
			EnqSeq:   task.EnqSeq,
			From:     addr.Key(),
			State:    c.newState,
			SetState: c.setState,
			Sends:    c.sends,
		})
		if err != nil {
			return report, err
		}
		if res.Applied {
			report.Processed++
			report.QueueLen = task.QueueLen - 1
			p.cMessages.Inc()
			p.hDispatch.Observe(time.Since(started))
		} else {
			p.cRedeliveries.Inc()
		}
		report.OutboxLen = int64(len(res.Pending))
		if err := p.deliver(ctx, addr, res.Pending, &report); err != nil {
			return report, err
		}
	}
	return report, nil
}

// runHandler runs h with panic containment, so a panicking handler is a
// redelivered message, not a dead dispatcher.
func runHandler(h Handler, c *Ctx, m Msg) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("handler panic: %v", r)
		}
	}()
	return h(c, m)
}

// deliver forwards pending outbox entries in sequence order. A full
// destination suspends only its own later entries (ordering is
// per-destination, and skipping everything would let two backpressuring
// instances head-of-line-block each other forever); any other failure
// stops the pass. The contiguous delivered prefix is then acked —
// entries delivered past a skipped one stay in the outbox and dedup as
// PushDup when resent.
func (p *Proc) deliver(ctx context.Context, addr Address, pending []OutEntry, report *RunReport) error {
	var acked uint64
	var ackedCount int
	contiguous := true
	var full map[string]bool
	var stopErr error
deliverLoop:
	for _, e := range pending {
		if e.Env.To.FnType == ReplyFnType {
			if err := DeliverReply(ctx, p.inv, e.Env); err != nil {
				stopErr = err
				break
			}
			p.cReplies.Inc()
		} else {
			if full[e.Env.To.Key()] {
				// An earlier entry bounced off this destination's capacity;
				// keep its later entries queued to preserve their order.
				contiguous = false
				continue
			}
			res, err := PushEnvelope(ctx, p.inv, e.Env, p.mailboxCap)
			if err != nil {
				stopErr = err
				break
			}
			switch res.Status {
			case PushFull:
				// Backpressure: leave this destination's entries in the
				// outbox; the next run retries them in order.
				p.cFull.Inc()
				if full == nil {
					full = make(map[string]bool)
				}
				full[e.Env.To.Key()] = true
				contiguous = false
				continue
			case PushOK:
				p.cSends.Inc()
				report.Dirty = append(report.Dirty, e.Env.To)
				if res.QueueLen == 1 {
					if err := RegisterInstance(ctx, p.inv, e.Env.To); err != nil {
						stopErr = err
						break deliverLoop
					}
				}
			case PushDup:
				// The push applied on an earlier attempt that may have died
				// between pushing and registering the destination, so the
				// QueueLen==1 transition is unobservable now. Registration
				// is idempotent: re-register (and re-hint) whenever the
				// queue is nonempty rather than strand the message.
				if res.QueueLen > 0 {
					if err := RegisterInstance(ctx, p.inv, e.Env.To); err != nil {
						stopErr = err
						break deliverLoop
					}
					report.Dirty = append(report.Dirty, e.Env.To)
				}
			}
		}
		if contiguous {
			acked = e.Seq
			ackedCount++
		}
	}
	if acked > 0 {
		if err := p.ackOut(ctx, addr, acked); err != nil {
			return err
		}
		report.OutboxLen = int64(len(pending) - ackedCount)
	}
	return stopErr
}

// fetch reads the instance's head task (read-only, lease-cacheable).
func (p *Proc) fetch(ctx context.Context, addr Address) (Task, error) {
	res, err := p.inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: addr.Key()},
		Method:  "Fetch",
		Init:    []any{p.mailboxCap},
		Persist: true,
	})
	return resultAs[Task](res, err)
}

// commit applies one handler run's effect set.
func (p *Proc) commit(ctx context.Context, addr Address, req CommitReq) (CommitResult, error) {
	res, err := p.inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: addr.Key()},
		Method:  "Commit",
		Args:    []any{req},
		Init:    []any{p.mailboxCap},
		Persist: true,
	})
	return resultAs[CommitResult](res, err)
}

// pendingOutbox reads the undelivered outbox entries.
func (p *Proc) pendingOutbox(ctx context.Context, addr Address) ([]OutEntry, error) {
	res, err := p.inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: addr.Key()},
		Method:  "Outbox",
		Init:    []any{p.mailboxCap},
		Persist: true,
	})
	return resultAs[[]OutEntry](res, err)
}

// ackOut prunes delivered outbox entries up to and including seq upTo.
func (p *Proc) ackOut(ctx context.Context, addr Address, upTo uint64) error {
	_, err := p.inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: addr.Key()},
		Method:  "AckOut",
		Args:    []any{int64(upTo)},
		Init:    []any{p.mailboxCap},
		Persist: true,
	})
	return err
}

// StateOf reads an instance's private state into v (read-only),
// reporting whether any state exists.
func StateOf(ctx context.Context, inv core.Invoker, addr Address, mailboxCap int64, v any) (bool, error) {
	if mailboxCap <= 0 {
		mailboxCap = DefaultMailboxCap
	}
	res, err := inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: addr.Key()},
		Method:  "Fetch",
		Init:    []any{mailboxCap},
		Persist: true,
	})
	task, err := resultAs[Task](res, err)
	if err != nil || !task.HasState {
		return false, err
	}
	return true, DecodeBody(task.State, v)
}

// StatusOf reads the instance's mailbox status (read-only).
func StatusOf(ctx context.Context, inv core.Invoker, addr Address, mailboxCap int64) (MailboxStatus, error) {
	if mailboxCap <= 0 {
		mailboxCap = DefaultMailboxCap
	}
	res, err := inv.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: TypeMailbox, Key: addr.Key()},
		Method:  "Status",
		Init:    []any{mailboxCap},
		Persist: true,
	})
	return resultAs[MailboxStatus](res, err)
}
