// Package client implements the DSO client: it routes object invocations
// to the owning node using the consistent-hashing ring of the current view,
// injects the simulated client-to-server network latency, and transparently
// retries on topology changes (paper Section 4.3: every access to a shared
// object is mediated by a proxy; this package is what proxies bind to).
package client

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/netsim"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// ViewSource supplies the current membership view. membership.Directory
// implements it directly; a remote deployment can wrap an RPC fetch.
type ViewSource interface {
	View() membership.View
}

// StaticView is a fixed single view (for deployments without a live
// directory, e.g. a static server list).
type StaticView membership.View

// View implements ViewSource.
func (s StaticView) View() membership.View { return membership.View(s) }

var _ ViewSource = StaticView{}

// Config parameterizes a client.
type Config struct {
	// Transport must match the cluster's transport.
	Transport rpc.Transport
	// Views supplies membership.
	Views ViewSource
	// Profile injects the client<->DSO network latency. Nil means no
	// injected latency.
	Profile *netsim.Profile
	// Retry governs re-routing after topology changes: exponential
	// backoff with jitter so a fleet of cloud threads does not retry in
	// lockstep. The zero value means core.DefaultClientRetry (unless the
	// deprecated fields below are set, which are honored for
	// compatibility).
	Retry core.RetryPolicy
	// AttemptTimeout, when set, bounds each individual attempt. Without
	// it a blackholed response (the request was applied but the reply was
	// lost in the network) parks the call until the connection breaks or
	// the caller's context expires; with it the attempt times out and the
	// client retries the same stamped invocation, which the server's
	// at-most-once window answers by replay instead of re-executing. The
	// caller's context still bounds the call as a whole.
	AttemptTimeout time.Duration
	// Telemetry, when non-nil, records client spans (one per invocation,
	// propagated to the serving node through the wire), RPC round-trip
	// and per-object-type latency histograms, and re-route counters.
	Telemetry *telemetry.Telemetry
	// ReadReplicas, when > 1, spreads read-only invocations on persistent
	// objects round-robin across the object's replica group instead of
	// always hitting the primary. Followers serve such reads under a
	// primary-granted lease (server follower reads) and bounce to the
	// primary when they cannot, so any value is safe; set it to the
	// cluster's replication factor to use every copy. Zero or one routes
	// every call to the primary (the classic path).
	ReadReplicas int
	// Cache, when non-nil, enables the lease-based read cache: read-only
	// invocations (per core.RegisterReadOnlyMethods) on leased objects are
	// answered from a local copy without a network round trip, kept
	// coherent by server-pushed invalidations (see cache.go and DESIGN.md
	// §5d). The cluster's nodes must run with leases enabled
	// (server.Config.LeaseTTL > 0) for grants to succeed; against a
	// lease-less cluster every read simply falls back to the remote path.
	Cache *CacheConfig
	// Write is the write-path policy applied to this client's
	// connections, the mutation-side sibling of Cache/ReadReplicas. At
	// the client the only transport-level knob is
	// WritePolicy.DirectWrites (frame coalescing off for debugging);
	// the batching knobs act server side, where the cluster applies the
	// same struct to every node (server.Config.Write) — pass one policy
	// through cluster.Options.Write or crucial.Options.Write and both
	// halves stay in sync.
	Write core.WritePolicy

	// MaxRetries bounds total attempts per invocation.
	//
	// Deprecated: set Retry.MaxRetries (attempts = retries + 1) instead.
	MaxRetries int
	// RetryBackoff is the fixed pause between attempts.
	//
	// Deprecated: set Retry.Backoff (plus Multiplier/Jitter) instead.
	RetryBackoff time.Duration
}

// retryPolicy resolves the configured policy, honoring the deprecated
// fixed-pause knobs when the new one is unset.
func (cfg Config) retryPolicy() core.RetryPolicy {
	if cfg.Retry != (core.RetryPolicy{}) {
		return cfg.Retry
	}
	if cfg.MaxRetries > 0 || cfg.RetryBackoff > 0 {
		p := core.RetryPolicy{MaxRetries: cfg.MaxRetries - 1, Backoff: cfg.RetryBackoff}
		if cfg.MaxRetries <= 0 {
			p.MaxRetries = core.DefaultClientRetry().MaxRetries
		}
		if p.Backoff <= 0 {
			p.Backoff = 2 * time.Millisecond
		}
		return p
	}
	return core.DefaultClientRetry()
}

// routes is an immutable routing snapshot: the installed view, its ring,
// and the pooled connections keyed by address. The hot path reads the
// whole bundle with one atomic load; updates (view refresh, dial, drop)
// copy-on-write under the client's update mutex and publish a fresh
// snapshot. A published snapshot — including its conns map — is never
// mutated again.
type routes struct {
	view  membership.View
	ring  *ring.Ring
	conns map[string]*rpc.Client
}

// Client invokes methods on shared objects. Safe for concurrent use by any
// number of goroutines (cloud threads share one client per process): the
// invocation fast path is lock-free (one atomic snapshot load per call),
// so a fleet of cloud threads no longer serializes on a client mutex.
type Client struct {
	cfg     Config
	profile *netsim.Profile
	retry   core.RetryPolicy
	log     *slog.Logger

	// id and seq form the at-most-once stamp: every invocation is sent as
	// (id, seq.Add(1)) and keeps that stamp across all its retries, so
	// servers can recognize a retry of an already-applied call and replay
	// the recorded response (see internal/server/dedup.go).
	id  uint64
	seq atomic.Uint64

	// readSeq round-robins follower-read routing across a replica group
	// (see Config.ReadReplicas). Advancing it per routed read also makes
	// retries naturally move on to the next replica — and eventually the
	// primary — when a follower cannot serve.
	readSeq atomic.Uint64

	// Telemetry handles; nil (no-op) when no bundle was configured.
	instrumented bool
	tracer       *telemetry.Tracer
	metrics      *telemetry.Registry
	objTrack     *telemetry.ObjectTracker
	cCalls       *telemetry.Counter
	cReroutes    *telemetry.Counter
	cFlushes     *telemetry.Counter
	hRPC         *telemetry.Histogram

	// cache is the lease-based read cache; nil when Config.Cache is unset
	// (reads take the classic remote path at zero cost).
	cache *leaseCache

	// routes is the lock-free routing snapshot; mu serializes writers
	// (refreshView, dial, dropConn, Close) only.
	routes atomic.Pointer[routes]
	mu     sync.Mutex
	closed bool
}

// New builds a client and loads the initial view.
func New(cfg Config) (*Client, error) {
	if cfg.Transport == nil {
		return nil, errors.New("client: config needs a Transport")
	}
	if cfg.Views == nil {
		return nil, errors.New("client: config needs a ViewSource")
	}
	if cfg.Profile == nil {
		cfg.Profile = netsim.Zero()
	}
	c := &Client{
		cfg:     cfg,
		profile: cfg.Profile,
		retry:   cfg.retryPolicy(),
		log:     telemetry.Logger(telemetry.CompClient),
		id:      newClientID(),
	}
	c.routes.Store(&routes{conns: make(map[string]*rpc.Client)})
	if cfg.Telemetry != nil {
		c.instrumented = true
		c.tracer = cfg.Telemetry.Tracer()
		c.metrics = cfg.Telemetry.Metrics()
		c.objTrack = cfg.Telemetry.Objects()
		c.cCalls = c.metrics.Counter(telemetry.MetClientCalls)
		c.cReroutes = c.metrics.Counter(telemetry.MetClientReroutes)
		c.cFlushes = c.metrics.Counter(telemetry.MetClientWriteFlushes)
		c.hRPC = c.metrics.Histogram(telemetry.HistClientRPC)
	}
	if cfg.Cache != nil {
		lc, err := newLeaseCache(c, *cfg.Cache)
		if err != nil {
			return nil, err
		}
		c.cache = lc
	}
	c.refreshView()
	return c, nil
}

// newClientID draws a random at-most-once identity. Client IDs must be
// unique across *processes*, not just within one: two one-shot CLI
// invocations hitting the same server must never share a stamp, or the
// second would be answered from the first's dedup window instead of
// executing (a process-local counter fails exactly that way — every
// fresh process would start at 1). Zero is the reserved "unstamped"
// value old clients send, so it is never returned.
func newClientID() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	// crypto/rand unavailable or drew zero: a time-derived id still
	// distinguishes processes (the |1 keeps it nonzero).
	return uint64(time.Now().UnixNano()) | 1
}

// refreshView reloads membership and publishes a new routing snapshot.
func (c *Client) refreshView() {
	v := c.cfg.Views.View()
	c.mu.Lock()
	cur := c.routes.Load()
	if v.ID >= cur.view.ID {
		// The conns map is shared with the previous snapshot: published
		// maps are immutable, so aliasing is safe.
		c.routes.Store(&routes{view: v, ring: v.Ring(), conns: cur.conns})
	}
	c.mu.Unlock()
}

// target picks the primary node for a reference from a routing snapshot,
// honoring the view's directive table: a key the rebalancer pinned routes
// to its directed primary, everything else to the ring owner. A directive
// flip arrives as a new view, so the ordinary refresh-and-retry loop
// re-routes pinned keys with no extra machinery.
func (rt *routes) target(ref core.Ref) (ring.NodeID, string, error) {
	if rt.ring == nil || rt.ring.Size() == 0 {
		return "", "", errors.New("client: no DSO nodes in view")
	}
	set := rt.view.Directives.Place(rt.ring, ref.String(), 1)
	if len(set) == 0 {
		return "", "", errors.New("client: no owner for " + ref.String())
	}
	owner := set[0]
	addr, ok := rt.view.Addrs[owner]
	if !ok {
		return "", "", fmt.Errorf("client: no address for node %s", owner)
	}
	return owner, addr, nil
}

// route resolves ref to its owner's pooled connection. The common case —
// warm connection, stable view — touches no locks: one atomic snapshot
// load, one ring lookup, one map hit.
func (c *Client) route(ref core.Ref) (string, *rpc.Client, error) {
	rt := c.routes.Load()
	_, addr, err := rt.target(ref)
	if err != nil {
		return "", nil, err
	}
	if rc, ok := rt.conns[addr]; ok {
		return addr, rc, nil
	}
	rc, err := c.dial(addr)
	return addr, rc, err
}

// routeFor resolves the connection for one invocation attempt: read-only
// calls on persistent objects fan out round-robin across the replica group
// when Config.ReadReplicas > 1 (follower reads); everything else goes to
// the primary.
func (c *Client) routeFor(inv core.Invocation) (string, *rpc.Client, error) {
	if c.cfg.ReadReplicas <= 1 || !inv.ReadOnly || !inv.Persist {
		return c.route(inv.Ref)
	}
	rt := c.routes.Load()
	if rt.ring == nil || rt.ring.Size() == 0 {
		return "", nil, errors.New("client: no DSO nodes in view")
	}
	group := rt.view.Directives.Place(rt.ring, inv.Ref.String(), c.cfg.ReadReplicas)
	if len(group) == 0 {
		return "", nil, errors.New("client: no owner for " + inv.Ref.String())
	}
	id := group[c.readSeq.Add(1)%uint64(len(group))]
	addr, ok := rt.view.Addrs[id]
	if !ok {
		return "", nil, fmt.Errorf("client: no address for node %s", id)
	}
	if rc, ok := rt.conns[addr]; ok {
		return addr, rc, nil
	}
	rc, err := c.dial(addr)
	return addr, rc, err
}

// dial establishes (or returns a concurrently established) connection to
// addr and publishes it in a new snapshot. This is the slow path, taken
// once per address until the connection breaks.
func (c *Client) dial(addr string) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, rpc.ErrClientClosed
	}
	cur := c.routes.Load()
	if rc, ok := cur.conns[addr]; ok {
		return rc, nil
	}
	netConn, err := c.cfg.Transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	rc := rpc.NewClient(netConn)
	rc.SetWritePolicy(c.cfg.Write)
	if c.instrumented {
		// The transport layer feeds the round-trip histogram directly, so
		// it also covers server-side blocking time (barrier waits etc.).
		hRPC := c.hRPC
		rc.SetObserver(func(_ uint8, rtt time.Duration, _ int, _ error) {
			hRPC.Observe(rtt)
		})
		cFlushes := c.cFlushes
		rc.SetFlushHook(func() { cFlushes.Inc() })
	}
	conns := make(map[string]*rpc.Client, len(cur.conns)+1)
	for a, cl := range cur.conns {
		conns[a] = cl
	}
	conns[addr] = rc
	c.routes.Store(&routes{view: cur.view, ring: cur.ring, conns: conns})
	return rc, nil
}

// dropConn discards a broken pooled connection.
func (c *Client) dropConn(addr string) {
	c.mu.Lock()
	cur := c.routes.Load()
	if rc, ok := cur.conns[addr]; ok {
		_ = rc.Close()
		conns := make(map[string]*rpc.Client, len(cur.conns))
		for a, cl := range cur.conns {
			if a != addr {
				conns[a] = cl
			}
		}
		c.routes.Store(&routes{view: cur.view, ring: cur.ring, conns: conns})
	}
	c.mu.Unlock()
}

// retryable reports whether an invocation error warrants a re-route.
// Local transport failures are matched structurally with errors.Is; the
// substring checks at the end are a documented last resort for errors
// that crossed the wire as plain text (core.Response.Err) and lost their
// type, plus platform error strings not covered by the sentinels.
func retryable(err error) bool {
	if errors.Is(err, core.ErrWrongNode) || errors.Is(err, core.ErrRebalancing) ||
		errors.Is(err, core.ErrStopped) || errors.Is(err, rpc.ErrClientClosed) {
		return true
	}
	// Structured transport errors: closed sockets and pipes, truncated
	// streams, peer resets. These cover TCP (syscall errnos wrapped in
	// *net.OpError) and the in-memory pipe transport.
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	// Last resort: substring matching on error text, for remote errors
	// stringified by the wire format.
	msg := err.Error()
	return strings.Contains(msg, "connection") || strings.Contains(msg, "closed") ||
		strings.Contains(msg, "EOF") || strings.Contains(msg, "pipe")
}

// InvokeObject sends one method invocation and returns its results,
// implementing core.Invoker. It pays one injected network hop each way and
// retries transparently when the cluster topology shifts underneath it,
// backing off exponentially with jitter so re-routes after a membership
// change spread out instead of stampeding.
func (c *Client) InvokeObject(ctx context.Context, inv core.Invocation) ([]any, error) {
	// Telemetry: one client.invoke span per logical call. Its identity
	// travels inside the Invocation so the serving node can attach its
	// server-side spans to this trace across the RPC boundary.
	var span *telemetry.Span
	if c.instrumented {
		callStart := time.Now()
		var sctx context.Context
		sctx, span = c.tracer.Start(ctx, telemetry.SpanClientInvoke)
		ctx = sctx
		span.SetAttr(telemetry.AttrObjectType, inv.Ref.Type)
		span.SetAttr(telemetry.AttrMethod, inv.Method)
		sc := span.Context()
		inv.Trace = core.TraceContext{TraceID: sc.TraceID, SpanID: sc.SpanID}
		c.cCalls.Inc()
		// Per-object accounting before the cache check, so hot keys show
		// client-side pressure even when every read is a local cache hit.
		c.objTrack.ObserveCall(telemetry.ObjectKey{Type: inv.Ref.Type, Key: inv.Ref.Key})
		typeHist := c.metrics.Histogram(telemetry.MetClientCallPrefix + inv.Ref.Type)
		defer func() {
			typeHist.Observe(time.Since(callStart))
			span.End()
		}()
	}

	// Classify the call against the read-only registry. The flag rides the
	// wire (servers re-validate it against their own registry) and steers
	// every layer of the read path: the lease cache below, follower reads,
	// and the server's local-read fast path.
	if !inv.ReadOnly {
		inv.ReadOnly = core.IsReadOnlyMethod(inv.Ref.Type, inv.Method)
	}
	// Read path: a read-only call on a leased object is answered locally,
	// no stamp, no encode, no network. ok=false falls through to the
	// remote invoke (and the span above still records the call).
	if c.cache != nil && inv.ReadOnly {
		if results, err, ok := c.cache.read(ctx, inv); ok {
			return results, err
		}
	}

	// Stamp before encoding: the payload below is reused verbatim across
	// retries, so every retry carries the same (clientID, seq) and the
	// server can deduplicate re-executions of an already-applied call.
	if !inv.Stamped() {
		inv.ClientID = c.id
		inv.Seq = c.seq.Add(1)
	}

	// Encode into a pooled buffer: the payload is reused across retry
	// attempts and recycled when the call completes (the RPC layer copies
	// it into the connection's write buffer before Call returns).
	payload, err := core.AppendInvocation(rpc.GetBuffer(0), inv)
	if err != nil {
		return nil, err
	}
	defer rpc.PutBuffer(payload)
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts(); attempt++ {
		if attempt > 0 {
			c.cReroutes.Inc()
			span.SetAttr(telemetry.AttrAttempt, fmt.Sprint(attempt+1))
			c.log.DebugContext(ctx, "re-routing after retryable error",
				"ref", inv.Ref.String(), "method", inv.Method,
				"attempt", attempt+1, "err", lastErr)
			c.refreshView()
			if err := netsim.Sleep(ctx, c.profile.Scaled(c.retry.Delay(attempt, nil))); err != nil {
				return nil, err
			}
		}
		addr, rc, err := c.routeFor(inv)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.profile.Delay(ctx, c.profile.DSONet); err != nil {
			return nil, err
		}
		callCtx := ctx
		var cancel context.CancelFunc
		if c.cfg.AttemptTimeout > 0 {
			callCtx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		}
		raw, err := rc.Call(callCtx, server.KindInvoke, payload)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			// Only the caller's context ends the call; an expired attempt
			// context means this attempt timed out (e.g. the response was
			// lost in the network) and the stamped retry is safe.
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c.dropConn(addr)
			lastErr = err
			continue
		}
		if err := c.profile.Delay(ctx, c.profile.DSONet); err != nil {
			rpc.PutBuffer(raw)
			return nil, err
		}
		resp, err := core.DecodeResponse(raw)
		// The decoder copies everything out of the frame, so the response
		// buffer can rejoin the pool immediately.
		rpc.PutBuffer(raw)
		if err != nil {
			return nil, err
		}
		if remote := core.DecodeError(resp.Err); remote != nil {
			if retryable(remote) {
				lastErr = remote
				continue
			}
			span.SetAttr(telemetry.AttrError, remote.Error())
			return nil, remote
		}
		return resp.Results, nil
	}
	span.SetAttr(telemetry.AttrError, fmt.Sprint(lastErr))
	c.log.WarnContext(ctx, "invocation failed after all attempts",
		"ref", inv.Ref.String(), "method", inv.Method,
		"attempts", c.retry.Attempts(), "err", lastErr)
	return nil, fmt.Errorf("client: %s.%s failed after %d attempts: %w",
		inv.Ref, inv.Method, c.retry.Attempts(), lastErr)
}

var _ core.Invoker = (*Client)(nil)

// Call is a convenience wrapper building the Invocation inline.
func (c *Client) Call(ctx context.Context, ref core.Ref, method string, args ...any) ([]any, error) {
	return c.InvokeObject(ctx, core.Invocation{Ref: ref, Method: method, Args: args})
}

// ID returns the client's dedup identity — the ClientID stamped on every
// invocation. Layers that need a process-unique principal name (e.g. the
// stateful-functions sender identity) derive it from this.
func (c *Client) ID() uint64 { return c.id }

// Close releases all pooled connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.cache != nil {
		c.cache.close()
	}
	cur := c.routes.Load()
	for _, rc := range cur.conns {
		_ = rc.Close()
	}
	c.routes.Store(&routes{view: cur.view, ring: cur.ring, conns: make(map[string]*rpc.Client)})
	return nil
}
