package client

import (
	"context"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/rpc"
	"crucial/internal/server"
)

// RemoteViews is a ViewSource for clients outside the cluster process —
// deployments where the client cannot hold a live membership.Directory
// and would otherwise route from a static member list. A static view
// breaks the moment the rebalancer installs a placement directive: the
// client keeps hashing a pinned key to its old primary, which bounces
// every attempt with ErrWrongNode, and the retry loop's refreshView can
// never learn better. RemoteViews closes that loop by asking the cluster
// itself: it seeds from the static list, then re-fetches the installed
// view — members, addresses, and the directive table — over KindView
// whenever the client refreshes.
//
// View never fails: if every member is unreachable it returns the last
// known view (initially the seed), which is exactly the static behavior.
// Fetches are rate-limited (MinRefresh) so a retry storm collapses into
// one RPC, and view IDs only move forward — a lagging member cannot roll
// the client back to placement it already moved past.
type RemoteViews struct {
	// Transport must match the cluster's transport (rpc.TCP{} for real
	// deployments). FetchTimeout bounds one KindView round trip (default
	// 2s); MinRefresh is the minimum interval between fetches (default
	// 100ms, short enough that the client's default retry cycle crosses
	// at least one real refresh) — View calls inside it serve the cached
	// view.
	Transport    rpc.Transport
	FetchTimeout time.Duration
	MinRefresh   time.Duration

	mu   sync.Mutex
	view membership.View
	next int // round-robin cursor over the seed addresses
	last time.Time
}

// NewRemoteViews builds a RemoteViews seeded with view (typically built
// from a -members flag: ID 0, no directives). The seed's address table
// is the contact list for fetches.
func NewRemoteViews(tr rpc.Transport, seed membership.View) *RemoteViews {
	return &RemoteViews{Transport: tr, view: seed}
}

// View implements ViewSource: the cached view, refreshed from the
// cluster when the rate limit allows.
func (rv *RemoteViews) View() membership.View {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	minRefresh := rv.MinRefresh
	if minRefresh <= 0 {
		minRefresh = 100 * time.Millisecond
	}
	if time.Since(rv.last) < minRefresh {
		return rv.view
	}
	rv.last = time.Now()

	timeout := rv.FetchTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	// Contact members round-robin starting after the last responsive one,
	// so one dead seed doesn't tax every refresh with a dial timeout.
	members := rv.view.Members
	for i := 0; i < len(members); i++ {
		idx := (rv.next + i) % len(members)
		addr, ok := rv.view.Addrs[members[idx]]
		if !ok {
			continue
		}
		v, err := fetchView(rv.Transport, addr, timeout)
		if err != nil {
			continue
		}
		rv.next = idx
		if v.ID >= rv.view.ID {
			rv.view = v
		}
		break
	}
	return rv.view
}

// fetchView performs one KindView round trip against a node.
func fetchView(tr rpc.Transport, addr string, timeout time.Duration) (membership.View, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return membership.View{}, err
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	raw, err := rc.Call(ctx, server.KindView, nil)
	if err != nil {
		return membership.View{}, err
	}
	var v membership.View
	if err := core.DecodeValue(raw, &v); err != nil {
		return membership.View{}, err
	}
	return v, nil
}
