package client

import (
	"context"
	"testing"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/objects"
	"crucial/internal/rpc"
	"crucial/internal/server"
)

func benchCluster(b *testing.B) *Client {
	b.Helper()
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	node, err := server.Start(server.Config{
		ID: "n1", Addr: "n1", Transport: net,
		Registry: objects.BuiltinRegistry(), Directory: dir, RF: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = node.Crash() })
	c, err := New(Config{Transport: net, Views: dir})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	return c
}

// BenchmarkInvokeObject is the end-to-end hot path: encode on the client,
// frame over the in-memory transport, dispatch and execute on the node,
// encode the response, decode on the client. allocs/op here is the number
// the zero-allocation work targets (routing snapshot load + pooled
// buffers + fast codec).
func BenchmarkInvokeObject(b *testing.B) {
	c := benchCluster(b)
	ctx := context.Background()
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "bench"}
	// Warm: materialize the object and the connection.
	if _, err := c.Call(ctx, ref, "Get"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, ref, "AddAndGet", int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeObjectParallel layers client-side concurrency on the same
// path, exercising the lock-free routing snapshot and write coalescing
// under contention.
func BenchmarkInvokeObjectParallel(b *testing.B) {
	c := benchCluster(b)
	ctx := context.Background()
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "bench"}
	if _, err := c.Call(ctx, ref, "Get"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Call(ctx, ref, "AddAndGet", int64(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
