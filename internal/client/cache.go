package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// Lease-based client cache (DESIGN.md §5d).
//
// A read-only invocation on a leased object executes against a locally
// materialized copy — no network round trip at all. Coherence is the
// server's job: the object's primary grants a lease (snapshot + TTL) and
// synchronously invalidates or waits out every outstanding lease before a
// mutation commits, so a cached read is always a state some linearization
// could have returned at the moment the lease was checked.
//
// The client's half of the protocol:
//
//   - on a read-only call, execute locally while a valid lease is held;
//   - on a miss (no lease, expired, invalidated), ask the primary for a
//     grant (KindLease) and fall back to a remote invoke if refused;
//   - run a tiny RPC listener (cfg.ListenAddr) where the primary's
//     KindCacheInvalidate lands; dropping the entry and acking is what
//     unblocks the writer;
//   - count the lease's TTL from *before* the request left, so the local
//     expiry always precedes the server-side expiry the writer waits on —
//     wall-clock skew can shorten a lease, never extend it.
//
// Cached entries are immutable after install (renewal installs a fresh
// entry), so concurrent readers share them without locks. That leans on
// the RegisterReadOnlyMethods contract: a method declared read-only must
// not mutate object state.

// CacheConfig enables the lease-based read cache on a client.
type CacheConfig struct {
	// ListenAddr is the transport address the cache's invalidation
	// listener binds to. It must be dialable by every server node and
	// unique per client (e.g. "cache-client-3").
	ListenAddr string
	// Registry materializes leased objects locally; it must register the
	// same types as the cluster (typically objects.BuiltinRegistry() plus
	// application types).
	Registry *core.Registry
	// MaxObjects bounds resident cache entries; 0 means 1024. When full,
	// an arbitrary entry is evicted (leases are cheap to re-acquire).
	MaxObjects int
}

// cacheEntry is one leased local copy. Immutable after install.
type cacheEntry struct {
	obj    core.Object
	epoch  uint64
	expiry time.Time
}

// leaseCache is the client-side lease cache state.
type leaseCache struct {
	c   *Client
	cfg CacheConfig

	rpcServer *rpc.Server

	mu      sync.Mutex
	entries map[core.Ref]*cacheEntry
	// floor records, per ref, the epoch of the last invalidation received,
	// so a grant response that was in flight when the invalidation landed
	// (an older epoch) is discarded instead of resurrecting a lease the
	// primary already considers dead.
	floor map[core.Ref]uint64
	// backoff suppresses grant attempts for a ref after a refusal, so a
	// write-hot object does not drown its primary in doomed lease traffic.
	backoff map[core.Ref]time.Time

	cHits          *telemetry.Counter
	cMisses        *telemetry.Counter
	cInvalidations *telemetry.Counter
	cExpiries      *telemetry.Counter
}

// grantBackoff is how long a refused grant silences further attempts for
// the same ref. Most refusals (write in flight, rebalancing) resolve
// within a few milliseconds, and every backed-off read pays a remote round
// trip, so the window is kept short: long enough that a write-hot object
// does not drown its primary in doomed lease traffic, short enough that a
// read-mostly object re-leases almost immediately after each write.
const grantBackoff = 5 * time.Millisecond

// errCachedBlock marks a read-only method that tried to block during
// cached execution (a classification bug); the caller falls back to a
// remote invoke, where a real monitor exists.
var errCachedBlock = errors.New("client: cached read tried to block")

// newLeaseCache starts the invalidation listener and returns the cache.
func newLeaseCache(c *Client, cfg CacheConfig) (*leaseCache, error) {
	if cfg.ListenAddr == "" {
		return nil, errors.New("client: cache needs a ListenAddr")
	}
	if cfg.Registry == nil {
		return nil, errors.New("client: cache needs a Registry")
	}
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = 1024
	}
	reg := c.metrics
	if reg == nil {
		// Count even when uninstrumented so DebugCacheStats always works.
		reg = telemetry.NewRegistry()
	}
	lc := &leaseCache{
		c:              c,
		cfg:            cfg,
		entries:        make(map[core.Ref]*cacheEntry),
		floor:          make(map[core.Ref]uint64),
		backoff:        make(map[core.Ref]time.Time),
		cHits:          reg.Counter(telemetry.MetCacheHits),
		cMisses:        reg.Counter(telemetry.MetCacheMisses),
		cInvalidations: reg.Counter(telemetry.MetCacheInvalidations),
		cExpiries:      reg.Counter(telemetry.MetCacheLeaseExpiries),
	}
	l, err := c.cfg.Transport.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("client: cache listener: %w", err)
	}
	lc.rpcServer = rpc.NewServer(lc.handle)
	go func() { _ = lc.rpcServer.Serve(l) }()
	return lc, nil
}

// handle services the invalidation listener.
func (lc *leaseCache) handle(_ context.Context, kind uint8, payload []byte) ([]byte, error) {
	switch kind {
	case server.KindCacheInvalidate:
		var msg server.InvalidateMsg
		if err := core.DecodeValue(payload, &msg); err != nil {
			return nil, err
		}
		lc.invalidate(msg.Ref, msg.Epoch)
		return nil, nil
	case server.KindPing:
		return []byte("pong"), nil
	default:
		return nil, fmt.Errorf("client: cache listener: unknown rpc kind %d", kind)
	}
}

// invalidate drops the leased copy (a write is about to commit, or the
// view changed) and raises the epoch floor against in-flight grants.
func (lc *leaseCache) invalidate(ref core.Ref, epoch uint64) {
	lc.mu.Lock()
	if e, ok := lc.entries[ref]; ok && epoch >= e.epoch {
		delete(lc.entries, ref)
	}
	if epoch > lc.floor[ref] {
		lc.floor[ref] = epoch
	}
	lc.mu.Unlock()
	lc.cInvalidations.Inc()
}

// close stops the invalidation listener.
func (lc *leaseCache) close() {
	if lc.rpcServer != nil {
		_ = lc.rpcServer.Close()
	}
}

// read tries to answer a read-only invocation from the cache, acquiring or
// renewing a lease on a miss. ok=false means the caller must fall back to
// a remote invoke (no lease obtainable, or local execution is impossible).
func (lc *leaseCache) read(ctx context.Context, inv core.Invocation) (results []any, err error, ok bool) {
	now := time.Now()
	lc.mu.Lock()
	e, resident := lc.entries[inv.Ref]
	if resident && now.After(e.expiry) {
		delete(lc.entries, inv.Ref)
		resident = false
		lc.cExpiries.Inc()
	}
	if !resident {
		if now.Before(lc.backoff[inv.Ref]) {
			lc.mu.Unlock()
			lc.cMisses.Inc()
			return nil, nil, false
		}
	}
	lc.mu.Unlock()

	if !resident {
		e = lc.acquire(ctx, inv)
		if e == nil {
			lc.cMisses.Inc()
			return nil, nil, false
		}
	}
	results, err = lc.execLocal(ctx, e, inv, resident)
	if errors.Is(err, errCachedBlock) {
		lc.cMisses.Inc()
		return nil, nil, false
	}
	if resident {
		lc.cHits.Inc()
	} else {
		// A cold fill answers locally but paid a grant round trip; counting
		// it as a hit would overstate the warm-path rate the hits/misses
		// ratio is meant to measure.
		lc.cMisses.Inc()
	}
	return results, err, true
}

// execLocal runs the method against the leased copy, under a cache.read
// span when instrumented. hit distinguishes a warm entry from one acquired
// on this call (span attribute only).
func (lc *leaseCache) execLocal(ctx context.Context, e *cacheEntry, inv core.Invocation, hit bool) ([]any, error) {
	if lc.c.instrumented {
		var span *telemetry.Span
		ctx, span = lc.c.tracer.Start(ctx, telemetry.SpanCacheRead)
		span.SetAttr(telemetry.AttrObjectType, inv.Ref.Type)
		span.SetAttr(telemetry.AttrMethod, inv.Method)
		if hit {
			span.SetAttr(telemetry.AttrCache, "hit")
		} else {
			span.SetAttr(telemetry.AttrCache, "fill")
		}
		defer span.End()
	}
	return e.obj.Call(cacheCtl{ctx: ctx}, inv.Method, inv.Args)
}

// acquire asks the object's primary for a lease and installs the copy.
// Returns nil when no lease could be obtained (refused, unreachable,
// unknown type, ...) — never an error, the remote path is the fallback.
func (lc *leaseCache) acquire(ctx context.Context, inv core.Invocation) *cacheEntry {
	info, err := lc.cfg.Registry.Lookup(inv.Ref.Type)
	if err != nil || info.Synchronization {
		return nil
	}
	_, rc, err := lc.c.route(inv.Ref)
	if err != nil {
		return nil
	}
	body, err := core.EncodeValue(server.LeaseRequest{
		Ref:        inv.Ref,
		Persist:    inv.Persist,
		HolderAddr: lc.cfg.ListenAddr,
	})
	if err != nil {
		return nil
	}
	callCtx := ctx
	var cancel context.CancelFunc
	if t := lc.c.cfg.AttemptTimeout; t > 0 {
		callCtx, cancel = context.WithTimeout(ctx, t)
	}
	// The TTL clock starts before the request leaves: the server starts
	// its own at receipt, which is strictly later, so our lease always
	// expires first and a writer waiting out the server-side expiry can
	// never race a read we still consider leased.
	start := time.Now()
	out, err := rc.Call(callCtx, server.KindLease, body)
	if cancel != nil {
		cancel()
	}
	if err != nil {
		return nil
	}
	var resp server.LeaseResponse
	if err := core.DecodeValue(out, &resp); err != nil {
		return nil
	}
	if !resp.Granted {
		lc.mu.Lock()
		lc.backoff[inv.Ref] = time.Now().Add(grantBackoff)
		lc.mu.Unlock()
		return nil
	}
	obj, err := info.New(resp.Init)
	if err != nil {
		return nil
	}
	snap, okSnap := obj.(core.Snapshotter)
	if !okSnap || snap.Restore(resp.Snapshot) != nil {
		return nil
	}
	e := &cacheEntry{
		obj:    obj,
		epoch:  resp.Epoch,
		expiry: start.Add(time.Duration(resp.TTLMillis) * time.Millisecond),
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if e.epoch < lc.floor[inv.Ref] {
		// An invalidation for a newer epoch beat this grant home: the
		// primary already revoked it (and may have committed the write
		// that did), so installing it would serve pre-write state.
		return nil
	}
	delete(lc.floor, inv.Ref)
	delete(lc.backoff, inv.Ref)
	if cur, okCur := lc.entries[inv.Ref]; okCur && cur.epoch > e.epoch {
		return cur
	}
	if len(lc.entries) >= lc.cfg.MaxObjects {
		for ref := range lc.entries {
			if ref != inv.Ref {
				delete(lc.entries, ref)
				break
			}
		}
	}
	lc.entries[inv.Ref] = e
	return e
}

// CacheStats is the snapshot reported by DebugCacheStats (tests and
// introspection).
type CacheStats struct {
	Entries       int
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	LeaseExpiries uint64
}

// DebugCacheStats snapshots the cache counters; zero when no cache is
// configured.
func (c *Client) DebugCacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	c.cache.mu.Lock()
	n := len(c.cache.entries)
	c.cache.mu.Unlock()
	return CacheStats{
		Entries:       n,
		Hits:          c.cache.cHits.Value(),
		Misses:        c.cache.cMisses.Value(),
		Invalidations: c.cache.cInvalidations.Value(),
		LeaseExpiries: c.cache.cExpiries.Value(),
	}
}

// cacheCtl is the core.Ctl for cached execution: there is no monitor to
// sleep on, so a Wait whose condition does not already hold fails with
// errCachedBlock and the call falls back to the remote path. Read-only
// methods never legitimately wait; this is a safety net, not a feature.
type cacheCtl struct{ ctx context.Context }

func (c cacheCtl) Wait(cond func() bool) error {
	if cond() {
		return nil
	}
	return errCachedBlock
}

func (c cacheCtl) Broadcast() {}

func (c cacheCtl) Context() context.Context { return c.ctx }

var _ core.Ctl = cacheCtl{}
