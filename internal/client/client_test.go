package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/netsim"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing transport accepted")
	}
	if _, err := New(Config{Transport: rpc.NewMemNetwork()}); err == nil {
		t.Fatal("missing view source accepted")
	}
}

func TestStaticView(t *testing.T) {
	v := StaticView{ID: 1, Members: []ring.NodeID{"a"}, Addrs: map[ring.NodeID]string{"a": "x"}}
	got := v.View()
	if got.ID != 1 || len(got.Members) != 1 {
		t.Fatalf("StaticView.View = %+v", got)
	}
}

func TestRetryableClassification(t *testing.T) {
	retry := []error{
		core.ErrWrongNode,
		core.ErrRebalancing,
		core.ErrStopped,
		rpc.ErrClientClosed,
		// Typed transport errors classified via errors.Is, including when
		// buried under fmt.Errorf %w wrapping.
		net.ErrClosed,
		io.EOF,
		io.ErrUnexpectedEOF,
		io.ErrClosedPipe,
		syscall.ECONNRESET,
		syscall.EPIPE,
		syscall.ECONNREFUSED,
		fmt.Errorf("rpc: call failed: %w", net.ErrClosed),
		fmt.Errorf("dial: %w", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}),
		// Remote errors arrive stringified over the wire; these exercise
		// the documented last-resort substring matching.
		errors.New("read: connection reset by peer"),
		errors.New("unexpected EOF"),
		errors.New("io: read/write on closed pipe"),
	}
	for _, err := range retry {
		if !retryable(err) {
			t.Errorf("%v should be retryable", err)
		}
	}
	noRetry := []error{
		core.ErrUnknownType,
		core.ErrUnknownMethod,
		errors.New("objects: index 5 out of range"),
	}
	for _, err := range noRetry {
		if retryable(err) {
			t.Errorf("%v should not be retryable", err)
		}
	}
}

func TestInvokeNoNodes(t *testing.T) {
	dir := membership.NewDirectory(time.Hour)
	c, err := New(Config{
		Transport:    rpc.NewMemNetwork(),
		Views:        dir,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	_, err = c.Call(context.Background(), core.Ref{Type: objects.TypeAtomicLong, Key: "x"}, "Get")
	if err == nil {
		t.Fatal("invoke with no nodes succeeded")
	}
}

// Full round trip with a real node, exercising view refresh when the node
// joins after the client was created.
func TestClientDiscoversLateNode(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	c, err := New(Config{
		Transport:    net,
		Views:        dir,
		MaxRetries:   8,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Starts with an empty view; the node joins afterwards.
	node, err := server.Start(server.Config{
		ID:        "n1",
		Addr:      "n1",
		Transport: net,
		Registry:  objects.BuiltinRegistry(),
		Directory: dir,
		RF:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Crash() }()

	res, err := c.Call(context.Background(), core.Ref{Type: objects.TypeAtomicLong, Key: "x"}, "AddAndGet", int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 3 {
		t.Fatalf("result = %v", res[0])
	}
}

func TestClientClosedRejectsCalls(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	node, err := server.Start(server.Config{
		ID: "n1", Addr: "n1", Transport: net,
		Registry: objects.BuiltinRegistry(), Directory: dir, RF: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Crash() }()
	c, err := New(Config{Transport: net, Views: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close errored")
	}
	if _, err := c.Call(context.Background(), core.Ref{Type: objects.TypeAtomicLong, Key: "x"}, "Get"); err == nil {
		t.Fatal("call after Close succeeded")
	}
}

func TestNonRetryableErrorReturnedImmediately(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	node, err := server.Start(server.Config{
		ID: "n1", Addr: "n1", Transport: net,
		Registry: objects.BuiltinRegistry(), Directory: dir, RF: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Crash() }()
	c, err := New(Config{Transport: net, Views: dir, MaxRetries: 5, RetryBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	start := time.Now()
	_, err = c.Call(context.Background(), core.Ref{Type: "NoSuchType", Key: "x"}, "Get")
	if !errors.Is(err, core.ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("non-retryable error went through the retry loop")
	}
}

func TestContextCancellationDuringInvoke(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	node, err := server.Start(server.Config{
		ID: "n1", Addr: "n1", Transport: net,
		Registry: objects.BuiltinRegistry(), Directory: dir, RF: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Crash() }()
	c, err := New(Config{Transport: net, Views: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// A barrier Await that can never complete; the context must break it.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = c.InvokeObject(ctx, core.Invocation{
		Ref:    core.Ref{Type: objects.TypeCyclicBarrier, Key: "b"},
		Method: "Await",
		Init:   []any{int64(2)},
	})
	if err == nil {
		t.Fatal("blocked call survived context cancellation")
	}
}

func TestProfileLatencyApplied(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	node, err := server.Start(server.Config{
		ID: "n1", Addr: "n1", Transport: net,
		Registry: objects.BuiltinRegistry(), Directory: dir, RF: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Crash() }()

	profile := netsim.Zero()
	profile.DSONet = netsim.Latency{Base: 10 * time.Millisecond}
	c, err := New(Config{Transport: net, Views: dir, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	start := time.Now()
	if _, err := c.Call(context.Background(), core.Ref{Type: objects.TypeAtomicLong, Key: "x"}, "Get"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("call took %v, want >= 20ms (two injected hops)", d)
	}
}

// TestUninstrumentedRetryNilSpan drives the full retry loop on a client
// built without telemetry, where the per-call *telemetry.Span stays nil.
// Every attempt after the first calls SetAttr on that nil span, and the
// final failure path does too; the test pins the no-op contract of nil
// span receivers so stripping telemetry can never panic the client.
func TestUninstrumentedRetryNilSpan(t *testing.T) {
	dir := membership.NewDirectory(time.Hour)
	// A member is advertised but nothing listens at its address, so every
	// attempt fails at dial time and the client walks all retries.
	dir.Join("ghost", "ghost-addr")
	c, err := New(Config{
		Transport:    rpc.NewMemNetwork(),
		Views:        dir,
		MaxRetries:   4,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	_, err = c.Call(context.Background(), core.Ref{Type: objects.TypeAtomicLong, Key: "x"}, "Get")
	if err == nil {
		t.Fatal("call to dead address succeeded")
	}
	if !strings.Contains(err.Error(), "failed after") {
		t.Fatalf("error %q does not report exhausted attempts", err)
	}
}

// TestClientIDsAreRandomAndNonzero pins the cross-process at-most-once
// contract: ids come from a process-independent random source (a
// process-local counter would make every fresh process reuse id 1 and
// collide in the server's dedup window — a one-shot CLI run would then
// be answered with another process's cached response).
func TestClientIDsAreRandomAndNonzero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		id := newClientID()
		if id == 0 {
			t.Fatal("client id 0 is reserved for unstamped frames")
		}
		if seen[id] {
			t.Fatalf("duplicate client id %d after %d draws", id, i)
		}
		seen[id] = true
	}
	// Counter-like ids (1, 2, 3, ...) would all fall below 64 here; 64
	// random draws from a 64-bit space never do.
	for id := range seen {
		if id <= 64 {
			t.Fatalf("client id %d looks counter-allocated, want random", id)
		}
	}
}
