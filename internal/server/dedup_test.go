package server

import (
	"fmt"
	"testing"
)

func TestDedupLookupAndRecord(t *testing.T) {
	var d dedupState
	if _, ok := d.lookup(1, 1); ok {
		t.Fatal("empty state reported a hit")
	}
	if ev := d.record(1, 1, []any{int64(7)}, ""); ev != 0 {
		t.Fatalf("first record evicted %d", ev)
	}
	rec, ok := d.lookup(1, 1)
	if !ok || len(rec.Results) != 1 || rec.Results[0].(int64) != 7 || rec.Err != "" {
		t.Fatalf("lookup = %+v, %v", rec, ok)
	}
	d.record(1, 2, nil, "dso: boom")
	if rec, ok := d.lookup(1, 2); !ok || rec.Err != "dso: boom" {
		t.Fatalf("error outcome not replayed: %+v, %v", rec, ok)
	}
	if _, ok := d.lookup(2, 1); ok {
		t.Fatal("stamp of another client matched")
	}
}

func TestDedupWindowEvictsOldestSeqs(t *testing.T) {
	var d dedupState
	total := 0
	for seq := 1; seq <= dedupWindowPerClient+5; seq++ {
		total += d.record(1, uint64(seq), nil, "")
	}
	if total != 5 {
		t.Fatalf("evicted %d records, want 5", total)
	}
	if _, ok := d.lookup(1, 5); ok {
		t.Fatal("seq 5 should have been evicted FIFO")
	}
	if _, ok := d.lookup(1, 6); !ok {
		t.Fatal("seq 6 should still be inside the window")
	}
	if _, ok := d.lookup(1, uint64(dedupWindowPerClient+5)); !ok {
		t.Fatal("newest seq missing")
	}
	if got := len(d.Clients[1].Records); got != dedupWindowPerClient {
		t.Fatalf("window holds %d records, bound is %d", got, dedupWindowPerClient)
	}
}

func TestDedupEvictsOldestClientWholesale(t *testing.T) {
	var d dedupState
	for c := 1; c <= dedupMaxClients; c++ {
		for s := 1; s <= 3; s++ {
			d.record(uint64(c), uint64(s), nil, "")
		}
	}
	// One more client pushes out client 1 with all three of its stamps.
	if ev := d.record(uint64(dedupMaxClients+1), 1, nil, ""); ev != 3 {
		t.Fatalf("evicted %d records, want the 3 of the oldest client", ev)
	}
	if _, ok := d.lookup(1, 1); ok {
		t.Fatal("oldest client should be gone")
	}
	if _, ok := d.lookup(2, 3); !ok {
		t.Fatal("second-oldest client lost collaterally")
	}
	if got := len(d.Clients); got != dedupMaxClients {
		t.Fatalf("tracking %d clients, bound is %d", got, dedupMaxClients)
	}
}

func TestDedupCloneIsDeep(t *testing.T) {
	var d dedupState
	d.record(1, 1, []any{int64(1)}, "")
	cp := d.clone()
	d.record(1, 2, nil, "")
	d.record(9, 1, nil, "")
	if _, ok := cp.lookup(1, 2); ok {
		t.Fatal("clone sees records added to the original afterwards")
	}
	if _, ok := cp.lookup(1, 1); !ok {
		t.Fatal("clone lost an existing record")
	}
	if len(cp.Order) != 1 {
		t.Fatalf("clone order %v", cp.Order)
	}
}

func BenchmarkDedupRecordLookup(b *testing.B) {
	var d dedupState
	for i := 0; i < b.N; i++ {
		c := uint64(i % 8)
		d.record(c, uint64(i), nil, "")
		d.lookup(c, uint64(i))
	}
	_ = fmt.Sprint(len(d.Order))
}
