package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
)

// entry is one resident object plus its monitor. The mutex serializes all
// calls on the object (linearizability through mutual exclusion); the
// condition variable implements server-side blocking for synchronization
// objects, mirroring Java monitors (paper Section 5).
type entry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	obj     core.Object
	persist bool
	sync    bool
	init    []any
	// transferring marks the object as mid-rebalance; invocations bounce
	// with ErrRebalancing so clients back off and retry.
	transferring bool
	// dedup is the at-most-once window (see dedup.go), guarded by mu like
	// the object itself.
	dedup dedupState
	// version counts operations applied to this copy (guarded by mu).
	// Replicas of one object apply the same totally-ordered sequence, so
	// equal versions mean equal state; state transfers carry the snapshot's
	// version and a receiver refuses to replace a copy that has applied
	// more — otherwise a snapshot taken before an op but installed after it
	// would silently roll back an acknowledged update.
	version uint64
}

func newEntry(obj core.Object, persist, syncObj bool, init []any) *entry {
	e := &entry{obj: obj, persist: persist, sync: syncObj, init: init}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// nodeCtl is the core.Ctl handed to object methods. It operates on the
// entry's monitor; the object's lock is held whenever object code runs.
type nodeCtl struct {
	n   *Node
	e   *entry
	ctx context.Context
}

// Wait blocks until cond() holds, re-checking after every Broadcast on the
// same object. It aborts with ErrStopped when the node shuts down.
//
// Cancellation: a waiter must not depend on another Broadcast to notice
// its context died, so the first time Wait actually blocks it installs a
// context watcher that broadcasts the object's monitor on cancellation.
// The watcher acquires the entry lock before broadcasting, which closes
// the check-then-sleep race: a waiter holding the lock either sees
// ctx.Done before sleeping, or is parked in cond.Wait (lock released) and
// receives the wakeup.
//
// When the node is instrumented, time actually spent blocked is recorded
// into the server.monitor_wait histogram and attributed to the active
// server.invoke span (accumulated across multiple waits), so reports can
// separate "the barrier was slow" from "the method was slow". A Wait whose
// condition already holds records nothing.
func (c nodeCtl) Wait(cond func() bool) error {
	var start time.Time
	blocked := false
	if c.n.instrumented {
		defer func() {
			if blocked {
				d := time.Since(start)
				c.n.hMonitorWait.Observe(d)
				telemetry.SpanFromContext(c.ctx).AddTiming(telemetry.TimingMonitor, d)
			}
		}()
	}
	var stopWatch func() bool
	for !cond() {
		if !blocked {
			blocked = true
			if c.n.instrumented {
				start = time.Now()
			}
			if c.ctx.Done() != nil {
				stopWatch = context.AfterFunc(c.ctx, func() {
					c.e.mu.Lock()
					c.e.cond.Broadcast()
					c.e.mu.Unlock()
				})
				defer stopWatch()
			}
		}
		if c.n.closed.Load() {
			return core.ErrStopped
		}
		select {
		case <-c.ctx.Done():
			return c.ctx.Err()
		default:
		}
		c.e.cond.Wait()
	}
	return nil
}

// Broadcast wakes all waiters of the object.
func (c nodeCtl) Broadcast() { c.e.cond.Broadcast() }

// Context returns the invocation context.
func (c nodeCtl) Context() context.Context { return c.ctx }

var _ core.Ctl = nodeCtl{}

// replicaGroup computes the nodes responsible for a reference in the
// current view: the view's directive table first (per-key placement
// overrides installed by the rebalancer), the consistent-hashing ring for
// everything else. rf is clamped by membership size inside the ring.
func (n *Node) replicaGroup(ref core.Ref, persist bool) ([]ring.NodeID, *ring.Ring) {
	v, r := n.currentView()
	if r == nil {
		return nil, nil
	}
	rf := 1
	if persist {
		rf = n.cfg.RF
	}
	return v.Directives.Place(r, ref.String(), rf), r
}

// lookupOrCreate returns the entry for ref, materializing the object from
// the registry on first access (using the invocation's Init arguments).
func (n *Node) lookupOrCreate(inv core.Invocation) (*entry, error) {
	n.objMu.Lock()
	defer n.objMu.Unlock()
	if e, ok := n.objects[inv.Ref]; ok {
		return e, nil
	}
	info, err := n.cfg.Registry.Lookup(inv.Ref.Type)
	if err != nil {
		return nil, err
	}
	obj, err := info.New(inv.Init)
	if err != nil {
		return nil, fmt.Errorf("server: create %s: %w", inv.Ref, err)
	}
	persist := inv.Persist && !info.Synchronization
	e := newEntry(obj, persist, info.Synchronization, inv.Init)
	n.objects[inv.Ref] = e
	return e, nil
}

// invokeLocal executes an invocation on this node directly (the rf=1
// path). Ownership is validated against the current ring so stale clients
// are redirected.
func (n *Node) invokeLocal(ctx context.Context, inv core.Invocation) ([]any, error) {
	group, r := n.replicaGroup(inv.Ref, false)
	if r == nil || len(group) == 0 {
		return nil, core.ErrRebalancing
	}
	if group[0] != n.cfg.ID {
		return nil, fmt.Errorf("%w: %s belongs to %s", core.ErrWrongNode, inv.Ref, group[0])
	}
	if n.isStale(inv.Ref) {
		// The copy is marked behind the committed history (see markStale).
		// Resolve it on the spot with a poll over the wider rf-sized set —
		// the likeliest holders of a better leftover copy. With rf=1 this
		// node is the whole set and the poll is trivially definitive: no
		// better copy can exist anywhere, so the mark clears and whatever
		// this node holds is the lineage's best surviving state.
		if pollGroup, pr := n.replicaGroup(inv.Ref, true); pr != nil {
			n.pullObject(ctx, inv.Ref, pollGroup)
		}
		if n.isStale(inv.Ref) {
			return nil, fmt.Errorf("%w: %s stale on %s", core.ErrRebalancing, inv.Ref, n.cfg.ID)
		}
	}
	e, err := n.lookupOrCreate(inv)
	if err != nil {
		return nil, err
	}
	if n.leases != nil && !inv.ReadOnly && !e.sync {
		// Mutations must fence outstanding leases before executing; reads
		// and synchronization objects (never leased) skip the hook.
		done, err := n.prepareWrite(ctx, inv.Ref)
		if err != nil {
			return nil, err
		}
		defer done()
	}
	results, version, err := n.execOn(ctx, e, inv)
	if e.persist && !inv.ReadOnly && !errors.Is(err, core.ErrRebalancing) &&
		n.dur != nil && n.dur.log != nil {
		// The rf=1 write path has no ordering round, so the WAL record is
		// synthesized here: a genesis-flagged single-op payload (replay may
		// have to re-create the object — with rf=1 no replica held another
		// copy) under a locally sequenced id. The ack waits on the flush
		// exactly like the replicated path's.
		if encInv, encErr := core.EncodeInvocation(inv); encErr == nil {
			payload := append([]byte{smrOpGenesis}, encInv...)
			c := n.appendWAL(string(n.cfg.ID), n.seq.Add(1), version, payload)
			if werr := waitDurable(ctx, c); werr != nil {
				return nil, werr
			}
		}
	}
	return results, err
}

// execOn runs one method under the object monitor. Instrumented nodes
// attribute monitor acquisition time to the active span and record the
// method's wall time (which includes any Ctl.Wait blocking — subtract the
// span's monitor_wait timing for pure compute) in server.exec.
//
// The returned version is the copy's apply version right after this call,
// read inside the same critical section as the execution — the SMR layer
// compares it across replicas to detect a forked copy (see
// invokeReplicated), and a version read after the monitor is released
// could already include a later delivery. A dedup replay reports the
// current version without a bump: replaying is not applying.
func (n *Node) execOn(ctx context.Context, e *entry, inv core.Invocation) ([]any, uint64, error) {
	if !n.instrumented {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.transferring {
			return nil, e.version, core.ErrRebalancing
		}
		if results, err, ok := n.dedupLookupLocked(ctx, e, inv); ok {
			return results, e.version, err
		}
		results, err := e.obj.Call(nodeCtl{n: n, e: e, ctx: ctx}, inv.Method, inv.Args)
		if !inv.ReadOnly {
			e.version++
		}
		n.dedupRecordLocked(e, inv, results, err)
		return results, e.version, err
	}
	acquire := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	telemetry.SpanFromContext(ctx).AddTiming(telemetry.TimingAcquire, time.Since(acquire))
	if e.transferring {
		return nil, e.version, core.ErrRebalancing
	}
	if results, err, ok := n.dedupLookupLocked(ctx, e, inv); ok {
		return results, e.version, err
	}
	execStart := time.Now()
	results, err := e.obj.Call(nodeCtl{n: n, e: e, ctx: ctx}, inv.Method, inv.Args)
	if !inv.ReadOnly {
		// Reads leave the apply version alone: the version counts state
		// changes, and — since primary-local and follower reads bypass the
		// SMR round — bumping it per read would make replica versions
		// diverge and break the "equal versions, equal state" invariant
		// that state transfer relies on.
		e.version++
	}
	n.hExec.Observe(time.Since(execStart))
	n.dedupRecordLocked(e, inv, results, err)
	return results, e.version, err
}

// execBatchOn applies a delivered group-commit batch under one monitor
// acquisition: the transferring check runs once, then every
// sub-invocation is individually dedup-checked, executed, version-bumped
// and dedup-recorded — the same per-operation sequence as execOn, minus
// N-1 lock round trips. Per-sub version bumps (rather than one per batch)
// keep this copy's apply version comparable across replicas regardless of
// how each coordinator happened to slice the same operation stream into
// batches, and a dedup replay inside a batch skips its bump exactly like
// a replayed single. The returned version is the copy's apply version
// after the last sub-operation, read in the same critical section. The
// batch-level error is only ErrRebalancing (copy mid-transfer): nothing
// has executed at that point, so skipping the whole round is sound.
func (n *Node) execBatchOn(ctx context.Context, e *entry, invs []core.Invocation) ([]subResult, uint64, error) {
	var acquire time.Time
	if n.instrumented {
		acquire = time.Now()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n.instrumented {
		telemetry.SpanFromContext(ctx).AddTiming(telemetry.TimingAcquire, time.Since(acquire))
	}
	if e.transferring {
		return nil, e.version, core.ErrRebalancing
	}
	res := make([]subResult, len(invs))
	for i, inv := range invs {
		if results, err, ok := n.dedupLookupLocked(ctx, e, inv); ok {
			res[i] = subResult{results: results, err: err}
			continue
		}
		var execStart time.Time
		if n.instrumented {
			execStart = time.Now()
		}
		results, err := e.obj.Call(nodeCtl{n: n, e: e, ctx: ctx}, inv.Method, inv.Args)
		if !inv.ReadOnly {
			e.version++
		}
		if n.instrumented {
			n.hExec.Observe(time.Since(execStart))
		}
		n.dedupRecordLocked(e, inv, results, err)
		res[i] = subResult{results: results, err: err}
	}
	return res, e.version, nil
}

// lookupExisting returns the resident entry for ref without materializing
// one. SMR delivery uses it to distinguish "apply to my copy" from "I have
// no base copy for this object" (see deliverSMR).
func (n *Node) lookupExisting(ref core.Ref) (*entry, bool) {
	n.objMu.Lock()
	defer n.objMu.Unlock()
	e, ok := n.objects[ref]
	return e, ok
}

// dedupLookupLocked answers a stamped retry whose original was already
// applied, replaying the recorded response instead of re-executing. The
// caller holds e.mu. Synchronization objects are excluded: their calls
// must actually block.
func (n *Node) dedupLookupLocked(ctx context.Context, e *entry, inv core.Invocation) ([]any, error, bool) {
	if !inv.Stamped() || e.sync || inv.ReadOnly {
		// Read-only calls skip dedup entirely: re-executing a read is
		// harmless (its retry window extends to the later execution), and
		// recording reads would evict write records from the bounded
		// window — the records that actually protect correctness.
		return nil, nil, false
	}
	rec, ok := e.dedup.lookup(inv.ClientID, inv.Seq)
	if !ok {
		return nil, nil, false
	}
	n.cDedupHits.Inc()
	telemetry.SpanFromContext(ctx).SetAttr(telemetry.AttrChaos, "replayed")
	return rec.Results, core.DecodeError(rec.Err), true
}

// dedupRecordLocked remembers an applied stamped invocation's outcome.
// Every outcome the method itself produced is recorded — including its
// errors, which a replayed retry must reproduce; routing-layer bounces
// (ErrRebalancing, ErrWrongNode) never reach this point because execOn
// returns before calling the object.
func (n *Node) dedupRecordLocked(e *entry, inv core.Invocation, results []any, err error) {
	if !inv.Stamped() || e.sync || inv.ReadOnly {
		return
	}
	if evicted := e.dedup.record(inv.ClientID, inv.Seq, results, core.EncodeError(err)); evicted > 0 {
		n.cDedupEvictions.Add(uint64(evicted))
	}
}

// DebugObjectCount reports resident objects (tests and introspection).
func (n *Node) DebugObjectCount() int {
	n.objMu.Lock()
	defer n.objMu.Unlock()
	return len(n.objects)
}

// DebugHasObject reports residency of a reference (tests).
func (n *Node) DebugHasObject(ref core.Ref) bool {
	n.objMu.Lock()
	defer n.objMu.Unlock()
	_, ok := n.objects[ref]
	return ok
}
