package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/objects"
	"crucial/internal/rpc"
)

func validConfig(net rpc.Transport, dir *membership.Directory) Config {
	return Config{
		ID:        "n1",
		Addr:      "n1",
		Transport: net,
		Registry:  objects.BuiltinRegistry(),
		Directory: dir,
		RF:        1,
	}
}

func TestConfigValidation(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	base := validConfig(net, dir)

	mutations := map[string]func(Config) Config{
		"missing id":        func(c Config) Config { c.ID = ""; return c },
		"missing addr":      func(c Config) Config { c.Addr = ""; return c },
		"missing transport": func(c Config) Config { c.Transport = nil; return c },
		"missing registry":  func(c Config) Config { c.Registry = nil; return c },
		"missing directory": func(c Config) Config { c.Directory = nil; return c },
		"rf zero":           func(c Config) Config { c.RF = 0; return c },
	}
	for name, mutate := range mutations {
		if _, err := Start(mutate(base)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Crash() })
	return n
}

func TestIDAndAddr(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))
	if n.ID() != "n1" || n.Addr() != "n1" {
		t.Fatalf("identity = %s/%s", n.ID(), n.Addr())
	}
}

// dial opens a raw RPC connection to a node.
func dial(t *testing.T, net rpc.Transport, addr string) *rpc.Client {
	t.Helper()
	conn, err := net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := rpc.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestUnknownRPCKind(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), 200, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestPing(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	out, err := c.Call(context.Background(), KindPing, nil)
	if err != nil || string(out) != "pong" {
		t.Fatalf("ping = %q, %v", out, err)
	}
}

func TestInvokeGarbagePayload(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindInvoke, []byte("garbage")); err == nil {
		t.Fatal("garbage invocation accepted")
	}
}

func TestTransferGarbagePayload(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindTransfer, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage transfer accepted")
	}
}

func TestInvokeWrongNodeForeignKey(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	cfg2 := validConfig(net, dir)
	cfg2.ID, cfg2.Addr = "n2", "n2"
	startNode(t, cfg2)

	// Find a key owned by n2, send its invocation to n1.
	view := dir.View()
	r := view.Ring()
	var foreign string
	for i := 0; i < 1000; i++ {
		key := core.Ref{Type: objects.TypeAtomicLong, Key: string(rune('a' + i%26))}.String()
		if owner, _ := r.Owner(key); owner == "n2" {
			foreign = string(rune('a' + i%26))
			break
		}
	}
	if foreign == "" {
		t.Skip("no key maps to n2")
	}
	payload, err := core.EncodeInvocation(core.Invocation{
		Ref:    core.Ref{Type: objects.TypeAtomicLong, Key: foreign},
		Method: "Get",
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, net, "n1")
	raw, err := c.Call(context.Background(), KindInvoke, payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := core.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(core.DecodeError(resp.Err), core.ErrWrongNode) {
		t.Fatalf("want ErrWrongNode, got %q", resp.Err)
	}
}

func TestStatsTransfersAndInvocations(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n1 := startNode(t, validConfig(net, dir))

	// Create state, then add a node: transfers must be counted somewhere.
	payload, _ := core.EncodeInvocation(core.Invocation{
		Ref:    core.Ref{Type: objects.TypeAtomicLong, Key: "s"},
		Method: "Set",
		Args:   []any{int64(1)},
	})
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindInvoke, payload); err != nil {
		t.Fatal(err)
	}
	if n1.Stats().Invocations == 0 {
		t.Fatal("invocations not counted")
	}
}

func TestCrashIdempotent(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n, err := Start(validConfig(net, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := n.Crash(); err != nil {
		t.Fatal("second Crash errored")
	}
	if err := n.Close(); err != nil {
		t.Fatal("Close after Crash errored")
	}
}

func TestClosedNodeRejectsRequests(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n, err := Start(validConfig(net, dir))
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindPing, nil); err != nil {
		t.Fatal(err)
	}
	_ = n.Crash()
	if _, err := c.Call(context.Background(), KindPing, nil); err == nil {
		t.Fatal("crashed node answered")
	}
}

func TestServiceGateLimitsThroughput(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	cfg := validConfig(net, dir)
	cfg.ServiceTime = 20 * time.Millisecond
	cfg.ServiceConcurrency = 1
	startNode(t, cfg)

	c := dial(t, net, "n1")
	payload, _ := core.EncodeInvocation(core.Invocation{
		Ref:    core.Ref{Type: objects.TypeAtomicLong, Key: "g"},
		Method: "IncrementAndGet",
	})
	start := time.Now()
	const ops = 4
	done := make(chan error, ops)
	for i := 0; i < ops; i++ {
		go func() {
			_, err := c.Call(context.Background(), KindInvoke, payload)
			done <- err
		}()
	}
	for i := 0; i < ops; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < ops*20*time.Millisecond {
		t.Fatalf("4 ops with a 20ms x1 gate finished in %v, want >= 80ms", d)
	}
}

func TestDebugHelpers(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "dbg"}
	if n.DebugHasObject(ref) || n.DebugObjectCount() != 0 {
		t.Fatal("fresh node has objects")
	}
	payload, _ := core.EncodeInvocation(core.Invocation{Ref: ref, Method: "Get"})
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindInvoke, payload); err != nil {
		t.Fatal(err)
	}
	if !n.DebugHasObject(ref) || n.DebugObjectCount() != 1 {
		t.Fatal("object not materialized")
	}
}

// Regression: a context cancelled while an invocation is parked in
// Ctl.Wait must unblock promptly. Before the cancellation watcher the
// waiter only re-checked its context after a Broadcast on the same
// object, so an abandoned barrier/future wait slept forever.
func TestWaitUnblocksOnContextCancel(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inv := core.Invocation{
		Ref:    core.Ref{Type: objects.TypeCyclicBarrier, Key: "stuck"},
		Method: "Await",
		Init:   []any{int64(2)}, // two parties, only one ever arrives
	}
	done := make(chan error, 1)
	go func() {
		_, err := n.invokeLocal(ctx, inv)
		done <- err
	}()
	// Let the invocation park inside Wait, then abandon it. No other
	// invocation ever touches the object, so no Broadcast will occur.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not unblock on context cancellation")
	}
}
