package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/totalorder"
)

func validConfig(net rpc.Transport, dir *membership.Directory) Config {
	return Config{
		ID:        "n1",
		Addr:      "n1",
		Transport: net,
		Registry:  objects.BuiltinRegistry(),
		Directory: dir,
		RF:        1,
	}
}

func TestConfigValidation(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	base := validConfig(net, dir)

	mutations := map[string]func(Config) Config{
		"missing id":        func(c Config) Config { c.ID = ""; return c },
		"missing addr":      func(c Config) Config { c.Addr = ""; return c },
		"missing transport": func(c Config) Config { c.Transport = nil; return c },
		"missing registry":  func(c Config) Config { c.Registry = nil; return c },
		"missing directory": func(c Config) Config { c.Directory = nil; return c },
		"rf zero":           func(c Config) Config { c.RF = 0; return c },
	}
	for name, mutate := range mutations {
		if _, err := Start(mutate(base)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Crash() })
	return n
}

func TestIDAndAddr(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))
	if n.ID() != "n1" || n.Addr() != "n1" {
		t.Fatalf("identity = %s/%s", n.ID(), n.Addr())
	}
}

// dial opens a raw RPC connection to a node.
func dial(t *testing.T, net rpc.Transport, addr string) *rpc.Client {
	t.Helper()
	conn, err := net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := rpc.NewClient(conn)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestUnknownRPCKind(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), 200, nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestPing(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	out, err := c.Call(context.Background(), KindPing, nil)
	if err != nil || string(out) != "pong" {
		t.Fatalf("ping = %q, %v", out, err)
	}
}

func TestInvokeGarbagePayload(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindInvoke, []byte("garbage")); err == nil {
		t.Fatal("garbage invocation accepted")
	}
}

func TestTransferGarbagePayload(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindTransfer, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage transfer accepted")
	}
}

func TestInvokeWrongNodeForeignKey(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	cfg2 := validConfig(net, dir)
	cfg2.ID, cfg2.Addr = "n2", "n2"
	startNode(t, cfg2)

	// Find a key owned by n2, send its invocation to n1.
	view := dir.View()
	r := view.Ring()
	var foreign string
	for i := 0; i < 1000; i++ {
		key := core.Ref{Type: objects.TypeAtomicLong, Key: string(rune('a' + i%26))}.String()
		if owner, _ := r.Owner(key); owner == "n2" {
			foreign = string(rune('a' + i%26))
			break
		}
	}
	if foreign == "" {
		t.Skip("no key maps to n2")
	}
	payload, err := core.EncodeInvocation(core.Invocation{
		Ref:    core.Ref{Type: objects.TypeAtomicLong, Key: foreign},
		Method: "Get",
	})
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, net, "n1")
	raw, err := c.Call(context.Background(), KindInvoke, payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := core.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(core.DecodeError(resp.Err), core.ErrWrongNode) {
		t.Fatalf("want ErrWrongNode, got %q", resp.Err)
	}
}

func TestStatsTransfersAndInvocations(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n1 := startNode(t, validConfig(net, dir))

	// Create state, then add a node: transfers must be counted somewhere.
	payload, _ := core.EncodeInvocation(core.Invocation{
		Ref:    core.Ref{Type: objects.TypeAtomicLong, Key: "s"},
		Method: "Set",
		Args:   []any{int64(1)},
	})
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindInvoke, payload); err != nil {
		t.Fatal(err)
	}
	if n1.Stats().Invocations == 0 {
		t.Fatal("invocations not counted")
	}
}

func TestCrashIdempotent(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n, err := Start(validConfig(net, dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := n.Crash(); err != nil {
		t.Fatal("second Crash errored")
	}
	if err := n.Close(); err != nil {
		t.Fatal("Close after Crash errored")
	}
}

func TestClosedNodeRejectsRequests(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n, err := Start(validConfig(net, dir))
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindPing, nil); err != nil {
		t.Fatal(err)
	}
	_ = n.Crash()
	if _, err := c.Call(context.Background(), KindPing, nil); err == nil {
		t.Fatal("crashed node answered")
	}
}

func TestServiceGateLimitsThroughput(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	cfg := validConfig(net, dir)
	cfg.ServiceTime = 20 * time.Millisecond
	cfg.ServiceConcurrency = 1
	startNode(t, cfg)

	c := dial(t, net, "n1")
	payload, _ := core.EncodeInvocation(core.Invocation{
		Ref:    core.Ref{Type: objects.TypeAtomicLong, Key: "g"},
		Method: "IncrementAndGet",
	})
	start := time.Now()
	const ops = 4
	done := make(chan error, ops)
	for i := 0; i < ops; i++ {
		go func() {
			_, err := c.Call(context.Background(), KindInvoke, payload)
			done <- err
		}()
	}
	for i := 0; i < ops; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < ops*20*time.Millisecond {
		t.Fatalf("4 ops with a 20ms x1 gate finished in %v, want >= 80ms", d)
	}
}

func TestDebugHelpers(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "dbg"}
	if n.DebugHasObject(ref) || n.DebugObjectCount() != 0 {
		t.Fatal("fresh node has objects")
	}
	payload, _ := core.EncodeInvocation(core.Invocation{Ref: ref, Method: "Get"})
	c := dial(t, net, "n1")
	if _, err := c.Call(context.Background(), KindInvoke, payload); err != nil {
		t.Fatal(err)
	}
	if !n.DebugHasObject(ref) || n.DebugObjectCount() != 1 {
		t.Fatal("object not materialized")
	}
}

// Regression: a context cancelled while an invocation is parked in
// Ctl.Wait must unblock promptly. Before the cancellation watcher the
// waiter only re-checked its context after a Broadcast on the same
// object, so an abandoned barrier/future wait slept forever.
func TestWaitUnblocksOnContextCancel(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inv := core.Invocation{
		Ref:    core.Ref{Type: objects.TypeCyclicBarrier, Key: "stuck"},
		Method: "Await",
		Init:   []any{int64(2)}, // two parties, only one ever arrives
	}
	done := make(chan error, 1)
	go func() {
		_, err := n.invokeLocal(ctx, inv)
		done <- err
	}()
	// Let the invocation park inside Wait, then abandon it. No other
	// invocation ever touches the object, so no Broadcast will occur.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not unblock on context cancellation")
	}
}

// Regression: a state transfer carrying a snapshot older than the local
// copy must be refused. Without the version check, a snapshot taken before
// an operation but installed after it rolled the object back, losing an
// acknowledged update (found by the chaos nemesis, seed 505).
func TestStaleTransferRefused(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))
	ctx := context.Background()

	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "xfer"}
	set := func(v int64) {
		t.Helper()
		if _, err := n.invokeLocal(ctx, core.Invocation{Ref: ref, Method: "Set", Args: []any{v}}); err != nil {
			t.Fatal(err)
		}
	}
	get := func() int64 {
		t.Helper()
		res, err := n.invokeLocal(ctx, core.Invocation{Ref: ref, Method: "Get"})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := core.NumberAsInt64(res[0])
		return v
	}

	set(10) // version 1
	e, ok := n.lookupExisting(ref)
	if !ok {
		t.Fatal("object not resident")
	}
	stale, err := n.snapshotEntry(ref, e)
	if err != nil {
		t.Fatal(err)
	}
	set(20) // version 2: the snapshot is now stale

	if err := n.installTransfer(stale); err != nil {
		t.Fatal(err)
	}
	if v := get(); v != 20 {
		t.Fatalf("stale transfer rolled the object back: got %d, want 20", v)
	}

	// A strictly newer snapshot must install.
	newer := stale
	newer.Version = 99
	if err := n.installTransfer(newer); err != nil {
		t.Fatal(err)
	}
	if v := get(); v != 10 {
		t.Fatalf("newer transfer not installed: got %d, want 10", v)
	}
}

// Regression: a committed SMR delivery for an object this replica holds no
// base copy of (the hand-off transfer has not arrived) must be skipped, not
// applied to a freshly created object — that would fork the object's
// lineage. Genesis-flagged ops (first-ever op, coordinator held no copy
// and neither did its peers) still create.
func TestDeliverWithoutBaseCopySkips(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n := startNode(t, validConfig(net, dir))

	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "nobase"}
	encInv, err := core.EncodeInvocation(core.Invocation{
		Ref: ref, Method: "IncrementAndGet", Persist: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Non-genesis op, no local copy: must skip and report a retryable error
	// to the (local) waiter.
	id := totalorder.MsgID{Origin: "n1", Seq: 1}
	ch := make(chan smrResult, 1)
	n.waitMu.Lock()
	n.waiters[id] = ch
	n.waitMu.Unlock()
	n.deliverSMR(id, append([]byte{smrOpExisting}, encInv...))
	select {
	case res := <-ch:
		if !errors.Is(res.err, core.ErrRebalancing) {
			t.Fatalf("skipped delivery returned %v, want ErrRebalancing", res.err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never completed")
	}
	if n.DebugHasObject(ref) {
		t.Fatal("non-genesis delivery created a fresh object")
	}

	// Genesis op: creates and applies.
	n.deliverSMR(totalorder.MsgID{Origin: "n1", Seq: 2}, append([]byte{smrOpGenesis}, encInv...))
	if !n.DebugHasObject(ref) {
		t.Fatal("genesis delivery did not create the object")
	}
}

// Regression: a propose from a coordinator whose membership view differs
// from the receiver's must be fenced. Without the fence, a stale primary
// and the new primary could both commit operations for one object during a
// view transition, forking its lineage (two clients acknowledged the same
// counter value).
func TestProposeFencedOnViewMismatch(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	startNode(t, validConfig(net, dir))
	c := dial(t, net, "n1")
	ctx := context.Background()

	encInv, err := core.EncodeInvocation(core.Invocation{
		Ref: core.Ref{Type: objects.TypeAtomicLong, Key: "fenced"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(fence uint64, seq uint64) []byte {
		body, err := core.EncodeValue(proposeMsg{
			ID:      totalorder.MsgID{Origin: "n9", Seq: seq},
			Payload: append([]byte{smrOpGenesis}, encInv...),
			Fence:   fence,
		})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	if _, err := c.Call(ctx, KindPropose, mk(dir.View().Fence()+1, 1)); err == nil {
		t.Fatal("propose with mismatched view fence accepted")
	}
	if _, err := c.Call(ctx, KindPropose, mk(dir.View().Fence(), 2)); err != nil {
		t.Fatalf("propose with matching fence refused: %v", err)
	}
}

// pullObject adopts an existing copy from a group peer instead of treating
// a local miss as object creation.
func TestPullOnMissAdoptsPeerCopy(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n1 := startNode(t, validConfig(net, dir))
	cfg2 := validConfig(net, dir)
	cfg2.ID, cfg2.Addr = "n2", "n2"
	n2 := startNode(t, cfg2)
	ctx := context.Background()

	// Seed a copy on n1 directly (bypassing routing: this is the replica
	// layer, not the client layer).
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "adopt"}
	if _, err := n1.lookupOrCreate(core.Invocation{Ref: ref}); err != nil {
		t.Fatal(err)
	}
	e, _ := n1.lookupExisting(ref)
	e.mu.Lock()
	e.version = 7
	e.persist = true
	e.mu.Unlock()

	if installed, _ := n2.pullObject(ctx, ref, []ring.NodeID{"n1", "n2"}); !installed {
		t.Fatal("pull found no copy")
	}
	got, ok := n2.lookupExisting(ref)
	if !ok {
		t.Fatal("pulled object not resident on n2")
	}
	got.mu.Lock()
	v := got.version
	got.mu.Unlock()
	if v != 7 {
		t.Fatalf("pulled copy version = %d, want 7", v)
	}
}

// The in-flight tracker admits only one coordinator per object at a time:
// during a view transition the old and the new primary must not both have
// undelivered proposals for the same object (each would ack a result the
// other never sees).
func TestInflightSingleCoordinatorPerObject(t *testing.T) {
	tr := newInflightTracker(time.Minute)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "one"}
	other := core.Ref{Type: objects.TypeAtomicLong, Key: "two"}

	a1 := totalorder.MsgID{Origin: "a", Seq: 1}
	if !tr.admit(a1, ref) {
		t.Fatal("first propose refused")
	}
	if !tr.admit(a1, ref) {
		t.Fatal("duplicate propose (same ID) refused")
	}
	if !tr.admit(totalorder.MsgID{Origin: "a", Seq: 2}, ref) {
		t.Fatal("second propose from the same coordinator refused")
	}
	if tr.admit(totalorder.MsgID{Origin: "b", Seq: 1}, ref) {
		t.Fatal("propose from a second coordinator admitted while the first is in flight")
	}
	if !tr.admit(totalorder.MsgID{Origin: "b", Seq: 2}, other) {
		t.Fatal("unrelated object blocked by another object's in-flight op")
	}
	if !tr.busy(ref) {
		t.Fatal("object with undelivered proposals not busy")
	}

	// Delivery settles both of a's proposals; b may now coordinate.
	tr.settle(a1)
	tr.settle(totalorder.MsgID{Origin: "a", Seq: 2})
	if tr.busy(ref) {
		t.Fatal("object busy after all proposals settled")
	}
	if !tr.admit(totalorder.MsgID{Origin: "b", Seq: 3}, ref) {
		t.Fatal("propose refused after the conflicting ops settled")
	}

	// A view change purges proposals from dead coordinators.
	tr.purge(func(origin string) bool { return origin != "b" })
	if tr.busy(ref) {
		t.Fatal("dead coordinator's proposals survived the purge")
	}
}

// Regression: a mutating op coordinated by another node must revoke the
// leases *this* node granted before its delivery completes — the delivery's
// return is what the coordinator's FINAL reply, and with it the client ack,
// waits on. Around a view change the grantor (primary per the directory's
// latest view) and the coordinator (deposed primary, old view installed,
// write fence unarmed) can be different nodes; without member-side
// revocation the grantor's client caches would serve pre-write state for a
// full TTL after the write was acknowledged.
func TestDeliverRevokesMemberLeases(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	cfg := validConfig(net, dir)
	cfg.LeaseTTL = time.Second
	n := startNode(t, cfg)

	// A listener standing in for a client cache's invalidation endpoint.
	invalidated := make(chan struct{}, 4)
	l, err := net.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(func(_ context.Context, kind uint8, _ []byte) ([]byte, error) {
		if kind == KindCacheInvalidate {
			invalidated <- struct{}{}
		}
		return nil, nil
	})
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })

	// Materialize the object, then hand a lease to the sink — this node is
	// the primary in the directory's latest view, so the grant succeeds.
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "member-lease"}
	if _, err := n.invokeLocal(context.Background(), core.Invocation{
		Ref: ref, Method: "Set", Args: []any{int64(1)},
	}); err != nil {
		t.Fatal(err)
	}
	if resp := n.leases.grant(LeaseRequest{Ref: ref, HolderAddr: "sink"}); !resp.Granted {
		t.Fatalf("grant refused: %s", resp.Reason)
	}

	// Deliver a write coordinated elsewhere (origin n9, as a deposed primary
	// still on its old view would): the lease must be dead by the time
	// deliverSMR returns.
	encInv, err := core.EncodeInvocation(core.Invocation{
		Ref: ref, Method: "Set", Args: []any{int64(2)}, Persist: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !n.deliverSMR(totalorder.MsgID{Origin: "n9", Seq: 1}, append([]byte{smrOpExisting}, encInv...)) {
		t.Fatal("delivery not applied")
	}
	select {
	case <-invalidated:
	default:
		t.Fatal("member-side delivery did not revoke the lease this node granted")
	}
	n.leases.mu.Lock()
	holders := 0
	if rl := n.leases.refs[ref]; rl != nil {
		holders = len(rl.holders)
	}
	n.leases.mu.Unlock()
	if holders != 0 {
		t.Fatalf("%d lease holders survived a foreign-coordinated write", holders)
	}
}

// A fetch for an object with undelivered proposals answers Busy: a snapshot
// taken now would miss those ops, and the puller must neither adopt it nor
// conclude the object does not exist.
func TestFetchBusyWhileOpsInFlight(t *testing.T) {
	net := rpc.NewMemNetwork()
	dir := membership.NewDirectory(time.Hour)
	n1 := startNode(t, validConfig(net, dir))
	cfg2 := validConfig(net, dir)
	cfg2.ID, cfg2.Addr = "n2", "n2"
	n2 := startNode(t, cfg2)
	ctx := context.Background()

	ref := core.Ref{Type: objects.TypeAtomicLong, Key: "busy"}
	if _, err := n1.lookupOrCreate(core.Invocation{Ref: ref}); err != nil {
		t.Fatal(err)
	}
	n1.inflight.admit(totalorder.MsgID{Origin: "n9", Seq: 1}, ref)

	installed, busy := n2.pullObject(ctx, ref, []ring.NodeID{"n1", "n2"})
	if installed {
		t.Fatal("pull adopted a snapshot with ops still in flight")
	}
	if !busy {
		t.Fatal("pull did not report the peer's copy as busy")
	}

	n1.inflight.settle(totalorder.MsgID{Origin: "n9", Seq: 1})
	installed, busy = n2.pullObject(ctx, ref, []ring.NodeID{"n1", "n2"})
	if !installed || busy {
		t.Fatalf("pull after settle: installed=%v busy=%v, want true/false", installed, busy)
	}
}
