package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/durability"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
	"crucial/internal/totalorder"
)

// State-machine replication of persistent objects (paper Section 4.1):
// operations on an object with rf > 1 are disseminated to its replica group
// with total-order multicast; every replica applies them in delivery order
// on its local copy, and the primary returns the result to the caller.

type smrResult struct {
	results []any
	err     error
	// version is the coordinator copy's apply version immediately after
	// this op, captured under the object monitor (see execOn). Compared
	// against the members' finalResp versions before acking.
	version uint64
	// commit is the op's WAL durability ticket (nil with the tier off).
	// The coordinator waits on it before acking — see waitDurable.
	commit *durability.Commit
}

// finalResp is the reply to a FINAL control message, sent after the
// member has applied the finalized op (see handleFinal). Version is the
// member copy's apply version immediately after that apply. Replicas of
// one object apply the same totally-ordered sequence, so for any given
// message every member's post-apply version must agree with the
// coordinator's — a mismatch means one side executed the op on a copy
// with a different history (typically a replica replaying the op from its
// at-most-once window while the coordinator re-executed it on a
// resurrected older snapshot, the signature of a forked copy) and the op
// must not be acked. Known distinguishes a real version 0 (a read-only
// genesis round) from "version not recorded" (the apply raced the
// bookkeeping window); an unknown version skips the comparison.
type finalResp struct {
	Version uint64
	Known   bool
}

// proposeMsg and finalMsg are the Skeen control messages on the wire.
// Fence is the coordinator's membership digest (membership.View.Fence): a
// receiver refuses proposes from a coordinator whose view of the cluster
// differs from its own. Skeen's protocol needs every group member's
// propose to succeed, so during a view transition any replica shared
// between the old and the new replica group fences out the stale
// coordinator — without the fence, the old and the new primary can both
// commit ops for the same object to overlapping groups and fork its
// lineage (two clients acknowledged the same counter value).
type proposeMsg struct {
	ID      totalorder.MsgID
	Payload []byte
	Fence   uint64
}

// SMR payloads carry a one-byte prefix ahead of the encoded invocation:
// whether the coordinator held a copy of the object when it multicast the
// op. A replica that receives a non-genesis op for an object it does not
// hold is missing its base copy (the hand-off transfer has not arrived) —
// applying the op to a freshly created object would fork the lineage, so
// it skips the apply and pulls a base copy instead (see deliverSMR).
const (
	smrOpExisting byte = 0 // the coordinator already held the object
	smrOpGenesis  byte = 1 // first-ever op: replicas may create it fresh
	// Group-commit rounds (see batch.go): the body is a totalorder batch
	// container of N encoded invocations, all targeting one ref. The
	// genesis distinction carries over from the single-op prefixes and
	// applies to the batch as a whole — residency was checked once by the
	// coordinator before the round.
	smrOpBatch        byte = 2
	smrOpBatchGenesis byte = 3
)

type finalMsg struct {
	ID totalorder.MsgID
	TS uint64
}

// invokeReplicated is the primary-side path for persistent objects: the
// contacted node must be the primary replica; it multicasts the operation
// to the group and waits for its own in-order delivery to produce the
// result.
func (n *Node) invokeReplicated(ctx context.Context, inv core.Invocation) ([]any, error) {
	group, r := n.replicaGroup(inv.Ref, true)
	if r == nil || len(group) == 0 {
		return nil, core.ErrRebalancing
	}
	if group[0] != n.cfg.ID {
		if inv.ReadOnly && n.leases != nil && contains(group, n.cfg.ID) {
			// Follower read: serve the read from our replica copy under a
			// primary-granted lease instead of bouncing to the primary.
			return n.followerRead(ctx, inv, group[0])
		}
		return nil, fmt.Errorf("%w: %s belongs to %s", core.ErrWrongNode, inv.Ref, group[0])
	}
	info, err := n.cfg.Registry.Lookup(inv.Ref.Type)
	if err != nil {
		return nil, err
	}
	if info.Synchronization {
		// Synchronization objects are never replicated (paper, fn. 2).
		return n.invokeLocal(ctx, inv)
	}
	if results, err, ok := n.tryLocalRead(ctx, inv); ok {
		// Read-only calls at a provably-current primary skip the ordering
		// round entirely; writes it has not applied were never acked, so
		// the read linearizes at its execution under the object monitor.
		return results, err
	}
	if n.batcher != nil && !inv.ReadOnly {
		// Group commit (Config.Write): the mutation joins a per-ref batch
		// and shares one ordering round, one lease fence and one monitor
		// acquisition with its concurrent neighbors. Everything below is
		// the classic one-round-per-op path, kept verbatim for disabled
		// policies and for the read-only rounds of lease-less clusters.
		return n.submitBatched(ctx, inv)
	}
	if n.leases != nil && !inv.ReadOnly {
		// Revoke-before-commit: block new grants, synchronously invalidate
		// every cached copy and follower lease, and only then order the
		// mutation. Grants resume (at the post-write version) once the
		// primary has applied the op and replied.
		done, lerr := n.prepareWrite(ctx, inv.Ref)
		if lerr != nil {
			return nil, lerr
		}
		defer done()
	}

	genesis, err := n.ensureCoordinatorCopy(ctx, inv.Ref, group)
	if err != nil {
		return nil, err
	}
	flag := smrOpExisting
	if genesis {
		flag = smrOpGenesis
	}

	encInv, err := core.EncodeInvocation(inv)
	if err != nil {
		return nil, err
	}
	payload := append([]byte{flag}, encInv...)
	id := totalorder.MsgID{Origin: string(n.cfg.ID), Seq: n.seq.Add(1)}
	ch := make(chan smrResult, 1)
	n.waitMu.Lock()
	n.waiters[id] = ch
	n.waitMu.Unlock()
	n.finalVerMu.Lock()
	if n.finalVers == nil {
		n.finalVers = make(map[totalorder.MsgID]map[ring.NodeID]uint64)
	}
	n.finalVers[id] = make(map[ring.NodeID]uint64, len(group)-1)
	n.finalVerMu.Unlock()
	defer func() {
		n.waitMu.Lock()
		delete(n.waiters, id)
		n.waitMu.Unlock()
		n.finalVerMu.Lock()
		delete(n.finalVers, id)
		n.finalVerMu.Unlock()
	}()

	members := make([]string, len(group))
	for i, g := range group {
		members[i] = string(g)
	}
	// Telemetry: attribute the whole ordering round — multicast, in-order
	// delivery, replica execution — to the active server span so reports
	// can separate SMR cost from plain method execution.
	var orderStart time.Time
	if n.instrumented {
		orderStart = time.Now()
	}
	if err := totalorder.Multicast(ctx, (*toTransport)(n), members, id, payload); err != nil {
		// A failed multicast means part of the replica group is
		// unreachable or the view is changing under our feet (a member
		// crashed between group computation and propose). Either way the
		// client should re-route and retry — surface the rebalancing
		// sentinel, which survives the wire's string encoding as a prefix
		// (unlike an error buried mid-text). At-most-once dedup makes the
		// retry safe even if this round did deliver somewhere.
		return nil, fmt.Errorf("%w: %v", core.ErrRebalancing, err)
	}
	n.smrOps.Add(1)
	n.cSMRRounds.Inc()
	select {
	case res := <-ch:
		if n.instrumented {
			telemetry.SpanFromContext(ctx).AddTiming(telemetry.TimingSMR, time.Since(orderStart))
		}
		if err := n.checkRoundVersions(inv.Ref, id, res.version); err != nil {
			return nil, err
		}
		if err := waitDurable(ctx, res.commit); err != nil {
			// The op is applied in memory but its record never reached cold
			// storage; acking would promise crash durability the tier cannot
			// honor. No ack — the client's retry is dedup-safe.
			return nil, err
		}
		n.log.Debug("smr round complete", "ref", inv.Ref.String(),
			"method", inv.Method, "id", id.String(), "group", members,
			"genesis", flag == smrOpGenesis, "err", res.err)
		return res.results, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ensureCoordinatorCopy makes sure this node may safely coordinate an
// ordering round for ref, and reports whether the round must be flagged
// genesis. The single-op path and the group-commit flush share it; for a
// batch it runs once per round, not per write.
func (n *Node) ensureCoordinatorCopy(ctx context.Context, ref core.Ref, group []ring.NodeID) (genesis bool, err error) {
	_, resident := n.lookupExisting(ref)
	if (!resident || n.isStale(ref)) && len(group) > 1 {
		// The primary holds no copy, or holds one marked behind the
		// committed history (a delivery was skipped before its base
		// installed). A miss is either a genuinely new object or one whose
		// hand-off transfer never reached us (the view changed while we
		// were partitioned, or the pusher died mid-transfer). Creating a
		// fresh object in the second case would silently discard all prior
		// state — and coordinating on a stale copy would ack results
		// computed on state missing acknowledged ops. Ask the other
		// replicas for a copy first; only a unanimous miss is creation.
		installed, busy := n.pullObject(ctx, ref, group)
		if installed {
			resident = true
		}
		if !resident && busy {
			// A peer holds a copy but has in-flight ops for it; adopting a
			// snapshot now would miss them. Bounce the client to retry once
			// they settle.
			return false, fmt.Errorf("%w: %s busy at a peer", core.ErrRebalancing, ref)
		}
		if n.isStale(ref) {
			// The pull could not prove the local copy current (no peer
			// reachable, or every candidate busy). Bounce rather than ack
			// a write computed on a possibly-behind copy.
			return false, fmt.Errorf("%w: %s stale on %s", core.ErrRebalancing, ref, n.cfg.ID)
		}
	}
	return !resident, nil
}

// checkRoundVersions is the coordinator's fork check, run after its own
// in-order apply and before the ack. Every member that reported a
// post-apply version (finalResp) must agree with the coordinator's: the
// total order delivers the same op sequence everywhere, so disagreement
// means one side's copy carries a different history. The typical cause is
// a resurrected older snapshot — the member replays the op from its
// at-most-once window (no version bump) while the coordinator re-executes
// it fresh, and acking would commit a lineage missing acknowledged
// writes. Instead: no ack (the retry is dedup-safe), and the behind side
// is repaired — the coordinator marks itself stale and pulls, or pushes
// its copy to a behind member.
func (n *Node) checkRoundVersions(ref core.Ref, id totalorder.MsgID, local uint64) error {
	n.finalVerMu.Lock()
	vs := n.finalVers[id]
	n.finalVerMu.Unlock()
	for member, v := range vs {
		switch {
		case v > local:
			n.log.Warn("replica ahead of coordinator, refusing ack",
				"ref", ref.String(), "id", id.String(), "member", string(member),
				"member_version", v, "local_version", local)
			n.markStale(ref)
			go n.selfHeal(ref)
			return fmt.Errorf("%w: %s version %d behind replica %s at %d",
				core.ErrRebalancing, ref, local, member, v)
		case v < local:
			n.log.Warn("replica behind coordinator, refusing ack",
				"ref", ref.String(), "id", id.String(), "member", string(member),
				"member_version", v, "local_version", local)
			if e, ok := n.lookupExisting(ref); ok {
				m := member
				go func() {
					if err := n.pushObject(ref, e, m); err != nil {
						n.log.Debug("repair push failed", "ref", ref.String(),
							"target", string(m), "err", err)
					}
				}()
			}
			return fmt.Errorf("%w: replica %s of %s at version %d behind coordinator at %d",
				core.ErrRebalancing, member, ref, v, local)
		}
	}
	return nil
}

// deliverSMR applies one totally-ordered operation to the local replica and
// completes the coordinator's waiter if this node originated it.
//
// An op for an object this replica does not hold is applied only when the
// coordinator flagged it as genesis (first-ever op). Otherwise the base
// copy is missing — the hand-off transfer has not arrived yet — and
// applying to a fresh object would fork the lineage: this replica would
// hold a copy reflecting only the ops it saw, yet look authoritative to a
// later version comparison. The delivery is skipped (the op is safe in the
// other replicas' copies and in any snapshot taken after it) and a
// background pull restores this replica's base copy.
//
// The return value reports whether the op was applied to this replica's
// copy. The coordinator's FINAL round waits on it (see handleFinal): a
// skipped or bounced delivery returns false, the coordinator's multicast
// fails, and the client gets a retryable error instead of an ack — so an
// acknowledged op is guaranteed applied at every group member, and no
// single crash can take the only copy of an acknowledged write with it.
// Deterministic method errors still count as applied: every replica
// executes them identically, so the copies agree.
func (n *Node) deliverSMR(id totalorder.MsgID, payload []byte) bool {
	if isBatchPayload(payload) {
		return n.deliverSMRBatch(id, payload)
	}
	n.inflight.settle(id)
	var results []any
	var version uint64
	var commit *durability.Commit
	versionKnown := false
	genesis, body, err := splitSMRPayload(payload)
	if err == nil {
		var inv core.Invocation
		inv, err = core.DecodeInvocation(body)
		if err == nil {
			e, resident := n.lookupExisting(inv.Ref)
			switch {
			case !resident && !genesis:
				n.log.Debug("skipping committed op without base copy",
					"ref", inv.Ref.String(), "origin", id.Origin)
				err = fmt.Errorf("%w: %s has no base copy on %s",
					core.ErrRebalancing, inv.Ref, n.cfg.ID)
				// The copy this node eventually installs may be a snapshot
				// taken before this op; mark the ref so the write, grant,
				// and local-read paths refuse it until a barrier-protected
				// pull proves the copy current (see markStale).
				n.markStale(inv.Ref)
				go n.selfHeal(inv.Ref)
			default:
				if !resident {
					e, err = n.lookupOrCreate(inv)
				}
				if err == nil {
					// Member-side revoke-before-commit: leases *this* node
					// granted on the ref (it may be the new primary while a
					// deposed coordinator still writes under its old view)
					// must die before the FINAL reply that gates the ack.
					var release func()
					release, err = n.memberWriteFence(id.Origin, inv)
					if err != nil {
						// The revocation round could not complete, so a
						// stale lease may outlive this op; refuse the apply
						// (no ack — the retry is dedup-safe) and heal: the
						// other members applied, so our copy is now behind.
						n.markStale(inv.Ref)
						go n.selfHeal(inv.Ref)
					} else {
						// SMR ops never block (no sync objects), so
						// Background is a safe execution context here.
						results, version, err = n.execOn(context.Background(), e, inv)
						versionKnown = true
						release()
						if !inv.ReadOnly && !errors.Is(err, core.ErrRebalancing) {
							// The op reached this copy (deterministic method
							// errors included — replicas reproduce them); log
							// it. Every replica logs its own WAL; only the
							// coordinator's ticket gates the ack.
							commit = n.appendWAL(id.Origin, id.Seq, version, payload)
						}
						if err == nil {
							k := telemetry.ObjectKey{Type: inv.Ref.Type, Key: inv.Ref.Key}
							n.objTrack.ObserveApply(k, 1)
							n.bundleTrack.ObserveApply(k, 1)
						}
						n.log.Debug("smr op applied", "ref", inv.Ref.String(),
							"method", inv.Method, "id", id.String(), "version", version)
					}
				}
			}
		}
	}
	n.waitMu.Lock()
	ch, ok := n.waiters[id]
	n.waitMu.Unlock()
	if ok {
		ch <- smrResult{results: results, err: err, version: version, commit: commit}
	} else if versionKnown {
		// Member side: remember the post-apply version for the FINAL reply
		// (see handleFinal and recordApplyVersion).
		n.recordApplyVersion(id, version)
	}
	// Rebalancing-class failures (no base copy, copy mid-transfer) mean
	// the op did not reach this copy; anything else is a deterministic
	// outcome shared by every replica.
	return err == nil || !errors.Is(err, core.ErrRebalancing)
}

// deliverSMRBatch applies one totally-ordered group-commit round: every
// sub-invocation of the batch, in payload order, to the local copy under a
// single member write fence and a single monitor acquisition. The
// correctness story is per sub-operation exactly as for singles — each is
// individually dedup-checked and dedup-recorded, so a retried write that
// lands in a later batch replays instead of re-executing, and duplicate
// delivery of the whole batch is impossible (one MsgID, and the protocol
// layer delivers each id at most once). The batch applies all-or-nothing
// with respect to rebalancing-class failures (missing base copy, fence
// failure, mid-transfer copy): those void the round before any
// sub-operation runs, so the single applied verdict the protocol layer
// expects remains sound; deterministic method errors of individual
// sub-operations count as applied, as every replica reproduces them.
func (n *Node) deliverSMRBatch(id totalorder.MsgID, payload []byte) bool {
	n.inflight.settle(id)
	var out batchOutcome
	versionKnown := false
	genesis, invs, err := splitSMRBatchPayload(payload)
	if err != nil {
		out.err = err
	} else {
		ref := invs[0].Ref
		e, resident := n.lookupExisting(ref)
		switch {
		case !resident && !genesis:
			// Same as the single-op skip: no base copy, applying would
			// fork the lineage. The whole batch is skipped and the copy
			// healed in the background.
			n.log.Debug("skipping committed batch without base copy",
				"ref", ref.String(), "origin", id.Origin, "ops", len(invs))
			out.err = fmt.Errorf("%w: %s has no base copy on %s",
				core.ErrRebalancing, ref, n.cfg.ID)
			n.markStale(ref)
			go n.selfHeal(ref)
		default:
			if !resident {
				e, out.err = n.lookupOrCreate(invs[0])
			}
			if out.err == nil {
				// Fence amortization: one member-side revocation round
				// covers every write of the batch — leases must be dead
				// before the first sub-op applies, and grants resume only
				// after the last.
				release, ferr := n.memberWriteFence(id.Origin, invs[0])
				if ferr != nil {
					n.markStale(ref)
					go n.selfHeal(ref)
					out.err = ferr
				} else {
					out.res, out.version, out.err = n.execBatchOn(context.Background(), e, invs)
					versionKnown = out.err == nil
					release()
					if out.err == nil {
						// One record carries the whole batch; replay re-applies
						// its sub-operations through the same dedup window.
						out.commit = n.appendWAL(id.Origin, id.Seq, out.version, payload)
						k := telemetry.ObjectKey{Type: ref.Type, Key: ref.Key}
						n.objTrack.ObserveApply(k, len(invs))
						n.bundleTrack.ObserveApply(k, len(invs))
					}
					n.log.Debug("smr batch applied", "ref", ref.String(),
						"id", id.String(), "ops", len(invs), "version", out.version)
				}
			}
		}
	}
	n.batchWaitMu.Lock()
	ch, ok := n.batchWaiters[id]
	n.batchWaitMu.Unlock()
	if ok {
		ch <- out
	} else if versionKnown {
		// Member side: the post-batch version feeds the FINAL reply's fork
		// check, same bookkeeping as a single op (see deliverSMR).
		n.recordApplyVersion(id, out.version)
	}
	return out.err == nil || !errors.Is(out.err, core.ErrRebalancing)
}

// recordApplyVersion remembers a member-side post-apply version for the
// FINAL reply (see handleFinal). Bounded: an apply whose FINAL handler
// already gave up waiting leaves an orphan entry, so the map is pruned
// arbitrarily past a cap — a pruned entry only downgrades the
// coordinator's version comparison to "unknown", never corrupts it.
func (n *Node) recordApplyVersion(id totalorder.MsgID, version uint64) {
	n.applyVerMu.Lock()
	if n.applyVers == nil {
		n.applyVers = make(map[totalorder.MsgID]uint64)
	}
	if len(n.applyVers) > 4096 {
		for k := range n.applyVers {
			delete(n.applyVers, k)
			if len(n.applyVers) <= 2048 {
				break
			}
		}
	}
	n.applyVers[id] = version
	n.applyVerMu.Unlock()
}

// refOfSMRPayload extracts the target object of an SMR payload, for the
// in-flight conflict check on the propose path (see inflightTracker). A
// batch decodes to its first sub-invocation's ref — all sub-operations of
// a round share one object by construction.
func refOfSMRPayload(payload []byte) (core.Ref, error) {
	if isBatchPayload(payload) {
		parts, err := totalorder.SplitBatch(payload[1:])
		if err != nil {
			return core.Ref{}, err
		}
		inv, err := core.DecodeInvocation(parts[0])
		if err != nil {
			return core.Ref{}, err
		}
		return inv.Ref, nil
	}
	_, body, err := splitSMRPayload(payload)
	if err != nil {
		return core.Ref{}, err
	}
	inv, err := core.DecodeInvocation(body)
	if err != nil {
		return core.Ref{}, err
	}
	return inv.Ref, nil
}

// isBatchPayload reports whether an SMR payload carries a group-commit
// batch container rather than a single invocation.
func isBatchPayload(payload []byte) bool {
	return len(payload) > 0 && (payload[0] == smrOpBatch || payload[0] == smrOpBatchGenesis)
}

// splitSMRBatchPayload decodes a group-commit payload into its genesis
// flag and sub-invocations. All sub-invocations must target the same ref;
// a mixed batch is a protocol violation and voids the round.
func splitSMRBatchPayload(payload []byte) (genesis bool, invs []core.Invocation, err error) {
	if !isBatchPayload(payload) {
		return false, nil, fmt.Errorf("server: not an smr batch payload")
	}
	genesis = payload[0] == smrOpBatchGenesis
	parts, err := totalorder.SplitBatch(payload[1:])
	if err != nil {
		return false, nil, err
	}
	invs = make([]core.Invocation, len(parts))
	for i, p := range parts {
		if invs[i], err = core.DecodeInvocation(p); err != nil {
			return false, nil, fmt.Errorf("server: batch part %d: %w", i, err)
		}
		if invs[i].Ref != invs[0].Ref {
			return false, nil, fmt.Errorf("server: batch mixes refs %s and %s",
				invs[0].Ref, invs[i].Ref)
		}
	}
	return genesis, invs, nil
}

// splitSMRPayload strips the genesis prefix from an SMR payload.
func splitSMRPayload(payload []byte) (genesis bool, body []byte, err error) {
	if len(payload) < 1 {
		return false, nil, fmt.Errorf("server: empty smr payload")
	}
	switch payload[0] {
	case smrOpGenesis:
		return true, payload[1:], nil
	case smrOpExisting:
		return false, payload[1:], nil
	default:
		return false, nil, fmt.Errorf("server: bad smr payload prefix 0x%02x", payload[0])
	}
}

// toTransport adapts the node's peer RPC connections to the total-order
// protocol. Messages to self short-circuit without network or simulated
// latency; messages to peers pay one DSOReplica hop each way.
type toTransport Node

func (t *toTransport) node() *Node { return (*Node)(t) }

// Propose implements totalorder.Transport.
func (t *toTransport) Propose(ctx context.Context, target string, id totalorder.MsgID, payload []byte) (uint64, error) {
	n := t.node()
	if target == string(n.cfg.ID) {
		// The local propose passes the same single-coordinator admission
		// check as a remote one: if another coordinator's op for this
		// object is still in flight here, this round must not start.
		ref, err := refOfSMRPayload(payload)
		if err != nil {
			return 0, err
		}
		if !n.inflight.admit(id, ref) {
			return 0, fmt.Errorf("%w: %s has an op in flight from another coordinator",
				core.ErrRebalancing, ref)
		}
		return n.to.HandlePropose(id, payload), nil
	}
	view, _ := n.currentView()
	body, err := core.EncodeValue(proposeMsg{ID: id, Payload: payload, Fence: view.Fence()})
	if err != nil {
		return 0, err
	}
	out, err := n.peerCall(ctx, ring.NodeID(target), KindPropose, body)
	if err != nil {
		return 0, err
	}
	var ts uint64
	if err := core.DecodeValue(out, &ts); err != nil {
		return 0, err
	}
	return ts, nil
}

// Final implements totalorder.Transport. Remote replies carry the
// member's post-apply version (finalResp); it is collected into the
// coordinator's per-round table for the fork check in invokeReplicated.
func (t *toTransport) Final(ctx context.Context, target string, id totalorder.MsgID, ts uint64) error {
	n := t.node()
	if target == string(n.cfg.ID) {
		n.to.HandleFinal(id, ts)
		return nil
	}
	body, err := core.EncodeValue(finalMsg{ID: id, TS: ts})
	if err != nil {
		return err
	}
	out, err := n.peerCall(ctx, ring.NodeID(target), KindFinal, body)
	if err != nil {
		return err
	}
	var resp finalResp
	if len(out) > 0 && core.DecodeValue(out, &resp) == nil && resp.Known {
		n.finalVerMu.Lock()
		if vs, ok := n.finalVers[id]; ok {
			vs[ring.NodeID(target)] = resp.Version
		}
		n.finalVerMu.Unlock()
	}
	return nil
}

// Abort implements totalorder.Transport.
func (t *toTransport) Abort(ctx context.Context, target string, id totalorder.MsgID) error {
	n := t.node()
	if target == string(n.cfg.ID) {
		n.inflight.settle(id)
		n.to.Drop(id)
		return nil
	}
	body, err := core.EncodeValue(id)
	if err != nil {
		return err
	}
	_, err = n.peerCall(ctx, ring.NodeID(target), KindAbort, body)
	return err
}

var _ totalorder.Transport = (*toTransport)(nil)

// peerCall performs one inter-node RPC with simulated replica-link latency,
// a per-attempt timeout (see Config.PeerCallTimeout) and a single redial on
// connection failure. The timeout is what turns a frame lost in the network
// into an error the protocol layer can clean up after; an unbounded call
// would wedge the coordinator and, with it, the total-order queue.
func (n *Node) peerCall(ctx context.Context, id ring.NodeID, kind uint8, body []byte) ([]byte, error) {
	if err := n.profile.Delay(ctx, n.profile.DSOReplica); err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		c, err := n.peer(id)
		if err != nil {
			return nil, err
		}
		callCtx := ctx
		var cancel context.CancelFunc
		if n.peerTimeout > 0 {
			callCtx, cancel = context.WithTimeout(ctx, n.peerTimeout)
		}
		out, err := c.Call(callCtx, kind, body)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return out, nil
		}
		n.dropPeer(id)
		if attempt >= 1 || ctx.Err() != nil {
			return nil, err
		}
		// Brief pause before redial: the peer may be restarting.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// handleAbort services a peer's ABORT.
func (n *Node) handleAbort(payload []byte) ([]byte, error) {
	var id totalorder.MsgID
	if err := core.DecodeValue(payload, &id); err != nil {
		return nil, err
	}
	n.inflight.settle(id)
	n.to.Drop(id)
	return nil, nil
}

// handlePropose services a peer's PROPOSE. Proposes from a coordinator
// whose membership view disagrees with ours are refused (see proposeMsg):
// the coordinator aborts the round and the client retries once the views
// converge — a transient bounce, never a fork.
func (n *Node) handlePropose(payload []byte) ([]byte, error) {
	var msg proposeMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	view, _ := n.currentView()
	if fence := view.Fence(); msg.Fence != fence {
		return nil, fmt.Errorf("%w: propose from %s fenced (view mismatch)",
			core.ErrRebalancing, msg.ID.Origin)
	}
	// Single-coordinator admission: the fence above compares whole views,
	// but it cannot stop this interleaving — we accept the old primary's
	// op, install the next view, then the new primary proposes for the
	// same object while the first op is still undelivered. Two coordinators
	// would each ack a result the other never sees. Refuse the newcomer;
	// its round aborts and the client retries after the pending op settles.
	ref, err := refOfSMRPayload(msg.Payload)
	if err != nil {
		return nil, err
	}
	if !n.inflight.admit(msg.ID, ref) {
		return nil, fmt.Errorf("%w: %s has an op in flight from another coordinator",
			core.ErrRebalancing, ref)
	}
	ts := n.to.HandlePropose(msg.ID, msg.Payload)
	return core.EncodeValue(ts)
}

// handleFinal services a peer's FINAL. It replies only once the message
// has been applied here, not merely finalized: the coordinator's
// Multicast waits on this reply before its own delivery acks the client,
// so the reply is the guarantee that an acknowledged operation exists at
// every group member. A finalized-but-undelivered message (stuck behind
// an earlier pending op) acked in that window would live solely in the
// coordinator's memory — a coordinator crash would drop it, the view
// change would purge the stuck proposal, and the survivors would agree on
// a history missing an acknowledged write. The wait bound matches the
// orphan TTL that limits how long a zombie proposal can stall delivery;
// on expiry the coordinator surfaces a retryable error instead of acking
// (the at-most-once window makes the client's retry safe either way).
func (n *Node) handleFinal(payload []byte) ([]byte, error) {
	var msg finalMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	n.to.HandleFinal(msg.ID, msg.TS)
	// Floor the wait bound: a negative Config.PeerCallTimeout disables the
	// per-attempt RPC bound and zeroes peerTimeout, but this wait still
	// needs a real deadline — at zero, any finalized op queued behind an
	// earlier pending message would fail its FINAL immediately and the
	// coordinator would spuriously abort the round.
	pt := n.peerTimeout
	if pt <= 0 {
		pt = 2 * time.Second // the Config.PeerCallTimeout default
	}
	if !n.to.WaitDelivered(msg.ID, 10*pt) {
		return nil, fmt.Errorf("%w: %s finalized but not yet applied on %s",
			core.ErrRebalancing, msg.ID, n.cfg.ID)
	}
	// Report the local post-apply version so the coordinator can verify
	// the copies did not fork (see finalResp). The entry was recorded by
	// deliverSMR; consume it so the map stays bounded.
	resp := finalResp{}
	n.applyVerMu.Lock()
	if v, ok := n.applyVers[msg.ID]; ok {
		resp.Version, resp.Known = v, true
		delete(n.applyVers, msg.ID)
	}
	n.applyVerMu.Unlock()
	return core.EncodeValue(resp)
}
