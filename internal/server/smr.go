package server

import (
	"context"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
	"crucial/internal/totalorder"
)

// State-machine replication of persistent objects (paper Section 4.1):
// operations on an object with rf > 1 are disseminated to its replica group
// with total-order multicast; every replica applies them in delivery order
// on its local copy, and the primary returns the result to the caller.

type smrResult struct {
	results []any
	err     error
}

// proposeMsg and finalMsg are the Skeen control messages on the wire.
type proposeMsg struct {
	ID      totalorder.MsgID
	Payload []byte
}

type finalMsg struct {
	ID totalorder.MsgID
	TS uint64
}

// invokeReplicated is the primary-side path for persistent objects: the
// contacted node must be the primary replica; it multicasts the operation
// to the group and waits for its own in-order delivery to produce the
// result.
func (n *Node) invokeReplicated(ctx context.Context, inv core.Invocation) ([]any, error) {
	group, r := n.replicaGroup(inv.Ref, true)
	if r == nil || len(group) == 0 {
		return nil, core.ErrRebalancing
	}
	if group[0] != n.cfg.ID {
		return nil, fmt.Errorf("%w: %s belongs to %s", core.ErrWrongNode, inv.Ref, group[0])
	}
	info, err := n.cfg.Registry.Lookup(inv.Ref.Type)
	if err != nil {
		return nil, err
	}
	if info.Synchronization {
		// Synchronization objects are never replicated (paper, fn. 2).
		return n.invokeLocal(ctx, inv)
	}

	payload, err := core.EncodeInvocation(inv)
	if err != nil {
		return nil, err
	}
	id := totalorder.MsgID{Origin: string(n.cfg.ID), Seq: n.seq.Add(1)}
	ch := make(chan smrResult, 1)
	n.waitMu.Lock()
	n.waiters[id] = ch
	n.waitMu.Unlock()
	defer func() {
		n.waitMu.Lock()
		delete(n.waiters, id)
		n.waitMu.Unlock()
	}()

	members := make([]string, len(group))
	for i, g := range group {
		members[i] = string(g)
	}
	// Telemetry: attribute the whole ordering round — multicast, in-order
	// delivery, replica execution — to the active server span so reports
	// can separate SMR cost from plain method execution.
	var orderStart time.Time
	if n.instrumented {
		orderStart = time.Now()
	}
	if err := totalorder.Multicast(ctx, (*toTransport)(n), members, id, payload); err != nil {
		return nil, err
	}
	n.smrOps.Add(1)
	n.cSMRRounds.Inc()
	select {
	case res := <-ch:
		if n.instrumented {
			telemetry.SpanFromContext(ctx).AddTiming(telemetry.TimingSMR, time.Since(orderStart))
		}
		return res.results, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deliverSMR applies one totally-ordered operation to the local replica and
// completes the coordinator's waiter if this node originated it.
func (n *Node) deliverSMR(id totalorder.MsgID, payload []byte) {
	inv, err := core.DecodeInvocation(payload)
	var results []any
	if err == nil {
		var e *entry
		e, err = n.lookupOrCreate(inv)
		if err == nil {
			// SMR ops never block (no sync objects), so Background is a
			// safe execution context here.
			results, err = n.execOn(context.Background(), e, inv)
		}
	}
	n.waitMu.Lock()
	ch, ok := n.waiters[id]
	n.waitMu.Unlock()
	if ok {
		ch <- smrResult{results: results, err: err}
	}
}

// toTransport adapts the node's peer RPC connections to the total-order
// protocol. Messages to self short-circuit without network or simulated
// latency; messages to peers pay one DSOReplica hop each way.
type toTransport Node

func (t *toTransport) node() *Node { return (*Node)(t) }

// Propose implements totalorder.Transport.
func (t *toTransport) Propose(ctx context.Context, target string, id totalorder.MsgID, payload []byte) (uint64, error) {
	n := t.node()
	if target == string(n.cfg.ID) {
		return n.to.HandlePropose(id, payload), nil
	}
	body, err := core.EncodeValue(proposeMsg{ID: id, Payload: payload})
	if err != nil {
		return 0, err
	}
	out, err := n.peerCall(ctx, ring.NodeID(target), KindPropose, body)
	if err != nil {
		return 0, err
	}
	var ts uint64
	if err := core.DecodeValue(out, &ts); err != nil {
		return 0, err
	}
	return ts, nil
}

// Final implements totalorder.Transport.
func (t *toTransport) Final(ctx context.Context, target string, id totalorder.MsgID, ts uint64) error {
	n := t.node()
	if target == string(n.cfg.ID) {
		n.to.HandleFinal(id, ts)
		return nil
	}
	body, err := core.EncodeValue(finalMsg{ID: id, TS: ts})
	if err != nil {
		return err
	}
	_, err = n.peerCall(ctx, ring.NodeID(target), KindFinal, body)
	return err
}

// Abort implements totalorder.Transport.
func (t *toTransport) Abort(ctx context.Context, target string, id totalorder.MsgID) error {
	n := t.node()
	if target == string(n.cfg.ID) {
		n.to.Drop(id)
		return nil
	}
	body, err := core.EncodeValue(id)
	if err != nil {
		return err
	}
	_, err = n.peerCall(ctx, ring.NodeID(target), KindAbort, body)
	return err
}

var _ totalorder.Transport = (*toTransport)(nil)

// peerCall performs one inter-node RPC with simulated replica-link latency
// and a single redial on connection failure.
func (n *Node) peerCall(ctx context.Context, id ring.NodeID, kind uint8, body []byte) ([]byte, error) {
	if err := n.profile.Delay(ctx, n.profile.DSOReplica); err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		c, err := n.peer(id)
		if err != nil {
			return nil, err
		}
		out, err := c.Call(ctx, kind, body)
		if err == nil {
			return out, nil
		}
		n.dropPeer(id)
		if attempt >= 1 || ctx.Err() != nil {
			return nil, err
		}
		// Brief pause before redial: the peer may be restarting.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// handleAbort services a peer's ABORT.
func (n *Node) handleAbort(payload []byte) ([]byte, error) {
	var id totalorder.MsgID
	if err := core.DecodeValue(payload, &id); err != nil {
		return nil, err
	}
	n.to.Drop(id)
	return nil, nil
}

// handlePropose services a peer's PROPOSE.
func (n *Node) handlePropose(payload []byte) ([]byte, error) {
	var msg proposeMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	ts := n.to.HandlePropose(msg.ID, msg.Payload)
	return core.EncodeValue(ts)
}

// handleFinal services a peer's FINAL.
func (n *Node) handleFinal(payload []byte) ([]byte, error) {
	var msg finalMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	n.to.HandleFinal(msg.ID, msg.TS)
	return nil, nil
}
