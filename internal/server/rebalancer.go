package server

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
)

// The rebalancer (DESIGN.md §5g) closes the loop from the per-object load
// observability of §5f to placement: it periodically merges every member's
// heavy-hitter snapshot, detects objects whose windowed rate is both high
// in absolute terms and skewed relative to the rest of the population, and
// live-migrates them (MigrateObject) onto the least-loaded nodes. When a
// pinned object cools off it is un-pinned back to hash placement, so the
// directive table tracks the hot set rather than growing monotonically.
//
// Every node runs the loop, but only the coordinator — the first member of
// the installed view, the same total order every other tie-break in the
// package uses — acts on a given tick. Coordinator failover is therefore
// free: the next view promotes the next member, whose own loop starts
// acting (with fresh streak state; it re-observes hotness for Sustain
// scans before moving anything, which only delays, never endangers).
type rebalancer struct {
	n      *Node
	policy core.RebalancePolicy

	stop chan struct{}
	done chan struct{}

	mu sync.Mutex
	// streaks counts consecutive scans each object exceeded both hot
	// gates; coolStreaks counts consecutive scans a pinned object stayed
	// below half the hot rate; cooldown quarantines refs after any
	// migration attempt so placement cannot flap within one measurement
	// settling period.
	streaks     map[core.Ref]int
	coolStreaks map[string]int
	cooldown    map[string]time.Time
}

func newRebalancer(n *Node, p core.RebalancePolicy) *rebalancer {
	return &rebalancer{
		n:           n,
		policy:      p.Normalized(),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		streaks:     make(map[core.Ref]int),
		coolStreaks: make(map[string]int),
		cooldown:    make(map[string]time.Time),
	}
}

func (rb *rebalancer) start() { go rb.loop() }

func (rb *rebalancer) stopWait() {
	close(rb.stop)
	<-rb.done
}

func (rb *rebalancer) loop() {
	defer close(rb.done)
	t := time.NewTicker(rb.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-rb.stop:
			return
		case <-t.C:
			if rb.n.closed.Load() {
				return
			}
			rb.scan()
		}
	}
}

// coordinating reports whether this node acts on scans under v.
func (rb *rebalancer) coordinating(v membership.View) bool {
	return len(v.Members) > 0 && v.Members[0] == rb.n.cfg.ID
}

// streakSnapshot copies the hot-streak table for status reporting.
func (rb *rebalancer) streakSnapshot() map[string]int {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	out := make(map[string]int, len(rb.streaks))
	for ref, s := range rb.streaks {
		out[ref.String()] = s
	}
	return out
}

// scan is one rebalancer pass: merge the cluster's per-object windowed
// rates, update hot/cool streaks, and migrate what has earned it.
func (rb *rebalancer) scan() {
	n := rb.n
	v, _ := n.currentView()
	if !rb.coordinating(v) {
		// Not our turn: drop accumulated streaks so a later promotion
		// starts from fresh observations, not from another era's.
		rb.mu.Lock()
		rb.streaks = make(map[core.Ref]int)
		rb.coolStreaks = make(map[string]int)
		rb.mu.Unlock()
		return
	}
	if n.objTrack == nil {
		// No telemetry, no load signal (see core.RebalancePolicy).
		return
	}
	n.rebalScans.Add(1)
	n.cRebalScans.Inc()

	// Gather: this node's snapshot plus one KindObjectStats round trip per
	// peer. An unreachable peer contributes nothing this scan — its load
	// reappears next scan, and Sustain absorbs the flicker.
	merged := n.ObjectStats()
	for _, m := range v.Members {
		if m == n.cfg.ID {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), rb.policy.Interval)
		out, err := n.peerCall(ctx, m, KindObjectStats, nil)
		cancel()
		if err != nil {
			continue
		}
		var snap telemetry.ObjectsSnapshot
		if core.DecodeValue(out, &snap) != nil {
			continue
		}
		merged = merged.Merge(snap)
	}

	// Rates: per object (for hotness) and per node (for target choice).
	rates := make(map[core.Ref]float64, len(merged.Stats))
	var sum float64
	for _, st := range merged.Stats {
		r := merged.RateOf(st)
		if r <= 0 {
			continue
		}
		rates[core.Ref{Type: st.Type, Key: st.Key}] = r
		sum += r
	}
	mean := 0.0
	if len(rates) > 0 {
		mean = sum / float64(len(rates))
	}
	// Forward-looking load model: each object's merged windowed rate is
	// attributed to the node that will serve its NEXT operation — its
	// current primary under v — not to whichever members measured the
	// traffic. Right after a directive flip, measurements lag placement
	// by up to a full rate window; attributing by measurement would keep
	// steering pins at the node the flip just relieved (and away from
	// the one it just burdened), dog-piling consecutive scans' choices
	// onto the same target.
	nodeLoad := make(map[ring.NodeID]float64, len(v.Members))
	for ref, r := range rates {
		if set := v.Place(ref.String(), n.cfg.RF); len(set) > 0 {
			nodeLoad[set[0]] += r
		}
	}

	p := rb.policy
	now := time.Now()
	rb.mu.Lock()
	// Hot streaks: both gates must hold this scan or the streak resets.
	for ref := range rb.streaks {
		if r, ok := rates[ref]; !ok || r < p.HotRate || r < p.HotFactor*mean {
			delete(rb.streaks, ref)
		}
	}
	// Pinned keys stay candidates: a directive records where a key was
	// sent, not where it must remain. When several hot keys land on the
	// same target across scans (each scan chooses against rates that lag
	// the previous scan's flips), the only path back to balance is
	// re-migrating one of them — a one-shot pin would freeze the first
	// skewed assignment forever. The load gate below (strictly lighter
	// beside the key, by more than the key's own rate) plus the per-key
	// cooldown keep re-pins from flapping.
	var toPin []core.Ref
	newPins := 0
	for ref, r := range rates {
		if r < p.HotRate || r < p.HotFactor*mean {
			continue
		}
		rb.streaks[ref]++
		key := ref.String()
		if rb.streaks[ref] < p.Sustain || now.Before(rb.cooldown[key]) {
			continue
		}
		_, pinned := v.Directives.Lookup(key)
		if !pinned && v.Directives.Len()+newPins >= p.MaxDirectives {
			n.log.Debug("rebalancer at directive cap", "ref", key,
				"cap", p.MaxDirectives)
			continue
		}
		if !pinned {
			newPins++
		}
		toPin = append(toPin, ref)
	}
	// Cool streaks: a pinned object quiet for Sustain scans goes home.
	var toUnpin []core.Ref
	for _, key := range v.Directives.Keys() {
		ref, ok := parseRefKey(key)
		if !ok {
			continue
		}
		if rates[ref] >= p.HotRate/2 {
			delete(rb.coolStreaks, key)
			continue
		}
		rb.coolStreaks[key]++
		if rb.coolStreaks[key] < p.Sustain || now.Before(rb.cooldown[key]) {
			continue
		}
		toUnpin = append(toUnpin, ref)
	}
	rb.mu.Unlock()

	// Assign hot keys one at a time against a load model updated as keys
	// are (notionally) moved: when several heavy hitters burn the same
	// primary, they spread across the other members instead of dog-piling
	// onto whichever node was least loaded at scan time. The gate compares
	// the load each node carries BESIDE the migrating key (the key brings
	// its own rate wherever it goes, so only the surrounding traffic
	// decides whether a move reduces the bottleneck): once spreading has
	// evened things out, the remaining hot keys stay on their unburdened
	// origin instead of ping-ponging.
	for _, ref := range toPin {
		cur := v.Place(ref.String(), n.cfg.RF)
		if len(cur) == 0 {
			continue
		}
		targets := rb.pickTargets(v, nodeLoad, ref)
		if len(targets) == 0 {
			continue
		}
		r := rates[ref]
		if nodeLoad[targets[0]] >= nodeLoad[cur[0]]-r {
			continue
		}
		rb.migrate(v, ref, targets, false)
		nodeLoad[cur[0]] -= r
		nodeLoad[targets[0]] += r
	}
	for _, ref := range toUnpin {
		rb.migrate(v, ref, nil, true)
	}

	// Anti-entropy for private-directory deployments: re-broadcast the
	// latest directive table every scan, so a member that missed a flip's
	// own broadcast (down, partitioned, restarted) converges within one
	// scan interval. Members sharing this node's directory, and members
	// already at this version, adopt nothing.
	if cur, _ := n.currentView(); cur.Directives.Version > 0 {
		n.broadcastDirectives(cur)
	}
}

// pickTargets spreads ref onto the least-loaded members, excluding its
// current primary (the node the hot spot is burning). Ties break by node
// ID so concurrent coordinators — impossible by construction, but cheap
// to be deterministic about — would choose identically.
func (rb *rebalancer) pickTargets(v membership.View, nodeLoad map[ring.NodeID]float64, ref core.Ref) []ring.NodeID {
	n := rb.n
	cur := v.Place(ref.String(), n.cfg.RF)
	var curPrimary ring.NodeID
	if len(cur) > 0 {
		curPrimary = cur[0]
	}
	cands := make([]ring.NodeID, 0, len(v.Members))
	for _, m := range v.Members {
		if m == curPrimary {
			continue
		}
		cands = append(cands, m)
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		li, lj := nodeLoad[cands[i]], nodeLoad[cands[j]]
		if li != lj {
			return li < lj
		}
		return cands[i] < cands[j]
	})
	rf := n.cfg.RF
	if rf > len(cands) {
		rf = len(cands)
	}
	return cands[:rf]
}

// migrate executes one migration: locally when this node is the ref's
// primary, by KindMigrate to the primary otherwise. Success or failure,
// the ref enters cooldown — a failed migration re-attempted every scan
// would hammer a struggling primary.
func (rb *rebalancer) migrate(v membership.View, ref core.Ref, targets []ring.NodeID, unpin bool) {
	n := rb.n
	key := ref.String()
	group := v.Place(key, n.cfg.RF)
	if len(group) == 0 {
		return
	}
	rb.mu.Lock()
	rb.cooldown[key] = time.Now().Add(rb.policy.Cooldown)
	delete(rb.streaks, ref)
	delete(rb.coolStreaks, key)
	rb.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), migrationFenceTTL)
	defer cancel()
	var err error
	if group[0] == n.cfg.ID {
		err = n.MigrateObject(ctx, ref, targets, unpin)
	} else {
		var body []byte
		body, err = core.EncodeValue(MigrateCmd{Ref: ref, Targets: targets, Unpin: unpin})
		if err == nil {
			_, err = n.peerCall(ctx, group[0], KindMigrate, body)
		}
	}
	if err != nil {
		n.log.Info("rebalancer migration failed", "ref", key, "unpin", unpin,
			"primary", string(group[0]), "err", err)
		return
	}
	n.log.Info("rebalancer migrated object", "ref", key, "unpin", unpin,
		"targets", len(targets))
}

// parseRefKey inverts core.Ref.String ("Type[Key]") for directive-table
// entries. Directive keys are always written via Ref.String, so a
// non-conforming key only ever means an operator typed one by hand.
func parseRefKey(key string) (core.Ref, bool) {
	i := strings.IndexByte(key, '[')
	if i <= 0 || !strings.HasSuffix(key, "]") {
		return core.Ref{}, false
	}
	return core.Ref{Type: key[:i], Key: key[i+1 : len(key)-1]}, true
}
