// Package server implements a DSO node: the in-memory grid server that
// stores shared objects, executes shipped method calls under per-object
// monitors (linearizability + server-side blocking), replicates persistent
// objects through total-order multicast, and rebalances state on membership
// changes (paper Sections 4 and 5).
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/core"
	"crucial/internal/durability"
	"crucial/internal/membership"
	"crucial/internal/netsim"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/telemetry"
	"crucial/internal/totalorder"
)

// RPC kinds multiplexed on node connections.
const (
	// KindInvoke is a client object invocation.
	KindInvoke uint8 = 1
	// KindPropose and KindFinal are Skeen protocol messages between nodes.
	KindPropose uint8 = 2
	KindFinal   uint8 = 3
	// KindTransfer pushes an object snapshot during rebalancing.
	KindTransfer uint8 = 4
	// KindPing is a health check.
	KindPing uint8 = 5
	// KindAbort drops an abandoned total-order message.
	KindAbort uint8 = 6
	// KindStats returns the node's counters and telemetry snapshot
	// (gob-encoded Snapshot) for dso-cli stats and cluster dashboards.
	KindStats uint8 = 7
	// KindTraceDump drains the node's span ring (gob-encoded
	// telemetry.Dump, with the node's wall clock for offset alignment) for
	// cluster-wide trace collection (dso-cli trace).
	KindTraceDump uint8 = 8
	// KindClock returns the node's wall clock (gob-encoded time.Time). The
	// trace collector estimates per-node clock offsets from this cheap,
	// symmetric round trip before draining spans.
	KindClock uint8 = 9
	// KindChaos carries a fault-injection command (gob-encoded ChaosCmd)
	// from dso-cli chaos to a node wired with a chaos engine.
	KindChaos uint8 = 10
	// KindFetch is a pull-on-miss: a replica asks a group peer for its copy
	// of an object (gob-encoded core.Ref in, fetchResp out) instead of
	// creating a fresh one when the hand-off transfer never arrived.
	KindFetch uint8 = 11
	// KindLease acquires or renews a lease on an object from its primary
	// (gob-encoded LeaseRequest in, LeaseResponse out): client caches get
	// a snapshot, followers get a version floor. See lease.go.
	KindLease uint8 = 12
	// KindLeaseRevoke is the primary telling a follower to stop serving
	// reads under its replica lease (gob-encoded leaseRevokeMsg), sent
	// synchronously before a mutation commits.
	KindLeaseRevoke uint8 = 13
	// KindCacheInvalidate is the primary telling a client cache to drop
	// its leased copy (gob-encoded InvalidateMsg). It is handled by the
	// client's invalidation listener, not by nodes.
	KindCacheInvalidate uint8 = 14
	// KindObjectStats returns the node's per-object heavy-hitter snapshot
	// (gob-encoded telemetry.ObjectsSnapshot) for dso-cli top and the
	// cluster collector. Uninstrumented nodes return an empty snapshot.
	KindObjectStats uint8 = 15
	// KindMigrate asks an object's primary to live-migrate it (gob-encoded
	// migrateCmd): fence, revoke leases, quiesce, push the snapshot to the
	// new replica set, then flip the placement directive. Sent by the
	// rebalancer and dso-cli migrate. See migrate.go.
	KindMigrate uint8 = 16
	// KindRebalanceStatus returns the node's resharding-plane status
	// (gob-encoded RebalanceStatus) for dso-cli rebalance status.
	KindRebalanceStatus uint8 = 17
	// KindView returns the node's installed membership view (gob-encoded
	// membership.View) — members, addresses, AND the directive table.
	// External clients (client.RemoteViews) refresh through it so keys
	// the rebalancer pinned keep routing after a directive flip; a static
	// member list alone goes permanently stale the first time placement
	// diverges from the hash ring.
	KindView uint8 = 18
	// KindDirectivesSync carries a directive table (gob-encoded
	// ring.Directives) between nodes. Processes with private directories
	// (dso-server) adopt a strictly newer table into their own view, so a
	// placement flip executed on one primary reaches every member: the
	// migrating primary broadcasts after the flip, and the rebalance
	// coordinator re-broadcasts each scan as anti-entropy. Shared-
	// directory deployments (in-process clusters) see only no-ops — the
	// table is never newer than their own.
	KindDirectivesSync uint8 = 19
)

// Config wires one node into a cluster.
type Config struct {
	// ID is the cluster-unique node name; Addr is where it listens on the
	// transport.
	ID   ring.NodeID
	Addr string
	// Transport carries all node traffic (TCP or in-memory).
	Transport rpc.Transport
	// Registry resolves object types. Usually objects.BuiltinRegistry()
	// plus application types.
	Registry *core.Registry
	// Directory is the membership service of the cluster.
	Directory *membership.Directory
	// Profile injects simulated network latencies for inter-node traffic.
	// Client-side latency is injected by the DSO client.
	Profile *netsim.Profile
	// RF is the replication factor applied to persistent objects.
	RF int
	// ServiceTime and ServiceConcurrency, when both set, model the node's
	// finite processing capacity: at most ServiceConcurrency invocations
	// at a time each pay ServiceTime (scaled) of node CPU before
	// executing. The elasticity experiment (Fig. 8) uses this so that
	// losing one of three nodes costs a third of the fleet's capacity, as
	// it would in a real deployment; by default it is off.
	ServiceTime        time.Duration
	ServiceConcurrency int
	// LeaseTTL, when positive, enables the lease-based read path on this
	// node: it grants client cache leases and follower read leases of this
	// duration, serves read-only invocations locally at the primary
	// without an SMR round, and fences mutations behind synchronous lease
	// revocation (see lease.go and DESIGN.md §5d). Zero disables leases —
	// every call takes the classic ownership path. Shorter TTLs shrink the
	// worst-case write stall behind an unreachable lease holder; longer
	// TTLs amortize more reads per grant.
	LeaseTTL time.Duration
	// Write is the group-commit policy for the SMR write path (DESIGN.md
	// §5e): with WritePolicy.Batching() true, concurrent mutations of one
	// object coalesce into shared ordering rounds of up to MaxBatch
	// stamped invocations, with up to Pipeline rounds in flight per
	// object. The zero value keeps the classic one-round-per-write path.
	// The same struct configures every layer (crucial.Options.Write,
	// cluster.Options.Write, client.Config.Write, dso-server flags).
	Write core.WritePolicy
	// Rebalance configures the telemetry-driven elastic resharding loop
	// (DESIGN.md §5g): with Enabled set (and a Telemetry bundle, its only
	// load signal), the coordinator node periodically merges the cluster's
	// per-object windowed rates and live-migrates sustained heavy hitters
	// onto the least-loaded nodes via placement directives. The zero value
	// keeps placement purely hash-driven.
	Rebalance core.RebalancePolicy
	// Durability configures the cold-storage durability tier (DESIGN.md
	// §5h): with Enabled set (and a ColdStore wired), every committed SMR
	// delivery this node applies is logged to a per-node write-ahead log,
	// acks wait on the coordinator's record reaching storage, and a
	// background snapshotter checkpoints object state so a restart — even
	// a whole-cluster one — recovers every acknowledged write from the
	// store alone. The zero value keeps the in-memory-only behavior.
	Durability core.DurabilityPolicy
	// ColdStore is the durable object store behind the WAL and the
	// checkpoints (s3sim in simulation). Required when Durability.Enabled;
	// nil disables the tier regardless of policy.
	ColdStore durability.Storage
	// PeerCallTimeout bounds each inter-node RPC attempt (Skeen control
	// messages, state transfers). Without it, a frame lost in the network
	// blocks the coordinator forever and its orphaned proposal wedges the
	// total-order queue on every replica. Zero means the 2s default;
	// negative disables the bound.
	PeerCallTimeout time.Duration
	// Telemetry, when non-nil, records server-side spans (attached to the
	// caller's trace via the invocation's TraceContext), execution and
	// monitor-wait histograms, SMR round counters and an in-flight gauge.
	Telemetry *telemetry.Telemetry
	// Chaos, when non-nil, lets KindChaos commands steer this fault
	// injection engine (partition/heal). The engine must be the one whose
	// endpoints carry this deployment's traffic for the commands to bite.
	Chaos *chaos.Engine
	// OnChaosLifecycle, when non-nil, handles KindChaos "crash" and
	// "restart" commands. It runs outside the RPC handler (the command is
	// acknowledged first — crashing tears down the RPC server, which
	// would otherwise deadlock waiting for its own handler).
	OnChaosLifecycle func(op string) error
}

func (c Config) validate() error {
	switch {
	case c.ID == "":
		return errors.New("server: config needs an ID")
	case c.Addr == "":
		return errors.New("server: config needs an Addr")
	case c.Transport == nil:
		return errors.New("server: config needs a Transport")
	case c.Registry == nil:
		return errors.New("server: config needs a Registry")
	case c.Directory == nil:
		return errors.New("server: config needs a Directory")
	case c.RF < 1:
		return errors.New("server: RF must be >= 1")
	}
	return nil
}

// Stats are monotonic node counters.
type Stats struct {
	Invocations uint64
	Transfers   uint64
	SMROps      uint64
}

// Node is one DSO server.
type Node struct {
	cfg     Config
	profile *netsim.Profile

	rpcServer *rpc.Server
	listener  net.Listener

	// view state
	viewMu      sync.RWMutex
	view        membership.View
	ringCur     *ring.Ring
	unsubscribe func()

	// object table
	objMu   sync.Mutex
	objects map[core.Ref]*entry

	// in-flight pull-on-miss repairs, singleflight per ref (see selfHeal)
	pullMu  sync.Mutex
	pulling map[core.Ref]bool

	// refs whose local copy is behind the committed history because a
	// delivery was skipped for want of a base copy (see markStale)
	staleMu   sync.Mutex
	staleRefs map[core.Ref]uint64
	staleSeq  uint64

	// peer connections
	peerMu sync.Mutex
	peers  map[ring.NodeID]*rpc.Client

	// replication
	to          *totalorder.Node
	inflight    *inflightTracker
	peerTimeout time.Duration
	seq         atomic.Uint64
	waitMu      sync.Mutex
	waiters     map[totalorder.MsgID]chan smrResult

	// post-apply version bookkeeping for the SMR fork check (finalResp):
	// applyVers holds this node's member-side versions awaiting their FINAL
	// reply; finalVers collects the members' versions per coordinated round.
	applyVerMu sync.Mutex
	applyVers  map[totalorder.MsgID]uint64
	finalVerMu sync.Mutex
	finalVers  map[totalorder.MsgID]map[ring.NodeID]uint64

	// batcher is the group-commit submit queue (nil when Config.Write
	// disables batching: the classic write path runs untouched), and
	// batchWaiters completes coordinated batch rounds on in-order
	// delivery, the batch analogue of waiters.
	batcher      *writeBatcher
	batchWaitMu  sync.Mutex
	batchWaiters map[totalorder.MsgID]chan batchOutcome

	// leases is the lease table (nil when Config.LeaseTTL is zero: the
	// read path and the write hooks are disabled at zero cost).
	leases *leaseTable

	// svcGate, when non-nil, is the modeled capacity gate (see Config).
	svcGate chan struct{}

	// migrating holds the live-migration fences (ref → deadline): writes
	// and lease grants bounce with ErrRebalancing while a hand-off is in
	// flight (see migrate.go). rebal is the resharding loop, nil unless
	// Config.Rebalance enables it.
	migrateMu sync.Mutex
	migrating map[core.Ref]time.Time
	rebal     *rebalancer

	migrations       atomic.Uint64
	migrationsFailed atomic.Uint64
	rebalScans       atomic.Uint64

	// dur is the durability tier runtime (WAL + snapshotter), nil when
	// Config.Durability or Config.ColdStore leaves the tier off.
	dur *durabilityState

	closed    atomic.Bool
	closeOnce sync.Once

	invocations atomic.Uint64
	transfers   atomic.Uint64
	smrOps      atomic.Uint64

	log *slog.Logger

	// Telemetry handles; nil (no-op) when no bundle was configured.
	instrumented    bool
	tracer          *telemetry.Tracer
	metrics         *telemetry.Registry
	objTrack        *telemetry.ObjectTracker
	bundleTrack     *telemetry.ObjectTracker
	cInvocations    *telemetry.Counter
	cSMRRounds      *telemetry.Counter
	cTransfers      *telemetry.Counter
	cTransfersStale *telemetry.Counter
	cPulls          *telemetry.Counter
	cDedupHits      *telemetry.Counter
	cDedupEvictions *telemetry.Counter
	gInflight       *telemetry.Gauge
	hExec           *telemetry.Histogram
	hMonitorWait    *telemetry.Histogram

	cLeaseGrants      *telemetry.Counter
	cLeaseRefusals    *telemetry.Counter
	cLeaseRevokes     *telemetry.Counter
	cLeaseExpiryWaits *telemetry.Counter
	cFollowerReads    *telemetry.Counter
	cLocalReads       *telemetry.Counter

	cBatches   *telemetry.Counter
	hBatchSize *telemetry.Histogram

	cMigrations       *telemetry.Counter
	cMigrationsFailed *telemetry.Counter
	cRebalScans       *telemetry.Counter
}

// Start launches the node: it listens on cfg.Addr, joins the directory and
// begins serving. Close (graceful) or Crash (abrupt) stop it.
func Start(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Profile == nil {
		cfg.Profile = netsim.Zero()
	}
	n := &Node{
		cfg:     cfg,
		profile: cfg.Profile,
		objects: make(map[core.Ref]*entry),
		peers:   make(map[ring.NodeID]*rpc.Client),
		waiters: make(map[totalorder.MsgID]chan smrResult),
		log:     telemetry.Logger(telemetry.CompServer).With("node", string(cfg.ID)),
	}
	if cfg.ServiceTime > 0 && cfg.ServiceConcurrency > 0 {
		n.svcGate = make(chan struct{}, cfg.ServiceConcurrency)
	}
	if cfg.Telemetry != nil {
		n.instrumented = true
		n.tracer = cfg.Telemetry.Tracer()
		n.metrics = cfg.Telemetry.Metrics()
		// Per-NODE tracker, deliberately not the bundle's shared one: this
		// node's KindObjectStats answer must describe the load IT serves.
		// In-process clusters share one Telemetry bundle across nodes, and
		// a shared tracker would make every member report the whole
		// cluster's traffic — inflating merged snapshots N-fold and
		// blinding the rebalancer's per-node load model. The bundle's own
		// tracker keeps the process-wide view (Runtime.HotObjects), so
		// server-side observations are mirrored into it as well.
		n.objTrack = telemetry.NewObjectTracker(0)
		n.bundleTrack = cfg.Telemetry.Objects()
		n.cInvocations = n.metrics.Counter(telemetry.MetServerInvocations)
		n.cSMRRounds = n.metrics.Counter(telemetry.MetServerSMRRounds)
		n.cTransfers = n.metrics.Counter(telemetry.MetServerTransfers)
		n.cTransfersStale = n.metrics.Counter(telemetry.MetServerTransfersStale)
		n.cPulls = n.metrics.Counter(telemetry.MetServerPulls)
		n.cDedupHits = n.metrics.Counter(telemetry.MetServerDedupHits)
		n.cDedupEvictions = n.metrics.Counter(telemetry.MetServerDedupEvictions)
		n.gInflight = n.metrics.Gauge(telemetry.MetServerInflight)
		n.hExec = n.metrics.Histogram(telemetry.HistServerExec)
		n.hMonitorWait = n.metrics.Histogram(telemetry.HistServerMonitorWait)
	}
	// The lease counters are resolved unconditionally: the registry and
	// the counters it returns are nil-safe, so uninstrumented nodes pay a
	// no-op Inc rather than a nil check on every lease-path branch.
	n.cLeaseGrants = n.metrics.Counter(telemetry.MetServerLeaseGrants)
	n.cLeaseRefusals = n.metrics.Counter(telemetry.MetServerLeaseRefusals)
	n.cLeaseRevokes = n.metrics.Counter(telemetry.MetServerLeaseRevokes)
	n.cLeaseExpiryWaits = n.metrics.Counter(telemetry.MetServerLeaseExpiryWts)
	n.cFollowerReads = n.metrics.Counter(telemetry.MetServerFollowerReads)
	n.cLocalReads = n.metrics.Counter(telemetry.MetServerLocalReads)
	n.cBatches = n.metrics.Counter(telemetry.MetServerBatches)
	n.hBatchSize = n.metrics.Histogram(telemetry.HistServerBatchSize)
	n.cMigrations = n.metrics.Counter(telemetry.MetServerMigrations)
	n.cMigrationsFailed = n.metrics.Counter(telemetry.MetServerMigrationsFailed)
	n.cRebalScans = n.metrics.Counter(telemetry.MetServerRebalanceScans)
	if cfg.LeaseTTL > 0 {
		n.leases = newLeaseTable(n, cfg.LeaseTTL)
	}
	if cfg.Write.Batching() {
		n.batcher = newWriteBatcher(n, cfg.Write)
	}
	n.to = totalorder.NewNode(string(cfg.ID), n.deliverSMR)
	switch {
	case cfg.PeerCallTimeout > 0:
		n.peerTimeout = cfg.PeerCallTimeout
	case cfg.PeerCallTimeout == 0:
		n.peerTimeout = 2 * time.Second
	}
	if n.peerTimeout > 0 {
		// The orphan TTL must comfortably exceed the window in which a
		// live coordinator could still finalize or abort (propose timeout
		// plus abort retries), or the GC itself would drop in-flight ops.
		n.to.SetPendingTTL(10 * n.peerTimeout)
	}
	n.inflight = newInflightTracker(10 * n.peerTimeout)

	l, err := cfg.Transport.Listen(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	n.listener = l
	n.rpcServer = rpc.NewServer(n.handle)
	go func() { _ = n.rpcServer.Serve(l) }()

	// Recover from cold storage BEFORE joining: the node must enter the
	// view already holding its checkpointed objects and replayed log, and
	// with the recovered directive table installed, or peers would route
	// and anti-entropy against an empty impostor.
	if err := n.initDurability(); err != nil {
		_ = n.rpcServer.Close()
		return nil, fmt.Errorf("server: durability recovery: %w", err)
	}

	// Join after the listener is live so peers can reach us immediately,
	// then track view changes for rebalancing.
	cfg.Directory.Join(cfg.ID, cfg.Addr)
	n.unsubscribe = cfg.Directory.Subscribe(n.onView)
	if cfg.Rebalance.Enabled {
		n.rebal = newRebalancer(n, cfg.Rebalance)
		n.rebal.start()
	}
	n.log.Info("node started", "addr", cfg.Addr, "rf", cfg.RF,
		"instrumented", n.instrumented, "rebalance", cfg.Rebalance.Enabled)
	return n, nil
}

// ID returns the node name.
func (n *Node) ID() ring.NodeID { return n.cfg.ID }

// Addr returns the listen address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Stats returns a snapshot of the node counters.
func (n *Node) Stats() Stats {
	return Stats{
		Invocations: n.invocations.Load(),
		Transfers:   n.transfers.Load(),
		SMROps:      n.smrOps.Load(),
	}
}

// Snapshot is the full introspection payload served over KindStats: the
// classic counters plus the node's telemetry registry (empty when the node
// runs uninstrumented).
type Snapshot struct {
	ID      string
	Objects int
	Stats   Stats
	Metrics telemetry.Snapshot
}

// Snapshot captures the node's current state.
func (n *Node) Snapshot() Snapshot {
	return Snapshot{
		ID:      string(n.cfg.ID),
		Objects: n.DebugObjectCount(),
		Stats:   n.Stats(),
		Metrics: n.metrics.Snapshot(),
	}
}

// ObjectStats captures the node's per-object heavy-hitter snapshot, the
// payload of KindObjectStats. Uninstrumented nodes report zero objects.
func (n *Node) ObjectStats() telemetry.ObjectsSnapshot {
	snap := n.objTrack.Snapshot()
	snap.Node = string(n.cfg.ID)
	return snap
}

// TraceDump captures the node's retained spans plus its wall clock, the
// payload of KindTraceDump. Uninstrumented nodes dump zero spans.
func (n *Node) TraceDump() telemetry.Dump {
	return telemetry.Dump{
		Node:  string(n.cfg.ID),
		Now:   time.Now(),
		Spans: n.tracer.Spans(),
	}
}

// Close leaves the cluster gracefully: the directory installs a new view,
// surviving nodes receive this node's objects via rebalancing, and then the
// node shuts down.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		// Leaving triggers onView on *other* nodes; this node pushes its
		// state away in its own onView callback for the leave view.
		n.cfg.Directory.Leave(n.cfg.ID)
		err = n.shutdown()
	})
	return err
}

// Crash stops the node abruptly without handing off state, simulating a
// server failure (Fig. 8). The caller is responsible for telling the
// directory (membership.Directory.Crash) — exactly like a real failure
// detector noticing after the fact.
func (n *Node) Crash() error {
	var err error
	n.closeOnce.Do(func() {
		err = n.shutdown()
	})
	return err
}

func (n *Node) shutdown() error {
	n.closed.Store(true)
	if n.rebal != nil {
		// Stop the scan loop before tearing down the RPC plane; an
		// in-flight scan's peer calls fail fast against closed peers.
		n.rebal.stopWait()
	}
	// Abort FINAL handlers parked in WaitDelivered (see totalorder.Close):
	// they hold RPC handler slots, and waiting out their full bound here
	// would stall the shutdown — and everything sequenced after it — for
	// seconds.
	n.to.Close()
	if n.batcher != nil {
		// Queued-but-unflushed writes fail with ErrStopped; rounds already
		// in flight run out against the closing transport under their own
		// deadline.
		n.batcher.close()
	}
	// Stop the snapshotter and abandon unflushed WAL records (nothing
	// unflushed was acked); the next start recovers from the store.
	n.closeDurability()
	if n.unsubscribe != nil {
		n.unsubscribe()
	}
	// Wake every blocked synchronization call with ErrStopped.
	n.objMu.Lock()
	entries := make([]*entry, 0, len(n.objects))
	for _, e := range n.objects {
		entries = append(entries, e)
	}
	n.objMu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	if n.leases != nil {
		n.leases.close()
	}
	err := n.rpcServer.Close()
	n.peerMu.Lock()
	for _, c := range n.peers {
		_ = c.Close()
	}
	n.peers = make(map[ring.NodeID]*rpc.Client)
	n.peerMu.Unlock()
	n.log.Info("node stopped",
		"invocations", n.invocations.Load(), "transfers", n.transfers.Load())
	return err
}

// currentView returns the node's installed view and ring.
func (n *Node) currentView() (membership.View, *ring.Ring) {
	n.viewMu.RLock()
	defer n.viewMu.RUnlock()
	return n.view, n.ringCur
}

// handle dispatches one RPC request.
func (n *Node) handle(ctx context.Context, kind uint8, payload []byte) ([]byte, error) {
	if n.closed.Load() {
		return nil, core.ErrStopped
	}
	switch kind {
	case KindInvoke:
		return n.handleInvoke(ctx, payload)
	case KindPropose:
		return n.handlePropose(payload)
	case KindFinal:
		return n.handleFinal(payload)
	case KindTransfer:
		return n.handleTransfer(payload)
	case KindAbort:
		return n.handleAbort(payload)
	case KindStats:
		return core.EncodeValue(n.Snapshot())
	case KindObjectStats:
		return core.EncodeValue(n.ObjectStats())
	case KindTraceDump:
		return core.EncodeValue(n.TraceDump())
	case KindClock:
		return core.EncodeValue(time.Now())
	case KindChaos:
		return n.handleChaos(payload)
	case KindFetch:
		return n.handleFetch(payload)
	case KindLease:
		return n.handleLease(payload)
	case KindLeaseRevoke:
		return n.handleLeaseRevoke(payload)
	case KindMigrate:
		return n.handleMigrate(ctx, payload)
	case KindRebalanceStatus:
		return n.handleRebalanceStatus()
	case KindView:
		v, _ := n.currentView()
		return core.EncodeValue(v)
	case KindDirectivesSync:
		return n.handleDirectivesSync(payload)
	case KindPing:
		return []byte("pong"), nil
	default:
		return nil, fmt.Errorf("server: unknown rpc kind %d", kind)
	}
}

// handleInvoke executes a client invocation, choosing the direct path for
// ephemeral objects and the SMR path for persistent ones.
func (n *Node) handleInvoke(ctx context.Context, payload []byte) ([]byte, error) {
	inv, err := core.DecodeInvocation(payload)
	if err != nil {
		return nil, err
	}
	// Re-derive the read-only flag from this node's own registry rather
	// than trusting the wire: the flag steers execution past the write
	// machinery (SMR round, dedup, version bump, lease revocation), so a
	// stale or hostile client must not smuggle a mutating method through
	// it — and a thin client that never registered the classification
	// (dso-cli, old binaries) still gets the read fast path, since
	// re-executing or follower-serving a genuine read is always safe.
	inv.ReadOnly = core.IsReadOnlyMethod(inv.Ref.Type, inv.Method)
	n.invocations.Add(1)
	// Per-object load accounting (DESIGN.md §5f): one observation per
	// handled invocation with the read/write class, end-to-end handler
	// latency and request payload size. Nil tracker is a no-op.
	if n.objTrack != nil {
		start := time.Now()
		defer func() {
			k := telemetry.ObjectKey{Type: inv.Ref.Type, Key: inv.Ref.Key}
			d := time.Since(start)
			n.objTrack.ObserveInvoke(k, inv.ReadOnly, d, len(payload))
			n.bundleTrack.ObserveInvoke(k, inv.ReadOnly, d, len(payload))
		}()
	}
	// Telemetry: continue the client's trace across the RPC boundary via
	// the invocation's TraceContext, and track queue depth (in-flight
	// invocations on this node).
	if n.instrumented {
		n.cInvocations.Inc()
		n.gInflight.Add(1)
		defer n.gInflight.Add(-1)
		var span *telemetry.Span
		ctx, span = n.tracer.StartRemote(ctx, telemetry.SpanServerInvoke,
			telemetry.SpanContext{TraceID: inv.Trace.TraceID, SpanID: inv.Trace.SpanID})
		span.SetAttr(telemetry.AttrObjectType, inv.Ref.Type)
		span.SetAttr(telemetry.AttrMethod, inv.Method)
		if inv.Persist && n.cfg.RF > 1 {
			span.SetAttr(telemetry.AttrPath, "smr")
		} else {
			span.SetAttr(telemetry.AttrPath, "local")
		}
		defer span.End()
	}
	if n.svcGate != nil {
		select {
		case n.svcGate <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		err := netsim.Sleep(ctx, n.profile.Scaled(n.cfg.ServiceTime))
		<-n.svcGate
		if err != nil {
			return nil, err
		}
	}

	var results []any
	var callErr error
	switch {
	case n.migrationFenced(inv.Ref):
		// Mid-migration: the copy is about to move and the directive flip
		// will change the primary. Bounce retryably; the client refreshes
		// its view and lands on the new home (see migrate.go).
		callErr = fmt.Errorf("%w: %s mid-migration on %s",
			core.ErrRebalancing, inv.Ref, n.cfg.ID)
	case inv.Persist && n.cfg.RF > 1:
		results, callErr = n.invokeReplicated(ctx, inv)
	default:
		results, callErr = n.invokeLocal(ctx, inv)
	}
	resp := core.Response{Results: results, Err: core.EncodeError(callErr)}
	// Encode into a pooled buffer; the rpc server recycles it after the
	// response frame is written (see rpc.Handler's ownership contract).
	return core.AppendResponse(rpc.GetBuffer(0), resp)
}

// peer returns (dialing if needed) the RPC client for a peer node.
func (n *Node) peer(id ring.NodeID) (*rpc.Client, error) {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	if c, ok := n.peers[id]; ok {
		return c, nil
	}
	view, _ := n.currentView()
	addr, ok := view.Addrs[id]
	if !ok {
		return nil, fmt.Errorf("server: no address for peer %s in view %d", id, view.ID)
	}
	conn, err := n.cfg.Transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial peer %s: %w", id, err)
	}
	c := rpc.NewClient(conn)
	n.peers[id] = c
	return c, nil
}

// dropPeer discards a cached connection after an error so the next call
// redials.
func (n *Node) dropPeer(id ring.NodeID) {
	n.peerMu.Lock()
	if c, ok := n.peers[id]; ok {
		_ = c.Close()
		delete(n.peers, id)
	}
	n.peerMu.Unlock()
}
