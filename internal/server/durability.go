package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/durability"
	"crucial/internal/telemetry"
)

// Durability tier (DESIGN.md §5h): every committed SMR delivery this node
// applies to a persistent copy is appended to a per-node write-ahead log
// in cold storage, and the coordinator blocks the client ack until its own
// record's flush lands — so an acknowledged write exists in storage that
// survives losing every node at once, not just f of them. A background
// snapshotter periodically checkpoints per-object state (the pushObject
// serialization: snapshot bytes + apply version + at-most-once window)
// together with the placement directive table, then truncates the sealed
// segments the checkpoint covers. On restart, recoverFromCold rebuilds the
// node from the latest valid checkpoint plus a replay of the surviving
// log before the node rejoins the cluster.

// durabilityState is one node's durability runtime; nil when the policy
// disables the tier or no cold store is wired.
type durabilityState struct {
	pol   core.DurabilityPolicy
	store durability.Storage
	log   *durability.Log // nil for snapshot-only durability
	epoch uint64          // last checkpoint epoch written or recovered

	stop chan struct{}
	done chan struct{}

	cReplays   *telemetry.Counter
	cTornTails *telemetry.Counter
	cSnapshots *telemetry.Counter
}

// initDurability recovers the node's state from cold storage and starts
// the WAL and the snapshotter. It runs before the node joins the
// directory, so peers only ever see it with its recovered state — and the
// recovered directive table is re-installed first, so the join itself
// routes by the surviving placement.
func (n *Node) initDurability() error {
	pol := n.cfg.Durability.Normalized()
	if !pol.Enabled || n.cfg.ColdStore == nil {
		return nil
	}
	d := &durabilityState{
		pol:        pol,
		store:      n.cfg.ColdStore,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		cReplays:   n.metrics.Counter(telemetry.MetWALReplays),
		cTornTails: n.metrics.Counter(telemetry.MetWALTornTails),
		cSnapshots: n.metrics.Counter(telemetry.MetServerSnapshots),
	}
	n.dur = d

	maxSeg, err := n.recoverFromCold(d)
	if err != nil {
		return err
	}
	if pol.WALEnabled() {
		d.log = durability.OpenLog(durability.LogOptions{
			Store:        d.store,
			Node:         string(n.cfg.ID),
			SyncEvery:    pol.SyncEvery,
			SegmentBytes: pol.SegmentBytes,
			StartSeg:     maxSeg + 1,
			Metrics:      n.metrics,
			Tracer:       n.tracer,
		})
	}
	if pol.Snapshotting() {
		go n.snapshotLoop(d)
	} else {
		close(d.done)
	}
	return nil
}

// recoverFromCold loads the latest checkpoint and replays the surviving
// log; it returns the highest WAL segment observed so the reopened log
// writes strictly after history.
func (n *Node) recoverFromCold(d *durabilityState) (maxSeg uint64, err error) {
	ctx, span := n.tracer.Start(context.Background(), telemetry.SpanRecoveryReplay)
	defer span.End()
	man, blobs, found, lerr := durability.LoadLatest(ctx, d.store, string(n.cfg.ID))
	if lerr != nil {
		// A damaged or GC'd checkpoint: recover from whatever the log
		// still holds rather than refusing to boot.
		n.log.Warn("checkpoint load failed, recovering from log alone", "err", lerr)
	}
	restored := 0
	if found {
		d.epoch = man.Epoch
		for i, blob := range blobs {
			var msg transferMsg
			if derr := core.DecodeValue(blob, &msg); derr != nil {
				n.log.Warn("skipping undecodable snapshot blob", "key", man.Objects[i], "err", derr)
				continue
			}
			if rerr := n.restoreObject(msg); rerr != nil {
				n.log.Warn("skipping unrestorable snapshot blob", "ref", msg.Ref.String(), "err", rerr)
				continue
			}
			restored++
		}
		if man.Directives.Version > 0 {
			// Satellite of the elastic-resharding plane: hot-key pins ride
			// the manifest and survive a full-cluster restart. Adoption is
			// version-checked, so a peer that recovered a newer table first
			// wins (SyncDirectives is last-writer-wins by version).
			if _, adopted := n.cfg.Directory.SyncDirectives(man.Directives); adopted {
				n.log.Info("recovered placement directives",
					"version", man.Directives.Version, "keys", man.Directives.Len())
			}
		}
	}
	recs, maxSeg, torn, rerr := durability.ReadLog(ctx, d.store, string(n.cfg.ID), man.CutSeg)
	if rerr != nil {
		return maxSeg, rerr
	}
	if torn > 0 {
		d.cTornTails.Add(uint64(torn))
	}
	replayed := 0
	for _, rec := range recs {
		if n.replayRecord(rec) {
			replayed++
		}
	}
	d.cReplays.Add(uint64(len(recs)))
	if found || len(recs) > 0 {
		n.log.Info("recovered from cold storage", "epoch", man.Epoch,
			"objects", restored, "wal_records", len(recs), "replayed", replayed,
			"torn", torn, "directives", man.Directives.Version)
	}
	span.SetAttr(telemetry.AttrObjectKey, fmt.Sprintf("objects=%d records=%d", restored, len(recs)))
	return maxSeg, nil
}

// restoreObject materializes one checkpointed object (the transferMsg
// serialization that state transfer uses) into the object table.
func (n *Node) restoreObject(msg transferMsg) error {
	info, err := n.cfg.Registry.Lookup(msg.Ref.Type)
	if err != nil {
		return err
	}
	obj, err := info.New(msg.Init)
	if err != nil {
		return err
	}
	snap, ok := obj.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("server: recovered type %s is not snapshotable", msg.Ref.Type)
	}
	if err := snap.Restore(msg.Snapshot); err != nil {
		return err
	}
	e := newEntry(obj, msg.Persist, false, msg.Init)
	e.dedup = msg.Dedup
	e.version = msg.Version
	n.objMu.Lock()
	n.objects[msg.Ref] = e
	n.objMu.Unlock()
	return nil
}

// replayRecord re-applies one logged delivery, gated by the record's
// post-apply version: a record whose Version is not beyond the copy's
// current version is already covered — by the checkpoint, or by an
// earlier record of the same op (a client retry that re-delivered through
// a later round) — and is skipped. Inside an applied record, each
// sub-operation still runs through the at-most-once window, so a batch
// that originally mixed fresh ops with dedup replays reproduces the same
// executions and the same version arithmetic it had live.
func (n *Node) replayRecord(rec durability.Record) bool {
	var invs []core.Invocation
	if isBatchPayload(rec.Payload) {
		_, batch, err := splitSMRBatchPayload(rec.Payload)
		if err != nil {
			n.log.Warn("skipping undecodable wal batch record", "err", err)
			return false
		}
		invs = batch
	} else {
		_, body, err := splitSMRPayload(rec.Payload)
		if err != nil {
			n.log.Warn("skipping undecodable wal record", "err", err)
			return false
		}
		inv, err := core.DecodeInvocation(body)
		if err != nil {
			n.log.Warn("skipping undecodable wal invocation", "err", err)
			return false
		}
		invs = []core.Invocation{inv}
	}
	if len(invs) == 0 {
		return false
	}
	e, err := n.lookupOrCreate(invs[0])
	if err != nil {
		n.log.Warn("cannot materialize object for wal replay",
			"ref", invs[0].Ref.String(), "err", err)
		return false
	}
	ctx := context.Background()
	e.mu.Lock()
	defer e.mu.Unlock()
	if rec.Version <= e.version {
		return false
	}
	for _, inv := range invs {
		if _, _, hit := n.dedupLookupLocked(ctx, e, inv); hit {
			continue
		}
		results, cerr := e.obj.Call(nodeCtl{n: n, e: e, ctx: ctx}, inv.Method, inv.Args)
		if !inv.ReadOnly {
			e.version++
		}
		n.dedupRecordLocked(e, inv, results, cerr)
	}
	// The record's version is authoritative: the live execution produced
	// it, and forcing it here keeps the copy comparable with replicas that
	// recovered through a different snapshot/replay split.
	e.version = rec.Version
	return true
}

// appendWAL logs one applied delivery and returns its durability ticket
// (nil when the tier or the WAL is off). Origin/seq name the total-order
// message; version is the post-apply version the replay gate keys on.
func (n *Node) appendWAL(origin string, seq uint64, version uint64, payload []byte) *durability.Commit {
	if n.dur == nil || n.dur.log == nil {
		return nil
	}
	return n.dur.log.Append(durability.Record{
		Origin:  origin,
		Seq:     seq,
		Version: version,
		Payload: payload,
	})
}

// waitDurable blocks an ack on a record's flush. A failed flush refuses
// the ack with the retryable sentinel: the client's retry is dedup-safe,
// and acking a write cold storage never saw would break the crash
// guarantee the tier exists for.
func waitDurable(ctx context.Context, c *durability.Commit) error {
	if c == nil {
		return nil
	}
	if err := c.Wait(ctx); err != nil {
		return fmt.Errorf("%w: wal flush: %v", core.ErrRebalancing, err)
	}
	return nil
}

// snapshotLoop checkpoints the node's objects every SnapshotInterval and
// truncates the log behind each checkpoint.
func (n *Node) snapshotLoop(d *durabilityState) {
	defer close(d.done)
	t := time.NewTicker(d.pol.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := n.checkpoint(d); err != nil && !errors.Is(err, core.ErrStopped) {
				n.log.Warn("checkpoint failed", "err", err)
			}
		}
	}
}

// checkpoint runs one snapshotter pass: seal the open WAL segment, dump
// every persistent object (snapshot + version + dedup window, the
// transferMsg serialization), write the epoch's blobs and CAS its
// manifest, then truncate the segments the cut covers and prune epochs
// older than the previous one. Ordering is what makes truncation safe:
// every record in a segment below the cut was applied before the seal
// returned, so the snapshots taken after it reflect them.
func (n *Node) checkpoint(d *durabilityState) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var cut uint64
	if d.log != nil {
		var err error
		if cut, err = d.log.SealSegment(ctx); err != nil {
			return err
		}
	}
	n.objMu.Lock()
	refs := make([]core.Ref, 0, len(n.objects))
	entries := make([]*entry, 0, len(n.objects))
	for ref, e := range n.objects {
		refs = append(refs, ref)
		entries = append(entries, e)
	}
	n.objMu.Unlock()
	var blobs [][]byte
	for i, ref := range refs {
		e := entries[i]
		if e.sync || !e.persist {
			continue
		}
		msg, err := n.snapshotEntry(ref, e)
		if err != nil {
			n.log.Warn("checkpoint skipping object", "ref", ref.String(), "err", err)
			continue
		}
		blob, err := core.EncodeValue(msg)
		if err != nil {
			n.log.Warn("checkpoint encode failed", "ref", ref.String(), "err", err)
			continue
		}
		blobs = append(blobs, blob)
	}
	view, _ := n.currentView()
	man := durability.Manifest{
		Node:       string(n.cfg.ID),
		Epoch:      d.epoch + 1,
		CutSeg:     cut,
		Directives: view.Directives,
		Members:    view.Members,
		ViewID:     view.ID,
	}
	if err := durability.SaveCheckpoint(ctx, d.store, man, blobs, n.metrics); err != nil {
		if errors.Is(err, durability.ErrEpochClaimed) {
			// Another writer (a concurrent incarnation racing our shutdown)
			// owns the epoch; skip past it next pass.
			d.epoch++
		}
		return err
	}
	d.epoch = man.Epoch
	d.cSnapshots.Inc()
	if d.log != nil && cut > 1 {
		if _, err := durability.TruncateSegments(ctx, d.store, string(n.cfg.ID), cut); err != nil {
			n.log.Debug("wal truncation failed", "err", err)
		}
	}
	if man.Epoch > 1 {
		// Keep the previous epoch as a fallback against a reader racing
		// the prune; everything older goes.
		if err := durability.PruneEpochs(ctx, d.store, string(n.cfg.ID), man.Epoch-1); err != nil {
			n.log.Debug("checkpoint prune failed", "err", err)
		}
	}
	n.log.Debug("checkpoint complete", "epoch", man.Epoch, "objects", len(blobs), "cut", cut)
	return nil
}

// closeDurability stops the snapshotter and abandons unflushed WAL
// records — a graceful close behaves like the crash the tier is built
// for, and nothing unflushed was ever acknowledged.
func (n *Node) closeDurability() {
	if n.dur == nil {
		return
	}
	close(n.dur.stop)
	<-n.dur.done
	if n.dur.log != nil {
		n.dur.log.Close()
	}
}
