package server

import (
	"context"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
)

// Rebalancing (paper Section 4.1): when a view is installed, nodes
// re-balance objects according to the new consistent-hashing ring. For each
// resident data object, the first surviving member of the old replica set
// pushes snapshots to the nodes that joined the new replica set; nodes that
// left the set drop their copy. Synchronization objects are ephemeral and
// are never transferred (their waiters are connection-bound).

// transferMsg carries one object snapshot between nodes. Dedup moves the
// at-most-once window with the object, so a client retry that lands on the
// object's new home after a view change still replays instead of
// re-executing. Pre-dedup peers simply omit the field (gob tolerates
// absent fields), leaving the window empty — their retries degrade to
// at-least-once, exactly the old behavior.
//
// Version is the snapshot's apply count (see entry.version). The receiver
// installs a snapshot only when it is strictly newer than its local copy:
// a snapshot races the operations that keep applying while it crosses the
// network, and installing a stale one would roll back acknowledged
// updates — the classic lost-update during hand-off.
type transferMsg struct {
	Ref      core.Ref
	Init     []any
	Persist  bool
	Snapshot []byte
	Dedup    dedupState
	Version  uint64

	// Stale carries the sender's stale mark (see markStale) with the
	// snapshot: a copy that may be behind the committed history must not
	// shed that suspicion by crossing the network. The receiver installs
	// it (better a tainted copy than none) but marks the ref, so the
	// write, grant, and read paths keep refusing until a proving pull
	// finds a clean copy — or the primary's fully-definitive poll
	// concludes none exists (see pullObject).
	Stale bool
}

// fetchResp answers a KindFetch pull: the requested object's snapshot,
// Found=false when this node holds no copy, or Busy=true when the object
// has accepted-but-undelivered proposals here. A busy snapshot would miss
// an operation the puller may never receive by multicast (it was not in
// that op's group), so the puller must retry rather than adopt it — and
// must not mistake Busy for "no copy anywhere" and create the object
// fresh.
type fetchResp struct {
	Found bool
	Busy  bool
	Msg   transferMsg
}

// onView installs a new view and rebalances. The directory serializes
// listener invocations, so onView never runs concurrently with itself.
func (n *Node) onView(v membership.View) {
	n.viewMu.Lock()
	oldView := n.view
	oldRing := n.ringCur
	n.view = v
	n.ringCur = v.Ring()
	newRing := n.ringCur
	n.viewMu.Unlock()

	if oldRing == nil || n.closed.Load() {
		return
	}
	// A migration fence held for an object this node no longer owns can
	// lift: the directive flip it was guarding has landed (or membership
	// moved the key anyway), and the new primary serves from here on.
	n.liftMigrationFences(v)
	if n.leases != nil {
		// Fence first, rebalance second: ownership just moved under every
		// lease this node granted, and the new owners cannot revoke them
		// (they live in our table). Arm the one-TTL write fence and drop
		// everything — held replica leases immediately, granted leases by
		// best-effort invalidation (their expiry, bounded by the fence, is
		// the guarantee).
		n.leases.onViewChange()
	}
	n.log.Debug("view installed, rebalancing", "view", v.ID, "members", len(v.Members))
	// Flush the total-order layer: a coordinator that died mid-multicast
	// must not hold back deliveries forever (view-synchrony flush).
	alive := func(origin string) bool {
		return origin == string(n.cfg.ID) || v.Contains(ring.NodeID(origin))
	}
	n.to.PurgeOrigins(alive)
	n.inflight.purge(alive)
	n.rebalance(oldView, oldRing, newRing, v)
}

func contains(set []ring.NodeID, id ring.NodeID) bool {
	for _, s := range set {
		if s == id {
			return true
		}
	}
	return false
}

// rebalance moves objects after a placement change — a membership change,
// a directive flip, or both at once. Replica sets are computed under each
// view's own directive table, so a directive install moves exactly the
// directed key and a directive removal sends it back to its hash home.
func (n *Node) rebalance(oldView membership.View, oldRing, newRing *ring.Ring, v membership.View) {
	n.objMu.Lock()
	refs := make([]core.Ref, 0, len(n.objects))
	entries := make([]*entry, 0, len(n.objects))
	for ref, e := range n.objects {
		refs = append(refs, ref)
		entries = append(entries, e)
	}
	n.objMu.Unlock()

	for i, ref := range refs {
		e := entries[i]
		if e.sync {
			continue
		}
		rf := 1
		if e.persist {
			rf = n.cfg.RF
		}
		key := ref.String()
		oldSet := oldView.Directives.Place(oldRing, key, rf)
		newSet := v.Directives.Place(newRing, key, rf)
		if !contains(oldSet, n.cfg.ID) {
			// We hold a copy we were not responsible for (leftover of an
			// earlier view); drop it if we are not responsible now either —
			// unless it is stale-marked, in which case it may be the best
			// surviving state of its lineage and is kept for a future poll.
			if !contains(newSet, n.cfg.ID) {
				if !n.isStale(ref) {
					n.removeObject(ref)
				}
				continue
			}
			// Re-entering the replica set with a leftover copy: every op
			// committed while this node sat outside the set bypassed it
			// without a trace — no skipped delivery, no transfer, nothing
			// that would betray how far behind the copy is. Mark it so the
			// write, grant, and read paths treat it as suspect until a
			// proving pull (see markStale); the copy itself stays, both as
			// a pull fallback for the group and so the mark has something
			// to clear onto.
			n.markStale(ref)
			n.log.Debug("leftover copy rejoining replica set marked stale",
				"ref", ref.String(), "old_set", fmt.Sprint(oldSet),
				"new_set", fmt.Sprint(newSet))
			// Resolve proactively rather than waiting for an access to
			// trip over the mark. The common benign case — a hand-off
			// transfer that landed just before this view was processed,
			// making the fresh copy look like a leftover — clears on the
			// first definitive poll.
			go n.selfHeal(ref)
			continue
		}

		// Deterministic pusher: the first old-set member still alive. The
		// local node counts as alive even when absent from the new view —
		// that is precisely the graceful-leave hand-off. Duplicate pushes
		// from two candidates are idempotent (transfer replaces).
		var pusher ring.NodeID
		for _, m := range oldSet {
			if m == n.cfg.ID || v.Contains(m) {
				pusher = m
				break
			}
		}
		if pusher == n.cfg.ID {
			// Push to every other member of the new set, not only the
			// joiners: a surviving member may have missed operations (its
			// base copy never arrived, so it skipped committed deliveries —
			// see deliverSMR), and the version check on the receiving side
			// makes refreshing an up-to-date copy a no-op. Each view change
			// thereby doubles as an anti-entropy round.
			for _, target := range newSet {
				if target == n.cfg.ID {
					continue
				}
				if err := n.pushObject(ref, e, target); err != nil {
					// Best effort: the target may be mid-join; clients
					// retry on ErrWrongNode and repair on next access.
					n.log.Debug("transfer failed", "ref", ref.String(),
						"target", string(target), "err", err)
					continue
				}
			}
		}
		if !contains(newSet, n.cfg.ID) && !n.isStale(ref) {
			n.removeObject(ref)
		}
	}
}

// snapshotEntry captures one object's state under its monitor: snapshot
// bytes, apply version and at-most-once window, all from a single critical
// section so they describe the same instant.
func (n *Node) snapshotEntry(ref core.Ref, e *entry) (transferMsg, error) {
	e.mu.Lock()
	snap, ok := e.obj.(core.Snapshotter)
	if !ok {
		e.mu.Unlock()
		return transferMsg{}, fmt.Errorf("server: %s (%T) is not snapshotable", ref, e.obj)
	}
	e.transferring = true
	data, err := snap.Snapshot()
	e.transferring = false
	msg := transferMsg{
		Ref:      ref,
		Init:     e.init,
		Persist:  e.persist,
		Snapshot: data,
		Dedup:    e.dedup.clone(),
		Version:  e.version,
	}
	e.mu.Unlock()
	if err != nil {
		return transferMsg{}, fmt.Errorf("server: snapshot %s: %w", ref, err)
	}
	return msg, nil
}

// maxPushRounds bounds the snapshot/ship/re-check loop in pushObject. One
// round suffices when nothing raced the transfer; a second covers the
// common case of operations applying while the first snapshot crossed the
// network. Anything the bound leaves behind is repaired by the next view's
// anti-entropy push.
const maxPushRounds = 3

// pushObject ships one object to target, repeating while operations race
// the snapshot: an op that applies locally after the snapshot was taken is
// missing from it, and — if the target skipped that op's delivery for want
// of a base copy — only a newer snapshot can deliver it. The loop exits as
// soon as a shipped snapshot's version still matches the entry, i.e. the
// target has everything this copy has.
func (n *Node) pushObject(ref core.Ref, e *entry, target ring.NodeID) error {
	for round := 0; round < maxPushRounds; round++ {
		// Quiesce before snapshotting: an accepted-but-undelivered proposal
		// is invisible to the snapshot, and the target — not a member of
		// that op's group — can only ever get it from a snapshot taken
		// after it applied. If the object will not quiesce within the
		// bound, abort rather than ship: a target left non-resident is
		// safe (its next access pulls under the fetch barrier), while a
		// target holding a behind snapshot looks resident and would
		// coordinate writes and grant leases from it.
		for wait := 0; wait < 8 && n.inflight.busy(ref); wait++ {
			time.Sleep(10 * time.Millisecond)
		}
		if n.inflight.busy(ref) {
			return fmt.Errorf("server: transfer %s to %s: ops in flight", ref, target)
		}
		msg, err := n.snapshotEntry(ref, e)
		if err != nil {
			return err
		}
		// A marked copy still ships — it may be the lineage's best
		// surviving state — but the taint travels with it (see
		// transferMsg.Stale).
		msg.Stale = n.isStale(ref)
		body, err := core.EncodeValue(msg)
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err = n.peerCall(ctx, target, KindTransfer, body)
		cancel()
		if err != nil {
			return fmt.Errorf("server: transfer %s to %s: %w", ref, target, err)
		}
		n.transfers.Add(1)
		n.cTransfers.Inc()
		e.mu.Lock()
		settled := e.version == msg.Version
		e.mu.Unlock()
		if settled {
			return nil
		}
	}
	return nil
}

// removeObject drops a local copy, waking any (stale) waiters first.
func (n *Node) removeObject(ref core.Ref) {
	n.objMu.Lock()
	e, ok := n.objects[ref]
	if ok {
		delete(n.objects, ref)
	}
	n.objMu.Unlock()
	if ok {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// handleTransfer installs a pushed snapshot.
func (n *Node) handleTransfer(payload []byte) ([]byte, error) {
	var msg transferMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	if err := n.installTransfer(msg); err != nil {
		return nil, err
	}
	return nil, nil
}

// installTransfer materializes a received snapshot, refusing to go
// backwards: if a local copy exists and has applied at least as many
// operations as the snapshot, the snapshot is stale (it was taken before
// ops that have since been applied and acknowledged) and is dropped.
// Updates happen in place — goroutines mid-delivery hold the entry
// pointer, and swapping the map entry under them would divert their apply
// to an orphan.
func (n *Node) installTransfer(msg transferMsg) error {
	info, err := n.cfg.Registry.Lookup(msg.Ref.Type)
	if err != nil {
		return err
	}
	obj, err := info.New(msg.Init)
	if err != nil {
		return fmt.Errorf("server: transfer create %s: %w", msg.Ref, err)
	}
	snap, ok := obj.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("server: transferred type %s is not snapshotable", msg.Ref.Type)
	}
	if err := snap.Restore(msg.Snapshot); err != nil {
		return fmt.Errorf("server: restore %s: %w", msg.Ref, err)
	}

	n.objMu.Lock()
	e, exists := n.objects[msg.Ref]
	if !exists {
		if msg.Stale {
			// The sender's copy carried a stale mark; the taint arrives
			// with the copy (marked before the entry is published, so the
			// copy never looks both resident and clean).
			n.markStale(msg.Ref)
		}
		e = newEntry(obj, msg.Persist, false, msg.Init)
		e.dedup = msg.Dedup
		e.version = msg.Version
		n.objects[msg.Ref] = e
		n.objMu.Unlock()
		n.transfers.Add(1)
		n.cTransfers.Inc()
		return nil
	}
	// Lock order objMu → e.mu matches the rest of the package (nothing
	// acquires objMu while holding an entry lock).
	e.mu.Lock()
	n.objMu.Unlock()
	defer e.mu.Unlock()
	if e.version >= msg.Version {
		n.cTransfersStale.Inc()
		n.log.Debug("stale transfer ignored", "ref", msg.Ref.String(),
			"local_version", e.version, "snapshot_version", msg.Version)
		return nil
	}
	if msg.Stale {
		// Adopting a tainted snapshot taints the local copy (a refused
		// one, above, does not: the local copy stays as it was).
		n.markStale(msg.Ref)
	}
	e.obj = obj
	e.persist = msg.Persist
	e.init = msg.Init
	e.dedup = msg.Dedup
	e.version = msg.Version
	if n.leases != nil {
		// The copy just changed under any lease we granted on it (an
		// anti-entropy refresh landing while we hold grants). The view
		// fence already covers the hand-off case; this best-effort
		// invalidation covers the refresh case without waiting.
		ref := msg.Ref
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*n.leases.ttl)
			defer cancel()
			_ = n.leases.revokeAll(ctx, ref, false)
		}()
	}
	// State changed under waiters (synchronization objects are never
	// transferred, but be safe).
	e.cond.Broadcast()
	n.transfers.Add(1)
	n.cTransfers.Inc()
	return nil
}

// handleFetch answers a peer's pull-on-miss (KindFetch): ship our copy of
// the requested object, or report that we hold none.
func (n *Node) handleFetch(payload []byte) ([]byte, error) {
	var ref core.Ref
	if err := core.DecodeValue(payload, &ref); err != nil {
		return nil, err
	}
	e, ok := n.lookupExisting(ref)
	if !ok {
		return core.EncodeValue(fetchResp{})
	}
	if n.inflight.busy(ref) {
		return core.EncodeValue(fetchResp{Found: true, Busy: true})
	}
	// Snapshot first, then read the mark: a skip recorded between the two
	// taints a snapshot that is actually fine, which is merely
	// conservative — the reverse order could export an unmarked stale
	// copy.
	msg, err := n.snapshotEntry(ref, e)
	if err != nil {
		return nil, err
	}
	msg.Stale = n.isStale(ref)
	return core.EncodeValue(fetchResp{Found: true, Msg: msg})
}

// pullObject asks the other members of ref's replica group for an existing
// copy and adopts the best one offered (version-checked, like any
// transfer). It returns whether a copy was installed, and whether some
// peer holds a copy it could not serve yet (busy: in-flight ops there —
// the caller must treat the object as existing-but-unavailable, never as
// absent). The primary uses it before treating a local miss as object
// creation: a miss can equally mean the hand-off transfer never arrived,
// and creating a fresh object would fork the lineage and silently discard
// all prior state.
//
// pullObject is also how a stale mark (see markStale) is resolved. A
// clean (unmarked) snapshot from a peer is a proof of currency: the fetch
// was answered under the peer's in-flight barrier, so its version counts
// the full committed history, and either installing it or already
// covering its version clears the mark. When no clean copy exists but
// every group member answered definitively — a snapshot (clean or
// tainted) or a firm "no copy" — the primary adopts the highest-versioned
// state on offer and clears its mark anyway: the poll proves no better
// copy survives anywhere in the group, and an op acknowledged under the
// apply-at-every-member barrier (see handleFinal) is on at least one
// surviving copy after any single failure, so the adopted maximum
// contains every acknowledged write. An unreachable or busy peer makes
// the poll indefinite and the mark stays.
func (n *Node) pullObject(ctx context.Context, ref core.Ref, group []ring.NodeID) (installed, busy bool) {
	// Read the stale token before the first fetch: only a fetch issued
	// after the skip proves currency, and a skip recorded mid-pull must
	// keep the mark.
	token, wasStale := n.staleToken(ref)
	body, err := core.EncodeValue(ref)
	if err != nil {
		return false, false
	}
	var (
		answers    []fetchResp
		definitive = true
	)
	for _, m := range group {
		if m == n.cfg.ID {
			continue
		}
		out, err := n.peerCall(ctx, m, KindFetch, body)
		if err != nil {
			definitive = false
			continue
		}
		var resp fetchResp
		if core.DecodeValue(out, &resp) != nil {
			definitive = false
			continue
		}
		if resp.Busy {
			busy = true
			definitive = false
			continue
		}
		if resp.Found {
			answers = append(answers, resp)
		}
	}

	// Prefer the best clean snapshot; fall back to the best tainted one.
	var best *fetchResp
	for i := range answers {
		a := &answers[i]
		if best == nil ||
			(!a.Msg.Stale && best.Msg.Stale) ||
			(a.Msg.Stale == best.Msg.Stale && a.Msg.Version > best.Msg.Version) {
			best = a
		}
	}
	cleanProof := false
	if best != nil {
		if err := n.installTransfer(best.Msg); err == nil {
			installed = true
			cleanProof = !best.Msg.Stale
			n.cPulls.Inc()
			n.log.Debug("adopted base copy from peer", "ref", ref.String(),
				"version", best.Msg.Version, "stale", best.Msg.Stale)
		} else if !best.Msg.Stale {
			// Usually "not strictly newer": if the local copy already
			// covers the clean snapshot's version, the barrier-protected
			// fetch proves it current.
			if e, ok := n.lookupExisting(ref); ok {
				e.mu.Lock()
				cleanProof = e.version >= best.Msg.Version
				e.mu.Unlock()
			}
			n.log.Debug("pull install failed", "ref", ref.String(), "err", err)
		} else {
			n.log.Debug("pull install failed", "ref", ref.String(), "err", err)
		}
	}

	if wasStale {
		switch {
		case cleanProof:
			n.clearStale(ref, token)
		case definitive && len(group) > 0 && group[0] == n.cfg.ID:
			// Fully-definitive poll, no clean copy anywhere in the group:
			// whatever this node now holds (its own copy, or the best
			// tainted snapshot just adopted) is the lineage's best
			// surviving state, and the primary declares it current.
			// Clearing with a fresh token also erases the taint the
			// adopted snapshot may just have re-recorded; no new skip can
			// have raced in, since skips only happen on non-resident
			// deliveries and the copy is resident now.
			tok, marked := n.staleToken(ref)
			if marked {
				n.clearStale(ref, tok)
			}
			n.log.Info("primary adopted best surviving copy after group poll",
				"ref", ref.String())
		}
	}
	return installed, busy
}

// markStale records that ref's local copy — present or future — is behind
// the committed history: a committed delivery was skipped because no base
// copy was resident (deliverSMR). The danger is not the skip itself but
// what can follow it: a rebalance push may later install a snapshot taken
// *before* the skipped op, leaving this node resident-but-behind. Such a
// copy looks authoritative — it passes the resident checks on the write,
// lease-grant, and local-read paths — yet coordinating a write on it acks
// results computed on state missing acknowledged operations, and granting
// a lease from it serves reads that travel backwards in time.
//
// The mark is cleared only through pullObject, whose fetch carries a
// proof of currency: handleFetch answers busy while the peer has accepted
// ops still in flight, so a non-busy fetch issued after the skip returns
// a snapshot that includes every op committed before the fetch — in
// particular, every op this node skipped. Anti-entropy pushes install
// copies but never clear the mark (a push's snapshot may predate the
// skip); they merely make the subsequent proving pull cheap.
func (n *Node) markStale(ref core.Ref) {
	n.staleMu.Lock()
	if n.staleRefs == nil {
		n.staleRefs = make(map[core.Ref]uint64)
	}
	n.staleSeq++
	n.staleRefs[ref] = n.staleSeq
	n.staleMu.Unlock()
}

// staleToken returns the current stale mark for ref, if any. Callers that
// intend to clear the mark must capture the token before issuing the
// fetch that will justify the clear.
func (n *Node) staleToken(ref core.Ref) (uint64, bool) {
	n.staleMu.Lock()
	defer n.staleMu.Unlock()
	tok, ok := n.staleRefs[ref]
	return tok, ok
}

// isStale reports whether ref's local copy is marked behind the committed
// history. While true, this node must not coordinate writes, grant
// leases, or serve reads for ref from its own copy.
func (n *Node) isStale(ref core.Ref) bool {
	n.staleMu.Lock()
	defer n.staleMu.Unlock()
	_, ok := n.staleRefs[ref]
	return ok
}

// clearStale drops ref's stale mark, unless a newer skip was recorded
// after token was captured (that skip still needs its own proving pull).
func (n *Node) clearStale(ref core.Ref, token uint64) {
	n.staleMu.Lock()
	if tok, ok := n.staleRefs[ref]; ok && tok == token {
		delete(n.staleRefs, ref)
	}
	n.staleMu.Unlock()
}

// selfHeal runs a background pull for an object whose committed delivery
// had to be skipped for want of a base copy (singleflight per ref). Until
// a copy arrives this replica contributes nothing for the object; pulling
// promptly restores the replication factor instead of waiting for the
// next view change's anti-entropy push.
func (n *Node) selfHeal(ref core.Ref) {
	n.pullMu.Lock()
	if n.pulling == nil {
		n.pulling = make(map[core.Ref]bool)
	}
	if n.pulling[ref] {
		n.pullMu.Unlock()
		return
	}
	n.pulling[ref] = true
	n.pullMu.Unlock()
	defer func() {
		n.pullMu.Lock()
		delete(n.pulling, ref)
		n.pullMu.Unlock()
	}()

	group, r := n.replicaGroup(ref, true)
	if r == nil {
		return
	}
	timeout := 2 * n.peerTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n.pullObject(ctx, ref, group)
}
