package server

import (
	"context"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
)

// Rebalancing (paper Section 4.1): when a view is installed, nodes
// re-balance objects according to the new consistent-hashing ring. For each
// resident data object, the first surviving member of the old replica set
// pushes snapshots to the nodes that joined the new replica set; nodes that
// left the set drop their copy. Synchronization objects are ephemeral and
// are never transferred (their waiters are connection-bound).

// transferMsg carries one object snapshot between nodes. Dedup moves the
// at-most-once window with the object, so a client retry that lands on the
// object's new home after a view change still replays instead of
// re-executing. Pre-dedup peers simply omit the field (gob tolerates
// absent fields), leaving the window empty — their retries degrade to
// at-least-once, exactly the old behavior.
//
// Version is the snapshot's apply count (see entry.version). The receiver
// installs a snapshot only when it is strictly newer than its local copy:
// a snapshot races the operations that keep applying while it crosses the
// network, and installing a stale one would roll back acknowledged
// updates — the classic lost-update during hand-off.
type transferMsg struct {
	Ref      core.Ref
	Init     []any
	Persist  bool
	Snapshot []byte
	Dedup    dedupState
	Version  uint64
}

// fetchResp answers a KindFetch pull: the requested object's snapshot,
// Found=false when this node holds no copy, or Busy=true when the object
// has accepted-but-undelivered proposals here. A busy snapshot would miss
// an operation the puller may never receive by multicast (it was not in
// that op's group), so the puller must retry rather than adopt it — and
// must not mistake Busy for "no copy anywhere" and create the object
// fresh.
type fetchResp struct {
	Found bool
	Busy  bool
	Msg   transferMsg
}

// onView installs a new view and rebalances. The directory serializes
// listener invocations, so onView never runs concurrently with itself.
func (n *Node) onView(v membership.View) {
	n.viewMu.Lock()
	oldRing := n.ringCur
	n.view = v
	n.ringCur = v.Ring()
	newRing := n.ringCur
	n.viewMu.Unlock()

	if oldRing == nil || n.closed.Load() {
		return
	}
	n.log.Debug("view installed, rebalancing", "view", v.ID, "members", len(v.Members))
	// Flush the total-order layer: a coordinator that died mid-multicast
	// must not hold back deliveries forever (view-synchrony flush).
	alive := func(origin string) bool {
		return origin == string(n.cfg.ID) || v.Contains(ring.NodeID(origin))
	}
	n.to.PurgeOrigins(alive)
	n.inflight.purge(alive)
	n.rebalance(oldRing, newRing, v)
}

func contains(set []ring.NodeID, id ring.NodeID) bool {
	for _, s := range set {
		if s == id {
			return true
		}
	}
	return false
}

// rebalance moves objects after a membership change.
func (n *Node) rebalance(oldRing, newRing *ring.Ring, v membership.View) {
	n.objMu.Lock()
	refs := make([]core.Ref, 0, len(n.objects))
	entries := make([]*entry, 0, len(n.objects))
	for ref, e := range n.objects {
		refs = append(refs, ref)
		entries = append(entries, e)
	}
	n.objMu.Unlock()

	for i, ref := range refs {
		e := entries[i]
		if e.sync {
			continue
		}
		rf := 1
		if e.persist {
			rf = n.cfg.RF
		}
		key := ref.String()
		oldSet := oldRing.ReplicaSet(key, rf)
		newSet := newRing.ReplicaSet(key, rf)
		if !contains(oldSet, n.cfg.ID) {
			// We hold a copy we were not responsible for (leftover of an
			// earlier view); drop it if we are not responsible now either.
			if !contains(newSet, n.cfg.ID) {
				n.removeObject(ref)
			}
			continue
		}

		// Deterministic pusher: the first old-set member still alive. The
		// local node counts as alive even when absent from the new view —
		// that is precisely the graceful-leave hand-off. Duplicate pushes
		// from two candidates are idempotent (transfer replaces).
		var pusher ring.NodeID
		for _, m := range oldSet {
			if m == n.cfg.ID || v.Contains(m) {
				pusher = m
				break
			}
		}
		if pusher == n.cfg.ID {
			// Push to every other member of the new set, not only the
			// joiners: a surviving member may have missed operations (its
			// base copy never arrived, so it skipped committed deliveries —
			// see deliverSMR), and the version check on the receiving side
			// makes refreshing an up-to-date copy a no-op. Each view change
			// thereby doubles as an anti-entropy round.
			for _, target := range newSet {
				if target == n.cfg.ID {
					continue
				}
				if err := n.pushObject(ref, e, target); err != nil {
					// Best effort: the target may be mid-join; clients
					// retry on ErrWrongNode and repair on next access.
					n.log.Debug("transfer failed", "ref", ref.String(),
						"target", string(target), "err", err)
					continue
				}
			}
		}
		if !contains(newSet, n.cfg.ID) {
			n.removeObject(ref)
		}
	}
}

// snapshotEntry captures one object's state under its monitor: snapshot
// bytes, apply version and at-most-once window, all from a single critical
// section so they describe the same instant.
func (n *Node) snapshotEntry(ref core.Ref, e *entry) (transferMsg, error) {
	e.mu.Lock()
	snap, ok := e.obj.(core.Snapshotter)
	if !ok {
		e.mu.Unlock()
		return transferMsg{}, fmt.Errorf("server: %s (%T) is not snapshotable", ref, e.obj)
	}
	e.transferring = true
	data, err := snap.Snapshot()
	e.transferring = false
	msg := transferMsg{
		Ref:      ref,
		Init:     e.init,
		Persist:  e.persist,
		Snapshot: data,
		Dedup:    e.dedup.clone(),
		Version:  e.version,
	}
	e.mu.Unlock()
	if err != nil {
		return transferMsg{}, fmt.Errorf("server: snapshot %s: %w", ref, err)
	}
	return msg, nil
}

// maxPushRounds bounds the snapshot/ship/re-check loop in pushObject. One
// round suffices when nothing raced the transfer; a second covers the
// common case of operations applying while the first snapshot crossed the
// network. Anything the bound leaves behind is repaired by the next view's
// anti-entropy push.
const maxPushRounds = 3

// pushObject ships one object to target, repeating while operations race
// the snapshot: an op that applies locally after the snapshot was taken is
// missing from it, and — if the target skipped that op's delivery for want
// of a base copy — only a newer snapshot can deliver it. The loop exits as
// soon as a shipped snapshot's version still matches the entry, i.e. the
// target has everything this copy has.
func (n *Node) pushObject(ref core.Ref, e *entry, target ring.NodeID) error {
	for round := 0; round < maxPushRounds; round++ {
		// Quiesce before snapshotting: an accepted-but-undelivered proposal
		// is invisible to the snapshot, and the target — not a member of
		// that op's group — can only ever get it from a snapshot taken
		// after it applied. Best effort with a short bound; the version
		// re-check below and the next view's anti-entropy round back it up.
		for wait := 0; wait < 8 && n.inflight.busy(ref); wait++ {
			time.Sleep(10 * time.Millisecond)
		}
		msg, err := n.snapshotEntry(ref, e)
		if err != nil {
			return err
		}
		body, err := core.EncodeValue(msg)
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, err = n.peerCall(ctx, target, KindTransfer, body)
		cancel()
		if err != nil {
			return fmt.Errorf("server: transfer %s to %s: %w", ref, target, err)
		}
		n.transfers.Add(1)
		n.cTransfers.Inc()
		e.mu.Lock()
		settled := e.version == msg.Version
		e.mu.Unlock()
		if settled {
			return nil
		}
	}
	return nil
}

// removeObject drops a local copy, waking any (stale) waiters first.
func (n *Node) removeObject(ref core.Ref) {
	n.objMu.Lock()
	e, ok := n.objects[ref]
	if ok {
		delete(n.objects, ref)
	}
	n.objMu.Unlock()
	if ok {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// handleTransfer installs a pushed snapshot.
func (n *Node) handleTransfer(payload []byte) ([]byte, error) {
	var msg transferMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	if err := n.installTransfer(msg); err != nil {
		return nil, err
	}
	return nil, nil
}

// installTransfer materializes a received snapshot, refusing to go
// backwards: if a local copy exists and has applied at least as many
// operations as the snapshot, the snapshot is stale (it was taken before
// ops that have since been applied and acknowledged) and is dropped.
// Updates happen in place — goroutines mid-delivery hold the entry
// pointer, and swapping the map entry under them would divert their apply
// to an orphan.
func (n *Node) installTransfer(msg transferMsg) error {
	info, err := n.cfg.Registry.Lookup(msg.Ref.Type)
	if err != nil {
		return err
	}
	obj, err := info.New(msg.Init)
	if err != nil {
		return fmt.Errorf("server: transfer create %s: %w", msg.Ref, err)
	}
	snap, ok := obj.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("server: transferred type %s is not snapshotable", msg.Ref.Type)
	}
	if err := snap.Restore(msg.Snapshot); err != nil {
		return fmt.Errorf("server: restore %s: %w", msg.Ref, err)
	}

	n.objMu.Lock()
	e, exists := n.objects[msg.Ref]
	if !exists {
		e = newEntry(obj, msg.Persist, false, msg.Init)
		e.dedup = msg.Dedup
		e.version = msg.Version
		n.objects[msg.Ref] = e
		n.objMu.Unlock()
		n.transfers.Add(1)
		n.cTransfers.Inc()
		return nil
	}
	// Lock order objMu → e.mu matches the rest of the package (nothing
	// acquires objMu while holding an entry lock).
	e.mu.Lock()
	n.objMu.Unlock()
	defer e.mu.Unlock()
	if e.version >= msg.Version {
		n.cTransfersStale.Inc()
		n.log.Debug("stale transfer ignored", "ref", msg.Ref.String(),
			"local_version", e.version, "snapshot_version", msg.Version)
		return nil
	}
	e.obj = obj
	e.persist = msg.Persist
	e.init = msg.Init
	e.dedup = msg.Dedup
	e.version = msg.Version
	// State changed under waiters (synchronization objects are never
	// transferred, but be safe).
	e.cond.Broadcast()
	n.transfers.Add(1)
	n.cTransfers.Inc()
	return nil
}

// handleFetch answers a peer's pull-on-miss (KindFetch): ship our copy of
// the requested object, or report that we hold none.
func (n *Node) handleFetch(payload []byte) ([]byte, error) {
	var ref core.Ref
	if err := core.DecodeValue(payload, &ref); err != nil {
		return nil, err
	}
	e, ok := n.lookupExisting(ref)
	if !ok {
		return core.EncodeValue(fetchResp{})
	}
	if n.inflight.busy(ref) {
		return core.EncodeValue(fetchResp{Found: true, Busy: true})
	}
	msg, err := n.snapshotEntry(ref, e)
	if err != nil {
		return nil, err
	}
	return core.EncodeValue(fetchResp{Found: true, Msg: msg})
}

// pullObject asks the other members of ref's replica group for an existing
// copy and adopts the first one offered (version-checked, like any
// transfer). It returns whether a copy was installed, and whether some
// peer holds a copy it could not serve yet (busy: in-flight ops there —
// the caller must treat the object as existing-but-unavailable, never as
// absent). The primary uses it before treating a local miss as object
// creation: a miss can equally mean the hand-off transfer never arrived,
// and creating a fresh object would fork the lineage and silently discard
// all prior state.
func (n *Node) pullObject(ctx context.Context, ref core.Ref, group []ring.NodeID) (installed, busy bool) {
	body, err := core.EncodeValue(ref)
	if err != nil {
		return false, false
	}
	for _, m := range group {
		if m == n.cfg.ID {
			continue
		}
		out, err := n.peerCall(ctx, m, KindFetch, body)
		if err != nil {
			continue
		}
		var resp fetchResp
		if core.DecodeValue(out, &resp) != nil || !resp.Found {
			continue
		}
		if resp.Busy {
			busy = true
			continue
		}
		if err := n.installTransfer(resp.Msg); err != nil {
			n.log.Debug("pull install failed", "ref", ref.String(), "err", err)
			continue
		}
		n.cPulls.Inc()
		n.log.Debug("adopted base copy from peer", "ref", ref.String(),
			"peer", string(m), "version", resp.Msg.Version)
		return true, busy
	}
	return false, busy
}

// selfHeal runs a background pull for an object whose committed delivery
// had to be skipped for want of a base copy (singleflight per ref). Until
// a copy arrives this replica contributes nothing for the object; pulling
// promptly restores the replication factor instead of waiting for the
// next view change's anti-entropy push.
func (n *Node) selfHeal(ref core.Ref) {
	n.pullMu.Lock()
	if n.pulling == nil {
		n.pulling = make(map[core.Ref]bool)
	}
	if n.pulling[ref] {
		n.pullMu.Unlock()
		return
	}
	n.pulling[ref] = true
	n.pullMu.Unlock()
	defer func() {
		n.pullMu.Lock()
		delete(n.pulling, ref)
		n.pullMu.Unlock()
	}()

	group, r := n.replicaGroup(ref, true)
	if r == nil {
		return
	}
	timeout := 2 * n.peerTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	n.pullObject(ctx, ref, group)
}
