package server

import (
	"context"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
)

// Rebalancing (paper Section 4.1): when a view is installed, nodes
// re-balance objects according to the new consistent-hashing ring. For each
// resident data object, the first surviving member of the old replica set
// pushes snapshots to the nodes that joined the new replica set; nodes that
// left the set drop their copy. Synchronization objects are ephemeral and
// are never transferred (their waiters are connection-bound).

// transferMsg carries one object snapshot between nodes.
type transferMsg struct {
	Ref      core.Ref
	Init     []any
	Persist  bool
	Snapshot []byte
}

// onView installs a new view and rebalances. The directory serializes
// listener invocations, so onView never runs concurrently with itself.
func (n *Node) onView(v membership.View) {
	n.viewMu.Lock()
	oldRing := n.ringCur
	n.view = v
	n.ringCur = v.Ring()
	newRing := n.ringCur
	n.viewMu.Unlock()

	if oldRing == nil || n.closed.Load() {
		return
	}
	n.log.Debug("view installed, rebalancing", "view", v.ID, "members", len(v.Members))
	// Flush the total-order layer: a coordinator that died mid-multicast
	// must not hold back deliveries forever (view-synchrony flush).
	n.to.PurgeOrigins(func(origin string) bool {
		return origin == string(n.cfg.ID) || v.Contains(ring.NodeID(origin))
	})
	n.rebalance(oldRing, newRing, v)
}

func contains(set []ring.NodeID, id ring.NodeID) bool {
	for _, s := range set {
		if s == id {
			return true
		}
	}
	return false
}

// rebalance moves objects after a membership change.
func (n *Node) rebalance(oldRing, newRing *ring.Ring, v membership.View) {
	n.objMu.Lock()
	refs := make([]core.Ref, 0, len(n.objects))
	entries := make([]*entry, 0, len(n.objects))
	for ref, e := range n.objects {
		refs = append(refs, ref)
		entries = append(entries, e)
	}
	n.objMu.Unlock()

	for i, ref := range refs {
		e := entries[i]
		if e.sync {
			continue
		}
		rf := 1
		if e.persist {
			rf = n.cfg.RF
		}
		key := ref.String()
		oldSet := oldRing.ReplicaSet(key, rf)
		newSet := newRing.ReplicaSet(key, rf)
		if !contains(oldSet, n.cfg.ID) {
			// We hold a copy we were not responsible for (leftover of an
			// earlier view); drop it if we are not responsible now either.
			if !contains(newSet, n.cfg.ID) {
				n.removeObject(ref)
			}
			continue
		}

		// Deterministic pusher: the first old-set member still alive. The
		// local node counts as alive even when absent from the new view —
		// that is precisely the graceful-leave hand-off. Duplicate pushes
		// from two candidates are idempotent (transfer replaces).
		var pusher ring.NodeID
		for _, m := range oldSet {
			if m == n.cfg.ID || v.Contains(m) {
				pusher = m
				break
			}
		}
		if pusher == n.cfg.ID {
			for _, target := range newSet {
				if contains(oldSet, target) || target == n.cfg.ID {
					continue
				}
				if err := n.pushObject(ref, e, target); err != nil {
					// Best effort: the target may be mid-join; clients
					// retry on ErrWrongNode and repair on next access.
					n.log.Debug("transfer failed", "ref", ref.String(),
						"target", string(target), "err", err)
					continue
				}
			}
		}
		if !contains(newSet, n.cfg.ID) {
			n.removeObject(ref)
		}
	}
}

// pushObject snapshots one object and ships it to target. The object is
// marked transferring while the snapshot is taken so concurrent calls
// back off.
func (n *Node) pushObject(ref core.Ref, e *entry, target ring.NodeID) error {
	e.mu.Lock()
	snap, ok := e.obj.(core.Snapshotter)
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("server: %s (%T) is not snapshotable", ref, e.obj)
	}
	e.transferring = true
	data, err := snap.Snapshot()
	e.transferring = false
	persist := e.persist
	init := e.init
	e.mu.Unlock()
	if err != nil {
		return fmt.Errorf("server: snapshot %s: %w", ref, err)
	}

	body, err := core.EncodeValue(transferMsg{Ref: ref, Init: init, Persist: persist, Snapshot: data})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := n.peerCall(ctx, target, KindTransfer, body); err != nil {
		return fmt.Errorf("server: transfer %s to %s: %w", ref, target, err)
	}
	n.transfers.Add(1)
	n.cTransfers.Inc()
	return nil
}

// removeObject drops a local copy, waking any (stale) waiters first.
func (n *Node) removeObject(ref core.Ref) {
	n.objMu.Lock()
	e, ok := n.objects[ref]
	if ok {
		delete(n.objects, ref)
	}
	n.objMu.Unlock()
	if ok {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
}

// handleTransfer installs a pushed snapshot, replacing any local copy.
func (n *Node) handleTransfer(payload []byte) ([]byte, error) {
	var msg transferMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	info, err := n.cfg.Registry.Lookup(msg.Ref.Type)
	if err != nil {
		return nil, err
	}
	obj, err := info.New(msg.Init)
	if err != nil {
		return nil, fmt.Errorf("server: transfer create %s: %w", msg.Ref, err)
	}
	snap, ok := obj.(core.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("server: transferred type %s is not snapshotable", msg.Ref.Type)
	}
	if err := snap.Restore(msg.Snapshot); err != nil {
		return nil, fmt.Errorf("server: restore %s: %w", msg.Ref, err)
	}
	e := newEntry(obj, msg.Persist, false, msg.Init)
	n.objMu.Lock()
	n.objects[msg.Ref] = e
	n.objMu.Unlock()
	n.transfers.Add(1)
	n.cTransfers.Inc()
	return nil, nil
}
