package server

// At-most-once method shipping. Clients stamp every invocation with a
// (clientID, seq) pair that stays fixed across retries; each object entry
// keeps a bounded per-client window of applied stamps and their responses.
// A retry whose original was applied — but whose response was lost — is
// answered from the window instead of re-executing, so a non-idempotent
// method like AtomicLong.Add moves state exactly once per client call.
//
// The window lives inside the entry and travels with it: on the SMR path
// the stamp is recorded at apply time on every replica (the delivery order
// is total, so all replicas agree on it), and rebalancing serializes the
// window into the transfer snapshot. Wherever the object lands after a
// crash or view change, its dedup memory lands with it.
//
// Bounds: dedupWindowPerClient stamps per client, dedupMaxClients clients
// per object, both evicted FIFO. A window entry only matters while its
// client may still retry the call, so a window much deeper than the retry
// budget is wasted memory; eviction is counted in
// crucial_server_dedup_evictions_total for monitoring. Synchronization
// objects are excluded: their calls block server-side and replays of a
// coordination primitive (await, acquire) must actually execute.

const (
	// dedupWindowPerClient bounds remembered stamps per (object, client).
	dedupWindowPerClient = 64
	// dedupMaxClients bounds tracked clients per object.
	dedupMaxClients = 256
)

// dedupRecord remembers the outcome of one applied stamped invocation.
// Fields are exported for gob: records ride inside transfer snapshots.
type dedupRecord struct {
	Seq     uint64
	Results []any
	Err     string // core.EncodeError form, "" for success
}

// clientWindow is one client's FIFO of applied stamps.
type clientWindow struct {
	Records []dedupRecord
}

// dedupState is an object's at-most-once memory. It is guarded by the
// entry mutex; the zero value is ready to use.
type dedupState struct {
	Clients map[uint64]*clientWindow
	// Order is the FIFO of client IDs for whole-client eviction.
	Order []uint64
}

// lookup returns the recorded outcome for a stamp, if the invocation was
// already applied and is still inside the window.
func (d *dedupState) lookup(client, seq uint64) (dedupRecord, bool) {
	w, ok := d.Clients[client]
	if !ok {
		return dedupRecord{}, false
	}
	for i := range w.Records {
		if w.Records[i].Seq == seq {
			return w.Records[i], true
		}
	}
	return dedupRecord{}, false
}

// record remembers an applied invocation's outcome, evicting FIFO beyond
// the bounds. It returns how many records were evicted (stamps forgotten,
// counted for monitoring; whole-client eviction counts every forgotten
// stamp of that client).
func (d *dedupState) record(client, seq uint64, results []any, errText string) int {
	evicted := 0
	if d.Clients == nil {
		d.Clients = make(map[uint64]*clientWindow)
	}
	w, ok := d.Clients[client]
	if !ok {
		if len(d.Order) >= dedupMaxClients {
			oldest := d.Order[0]
			d.Order = d.Order[1:]
			if old := d.Clients[oldest]; old != nil {
				evicted += len(old.Records)
			}
			delete(d.Clients, oldest)
		}
		w = &clientWindow{}
		d.Clients[client] = w
		d.Order = append(d.Order, client)
	}
	if len(w.Records) >= dedupWindowPerClient {
		drop := len(w.Records) - dedupWindowPerClient + 1
		w.Records = append(w.Records[:0], w.Records[drop:]...)
		evicted += drop
	}
	w.Records = append(w.Records, dedupRecord{Seq: seq, Results: results, Err: errText})
	return evicted
}

// clone deep-copies the state for a transfer snapshot, so the source
// object can keep executing while the snapshot is shipped.
func (d *dedupState) clone() dedupState {
	if len(d.Clients) == 0 {
		return dedupState{}
	}
	out := dedupState{
		Clients: make(map[uint64]*clientWindow, len(d.Clients)),
		Order:   append([]uint64(nil), d.Order...),
	}
	for id, w := range d.Clients {
		out.Clients[id] = &clientWindow{Records: append([]dedupRecord(nil), w.Records...)}
	}
	return out
}
