package server

import (
	"errors"
	"fmt"
	"time"

	"crucial/internal/core"
)

// ChaosCmd is the payload of a KindChaos RPC: a fault-injection command
// sent by dso-cli chaos. Partition commands steer the node's configured
// chaos engine; each node applies them to its own engine, so a CLI that
// wants a cluster-wide partition sends the command to every node.
// Lifecycle commands ("crash", "restart") go through the node's
// OnChaosLifecycle hook — in dso-server that is the supervisor loop, which
// bounces the node process-internally.
type ChaosCmd struct {
	// Op is one of "partition", "partition-one-way", "heal", "crash",
	// "restart".
	Op string
	// Groups are the partition groups for "partition".
	Groups [][]string
	// From and To are the blocked flow for "partition-one-way".
	From, To []string
}

// handleChaos applies one ChaosCmd.
func (n *Node) handleChaos(payload []byte) ([]byte, error) {
	var cmd ChaosCmd
	if err := core.DecodeValue(payload, &cmd); err != nil {
		return nil, err
	}
	switch cmd.Op {
	case "partition":
		if n.cfg.Chaos == nil {
			return nil, errors.New("server: node has no chaos engine")
		}
		n.cfg.Chaos.Partition(cmd.Groups...)
	case "partition-one-way":
		if n.cfg.Chaos == nil {
			return nil, errors.New("server: node has no chaos engine")
		}
		n.cfg.Chaos.PartitionOneWay(cmd.From, cmd.To)
	case "heal":
		if n.cfg.Chaos == nil {
			return nil, errors.New("server: node has no chaos engine")
		}
		n.cfg.Chaos.Heal()
	case "crash", "restart":
		if n.cfg.OnChaosLifecycle == nil {
			return nil, errors.New("server: node has no chaos lifecycle hook")
		}
		// Acknowledge before acting: the hook tears down this node's RPC
		// server, which waits for in-flight handlers — including this one.
		op := cmd.Op
		hook := n.cfg.OnChaosLifecycle
		n.log.Info("chaos lifecycle command", "op", op)
		go func() {
			time.Sleep(20 * time.Millisecond) // let the ack frame flush
			if err := hook(op); err != nil {
				n.log.Warn("chaos lifecycle failed", "op", op, "err", err)
			}
		}()
	default:
		return nil, fmt.Errorf("server: unknown chaos op %q", cmd.Op)
	}
	return core.EncodeValue("ok")
}
