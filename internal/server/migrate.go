package server

import (
	"context"
	"fmt"
	"sort"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
)

// Live hot-object migration (DESIGN.md §5g). A migration moves one object
// to an explicit placement while the cluster keeps serving, by composing
// machinery the hand-off path already trusts:
//
//	fence → revoke → quiesce → push → flip
//
// The source primary fences the object (new invocations bounce with
// ErrRebalancing, lease grants are refused), synchronously revokes every
// outstanding lease via prepareWrite, waits out in-flight SMR rounds,
// pushes a version-stamped snapshot (with the at-most-once dedup window)
// to the object's next replica set, and only then flips the placement
// directive in the directory. The flip installs a new view, so it rides
// every existing view-change safety hook: the view fence cuts off
// replication rounds routed by the old placement, the one-TTL lease fence
// covers grants the revocation round missed, and the ordinary rebalance
// pass doubles as anti-entropy for the copies just pushed.
//
// Safety argument, in terms of the invariants the rest of the package
// maintains:
//
//   - No dual primary: until the flip lands, only the fenced source
//     primary can coordinate for the ref (the directive table still names
//     it), and it is bouncing everything; after the flip, proposals
//     carrying the old view's fence are refused by handlePropose.
//   - No lost update: the push happens after the quiesce, so the snapshot
//     contains every applied operation, and the flip only happens after
//     the push to the new primary succeeded — the new primary never
//     creates the object fresh (pullObject would find the copy anyway).
//   - No stale read: leases die in prepareWrite before the copy moves, and
//     the flip's view install arms the one-TTL write fence on every node.

// migrationFenceTTL bounds how long a fence can outlive its migration: a
// coordinator stuck mid-push must not bounce the object forever. It
// comfortably exceeds pushObject's 30s per-transfer bound.
const migrationFenceTTL = 45 * time.Second

// MigrateCmd asks an object's primary to migrate it (KindMigrate). With
// Unpin set the object's placement directive is removed instead, sending
// it back to hash placement (Targets is ignored). Exported so dso-cli
// migrate can build the payload.
type MigrateCmd struct {
	Ref     core.Ref
	Targets []ring.NodeID
	Unpin   bool
}

// RebalanceStatus is one node's view of the resharding plane, the payload
// of KindRebalanceStatus (dso-cli rebalance status).
type RebalanceStatus struct {
	// Node is the reporting node; Coordinator is whether it currently runs
	// the rebalancer loop (enabled and first member of its view).
	Node        string
	Coordinator bool
	Enabled     bool
	// ViewID and DirectiveVersion identify the placement the node has
	// installed; Directives is the full override table (ref → targets).
	ViewID           uint64
	DirectiveVersion uint64
	Directives       map[string][]string
	// Fenced lists refs currently bouncing behind a migration fence here.
	Fenced []string
	// Migrations/MigrationsFailed/Scans are this node's lifetime counters.
	Migrations       uint64
	MigrationsFailed uint64
	Scans            uint64
	// Streaks is the rebalancer's hot-streak table (consecutive scans each
	// object has exceeded the hot thresholds); empty off the coordinator.
	Streaks map[string]int
}

// fenceMigration fences ref: until liftMigrationFence (or the TTL), this
// node bounces invocations and lease grants for it with ErrRebalancing.
func (n *Node) fenceMigration(ref core.Ref) {
	n.migrateMu.Lock()
	if n.migrating == nil {
		n.migrating = make(map[core.Ref]time.Time)
	}
	n.migrating[ref] = time.Now().Add(migrationFenceTTL)
	n.migrateMu.Unlock()
}

// liftMigrationFence removes ref's fence.
func (n *Node) liftMigrationFence(ref core.Ref) {
	n.migrateMu.Lock()
	delete(n.migrating, ref)
	n.migrateMu.Unlock()
}

// migrationFenced reports whether ref is currently fenced here. Expired
// fences (a migration that died mid-flight) lift lazily on first check,
// so a wedged coordinator degrades to a bounded stall, not a black hole.
func (n *Node) migrationFenced(ref core.Ref) bool {
	n.migrateMu.Lock()
	defer n.migrateMu.Unlock()
	deadline, ok := n.migrating[ref]
	if !ok {
		return false
	}
	if time.Now().After(deadline) {
		delete(n.migrating, ref)
		return false
	}
	return true
}

// liftMigrationFences drops fences for refs this node no longer primaries
// under v: the flip the fence was guarding has landed (or membership moved
// the key anyway) and the new primary serves from here on. Called from
// onView; fences for refs this node still primaries stay (their migration
// is still in flight) and are lifted by MigrateObject itself.
func (n *Node) liftMigrationFences(v membership.View) {
	n.migrateMu.Lock()
	defer n.migrateMu.Unlock()
	for ref := range n.migrating {
		set := v.Place(ref.String(), n.cfg.RF)
		if len(set) == 0 || set[0] != n.cfg.ID {
			delete(n.migrating, ref)
		}
	}
}

// fencedRefs lists the refs currently fenced here (for status reporting).
func (n *Node) fencedRefs() []string {
	n.migrateMu.Lock()
	defer n.migrateMu.Unlock()
	now := time.Now()
	out := make([]string, 0, len(n.migrating))
	for ref, deadline := range n.migrating {
		if now.Before(deadline) {
			out = append(out, ref.String())
		}
	}
	sort.Strings(out)
	return out
}

// MigrateObject live-migrates ref to targets (or, with unpin, back to its
// hash placement) using the fence → revoke → quiesce → push → flip
// protocol above. It must run on ref's current primary (ErrWrongNode
// otherwise, so callers re-route exactly like an invocation) and returns
// only after the directive flip's view has been installed everywhere the
// directory reaches.
func (n *Node) MigrateObject(ctx context.Context, ref core.Ref, targets []ring.NodeID, unpin bool) error {
	v, r := n.currentView()
	if r == nil {
		return core.ErrStopped
	}
	key := ref.String()
	if !unpin {
		if len(targets) == 0 {
			return fmt.Errorf("server: migrate %s: no targets", ref)
		}
		for _, t := range targets {
			if !v.Contains(t) {
				return fmt.Errorf("server: migrate %s: target %s not in view %d", ref, t, v.ID)
			}
		}
	}

	// Only the current primary may migrate: it is the node whose copy is
	// authoritative and whose fence actually stops the write path.
	e, resident := n.lookupExisting(ref)
	rf := 1
	if !resident || e.persist {
		rf = n.cfg.RF
	}
	group := v.Place(key, rf)
	if len(group) == 0 || group[0] != n.cfg.ID {
		owner := ring.NodeID("?")
		if len(group) > 0 {
			owner = group[0]
		}
		return fmt.Errorf("%w: %s belongs to %s", core.ErrWrongNode, ref, owner)
	}
	if resident && e.sync {
		return fmt.Errorf("server: migrate %s: synchronization objects are connection-bound", ref)
	}
	if n.isStale(ref) {
		// A copy suspected behind the committed history must not be blessed
		// as the lineage's new authority; heal first, migrate later.
		return fmt.Errorf("%w: %s stale on %s", core.ErrRebalancing, ref, n.cfg.ID)
	}

	// The placement the cluster will have after the flip, computed against
	// the same members: the push below must land on these nodes.
	nd := v.Directives.Clone()
	if unpin {
		nd = nd.Without(key)
	} else {
		nd = nd.With(key, targets)
	}
	newSet := nd.Place(r, key, rf)

	// Fence: from here until the flip view installs, this node bounces new
	// invocations and refuses lease grants for ref.
	n.fenceMigration(ref)
	defer n.liftMigrationFence(ref)
	fail := func(err error) error {
		n.migrationsFailed.Add(1)
		n.cMigrationsFailed.Inc()
		return err
	}

	// Revoke: every outstanding lease dies before the copy moves, exactly
	// as before a write — a cache serving reads across the flip would miss
	// the new primary's first mutation.
	endWrite, err := n.prepareWrite(ctx, ref)
	if err != nil {
		return fail(fmt.Errorf("server: migrate %s: revoke: %w", ref, err))
	}
	defer endWrite()

	// Quiesce + push: ship the snapshot to every member of the new set.
	// pushObject waits out in-flight SMR rounds before snapshotting and
	// re-ships while operations race the transfer. The new primary's copy
	// is load-bearing (pullObject polls the new group, so a resident copy
	// there prevents a lineage fork); the other members are best-effort —
	// the flip's own rebalance pass and self-healing repair them.
	if resident {
		for _, target := range newSet {
			if target == n.cfg.ID {
				continue
			}
			if err := n.pushObject(ref, e, target); err != nil {
				if target == newSet[0] {
					return fail(fmt.Errorf("server: migrate %s: push to new primary: %w", ref, err))
				}
				n.log.Debug("migration push to follower failed", "ref", key,
					"target", string(target), "err", err)
			}
		}
	}

	// Flip: install the directive through the directory's ordinary view
	// path. Listeners (including this node's own onView) run before this
	// returns, so the old placement is gone when the caller hears success.
	var nv membership.View
	if unpin {
		nv = n.cfg.Directory.ClearDirective(key)
	} else {
		nv = n.cfg.Directory.SetDirective(key, targets)
	}
	n.migrations.Add(1)
	n.cMigrations.Inc()
	n.log.Info("object migrated", "ref", key, "unpin", unpin,
		"targets", fmt.Sprint(targets), "view", nv.ID,
		"directives", nv.Directives.Version)

	// Propagate: processes with private directories (dso-server) only
	// learn the flip from this broadcast; without it every other member
	// keeps routing — and fencing replication rounds — by the old
	// placement, and the pinned key is unreachable cluster-wide. Best
	// effort: a member that misses it converges from the rebalance
	// coordinator's per-scan re-broadcast (or a peer's KindView answer,
	// for clients). Shared-directory members no-op on their own table.
	n.broadcastDirectives(nv)
	return nil
}

// broadcastDirectives pushes v's directive table to every other member
// of v, best effort.
func (n *Node) broadcastDirectives(v membership.View) {
	body, err := core.EncodeValue(v.Directives)
	if err != nil {
		return
	}
	pt := n.peerTimeout
	if pt <= 0 {
		pt = 2 * time.Second // the Config.PeerCallTimeout default
	}
	for _, m := range v.Members {
		if m == n.cfg.ID {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), pt)
		_, err := n.peerCall(ctx, m, KindDirectivesSync, body)
		cancel()
		if err != nil {
			n.log.Debug("directive sync failed", "member", string(m), "err", err)
		}
	}
}

// handleDirectivesSync adopts a strictly newer remote directive table
// into this node's directory (KindDirectivesSync).
func (n *Node) handleDirectivesSync(payload []byte) ([]byte, error) {
	var remote ring.Directives
	if err := core.DecodeValue(payload, &remote); err != nil {
		return nil, err
	}
	if v, adopted := n.cfg.Directory.SyncDirectives(remote); adopted {
		n.log.Info("adopted directive table", "version", remote.Version,
			"entries", remote.Len(), "view", v.ID)
	}
	return []byte("ok"), nil
}

// handleMigrate services a KindMigrate command (rebalancer or dso-cli).
func (n *Node) handleMigrate(ctx context.Context, payload []byte) ([]byte, error) {
	var cmd MigrateCmd
	if err := core.DecodeValue(payload, &cmd); err != nil {
		return nil, err
	}
	if err := n.MigrateObject(ctx, cmd.Ref, cmd.Targets, cmd.Unpin); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}

// RebalanceStatusNow captures this node's resharding-plane status, the
// payload of KindRebalanceStatus.
func (n *Node) RebalanceStatusNow() RebalanceStatus {
	v, _ := n.currentView()
	dirs := make(map[string][]string, v.Directives.Len())
	for _, key := range v.Directives.Keys() {
		ts, _ := v.Directives.Lookup(key)
		out := make([]string, len(ts))
		for i, t := range ts {
			out[i] = string(t)
		}
		dirs[key] = out
	}
	st := RebalanceStatus{
		Node:             string(n.cfg.ID),
		Enabled:          n.rebal != nil,
		ViewID:           v.ID,
		DirectiveVersion: v.Directives.Version,
		Directives:       dirs,
		Fenced:           n.fencedRefs(),
		Migrations:       n.migrations.Load(),
		MigrationsFailed: n.migrationsFailed.Load(),
		Scans:            n.rebalScans.Load(),
	}
	if n.rebal != nil {
		st.Coordinator = n.rebal.coordinating(v)
		st.Streaks = n.rebal.streakSnapshot()
	}
	return st
}

// handleRebalanceStatus services a KindRebalanceStatus query.
func (n *Node) handleRebalanceStatus() ([]byte, error) {
	return core.EncodeValue(n.RebalanceStatusNow())
}
